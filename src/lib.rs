//! # nlq — in-DBMS statistical models with SQL and UDFs
//!
//! A from-scratch Rust reproduction of *"Building Statistical Models
//! and Scoring with UDFs"* (Carlos Ordonez, SIGMOD 2007), the paper
//! behind Teradata Warehouse Miner's in-database analytics.
//!
//! The central idea: four fundamental linear statistical techniques —
//! correlation, linear regression, PCA/factor analysis, and clustering
//! — all reduce to two sufficient-statistics matrices computed in a
//! single scan of the data set `X`:
//!
//! * `L = Σ xᵢ` — the linear sum of points, and
//! * `Q = Σ xᵢ xᵢᵀ` — the quadratic sum of cross-products,
//!
//! plus the row count `n`. The workspace provides the full stack:
//!
//! * [`linalg`] — dense matrix kernels (LU, Cholesky, Jacobi eigen, SVD),
//! * [`datagen`] — the paper's Gaussian-mixture synthetic data sets,
//! * [`storage`] — paged, horizontally partitioned parallel row storage,
//! * [`models`] — the `Nlq` summary statistics and every model builder,
//! * [`udf`] — the Teradata-style scalar/aggregate UDF framework and
//!   the paper's UDFs (aggregate `nlq`, scoring scalar UDFs),
//! * [`engine`] — a SQL-subset engine (long aggregate queries, GROUP
//!   BY, cross joins, UDF calls) that runs both implementation paths,
//! * [`export`] — the ODBC-style export channel and the external
//!   "C++ workstation" baseline.
//!
//! ## Quickstart
//!
//! ```
//! use nlq::engine::Db;
//! use nlq::models::{CorrelationModel, MatrixShape};
//!
//! // An in-memory parallel database with 4 worker threads.
//! let db = Db::new(4);
//!
//! // A tiny 2-dimensional data set X(i, X1, X2).
//! db.execute("CREATE TABLE X (i INT, X1 FLOAT, X2 FLOAT)").unwrap();
//! db.execute("INSERT INTO X VALUES (1, 1.0, 2.0), (2, 2.0, 4.1), (3, 3.0, 5.9)")
//!     .unwrap();
//!
//! // One table scan computes the summary matrices n, L, Q via the
//! // aggregate UDF; the correlation model is then built from them.
//! let nlq = db.compute_nlq("X", &["X1", "X2"], MatrixShape::Triangular).unwrap();
//! let corr = CorrelationModel::fit(&nlq).unwrap();
//! assert!(corr.matrix()[(0, 1)] > 0.99); // X2 ~ 2 * X1
//! ```

pub use nlq_client as client;
pub use nlq_datagen as datagen;
pub use nlq_engine as engine;
pub use nlq_export as export;
pub use nlq_linalg as linalg;
pub use nlq_models as models;
pub use nlq_server as server;
pub use nlq_storage as storage;
pub use nlq_udf as udf;
