//! Workspace-level property tests: random data sets pushed through
//! the full DBMS pipeline must agree with direct in-memory
//! computation, and the packing/merging machinery must be lossless.

use nlq::engine::{sqlgen, Db, NlqMethod};
use nlq::models::{MatrixShape, Nlq};
use nlq::udf::pack::{pack_nlq, pack_vector, unpack_nlq, unpack_vector};
use proptest::prelude::*;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-7 * (1.0 + a.abs().max(b.abs()))
}

/// Random small data set: 2-6 dimensions, 1-60 rows, moderate values.
fn data_set() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..=6, 1usize..=60).prop_flat_map(|(d, n)| {
        proptest::collection::vec(
            proptest::collection::vec(-50.0_f64..50.0, d),
            n,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_paths_match_reference(rows in data_set()) {
        let d = rows[0].len();
        let reference = Nlq::from_rows(d, MatrixShape::Triangular, &rows);
        let db = Db::new(3);
        db.load_points("X", &rows, false).unwrap();
        let names = sqlgen::x_cols(d);
        let cols: Vec<&str> = names.iter().map(String::as_str).collect();
        for method in [NlqMethod::Sql, NlqMethod::UdfList, NlqMethod::UdfString] {
            let got = db
                .compute_nlq_with(method, "X", &cols, MatrixShape::Triangular)
                .unwrap();
            prop_assert_eq!(got.n(), reference.n());
            for a in 0..d {
                prop_assert!(close(got.l()[a], reference.l()[a]));
                for b in 0..=a {
                    prop_assert!(close(got.q_raw()[(a, b)], reference.q_raw()[(a, b)]));
                }
            }
        }
    }

    #[test]
    fn nlq_pack_roundtrip_is_lossless(rows in data_set()) {
        let d = rows[0].len();
        for shape in [MatrixShape::Diagonal, MatrixShape::Triangular, MatrixShape::Full] {
            let nlq = Nlq::from_rows(d, shape, &rows);
            let back = unpack_nlq(&pack_nlq(&nlq)).unwrap();
            prop_assert_eq!(back, nlq);
        }
    }

    #[test]
    fn vector_pack_roundtrip_is_exact(xs in proptest::collection::vec(-1e12_f64..1e12, 0..40)) {
        let back = unpack_vector(&pack_vector(&xs)).unwrap();
        prop_assert_eq!(back, xs);
    }

    #[test]
    fn merge_is_associative_and_matches_single_pass(rows in data_set(), cut in 0usize..60) {
        let d = rows[0].len();
        let cut = cut.min(rows.len());
        let whole = Nlq::from_rows(d, MatrixShape::Triangular, &rows);
        let mut left = Nlq::from_rows(d, MatrixShape::Triangular, &rows[..cut]);
        let right = Nlq::from_rows(d, MatrixShape::Triangular, &rows[cut..]);
        left.merge(&right);
        prop_assert_eq!(left.n(), whole.n());
        for a in 0..d {
            prop_assert!(close(left.l()[a], whole.l()[a]));
            for b in 0..=a {
                prop_assert!(close(left.q_raw()[(a, b)], whole.q_raw()[(a, b)]));
            }
        }
    }

    #[test]
    fn covariance_is_psd_and_correlation_bounded(rows in data_set()) {
        prop_assume!(rows.len() >= 3);
        let d = rows[0].len();
        let nlq = Nlq::from_rows(d, MatrixShape::Triangular, &rows);
        let cov = nlq.covariance().unwrap();
        // PSD check via eigenvalues (tolerate tiny negative noise).
        let eig = nlq::linalg::jacobi_eigen(&cov, 1e-12).unwrap();
        for v in &eig.values {
            prop_assert!(*v >= -1e-6 * (1.0 + cov.max_abs()), "eigenvalue {v}");
        }
        if let Ok(rho) = nlq.correlation() {
            for a in 0..d {
                prop_assert!(close(rho[(a, a)], 1.0));
                for b in 0..d {
                    prop_assert!(rho[(a, b)] >= -1.0 - 1e-9 && rho[(a, b)] <= 1.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn partition_count_does_not_change_results(rows in data_set(), workers in 1usize..8) {
        let d = rows[0].len();
        let names = sqlgen::x_cols(d);
        let cols: Vec<&str> = names.iter().map(String::as_str).collect();

        let db1 = Db::new(1);
        db1.load_points("X", &rows, false).unwrap();
        let one = db1.compute_nlq("X", &cols, MatrixShape::Full).unwrap();

        let dbw = Db::new(workers);
        dbw.load_points("X", &rows, false).unwrap();
        let many = dbw.compute_nlq("X", &cols, MatrixShape::Full).unwrap();

        prop_assert_eq!(one.n(), many.n());
        for a in 0..d {
            prop_assert!(close(one.l()[a], many.l()[a]));
            for b in 0..d {
                prop_assert!(close(one.q_raw()[(a, b)], many.q_raw()[(a, b)]));
            }
        }
    }
}
