//! Workspace-level property tests: random data sets pushed through
//! the full DBMS pipeline must agree with direct in-memory
//! computation, and the packing/merging machinery must be lossless.

use nlq::engine::{sqlgen, Db, NlqMethod};
use nlq::models::{MatrixShape, Nlq};
use nlq::storage::{Schema, Table, Value};
use nlq::udf::pack::{pack_nlq, pack_vector, unpack_nlq, unpack_vector};
use nlq_testkit::{run_cases, Rng};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-7 * (1.0 + a.abs().max(b.abs()))
}

/// Random small data set: 2-6 dimensions, 1-60 rows, moderate values.
fn data_set(rng: &mut Rng) -> Vec<Vec<f64>> {
    let d = rng.range_usize(2, 6);
    let n = rng.range_usize(1, 60);
    (0..n).map(|_| rng.vec_f64(d, -50.0, 50.0)).collect()
}

#[test]
fn engine_paths_match_reference() {
    run_cases(24, 0xf001, |rng| {
        let rows = data_set(rng);
        let d = rows[0].len();
        let reference = Nlq::from_rows(d, MatrixShape::Triangular, &rows);
        let db = Db::new(3);
        db.load_points("X", &rows, false).unwrap();
        let names = sqlgen::x_cols(d);
        let cols: Vec<&str> = names.iter().map(String::as_str).collect();
        for method in [NlqMethod::Sql, NlqMethod::UdfList, NlqMethod::UdfString] {
            let got = db
                .compute_nlq_with(method, "X", &cols, MatrixShape::Triangular)
                .unwrap();
            assert_eq!(got.n(), reference.n());
            for a in 0..d {
                assert!(close(got.l()[a], reference.l()[a]));
                for b in 0..=a {
                    assert!(close(got.q_raw()[(a, b)], reference.q_raw()[(a, b)]));
                }
            }
        }
    });
}

#[test]
fn nlq_pack_roundtrip_is_lossless() {
    run_cases(24, 0xf002, |rng| {
        let rows = data_set(rng);
        let d = rows[0].len();
        for shape in [
            MatrixShape::Diagonal,
            MatrixShape::Triangular,
            MatrixShape::Full,
        ] {
            let nlq = Nlq::from_rows(d, shape, &rows);
            let back = unpack_nlq(&pack_nlq(&nlq)).unwrap();
            assert_eq!(back, nlq);
        }
    });
}

#[test]
fn vector_pack_roundtrip_is_exact() {
    run_cases(24, 0xf003, |rng| {
        let n = rng.range_usize(0, 39);
        let xs = rng.vec_f64(n, -1e12, 1e12);
        let back = unpack_vector(&pack_vector(&xs)).unwrap();
        assert_eq!(back, xs);
    });
}

#[test]
fn merge_is_associative_and_matches_single_pass() {
    run_cases(24, 0xf004, |rng| {
        let rows = data_set(rng);
        let d = rows[0].len();
        let cut = rng.range_usize(0, rows.len());
        let whole = Nlq::from_rows(d, MatrixShape::Triangular, &rows);
        let mut left = Nlq::from_rows(d, MatrixShape::Triangular, &rows[..cut]);
        let right = Nlq::from_rows(d, MatrixShape::Triangular, &rows[cut..]);
        left.merge(&right);
        assert_eq!(left.n(), whole.n());
        for a in 0..d {
            assert!(close(left.l()[a], whole.l()[a]));
            for b in 0..=a {
                assert!(close(left.q_raw()[(a, b)], whole.q_raw()[(a, b)]));
            }
        }
    });
}

#[test]
fn covariance_is_psd_and_correlation_bounded() {
    run_cases(24, 0xf005, |rng| {
        let rows = data_set(rng);
        if rows.len() < 3 {
            return;
        }
        let d = rows[0].len();
        let nlq = Nlq::from_rows(d, MatrixShape::Triangular, &rows);
        let cov = nlq.covariance().unwrap();
        // PSD check via eigenvalues (tolerate tiny negative noise).
        let eig = nlq::linalg::jacobi_eigen(&cov, 1e-12).unwrap();
        for v in &eig.values {
            assert!(*v >= -1e-6 * (1.0 + cov.max_abs()), "eigenvalue {v}");
        }
        if let Ok(rho) = nlq.correlation() {
            for a in 0..d {
                assert!(close(rho[(a, a)], 1.0));
                for b in 0..d {
                    assert!(rho[(a, b)] >= -1.0 - 1e-9 && rho[(a, b)] <= 1.0 + 1e-9);
                }
            }
        }
    });
}

#[test]
fn block_scan_matches_row_scan() {
    // The block-at-a-time fast path must agree with row-at-a-time
    // execution within reassociation noise (1e-12 relative), across
    // row counts that are not multiples of the block size, tables
    // smaller than the worker count (empty partitions), NULL holes,
    // and every aggregate kind the block path handles.
    run_cases(16, 0xf007, |rng| {
        let d = rng.range_usize(2, 4);
        // Bias towards small tables but cross the 1024-row block
        // boundary in some cases; never a multiple of 1024 by luck
        // alone, and 0 rows exercises the empty-input path.
        let n = match rng.range_usize(0, 3) {
            0 => rng.range_usize(0, 5),
            1 => rng.range_usize(5, 300),
            _ => rng.range_usize(1000, 2600),
        };
        let workers = rng.range_usize(1, 7);

        let mut table = Table::new(Schema::points(d, false), workers);
        for i in 0..n {
            let mut row = vec![Value::Int(i as i64 + 1)];
            for _ in 0..d {
                // ~10% NULL holes so masked kernels are exercised.
                if rng.range_usize(0, 10) == 0 {
                    row.push(Value::Null);
                } else {
                    row.push(Value::Float(rng.range_f64(-50.0, 50.0)));
                }
            }
            table.insert(row).unwrap();
        }

        let block_db = Db::new(workers);
        block_db.register_table("X", table.clone()).unwrap();
        let row_db = Db::new(workers);
        row_db.set_block_scan(false);
        row_db.register_table("X", table).unwrap();

        let coords: Vec<String> = (1..=d).map(|a| format!("X{a}")).collect();
        let sql = format!(
            "SELECT count(*), sum(X1), avg(X2), min(X1), max(X2), \
             count(X1), corr(X1, X2), sum(X1 * X2), \
             nlq_list({d}, 'triangular', {}) FROM X",
            coords.join(", ")
        );

        let via_blocks = block_db.execute(&sql).unwrap();
        let via_rows = row_db.execute(&sql).unwrap();
        assert!(via_blocks.stats.block_path);
        assert!(!via_rows.stats.block_path);
        assert_eq!(via_blocks.len(), via_rows.len());

        let tight = |a: f64, b: f64| (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()));
        for col in 0..8 {
            let (a, b) = (via_blocks.value(0, col), via_rows.value(0, col));
            match (a.as_f64(), b.as_f64()) {
                (Some(a), Some(b)) => assert!(tight(a, b), "col {col}: {a} vs {b}"),
                _ => assert_eq!(a, b, "col {col}"),
            }
        }
        // The packed nlq strings may differ in their last digits from
        // summation order; compare the unpacked statistics instead.
        match (via_blocks.value(0, 8), via_rows.value(0, 8)) {
            (Value::Str(a), Value::Str(b)) => {
                let (a, b) = (unpack_nlq(a).unwrap(), unpack_nlq(b).unwrap());
                assert_eq!(a.n(), b.n());
                for i in 0..d {
                    assert!(tight(a.l()[i], b.l()[i]));
                    for j in 0..=i {
                        assert!(tight(a.q_raw()[(i, j)], b.q_raw()[(i, j)]));
                    }
                }
            }
            (a, b) => assert_eq!(a, b, "nlq column"),
        }
    });
}

#[test]
fn filtered_block_scan_matches_row_scan() {
    // Random WHERE predicates drawn from the block-compilable subset
    // (comparisons, IS [NOT] NULL, NOT/AND/OR) evaluated as selection
    // bitmaps must keep exactly the rows the row-at-a-time interpreter
    // keeps — including SQL three-valued logic over NULL coordinates —
    // for both scalar projections and aggregates, across empty tables,
    // empty partitions, and the Int id column.
    fn predicate(rng: &mut Rng, d: usize, depth: usize) -> String {
        if depth == 0 || rng.range_usize(0, 3) > 0 {
            let col = rng.range_usize(1, d);
            match rng.range_usize(0, 5) {
                0 => format!("X{col} IS NULL"),
                1 => format!("X{col} IS NOT NULL"),
                2 => {
                    let other = rng.range_usize(1, d);
                    format!("X{col} <= X{other}")
                }
                3 => format!("i > {}", rng.range_usize(0, 2000)),
                _ => {
                    let ops = [">", ">=", "<", "<=", "=", "<>"];
                    format!(
                        "X{col} {} {:.2}",
                        ops[rng.range_usize(0, ops.len() - 1)],
                        rng.range_f64(-40.0, 40.0)
                    )
                }
            }
        } else {
            match rng.range_usize(0, 2) {
                0 => format!("NOT ({})", predicate(rng, d, depth - 1)),
                1 => format!(
                    "({} AND {})",
                    predicate(rng, d, depth - 1),
                    predicate(rng, d, depth - 1)
                ),
                _ => format!(
                    "({} OR {})",
                    predicate(rng, d, depth - 1),
                    predicate(rng, d, depth - 1)
                ),
            }
        }
    }

    run_cases(16, 0xf008, |rng| {
        let d = rng.range_usize(2, 4);
        let n = match rng.range_usize(0, 3) {
            0 => rng.range_usize(0, 5),
            1 => rng.range_usize(5, 300),
            _ => rng.range_usize(1000, 2600),
        };
        let workers = rng.range_usize(1, 7);

        let mut table = Table::new(Schema::points(d, false), workers);
        for i in 0..n {
            let mut row = vec![Value::Int(i as i64 + 1)];
            for _ in 0..d {
                if rng.range_usize(0, 10) == 0 {
                    row.push(Value::Null);
                } else {
                    row.push(Value::Float(rng.range_f64(-50.0, 50.0)));
                }
            }
            table.insert(row).unwrap();
        }

        let block_db = Db::new(workers);
        block_db.register_table("X", table.clone()).unwrap();
        let row_db = Db::new(workers);
        row_db.set_block_scan(false);
        row_db.register_table("X", table).unwrap();

        let along = predicate(rng, d, 2);
        let tight = |a: f64, b: f64| (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()));
        for sql in [
            format!("SELECT i, X1, X2 FROM X WHERE {along}"),
            format!("SELECT count(*), count(X1), sum(X1), min(X2), max(X2) FROM X WHERE {along}"),
        ] {
            let via_blocks = block_db.execute(&sql).unwrap();
            let via_rows = row_db.execute(&sql).unwrap();
            assert!(via_blocks.stats.block_path, "{sql}");
            assert!(!via_rows.stats.block_path);
            assert_eq!(via_blocks.len(), via_rows.len(), "{sql}");
            for r in 0..via_blocks.len() {
                for c in 0..via_blocks.columns.len() {
                    let (a, b) = (via_blocks.value(r, c), via_rows.value(r, c));
                    match (a.as_f64(), b.as_f64()) {
                        (Some(a), Some(b)) => {
                            assert!(tight(a, b), "{sql}: row {r} col {c}: {a} vs {b}")
                        }
                        _ => assert_eq!(a, b, "{sql}: row {r} col {c}"),
                    }
                }
            }
            // The plan must advertise the selection-bitmap block scan.
            let plan = block_db.execute(&format!("EXPLAIN {sql}")).unwrap();
            let text: Vec<String> = plan
                .rows
                .iter()
                .map(|r| r[0].as_str().unwrap().to_owned())
                .collect();
            let text = text.join("\n");
            assert!(text.contains("scan mode: block"), "{sql}\n{text}");
            assert!(
                text.contains("predicate(s) as selection bitmap"),
                "{sql}\n{text}"
            );
        }
    });
}

#[test]
fn partition_count_does_not_change_results() {
    run_cases(24, 0xf006, |rng| {
        let rows = data_set(rng);
        let workers = rng.range_usize(1, 7);
        let d = rows[0].len();
        let names = sqlgen::x_cols(d);
        let cols: Vec<&str> = names.iter().map(String::as_str).collect();

        let db1 = Db::new(1);
        db1.load_points("X", &rows, false).unwrap();
        let one = db1.compute_nlq("X", &cols, MatrixShape::Full).unwrap();

        let dbw = Db::new(workers);
        dbw.load_points("X", &rows, false).unwrap();
        let many = dbw.compute_nlq("X", &cols, MatrixShape::Full).unwrap();

        assert_eq!(one.n(), many.n());
        for a in 0..d {
            assert!(close(one.l()[a], many.l()[a]));
            for b in 0..d {
                assert!(close(one.q_raw()[(a, b)], many.q_raw()[(a, b)]));
            }
        }
    });
}

#[test]
fn concurrent_mixed_sessions_match_serial_replay() {
    // N threads hammer one shared `Db` with interleaved DDL, INSERTs,
    // summary builds, aggregates, and scoring queries. Each thread
    // owns its tables, so the answers it observes must be exactly the
    // answers a serial replay of that thread's script produces —
    // regardless of how the threads interleave on the shared catalog,
    // registry, and summary store.
    use std::sync::Arc;

    const THREADS: usize = 6;

    /// Deterministic per-thread statement script. SELECT statements
    /// are the observation points.
    fn script(k: usize) -> Vec<String> {
        let mut rng = Rng::new(0xc0c0 + k as u64);
        let t = format!("T{k}");
        let mut out = vec![
            format!("CREATE TABLE {t} (i INT, X1 FLOAT, X2 FLOAT)"),
            format!("CREATE TABLE B{k} (b0 FLOAT, b1 FLOAT, b2 FLOAT)"),
            format!(
                "INSERT INTO B{k} VALUES ({:.3}, {:.3}, {:.3})",
                rng.range_f64(-2.0, 2.0),
                rng.range_f64(-2.0, 2.0),
                rng.range_f64(-2.0, 2.0)
            ),
        ];
        let summary_round = rng.range_usize(0, 6);
        let mut next_id = 1;
        for round in 0..8 {
            if round == summary_round {
                out.push(format!("CREATE SUMMARY s{k} ON {t} (X1, X2)"));
            }
            let inserts = rng.range_usize(1, 4);
            for _ in 0..inserts {
                out.push(format!(
                    "INSERT INTO {t} VALUES ({next_id}, {:.3}, {:.3})",
                    rng.range_f64(-50.0, 50.0),
                    rng.range_f64(-50.0, 50.0)
                ));
                next_id += 1;
            }
            match rng.range_usize(0, 3) {
                0 => out.push(format!("SELECT count(*), sum(X1), sum(X2) FROM {t}")),
                1 => out.push(format!("SELECT nlq_list(2, 'triang', X1, X2) FROM {t}")),
                _ => out.push(format!(
                    "SELECT x.i, linearregscore(x.X1, x.X2, b.b0, b.b1, b.b2) \
                     FROM {t} x CROSS JOIN B{k} b"
                )),
            }
        }
        out
    }

    /// Runs a script, returning each SELECT's (columns, rows).
    fn observe(db: &Db, stmts: &[String]) -> Vec<(Vec<String>, Vec<Vec<Value>>)> {
        let mut seen = Vec::new();
        for sql in stmts {
            let rs = db.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            if sql.starts_with("SELECT") {
                seen.push((rs.columns, rs.rows));
            }
        }
        seen
    }

    let shared = Arc::new(Db::new(4));
    let concurrent: Vec<_> = (0..THREADS)
        .map(|k| {
            let db = Arc::clone(&shared);
            std::thread::spawn(move || observe(&db, &script(k)))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("session thread"))
        .collect();

    // Serial replay on a fresh engine: identical observations.
    let serial_db = Db::new(4);
    for (k, seen) in concurrent.iter().enumerate() {
        let replay = observe(&serial_db, &script(k));
        assert_eq!(seen.len(), replay.len(), "thread {k}");
        for (i, (a, b)) in seen.iter().zip(&replay).enumerate() {
            assert_eq!(a.0, b.0, "thread {k} select {i}: columns");
            assert_eq!(a.1.len(), b.1.len(), "thread {k} select {i}: rows");
            for (ra, rb) in a.1.iter().zip(&b.1) {
                for (va, vb) in ra.iter().zip(rb) {
                    match (va, vb) {
                        // Packed nlq strings and float cells may pick
                        // up reassociation noise across partitioned
                        // scans; everything else must be identical.
                        (Value::Str(sa), Value::Str(sb))
                            if sa.starts_with("NLQ;") && sb.starts_with("NLQ;") =>
                        {
                            let (na, nb) = (unpack_nlq(sa).unwrap(), unpack_nlq(sb).unwrap());
                            assert_eq!(na.n(), nb.n(), "thread {k} select {i}");
                        }
                        (Value::Float(fa), Value::Float(fb)) => assert!(
                            (fa - fb).abs() <= 1e-9 * (1.0 + fa.abs().max(fb.abs())),
                            "thread {k} select {i}: {fa} vs {fb}"
                        ),
                        _ => assert_eq!(va, vb, "thread {k} select {i}"),
                    }
                }
            }
        }
    }
}
