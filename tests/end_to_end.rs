//! Cross-crate integration: the three implementation paths of the
//! paper (pure SQL, aggregate UDF, exported C++-style external
//! program) must produce identical summary matrices and identical
//! models, end to end.

use nlq::datagen::{MixtureGenerator, MixtureSpec, RegressionGenerator, RegressionSpec};
use nlq::engine::{sqlgen, Db, NlqMethod};
use nlq::export::{ExternalAnalyzer, OdbcChannel};
use nlq::models::{
    CorrelationModel, FactorAnalysis, FactorAnalysisConfig, GaussianMixture, GaussianMixtureConfig,
    KMeans, KMeansConfig, LinearRegression, MatrixShape, Pca, PcaInput,
};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-8 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn all_three_paths_agree_and_models_match() {
    let d = 5;
    let n = 3_000;
    let rows = MixtureGenerator::new(MixtureSpec::paper_defaults(d).with_seed(7)).generate(n);

    // Path 1 + 2: inside the DBMS.
    let db = Db::new(6);
    db.load_points("X", &rows, false).unwrap();
    let names = sqlgen::x_cols(d);
    let cols: Vec<&str> = names.iter().map(String::as_str).collect();
    let via_sql = db
        .compute_nlq_with(NlqMethod::Sql, "X", &cols, MatrixShape::Triangular)
        .unwrap();
    let via_udf = db
        .compute_nlq_with(NlqMethod::UdfList, "X", &cols, MatrixShape::Triangular)
        .unwrap();
    let via_str = db
        .compute_nlq_with(NlqMethod::UdfString, "X", &cols, MatrixShape::Triangular)
        .unwrap();

    // Path 3: export through the (unthrottled) ODBC channel, analyze
    // with the external one-pass program.
    let path = std::env::temp_dir().join(format!("nlq_e2e_{}", std::process::id()));
    OdbcChannel::unthrottled()
        .export_rows(&rows, &path)
        .unwrap();
    let via_ext = ExternalAnalyzer::new(MatrixShape::Triangular)
        .compute_nlq_from_file(&path)
        .unwrap();
    std::fs::remove_file(&path).ok();

    for other in [&via_udf, &via_str, &via_ext] {
        assert_eq!(via_sql.n(), other.n());
        for a in 0..d {
            assert!(close(via_sql.l()[a], other.l()[a]), "L[{a}]");
            for b in 0..=a {
                assert!(
                    close(via_sql.q_raw()[(a, b)], other.q_raw()[(a, b)]),
                    "Q[{a}][{b}]"
                );
            }
        }
    }

    // Models built from either path agree.
    let corr_sql = CorrelationModel::fit(&via_sql).unwrap();
    let corr_ext = CorrelationModel::fit(&via_ext).unwrap();
    for a in 0..d {
        for b in 0..d {
            assert!(close(
                corr_sql.coefficient(a, b),
                corr_ext.coefficient(a, b)
            ));
        }
    }

    let pca_sql = Pca::fit(&via_sql, 2, PcaInput::Correlation).unwrap();
    let pca_udf = Pca::fit(&via_udf, 2, PcaInput::Correlation).unwrap();
    for (ev_a, ev_b) in pca_sql.eigenvalues().iter().zip(pca_udf.eigenvalues()) {
        assert!(close(*ev_a, *ev_b));
    }
}

#[test]
fn regression_pipeline_recovers_the_generating_model() {
    let d = 4;
    let spec = RegressionSpec {
        noise_sigma: 0.5,
        ..RegressionSpec::defaults(d)
    };
    let rows = RegressionGenerator::new(spec.clone().with_seed(3)).generate_augmented(5_000);
    let db = Db::new(4);
    db.load_points("X", &rows, true).unwrap();

    let mut names = sqlgen::x_cols(d);
    names.push("Y".into());
    let cols: Vec<&str> = names.iter().map(String::as_str).collect();
    let nlq = db.compute_nlq("X", &cols, MatrixShape::Triangular).unwrap();
    let model = LinearRegression::fit(&nlq).unwrap();

    assert!((model.intercept() - spec.intercept).abs() < 0.2);
    for (got, want) in model
        .coefficients()
        .as_slice()
        .iter()
        .zip(&spec.coefficients)
    {
        assert!((got - want).abs() < 0.01, "coefficient {got} vs {want}");
    }
    assert!(model.r_squared() > 0.999);

    // Score in-DBMS and verify against direct prediction.
    db.register_beta("BETA", model.intercept(), model.coefficients())
        .unwrap();
    let x_names = sqlgen::x_cols(d);
    let scored = db
        .execute(&sqlgen::score_regression_udf("X", &x_names, "BETA"))
        .unwrap();
    assert_eq!(scored.len(), rows.len());
    for r in scored.rows.iter().take(50) {
        let i = r[0].as_i64().unwrap() as usize;
        let yhat = r[1].as_f64().unwrap();
        let expect = model.predict(&rows[i - 1][..d]);
        assert!(close(yhat, expect));
    }
}

#[test]
fn clustering_pipeline_finds_generated_components() {
    // Well separated mixture, no noise.
    let spec = MixtureSpec {
        k: 3,
        sigma: 1.0,
        noise_fraction: 0.0,
        ..MixtureSpec::paper_defaults(2)
    };
    let mut generator = MixtureGenerator::new(spec.with_seed(11));
    let true_means = generator.means().to_vec();
    let rows = generator.generate(2_000);

    let km = KMeans::fit(&rows, &KMeansConfig::new(3)).unwrap();
    // Every true mean is near some centroid.
    for tm in &true_means {
        let best = km
            .centroids()
            .iter()
            .map(|c| {
                c.as_slice()
                    .iter()
                    .zip(tm)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(best < 1.0, "no centroid near {tm:?} (distance^2 = {best})");
    }

    // EM agrees on the structure.
    let gm = GaussianMixture::fit(&rows, &GaussianMixtureConfig::new(3)).unwrap();
    for tm in &true_means {
        let best = gm
            .means()
            .iter()
            .map(|c| {
                c.as_slice()
                    .iter()
                    .zip(tm)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(best < 1.0, "no EM mean near {tm:?}");
    }

    // In-DBMS scoring assigns points to the same clusters as the
    // library.
    let db = Db::new(4);
    db.load_points("X", &rows, false).unwrap();
    db.register_centroids("C", km.centroids()).unwrap();
    let names = sqlgen::x_cols(2);
    let scored = db
        .execute(&sqlgen::score_cluster_udf("X", &names, 3, "C"))
        .unwrap();
    for r in scored.rows.iter().take(100) {
        let i = r[0].as_i64().unwrap() as usize;
        let j = r[1].as_i64().unwrap() as usize;
        assert_eq!(j, km.assign(&rows[i - 1]) + 1);
    }
}

#[test]
fn factor_analysis_end_to_end() {
    // Latent 1-factor data through the whole DBMS pipeline.
    let rows: Vec<Vec<f64>> = (0..2000)
        .map(|i| {
            let z = ((i as f64 * 0.7).sin()) * 4.0;
            vec![
                10.0 + 2.0 * z + ((i * 13 % 7) as f64) * 0.01,
                -3.0 - z + ((i * 29 % 5) as f64) * 0.01,
                1.0 + 0.5 * z + ((i * 31 % 11) as f64) * 0.01,
            ]
        })
        .collect();
    let db = Db::new(4);
    db.load_points("X", &rows, false).unwrap();
    let nlq = db
        .compute_nlq("X", &["X1", "X2", "X3"], MatrixShape::Triangular)
        .unwrap();
    let fa = FactorAnalysis::fit(&nlq, &FactorAnalysisConfig::new(1)).unwrap();
    // Loadings proportional to (2, -1, 0.5).
    let l: Vec<f64> = (0..3).map(|r| fa.lambda()[(r, 0)]).collect();
    let scale = l[0] / 2.0;
    assert!((l[1] / scale + 1.0).abs() < 0.05, "loadings {l:?}");
    assert!((l[2] / scale - 0.5).abs() < 0.05, "loadings {l:?}");
}

#[test]
fn grouped_statistics_reconstruct_global_statistics() {
    let rows = MixtureGenerator::new(MixtureSpec::paper_defaults(3).with_seed(5)).generate(1_500);
    let db = Db::new(4);
    db.load_points("X", &rows, false).unwrap();
    let cols = ["X1", "X2", "X3"];

    let global = db.compute_nlq("X", &cols, MatrixShape::Diagonal).unwrap();
    let groups = db
        .compute_nlq_grouped(
            "X",
            &cols,
            "i % 8",
            MatrixShape::Diagonal,
            nlq::udf::ParamStyle::List,
        )
        .unwrap();
    assert_eq!(groups.len(), 8);

    // Merging the per-group statistics recovers the global ones — the
    // additivity that makes the parallel UDF protocol correct.
    let mut merged = nlq::models::Nlq::new(3, MatrixShape::Diagonal);
    for (_, s) in &groups {
        merged.merge(s);
    }
    assert_eq!(merged.n(), global.n());
    for a in 0..3 {
        assert!(close(merged.l()[a], global.l()[a]));
        assert!(close(merged.q_raw()[(a, a)], global.q_raw()[(a, a)]));
        assert_eq!(merged.min()[a], global.min()[a]);
        assert_eq!(merged.max()[a], global.max()[a]);
    }
}

#[test]
fn blocked_high_d_equals_single_call() {
    let d = 12;
    let rows = MixtureGenerator::new(MixtureSpec::paper_defaults(d).with_seed(9)).generate(800);
    let db = Db::new(4);
    db.load_points("X", &rows, false).unwrap();
    let names = sqlgen::x_cols(d);
    let cols: Vec<&str> = names.iter().map(String::as_str).collect();

    let direct = db.compute_nlq("X", &cols, MatrixShape::Full).unwrap();
    for block in [4usize, 6, 12] {
        let blocked = db.compute_nlq_blocked("X", &cols, block).unwrap();
        assert_eq!(blocked.n(), direct.n());
        for a in 0..d {
            assert!(close(blocked.l()[a], direct.l()[a]));
            for b in 0..d {
                assert!(
                    close(blocked.q_raw()[(a, b)], direct.q_raw()[(a, b)]),
                    "block={block} Q[{a}][{b}]"
                );
            }
        }
    }
}
