//! An interactive SQL shell over the in-memory parallel DBMS.
//!
//! Demonstrates the whole engine surface end to end: DDL, inserts,
//! views, aggregate and scalar UDFs, EXPLAIN, ORDER BY/LIMIT — with a
//! demo data set preloaded so statistical queries work immediately.
//!
//! Run with: `cargo run --release --example sql_shell`
//! Try:
//! ```sql
//! SELECT count(*), avg(X1) FROM X;
//! SELECT nlq_list(4, 'triang', X1, X2, X3, X4) FROM X;
//! EXPLAIN SELECT i % 4, nlq_str('diag', pack(X1, X2, X3, X4)) FROM X GROUP BY i % 4;
//! SELECT i, X1 FROM X ORDER BY X1 DESC LIMIT 5;
//! ```

use std::io::{BufRead, Write};

use nlq::datagen::{MixtureGenerator, MixtureSpec};
use nlq::engine::Db;

fn main() {
    let db = Db::new(8);
    let rows = MixtureGenerator::new(MixtureSpec::paper_defaults(4)).generate(10_000);
    db.load_points("X", &rows, false).expect("demo data");
    println!("nlq sql shell — table X(i, X1..X4) preloaded with 10,000 rows.");
    println!("End statements with ';'. Type \\q to quit, \\help for ideas.\n");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("nlq> ");
        } else {
            print!("...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                "\\q" | "\\quit" | "exit" | "quit" => break,
                "\\help" => {
                    println!("examples:");
                    println!("  SELECT count(*), avg(X1), min(X2), max(X2) FROM X;");
                    println!("  SELECT nlq_list(4, 'triang', X1, X2, X3, X4) FROM X;");
                    println!("  SELECT i % 4, count(*) FROM X GROUP BY i % 4 ORDER BY 2 DESC;");
                    println!("  EXPLAIN SELECT sum(X1*X2) FROM X WHERE X3 > 50;");
                    println!("  CREATE VIEW hot AS SELECT * FROM X WHERE X1 > 90;");
                    continue;
                }
                "" => continue,
                _ => {}
            }
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue; // keep accumulating a multi-line statement
        }
        let sql = std::mem::take(&mut buffer);
        let started = std::time::Instant::now();
        match db.execute(sql.trim()) {
            Err(e) => println!("error: {e}"),
            Ok(rs) => {
                print_result(&rs);
                println!(
                    "({} row(s) in {:.1} ms)\n",
                    rs.len(),
                    started.elapsed().as_secs_f64() * 1000.0
                );
            }
        }
    }
    println!("bye.");
}

/// Prints a result set as an aligned table (capped at 40 rows).
fn print_result(rs: &nlq::engine::ResultSet) {
    const MAX_ROWS: usize = 40;
    const MAX_WIDTH: usize = 60;
    if rs.columns.is_empty() {
        println!("ok.");
        return;
    }
    let cell = |v: &nlq::storage::Value| -> String {
        let mut s = v.to_string();
        if s.len() > MAX_WIDTH {
            s.truncate(MAX_WIDTH - 3);
            s.push_str("...");
        }
        s
    };
    let mut widths: Vec<usize> = rs.columns.iter().map(String::len).collect();
    let shown: Vec<Vec<String>> = rs
        .rows
        .iter()
        .take(MAX_ROWS)
        .map(|r| r.iter().map(cell).collect())
        .collect();
    for row in &shown {
        for (w, c) in widths.iter_mut().zip(row) {
            *w = (*w).max(c.len());
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    println!("{}", line(&rs.columns));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 3 * (widths.len() - 1))
    );
    for row in &shown {
        println!("{}", line(row));
    }
    if rs.len() > MAX_ROWS {
        println!("... ({} more rows)", rs.len() - MAX_ROWS);
    }
}
