//! Classification from in-DBMS sufficient statistics — the paper's
//! future-work direction (§6) in action.
//!
//! A Gaussian Naive Bayes churn model needs only per-class `n, L, Q`
//! (diagonal), which is exactly what `GROUP BY label` with the
//! aggregate UDF produces in **one table scan**. No per-row data ever
//! leaves the DBMS — the paper's citation of Graefe et al. ("efficient
//! gathering of sufficient statistics for classification from large
//! SQL databases") completes the same way the four headline models do.
//!
//! Run with: `cargo run --release --example churn_classifier`

use nlq::datagen::rng::StdRng;
use nlq::engine::Db;
use nlq::models::{GaussianNb, MatrixShape};
use nlq::udf::ParamStyle;

/// Customers: [monthly_spend, support_calls, tenure_months] with a
/// churn label. Churners spend less, call support more, and are newer.
fn customers(n: usize, seed: u64) -> Vec<(Vec<f64>, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let churned = rng.random_range(0.0..1.0) < 0.3;
            let x = if churned {
                vec![
                    rng.random_range(5.0..40.0),
                    rng.random_range(3.0..10.0),
                    rng.random_range(1.0..12.0),
                ]
            } else {
                vec![
                    rng.random_range(30.0..120.0),
                    rng.random_range(0.0..4.0),
                    rng.random_range(6.0..60.0),
                ]
            };
            (x, i64::from(churned))
        })
        .collect()
}

fn main() {
    let db = Db::new(8);

    // Train table: X(i, X1..X3, Y) where Y is the churn label.
    let train = customers(20_000, 1);
    let rows: Vec<Vec<f64>> = train
        .iter()
        .map(|(x, label)| {
            let mut r = x.clone();
            r.push(*label as f64);
            r
        })
        .collect();
    db.load_points("train", &rows, true).unwrap();

    // ONE scan: per-class sufficient statistics via GROUP BY + UDF.
    let class_stats = db
        .compute_nlq_grouped(
            "train",
            &["X1", "X2", "X3"],
            "Y",
            MatrixShape::Diagonal,
            ParamStyle::List,
        )
        .unwrap();
    println!("per-class statistics from one GROUP BY scan:");
    for (label, stats) in &class_stats {
        let m = stats.mean().unwrap();
        println!(
            "  class {label}: {} rows, mean spend ${:.2}, {:.1} support calls",
            stats.n(),
            m[0],
            m[1]
        );
    }

    // Build the classifier from the statistics alone.
    let stats_for_nb: Vec<(i64, nlq::models::Nlq)> = class_stats
        .iter()
        .map(|(v, s)| (v.as_f64().unwrap() as i64, s.clone()))
        .collect();
    let nb = GaussianNb::from_class_stats(&stats_for_nb, 1e-9).unwrap();

    // Evaluate on a held-out sample.
    let test = customers(5_000, 2);
    let mut correct = 0;
    let mut confusion = [[0usize; 2]; 2];
    for (x, label) in &test {
        let pred = *nb.predict(x).unwrap();
        if pred == *label {
            correct += 1;
        }
        confusion[*label as usize][pred as usize] += 1;
    }
    println!(
        "\ntest accuracy: {:.1}% on {} held-out customers",
        100.0 * correct as f64 / test.len() as f64,
        test.len()
    );
    println!("confusion matrix (rows = truth, cols = prediction):");
    println!("             stay   churn");
    println!("  stay    {:>7} {:>7}", confusion[0][0], confusion[0][1]);
    println!("  churn   {:>7} {:>7}", confusion[1][0], confusion[1][1]);

    // Posterior probabilities for an individual.
    let risky = vec![12.0, 7.0, 3.0];
    let p = nb.posteriors(&risky).unwrap();
    let churn_idx = nb.classes().iter().position(|c| *c == 1).unwrap();
    println!(
        "\ncustomer with spend $12, 7 calls, 3 months tenure: churn probability {:.1}%",
        p[churn_idx] * 100.0
    );
}
