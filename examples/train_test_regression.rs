//! Train/test regression with in-DBMS scoring — §3.5's "standard
//! train and test approach".
//!
//! Fit a linear regression on a training table (one scan for
//! `n, L, Q'`, then `β = Q⁻¹(XYᵀ)` outside the DBMS), store `BETA`
//! back in the database, score a held-out test table with both the
//! scalar UDF and the generated-SQL expression, and compare their
//! outputs and test-set error metrics.
//!
//! Run with: `cargo run --release --example train_test_regression`

use nlq::datagen::{RegressionGenerator, RegressionSpec};
use nlq::engine::{sqlgen, Db};
use nlq::models::{LinearRegression, MatrixShape};

fn main() {
    let db = Db::new(8);
    let d = 6;

    // Same generating process, disjoint samples.
    let spec = RegressionSpec {
        noise_sigma: 25.0,
        ..RegressionSpec::defaults(d)
    };
    let train = RegressionGenerator::new(spec.clone().with_seed(1)).generate_augmented(20_000);
    let test = RegressionGenerator::new(spec.clone().with_seed(2)).generate_augmented(5_000);
    db.load_points("train", &train, true).unwrap();
    db.load_points("test", &test, true).unwrap();

    // --- Fit on the training table (one scan) ---------------------------
    let mut names = sqlgen::x_cols(d);
    names.push("Y".into());
    let cols: Vec<&str> = names.iter().map(String::as_str).collect();
    let nlq = db
        .compute_nlq("train", &cols, MatrixShape::Triangular)
        .unwrap();
    let model = LinearRegression::fit(&nlq).unwrap();

    println!(
        "true model:   y = {} + {:?} . x",
        spec.intercept, spec.coefficients
    );
    println!(
        "fitted model: y = {:.2} + {:?} . x",
        model.intercept(),
        model
            .coefficients()
            .as_slice()
            .iter()
            .map(|b| (b * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!("train R^2 = {:.4}", model.r_squared());
    if let Some(se) = model.std_errors() {
        println!(
            "std errors: {:?}",
            se.iter()
                .map(|s| (s * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
    }

    // --- Score the test table with the scalar UDF -----------------------
    db.register_beta("BETA", model.intercept(), model.coefficients())
        .unwrap();
    let x_names = sqlgen::x_cols(d);
    let udf_scores = db
        .execute(&sqlgen::score_regression_udf("test", &x_names, "BETA"))
        .unwrap();

    // --- And with the generated pure-SQL expression ----------------------
    let sql_scores = db
        .execute(&sqlgen::score_regression_sql(
            "test",
            &x_names,
            model.intercept(),
            model.coefficients(),
        ))
        .unwrap();

    // Both paths must agree exactly.
    let collect = |rs: &nlq::engine::ResultSet| {
        let mut v: Vec<(i64, f64)> = rs
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_f64().unwrap()))
            .collect();
        v.sort_by_key(|&(i, _)| i);
        v
    };
    let udf_sorted = collect(&udf_scores);
    let sql_sorted = collect(&sql_scores);
    let max_gap = udf_sorted
        .iter()
        .zip(&sql_sorted)
        .map(|((_, a), (_, b))| (a - b).abs())
        .fold(0.0_f64, f64::max);
    println!(
        "\nUDF vs SQL scoring: {} rows, max |difference| = {max_gap:.2e}",
        udf_sorted.len()
    );

    // --- Test-set error metrics ------------------------------------------
    let mut sse = 0.0;
    let mut sst = 0.0;
    let y_mean: f64 = test.iter().map(|r| r[d]).sum::<f64>() / test.len() as f64;
    for (i, yhat) in &udf_sorted {
        let y = test[(*i - 1) as usize][d];
        sse += (y - yhat) * (y - yhat);
        sst += (y - y_mean) * (y - y_mean);
    }
    let mse = sse / test.len() as f64;
    println!(
        "test MSE  = {mse:.1} (noise variance was {:.1})",
        spec.noise_sigma.powi(2)
    );
    println!("test R^2  = {:.4}", 1.0 - sse / sst);
}
