//! Data profiling and quality screening from one table scan.
//!
//! The aggregate UDF returns more than `n, L, Q`: it also tracks
//! per-dimension min/max (§3.4), which the paper notes "can be used to
//! detect outliers or build histograms". This example is that
//! workflow, end to end:
//!
//! 1. one scan → summary statistics (including min/max);
//! 2. a profile report (mean, σ, range, strongest correlations,
//!    significance tests);
//! 3. outlier screening of a fresh batch — and incremental model
//!    maintenance when a batch is deleted (statistics are subtracted,
//!    never rescanned).
//!
//! Run with: `cargo run --release --example data_profiling`

use nlq::datagen::{MixtureGenerator, MixtureSpec};
use nlq::engine::Db;
use nlq::models::inference::correlation_t_test;
use nlq::models::{CorrelationModel, Histogram, MatrixShape, Nlq, OutlierDetector};

fn main() {
    let db = Db::new(8);
    let d = 4;
    let spec = MixtureSpec {
        k: 3,
        sigma: 5.0,
        noise_fraction: 0.02,
        ..MixtureSpec::paper_defaults(d)
    };
    let mut generator = MixtureGenerator::new(spec);
    let rows = generator.generate(30_000);
    db.load_points("X", &rows, false).unwrap();

    // --- One scan: everything the profile needs ------------------------
    let cols = ["X1", "X2", "X3", "X4"];
    let nlq = db.compute_nlq("X", &cols, MatrixShape::Triangular).unwrap();

    println!("profile of X ({} rows, {} dimensions):", nlq.n(), nlq.d());
    let mean = nlq.mean().unwrap();
    let vars = nlq.variances().unwrap();
    println!("  dim     mean      sd        min       max");
    for a in 0..d {
        println!(
            "  X{}  {:8.2} {:8.2}  {:8.2}  {:8.2}",
            a + 1,
            mean[a],
            vars[a].sqrt(),
            nlq.min()[a],
            nlq.max()[a]
        );
    }

    // --- Correlation screen with significance --------------------------
    let corr = CorrelationModel::fit(&nlq).unwrap();
    println!("\nstrongest correlations (|r| >= 0.2), with p-values:");
    for (a, b, r) in corr.strong_pairs(0.2) {
        let (t, p) = correlation_t_test(r, nlq.n()).unwrap();
        println!(
            "  X{}-X{}: r = {r:+.3}  (t = {t:+.1}, p = {p:.2e})",
            a + 1,
            b + 1
        );
    }

    // --- Histogram of the first dimension (min/max from the scan) ------
    let mut hist = Histogram::new(nlq.min()[0], nlq.max()[0], 10).unwrap();
    for r in &rows {
        hist.add(r[0]);
    }
    println!(
        "\nhistogram of X1 ({} buckets over the observed range):",
        hist.buckets()
    );
    let peak = *hist.counts().iter().max().unwrap() as f64;
    for b in 0..hist.buckets() {
        let (lo, hi) = hist.bucket_range(b);
        let bar = "#".repeat((hist.counts()[b] as f64 / peak * 40.0) as usize);
        println!("  [{lo:7.1}, {hi:7.1})  {bar}");
    }

    // --- Outlier screening of a new batch -------------------------------
    let detector = OutlierDetector::from_stats(&nlq, 4.0).unwrap();
    // Fresh points from the same process (the generator continues).
    let mut batch: Vec<Vec<f64>> = generator.generate(500);
    batch.push(vec![1e4, 0.0, 0.0, 0.0]); // corrupt record
    let flagged = detector.flag(batch.iter().map(Vec::as_slice));
    println!(
        "\nscreened a batch of {}: {} outlier(s) flagged",
        batch.len(),
        flagged.len()
    );
    for i in &flagged {
        println!(
            "  row {i}: {:?}",
            detector.explain(&batch[*i]).first().unwrap()
        );
    }

    // --- Incremental maintenance: delete a batch without rescanning ----
    let deleted = Nlq::from_rows(d, MatrixShape::Triangular, &rows[..10_000]);
    let mut maintained = nlq.clone();
    maintained.subtract(&deleted);
    let rebuilt = Nlq::from_rows(d, MatrixShape::Triangular, &rows[10_000..]);
    let drift = (maintained.mean().unwrap()[0] - rebuilt.mean().unwrap()[0]).abs();
    println!(
        "\ndeleted the first 10k rows by subtracting their statistics: \
         remaining n = {}, mean drift vs full rebuild = {drift:.2e}",
        maintained.n()
    );
}
