//! Dimensionality reduction of correlated sensor readings with PCA
//! and maximum-likelihood factor analysis.
//!
//! A plant has 12 sensors but only 2 underlying physical processes
//! (temperature drift and load), so readings are highly redundant.
//! The paper's pipeline compresses them inside the DBMS:
//!
//! 1. one scan computes `n, L, Q`;
//! 2. PCA / factor analysis run on the derived correlation matrix
//!    outside the DBMS (`O(d³)`, independent of n);
//! 3. the reduction matrix `Λ` is stored back as table
//!    `LAMBDA(j, X1..Xd)` and every reading is reduced to k = 2
//!    coordinates in a single scan of `fascore` calls.
//!
//! Run with: `cargo run --release --example sensor_pca`

use nlq::datagen::rng::StdRng;
use nlq::engine::{sqlgen, Db};
use nlq::models::{FactorAnalysis, FactorAnalysisConfig, MatrixShape, Pca, PcaInput};

/// Two latent processes drive 12 sensors with fixed mixing weights
/// plus small independent noise.
fn sensor_readings(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = 12;
    // Mixing matrix: sensors 0-5 mostly follow process 1, 6-11
    // mostly process 2, with bleed-through.
    let mix: Vec<(f64, f64)> = (0..d)
        .map(|s| {
            if s < 6 {
                (1.0 + 0.1 * s as f64, 0.2)
            } else {
                (0.15, 0.8 + 0.07 * s as f64)
            }
        })
        .collect();
    (0..n)
        .map(|_| {
            let temp = rng.random_range(-3.0..3.0);
            let load = rng.random_range(-2.0..2.0);
            mix.iter()
                .map(|(a, b)| 20.0 + a * temp + b * load + rng.random_range(-0.1..0.1))
                .collect()
        })
        .collect()
}

fn main() {
    let db = Db::new(8);
    let d = 12;
    let rows = sensor_readings(20_000, 42);
    db.load_points("X", &rows, false).unwrap();
    let names = sqlgen::x_cols(d);
    let cols: Vec<&str> = names.iter().map(String::as_str).collect();

    // --- One scan for the summary matrices ------------------------------
    let nlq = db.compute_nlq("X", &cols, MatrixShape::Triangular).unwrap();
    println!("{} readings from {} sensors", nlq.n(), nlq.d());

    // --- PCA on the correlation matrix ----------------------------------
    let pca = Pca::fit(&nlq, 2, PcaInput::Correlation).unwrap();
    let explained: f64 = pca.explained_variance_ratio().iter().sum();
    println!(
        "PCA: 2 of 12 components capture {:.1}% of the variance",
        explained * 100.0
    );
    assert!(explained > 0.95, "two latent processes should dominate");

    // --- ML factor analysis agrees on the structure ---------------------
    let fa = FactorAnalysis::fit(&nlq, &FactorAnalysisConfig::new(2)).unwrap();
    println!(
        "factor analysis: converged after {} EM iterations (log-likelihood {:.0})",
        fa.iterations(),
        fa.log_likelihood()
    );
    let max_uniqueness = fa.psi().iter().cloned().fold(0.0_f64, f64::max);
    println!("largest uniqueness (unexplained sensor variance): {max_uniqueness:.4}");

    // --- Store Λ and μ, score the whole table in one scan ---------------
    db.register_lambda("LAMBDA", pca.lambda()).unwrap();
    db.register_mu("MU", pca.mu()).unwrap();
    let reduced = db
        .execute(&sqlgen::score_pca_udf("X", &names, 2, "LAMBDA", "MU"))
        .unwrap();
    println!(
        "\nreduced {} rows from d=12 to k=2 inside the DBMS",
        reduced.len()
    );

    // Verify the in-DBMS scores against the library's own scoring.
    for r in reduced.rows.iter().take(3) {
        let i = r[0].as_i64().unwrap() as usize;
        let expect = pca.score(&rows[i - 1]);
        let got = [r[1].as_f64().unwrap(), r[2].as_f64().unwrap()];
        println!(
            "  reading {i}: x' = ({:+.3}, {:+.3})  [library: ({:+.3}, {:+.3})]",
            got[0], got[1], expect[0], expect[1]
        );
        assert!((got[0] - expect[0]).abs() < 1e-9);
        assert!((got[1] - expect[1]).abs() < 1e-9);
    }

    // Reconstruction check: the rank-2 model explains the readings.
    let sample = &rows[0];
    let err = pca.reconstruction_error(sample);
    let norm: f64 = sample.iter().map(|v| v * v).sum();
    println!(
        "\nrank-2 reconstruction error on a sample reading: {:.2e} (relative {:.2e})",
        err,
        err / norm
    );
}
