//! Customer segmentation — the paper's motivating database scenario.
//!
//! §3.6 describes how the analysis data set `X` is really *derived*:
//! properties come from joined tables, binary flags from `CASE`
//! expressions over categorical columns, and metrics from
//! aggregations ("number of items purchased, total money spent").
//! This example walks that whole path:
//!
//! 1. Raw `customers` and `orders` tables.
//! 2. A derived view building `X` with CASE flags and aggregates.
//! 3. Per-state sub-models via `GROUP BY` with the aggregate UDF
//!    (the paper's Table 5 pattern).
//! 4. K-means segmentation and in-DBMS scoring of every customer.
//!
//! Run with: `cargo run --release --example customer_segmentation`

use nlq::datagen::rng::StdRng;
use nlq::engine::{sqlgen, Db};
use nlq::models::{KMeans, KMeansConfig, MatrixShape};
use nlq::udf::ParamStyle;

fn main() {
    let db = Db::new(8);
    let mut rng = StdRng::seed_from_u64(2007);

    // --- Raw operational tables ----------------------------------------
    db.execute("CREATE TABLE customers (cid INT, state VARCHAR, age FLOAT, active INT)")
        .unwrap();
    db.execute("CREATE TABLE orders (cid INT, amount FLOAT, items INT)")
        .unwrap();

    let n_customers = 2_000;
    let states = ["TX", "CA", "NY"];
    let mut customer_rows = Vec::new();
    let mut order_rows = Vec::new();
    for cid in 1..=n_customers {
        let state = states[rng.random_range(0..states.len())];
        let age = rng.random_range(18.0..80.0);
        let active = i64::from(rng.random_range(0.0..1.0) < 0.8);
        customer_rows.push(format!("({cid}, '{state}', {age:.1}, {active})"));
        // Two behavioural segments: big spenders and occasional buyers.
        let orders = if cid % 3 == 0 { 8 } else { 2 };
        for _ in 0..orders {
            let amount = if cid % 3 == 0 {
                rng.random_range(80.0..300.0)
            } else {
                rng.random_range(5.0..40.0)
            };
            let items = rng.random_range(1..6);
            order_rows.push(format!("({cid}, {amount:.2}, {items})"));
        }
    }
    for chunk in customer_rows.chunks(500) {
        db.execute(&format!(
            "INSERT INTO customers VALUES {}",
            chunk.join(", ")
        ))
        .unwrap();
    }
    for chunk in order_rows.chunks(500) {
        db.execute(&format!("INSERT INTO orders VALUES {}", chunk.join(", ")))
            .unwrap();
    }

    // --- Derive the analysis data set X(i, X1..X4) ----------------------
    // X1 = total spend, X2 = items purchased (aggregations),
    // X3 = age (property), X4 = is-Texan (CASE binary flag).
    db.execute(
        "CREATE VIEW order_stats AS \
         SELECT cid AS i, sum(amount) AS X1, sum(items) * 1.0 AS X2 \
         FROM orders GROUP BY cid",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE X AS \
         SELECT c.cid AS i, o.X1, o.X2, c.age AS X3, \
                CASE WHEN c.state = 'TX' THEN 1.0 ELSE 0.0 END AS X4 \
         FROM order_stats o CROSS JOIN customers c \
         WHERE o.i = c.cid AND c.active = 1",
    )
    .unwrap();

    let cols = ["X1", "X2", "X3", "X4"];

    // --- Global statistics in one scan ----------------------------------
    let nlq = db.compute_nlq("X", &cols, MatrixShape::Triangular).unwrap();
    let mean = nlq.mean().unwrap();
    println!("{} active customers", nlq.n());
    println!(
        "average spend = ${:.2}, average items = {:.1}, texan share = {:.0}%",
        mean[0],
        mean[1],
        mean[3] * 100.0
    );

    // --- Per-state sub-models with GROUP BY + aggregate UDF -------------
    let by_flag = db
        .compute_nlq_grouped("X", &cols, "X4", MatrixShape::Diagonal, ParamStyle::List)
        .unwrap();
    println!("\nper-segment statistics (GROUP BY on the is-Texan flag):");
    for (flag, stats) in &by_flag {
        let m = stats.mean().unwrap();
        println!(
            "  X4 = {flag}: {} customers, mean spend ${:.2}",
            stats.n(),
            m[0]
        );
    }

    // --- Segment customers with K-means, then score in-DBMS -------------
    let table = db.table("X").unwrap();
    let points: Vec<Vec<f64>> = table
        .collect_rows()
        .unwrap()
        .iter()
        .map(|r| (1..=4).map(|c| r[c].as_f64().unwrap()).collect())
        .collect();
    let km = KMeans::fit(&points, &KMeansConfig::new(2)).unwrap();
    db.register_centroids("C", km.centroids()).unwrap();

    let x_cols = sqlgen::x_cols(4);
    let scored = db
        .execute(&sqlgen::score_cluster_udf("X", &x_cols, 2, "C"))
        .unwrap();
    let mut sizes = [0usize; 2];
    for row in &scored.rows {
        sizes[(row[1].as_i64().unwrap() - 1) as usize] += 1;
    }
    println!("\nk-means segments (scored in one scan with distance + clusterscore UDFs):");
    for (j, c) in km.centroids().iter().enumerate() {
        println!(
            "  segment {}: {} customers, centroid spend ${:.2}, {:.1} items",
            j + 1,
            sizes[j],
            c[0],
            c[1]
        );
    }

    // The generated SQL that did the scoring, for the curious:
    println!(
        "\nscoring SQL:\n{}",
        sqlgen::score_cluster_udf("X", &x_cols, 2, "C")
    );
}
