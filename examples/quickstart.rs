//! Quickstart: the paper's whole workflow in one page.
//!
//! 1. Load a data set into the in-memory parallel DBMS.
//! 2. Compute the summary matrices `n, L, Q` in ONE table scan with
//!    the aggregate UDF.
//! 3. Build four statistical models from those matrices alone —
//!    correlation, linear regression, PCA, clustering — without ever
//!    rescanning the data.
//! 4. Score the data set back inside the DBMS with scalar UDFs.
//!
//! Run with: `cargo run --release --example quickstart`

use nlq::datagen::{RegressionGenerator, RegressionSpec};
use nlq::engine::{sqlgen, Db};
use nlq::models::{
    CorrelationModel, KMeans, KMeansConfig, LinearRegression, MatrixShape, Pca, PcaInput,
};

fn main() {
    // A parallel database with 8 worker threads (the paper's server
    // ran 20).
    let db = Db::new(8);

    // Synthetic data with a known linear model:
    // y = 5 + 1*x1 + 2*x2 + 3*x3 (+ noise).
    let d = 3;
    let rows = RegressionGenerator::new(RegressionSpec::defaults(d)).generate_augmented(10_000);
    db.load_points("X", &rows, true)
        .expect("load X(i, X1..X3, Y)");

    // --- One scan: n, L, Q via the aggregate UDF ------------------------
    let cols = ["X1", "X2", "X3", "Y"];
    let nlq = db
        .compute_nlq("X", &cols, MatrixShape::Triangular)
        .expect("single-scan summary matrices");
    println!("one table scan -> n = {}, d = {}", nlq.n(), nlq.d());
    println!("L = {}", nlq.l());

    // --- Models from the summary matrices only --------------------------
    let corr = CorrelationModel::fit(&nlq).expect("correlation");
    println!("\ncorrelation(X3, Y) = {:.4}", corr.coefficient(2, 3));

    let reg = LinearRegression::fit(&nlq).expect("regression");
    println!(
        "regression: y = {:.3} + {:.3}*x1 + {:.3}*x2 + {:.3}*x3   (R^2 = {:.4})",
        reg.intercept(),
        reg.coefficients()[0],
        reg.coefficients()[1],
        reg.coefficients()[2],
        reg.r_squared()
    );

    let pca = Pca::fit(&nlq, 2, PcaInput::Correlation).expect("pca");
    println!(
        "PCA: 2 components explain {:.1}% of the variance",
        pca.explained_variance_ratio().iter().sum::<f64>() * 100.0
    );

    // Clustering still reads the points (K-means needs assignments),
    // but each iteration uses the same diagonal n, L, Q machinery.
    let points: Vec<Vec<f64>> = rows.iter().map(|r| r[..d].to_vec()).collect();
    let km = KMeans::fit(&points, &KMeansConfig::new(4)).expect("kmeans");
    println!(
        "k-means: {} clusters, within-cluster SSE = {:.1}",
        km.k(),
        km.sse()
    );

    // --- Scoring back inside the DBMS, one scan, via scalar UDFs --------
    db.register_beta("BETA", reg.intercept(), reg.coefficients())
        .expect("store model");
    let x_cols = sqlgen::x_cols(d);
    let scored = db
        .execute(&sqlgen::score_regression_udf("X", &x_cols, "BETA"))
        .expect("score with linearregscore UDF");
    let (i, yhat) = (
        scored.value(0, 0).as_i64().unwrap(),
        scored.f64(0, 1).unwrap(),
    );
    println!(
        "\nscored {} rows in one scan; e.g. point {i}: y_hat = {yhat:.2}",
        scored.len()
    );
}
