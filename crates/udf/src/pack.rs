//! String packing for UDF parameters and results.
//!
//! Teradata UDFs can neither take arrays as parameters nor return
//! them (§2.2), so the paper works around both directions with long
//! strings:
//!
//! * **Input**: the string parameter-passing style packs a point
//!   `x_i` into one comma-separated string per row ([`pack_vector`]);
//!   the UDF unpacks it ([`unpack_vector`]) at `O(d)` cost plus the
//!   float↔text conversion overhead the paper measures in Figure 3.
//! * **Output**: the aggregate UDF "packs n, L, Q as a string and
//!   returns it" ([`pack_nlq`] / [`unpack_nlq`], and the blocked
//!   variants for Table 6's high-d computation).

use nlq_linalg::{Matrix, Vector};
use nlq_models::{MatrixShape, Nlq};

use crate::{Result, UdfError};

/// Packs a vector as a comma-separated string — the per-row cost of
/// the string parameter style (floats are formatted to text).
pub fn pack_vector(xs: &[f64]) -> String {
    let mut s = String::with_capacity(xs.len() * 8);
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        // Shortest round-trippable representation.
        s.push_str(&format!("{x}"));
    }
    s
}

/// Unpacks a comma-separated vector — the in-UDF cost of the string
/// parameter style (text is parsed back to floats).
pub fn unpack_vector(s: &str) -> Result<Vec<f64>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|tok| {
            tok.parse::<f64>()
                .map_err(|_| UdfError::MalformedPackedValue(format!("bad float {tok:?}")))
        })
        .collect()
}

/// Number of stored `Q` entries for a shape at dimensionality `d`
/// (diagonal: `d`; triangular: `d(d+1)/2` lower entries; full: `d²`).
fn q_len(shape: MatrixShape, d: usize) -> usize {
    shape.ops_per_point(d)
}

/// Serializes the stored `Q` entries in a canonical order.
fn pack_q(shape: MatrixShape, q: &Matrix) -> String {
    let d = q.rows();
    let mut vals = Vec::with_capacity(q_len(shape, d));
    match shape {
        MatrixShape::Diagonal => {
            for a in 0..d {
                vals.push(q[(a, a)]);
            }
        }
        MatrixShape::Triangular => {
            for a in 0..d {
                for b in 0..=a {
                    vals.push(q[(a, b)]);
                }
            }
        }
        MatrixShape::Full => {
            for a in 0..d {
                for b in 0..d {
                    vals.push(q[(a, b)]);
                }
            }
        }
    }
    pack_vector(&vals)
}

fn unpack_q(shape: MatrixShape, d: usize, s: &str) -> Result<Matrix> {
    let vals = unpack_vector(s)?;
    if vals.len() != q_len(shape, d) {
        return Err(UdfError::MalformedPackedValue(format!(
            "Q has {} entries, expected {} for shape {} at d={d}",
            vals.len(),
            q_len(shape, d),
            shape.name()
        )));
    }
    let mut q = Matrix::zeros(d, d);
    let mut it = vals.into_iter();
    match shape {
        MatrixShape::Diagonal => {
            for a in 0..d {
                q[(a, a)] = it.next().expect("length checked");
            }
        }
        MatrixShape::Triangular => {
            for a in 0..d {
                for b in 0..=a {
                    q[(a, b)] = it.next().expect("length checked");
                }
            }
        }
        MatrixShape::Full => {
            for a in 0..d {
                for b in 0..d {
                    q[(a, b)] = it.next().expect("length checked");
                }
            }
        }
    }
    Ok(q)
}

/// Packs full `n, L, Q` statistics (plus min/max) into the single
/// string the aggregate UDF returns.
pub fn pack_nlq(nlq: &Nlq) -> String {
    format!(
        "NLQ;d={};shape={};n={};L={};Q={};MIN={};MAX={}",
        nlq.d(),
        nlq.shape().name(),
        nlq.n(),
        pack_vector(nlq.l().as_slice()),
        pack_q(nlq.shape(), nlq.q_raw()),
        pack_vector(nlq.min()),
        pack_vector(nlq.max()),
    )
}

/// Parses a string produced by [`pack_nlq`].
pub fn unpack_nlq(s: &str) -> Result<Nlq> {
    let mut d: Option<usize> = None;
    let mut shape: Option<MatrixShape> = None;
    let mut n: Option<f64> = None;
    let mut l: Option<Vec<f64>> = None;
    let mut q_str: Option<&str> = None;
    let mut min: Option<Vec<f64>> = None;
    let mut max: Option<Vec<f64>> = None;

    let mut parts = s.split(';');
    if parts.next() != Some("NLQ") {
        return Err(UdfError::MalformedPackedValue("missing NLQ header".into()));
    }
    for part in parts {
        let (key, val) = part
            .split_once('=')
            .ok_or_else(|| UdfError::MalformedPackedValue(format!("bad field {part:?}")))?;
        match key {
            "d" => {
                d = Some(
                    val.parse()
                        .map_err(|_| UdfError::MalformedPackedValue(format!("bad d {val:?}")))?,
                )
            }
            "shape" => {
                shape =
                    Some(MatrixShape::parse(val).ok_or_else(|| {
                        UdfError::MalformedPackedValue(format!("bad shape {val:?}"))
                    })?)
            }
            "n" => {
                n = Some(
                    val.parse()
                        .map_err(|_| UdfError::MalformedPackedValue(format!("bad n {val:?}")))?,
                )
            }
            "L" => l = Some(unpack_vector(val)?),
            "Q" => q_str = Some(val),
            "MIN" => min = Some(unpack_vector(val)?),
            "MAX" => max = Some(unpack_vector(val)?),
            other => {
                return Err(UdfError::MalformedPackedValue(format!(
                    "unknown field {other:?}"
                )))
            }
        }
    }

    let d = d.ok_or_else(|| UdfError::MalformedPackedValue("missing d".into()))?;
    let shape = shape.ok_or_else(|| UdfError::MalformedPackedValue("missing shape".into()))?;
    let n = n.ok_or_else(|| UdfError::MalformedPackedValue("missing n".into()))?;
    let l = l.ok_or_else(|| UdfError::MalformedPackedValue("missing L".into()))?;
    let q = unpack_q(
        shape,
        d,
        q_str.ok_or_else(|| UdfError::MalformedPackedValue("missing Q".into()))?,
    )?;
    let min = min.ok_or_else(|| UdfError::MalformedPackedValue("missing MIN".into()))?;
    let max = max.ok_or_else(|| UdfError::MalformedPackedValue("missing MAX".into()))?;
    if l.len() != d || min.len() != d || max.len() != d {
        return Err(UdfError::MalformedPackedValue(format!(
            "vector lengths disagree with d={d}"
        )));
    }

    Nlq::from_parts(shape, n, Vector::from_vec(l), q, min, max)
        .map_err(|e| UdfError::MalformedPackedValue(e.to_string()))
}

/// A partial result of the blocked high-d computation (Table 6): one
/// UDF call's `Q` block for subscript ranges `a0..a1` × `b0..b1`, plus
/// the `L` segment for `a0..a1` when the block sits on the diagonal.
#[derive(Debug, Clone, PartialEq)]
pub struct NlqBlock {
    /// Full dimensionality of the data set.
    pub d: usize,
    /// Start of the row-subscript range (half open).
    pub a0: usize,
    /// End of the row-subscript range (half open).
    pub a1: usize,
    /// Start of the column-subscript range (half open).
    pub b0: usize,
    /// End of the column-subscript range (half open).
    pub b1: usize,
    /// Row count.
    pub n: f64,
    /// `L[a0..a1]`, populated only for diagonal blocks (`a0 == b0`).
    pub l: Vec<f64>,
    /// The `(a1-a0) × (b1-b0)` block of `Q`, row major.
    pub q: Vec<f64>,
}

/// Packs one blocked partial result.
pub fn pack_block(block: &NlqBlock) -> String {
    format!(
        "NLQBLOCK;d={};a0={};a1={};b0={};b1={};n={};L={};Q={}",
        block.d,
        block.a0,
        block.a1,
        block.b0,
        block.b1,
        block.n,
        pack_vector(&block.l),
        pack_vector(&block.q),
    )
}

/// Parses a string produced by [`pack_block`].
pub fn unpack_block(s: &str) -> Result<NlqBlock> {
    let mut parts = s.split(';');
    if parts.next() != Some("NLQBLOCK") {
        return Err(UdfError::MalformedPackedValue(
            "missing NLQBLOCK header".into(),
        ));
    }
    let mut fields = std::collections::HashMap::new();
    for part in parts {
        let (key, val) = part
            .split_once('=')
            .ok_or_else(|| UdfError::MalformedPackedValue(format!("bad field {part:?}")))?;
        fields.insert(key, val);
    }
    let get_usize = |k: &str| -> Result<usize> {
        fields
            .get(k)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| UdfError::MalformedPackedValue(format!("missing/bad {k}")))
    };
    let block = NlqBlock {
        d: get_usize("d")?,
        a0: get_usize("a0")?,
        a1: get_usize("a1")?,
        b0: get_usize("b0")?,
        b1: get_usize("b1")?,
        n: fields
            .get("n")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| UdfError::MalformedPackedValue("missing/bad n".into()))?,
        l: unpack_vector(
            fields
                .get("L")
                .ok_or_else(|| UdfError::MalformedPackedValue("missing L".into()))?,
        )?,
        q: unpack_vector(
            fields
                .get("Q")
                .ok_or_else(|| UdfError::MalformedPackedValue("missing Q".into()))?,
        )?,
    };
    let expect_q = (block.a1 - block.a0) * (block.b1 - block.b0);
    if block.q.len() != expect_q {
        return Err(UdfError::MalformedPackedValue(format!(
            "Q block has {} entries, expected {expect_q}",
            block.q.len()
        )));
    }
    Ok(block)
}

/// Assembles blocked partial results into a complete full-shape
/// [`Nlq`] (the client-side step of Table 6's divide-and-conquer:
/// "matrices can be partitioned by row/column ranges").
///
/// Blocks must jointly cover `L[0..d]` (via diagonal blocks) and every
/// `Q` entry exactly once; min/max are not tracked by the blocked path
/// and are set to infinities.
pub fn assemble_blocks(d: usize, blocks: &[NlqBlock]) -> Result<Nlq> {
    if blocks.is_empty() {
        return Err(UdfError::MalformedPackedValue(
            "no blocks to assemble".into(),
        ));
    }
    let n = blocks[0].n;
    let mut l = vec![f64::NAN; d];
    let mut q = Matrix::zeros(d, d);
    let mut covered = vec![false; d * d];
    for b in blocks {
        if b.d != d {
            return Err(UdfError::MergeMismatch {
                udf: "nlq_block".into(),
                message: format!("block d={} != {d}", b.d),
            });
        }
        if (b.n - n).abs() > 1e-9 * (1.0 + n.abs()) {
            return Err(UdfError::MergeMismatch {
                udf: "nlq_block".into(),
                message: format!("block n={} != {n}", b.n),
            });
        }
        if b.a1 > d || b.b1 > d || b.a0 >= b.a1 || b.b0 >= b.b1 {
            return Err(UdfError::MalformedPackedValue(format!(
                "invalid block ranges {}..{} x {}..{}",
                b.a0, b.a1, b.b0, b.b1
            )));
        }
        if !b.l.is_empty() {
            if b.l.len() != b.a1 - b.a0 {
                return Err(UdfError::MalformedPackedValue(
                    "L segment length mismatch".into(),
                ));
            }
            l[b.a0..b.a1].copy_from_slice(&b.l);
        }
        let width = b.b1 - b.b0;
        for (i, a) in (b.a0..b.a1).enumerate() {
            for (j, c) in (b.b0..b.b1).enumerate() {
                if covered[a * d + c] {
                    return Err(UdfError::MergeMismatch {
                        udf: "nlq_block".into(),
                        message: format!("Q[{a}][{c}] covered twice"),
                    });
                }
                covered[a * d + c] = true;
                q[(a, c)] = b.q[i * width + j];
            }
        }
    }
    if l.iter().any(|v| v.is_nan()) {
        return Err(UdfError::MalformedPackedValue(
            "L not fully covered by diagonal blocks".into(),
        ));
    }
    if covered.iter().any(|&c| !c) {
        return Err(UdfError::MalformedPackedValue(
            "Q not fully covered by blocks".into(),
        ));
    }
    Nlq::from_parts(
        MatrixShape::Full,
        n,
        Vector::from_vec(l),
        q,
        vec![f64::NEG_INFINITY; d],
        vec![f64::INFINITY; d],
    )
    .map_err(|e| UdfError::MalformedPackedValue(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_roundtrip() {
        let xs = vec![1.5, -2.25, 0.0, 1e300, 1e-300, f64::MAX];
        assert_eq!(unpack_vector(&pack_vector(&xs)).unwrap(), xs);
        assert_eq!(unpack_vector("").unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn vector_rejects_garbage() {
        assert!(unpack_vector("1.0,abc").is_err());
        assert!(unpack_vector(",").is_err());
    }

    fn sample_nlq(shape: MatrixShape) -> Nlq {
        let rows = vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.5],
        ];
        Nlq::from_rows(3, shape, &rows)
    }

    #[test]
    fn nlq_roundtrip_all_shapes() {
        for shape in [
            MatrixShape::Diagonal,
            MatrixShape::Triangular,
            MatrixShape::Full,
        ] {
            let nlq = sample_nlq(shape);
            let packed = pack_nlq(&nlq);
            let back = unpack_nlq(&packed).unwrap();
            assert_eq!(back, nlq, "shape {}", shape.name());
        }
    }

    #[test]
    fn nlq_unpack_rejects_malformed() {
        assert!(unpack_nlq("garbage").is_err());
        assert!(unpack_nlq("NLQ;d=2").is_err()); // missing fields
        let good = pack_nlq(&sample_nlq(MatrixShape::Triangular));
        let bad = good.replace("d=3", "d=4"); // wrong lengths
        assert!(unpack_nlq(&bad).is_err());
    }

    #[test]
    fn block_roundtrip() {
        let block = NlqBlock {
            d: 8,
            a0: 0,
            a1: 4,
            b0: 4,
            b1: 8,
            n: 100.0,
            l: vec![],
            q: (0..16).map(|i| i as f64).collect(),
        };
        assert_eq!(unpack_block(&pack_block(&block)).unwrap(), block);
    }

    #[test]
    fn assemble_2x2_blocking_matches_direct() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| (0..4).map(|a| (i * 4 + a) as f64 * 0.5).collect())
            .collect();
        let direct = Nlq::from_rows(4, MatrixShape::Full, &rows);

        // Build four 2x2 blocks by hand.
        let mut blocks = Vec::new();
        for (a0, a1) in [(0, 2), (2, 4)] {
            for (b0, b1) in [(0, 2), (2, 4)] {
                let mut q = vec![0.0; (a1 - a0) * (b1 - b0)];
                let mut l = if a0 == b0 { vec![0.0; a1 - a0] } else { vec![] };
                for r in &rows {
                    for (i, a) in (a0..a1).enumerate() {
                        if a0 == b0 {
                            // Only accumulate L once per diagonal block row.
                        }
                        for (j, b) in (b0..b1).enumerate() {
                            q[i * (b1 - b0) + j] += r[a] * r[b];
                        }
                    }
                    if a0 == b0 {
                        for (i, a) in (a0..a1).enumerate() {
                            l[i] += r[a];
                        }
                    }
                }
                blocks.push(NlqBlock {
                    d: 4,
                    a0,
                    a1,
                    b0,
                    b1,
                    n: 20.0,
                    l,
                    q,
                });
            }
        }
        let assembled = assemble_blocks(4, &blocks).unwrap();
        assert_eq!(assembled.n(), direct.n());
        assert_eq!(assembled.l(), direct.l());
        for a in 0..4 {
            for b in 0..4 {
                assert!(
                    (assembled.q_raw()[(a, b)] - direct.q_raw()[(a, b)]).abs() < 1e-9,
                    "Q[{a}][{b}]"
                );
            }
        }
    }

    #[test]
    fn assemble_detects_gaps_and_overlaps() {
        let block = NlqBlock {
            d: 4,
            a0: 0,
            a1: 2,
            b0: 0,
            b1: 2,
            n: 5.0,
            l: vec![1.0, 2.0],
            q: vec![0.0; 4],
        };
        // Gap: only one block of four.
        assert!(assemble_blocks(4, std::slice::from_ref(&block)).is_err());
        // Overlap: the same block twice.
        assert!(assemble_blocks(4, &[block.clone(), block]).is_err());
    }
}
