#![warn(missing_docs)]

//! Teradata-style User-Defined Function framework and the paper's UDFs.
//!
//! §2.2 of the paper describes the UDF API this crate mirrors,
//! including its deliberately awkward constraints — all of which are
//! enforced here because they shape the paper's design decisions:
//!
//! * **Two function classes**: scalar UDFs (one value per input row,
//!   no state across rows — [`ScalarUdf`]) and aggregate UDFs (heap
//!   state per group, merged across parallel workers —
//!   [`AggregateUdf`]).
//! * **Simple parameter types only**: numbers and strings, never
//!   arrays. Vectors are passed either as `d` individual parameters
//!   ("list" style) or packed into one string ("string" style, which
//!   pays float↔text conversion per row).
//! * **One value returned**, of a simple type: the aggregate `nlq` UDF
//!   packs `n, L, Q` into a single long string ([`pack`]).
//! * **Bounded heap**: aggregate state must fit in one 64 KB segment
//!   ([`UDF_HEAP_LIMIT`]); dimensionality is bounded by [`MAX_D`]
//!   because the C struct's arrays are statically sized. Higher `d` is
//!   handled by block-partitioned calls (`NlqBlockUdf`, Table 6).
//! * **Parallel execution**: each worker accumulates a partial state
//!   over its horizontal partition; a master merges partials
//!   (the four run-time phases of §3.4: init → row aggregation →
//!   partial merge → return).
//!
//! The concrete UDFs are exactly the paper's:
//!
//! * aggregate [`NlqUdf`] (list and string parameter styles) and
//!   [`NlqBlockUdf`] for `d > MAX_D`;
//! * scalar [`LinearRegScoreUdf`], [`FaScoreUdf`], [`DistanceUdf`],
//!   [`ClusterScoreUdf`] for scoring (§3.5).

mod error;
mod framework;
mod nlq_udf;
pub mod pack;
mod registry;
mod scoring_udfs;

pub use error::UdfError;
pub use framework::{
    check_heap, for_each_row_args, AggregateState, AggregateUdf, BatchArg, ScalarBatchArg,
    ScalarUdf, UDF_HEAP_LIMIT,
};
pub use nlq_udf::{seeded_nlq_state, NlqBlockUdf, NlqUdf, ParamStyle, MAX_D};
pub use registry::UdfRegistry;
pub use scoring_udfs::{ClusterScoreUdf, DistanceUdf, FaScoreUdf, LinearRegScoreUdf};

/// Convenience result alias for UDF operations.
pub type Result<T> = std::result::Result<T, UdfError>;
