use std::fmt;

/// Errors produced by UDF execution.
#[derive(Debug, Clone, PartialEq)]
pub enum UdfError {
    /// Call has the wrong number of arguments.
    WrongArity {
        /// UDF name.
        udf: String,
        /// Human description of the expected arity.
        expected: String,
        /// Arguments actually passed.
        got: usize,
    },
    /// An argument has the wrong type or an invalid value.
    InvalidArgument {
        /// UDF name.
        udf: String,
        /// What was wrong.
        message: String,
    },
    /// Aggregate state would exceed the 64 KB heap segment
    /// ([`crate::UDF_HEAP_LIMIT`]).
    HeapExceeded {
        /// UDF name.
        udf: String,
        /// Bytes the state requires.
        needed: usize,
        /// The enforced limit.
        limit: usize,
    },
    /// A packed result string could not be parsed.
    MalformedPackedValue(String),
    /// Attempted to merge incompatible aggregate states.
    MergeMismatch {
        /// UDF name.
        udf: String,
        /// Why the partials are incompatible.
        message: String,
    },
}

impl fmt::Display for UdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdfError::WrongArity { udf, expected, got } => {
                write!(f, "{udf}: expected {expected} arguments, got {got}")
            }
            UdfError::InvalidArgument { udf, message } => {
                write!(f, "{udf}: invalid argument: {message}")
            }
            UdfError::HeapExceeded { udf, needed, limit } => {
                write!(
                    f,
                    "{udf}: aggregate state needs {needed} bytes, limit is {limit}"
                )
            }
            UdfError::MalformedPackedValue(msg) => {
                write!(f, "malformed packed value: {msg}")
            }
            UdfError::MergeMismatch { udf, message } => {
                write!(f, "{udf}: cannot merge partial states: {message}")
            }
        }
    }
}

impl std::error::Error for UdfError {}
