use std::any::Any;

use nlq_linalg::kernels;
use nlq_linalg::{Matrix, Vector};
use nlq_models::{MatrixShape, Nlq};
use nlq_storage::{ColumnBlock, Value};

use crate::framework::{for_each_row_args, usize_arg, AggregateState, AggregateUdf, BatchArg};
use crate::pack::{pack_block, pack_nlq, unpack_vector, NlqBlock};
use crate::{Result, UdfError};

/// Maximum dimensionality of one aggregate UDF call.
///
/// §3.4: "the UDF 'struct' record is statically defined to have a
/// maximum dimensionality" because heap storage is allocated before
/// the first row is read. The paper uses `MAX_d = 64`, which keeps the
/// full `n, L, Q`, min/max struct within the 64 KB heap segment
/// (`8·(1 + 64 + 64² + 2·64) ≈ 34 KB`). Data sets with `d > MAX_D` use
/// block-partitioned calls ([`NlqBlockUdf`], Table 6).
pub const MAX_D: usize = 64;

/// How the point's coordinates reach the aggregate UDF (§3.4, step 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamStyle {
    /// Each coordinate is its own scalar parameter (plus a leading
    /// `d`): `nlq_list(d, shape, X1, ..., Xd)`. Fast, but bounded by
    /// the DBMS's maximum parameter count.
    List,
    /// Coordinates packed into one string:
    /// `nlq_str(shape, pack(X1..Xd))`. Pays float→text formatting in
    /// the query and text→float parsing in the UDF each row; "the
    /// unpacking routine determines d".
    String,
}

/// The mirrored C struct: statically sized arrays allocated once in
/// heap memory per worker thread (`udf_nLQ_storage` in the paper).
struct NlqStorage {
    d: usize,
    shape: MatrixShape,
    n: f64,
    l: [f64; MAX_D],
    q: [[f64; MAX_D]; MAX_D],
    min: [f64; MAX_D],
    max: [f64; MAX_D],
}

impl NlqStorage {
    fn new(shape: MatrixShape) -> Box<Self> {
        // Allocate directly on the heap; the struct is ~34 KB.
        let mut s: Box<NlqStorage> = Box::new(NlqStorage {
            d: 0,
            shape,
            n: 0.0,
            l: [0.0; MAX_D],
            q: [[0.0; MAX_D]; MAX_D],
            min: [0.0; MAX_D],
            max: [0.0; MAX_D],
        });
        s.min = [f64::INFINITY; MAX_D];
        s.max = [f64::NEG_INFINITY; MAX_D];
        s
    }

    /// The row-aggregation hot loop: `n += 1`, `L += x`, `Q += x xᵀ`
    /// (per shape), min/max.
    fn accumulate_point(&mut self, x: &[f64]) {
        let d = self.d;
        self.n += 1.0;
        for (a, &xa) in x.iter().enumerate() {
            self.l[a] += xa;
            if xa < self.min[a] {
                self.min[a] = xa;
            }
            if xa > self.max[a] {
                self.max[a] = xa;
            }
        }
        match self.shape {
            MatrixShape::Diagonal => {
                for (a, &xa) in x.iter().enumerate() {
                    self.q[a][a] += xa * xa;
                }
            }
            MatrixShape::Triangular => {
                // Slice zips keep the inner loop bounds-check free and
                // vectorizable; only the lower triangle is touched.
                for (a, &xa) in x.iter().enumerate() {
                    for (qb, xb) in self.q[a][..=a].iter_mut().zip(&x[..=a]) {
                        *qb += xa * xb;
                    }
                }
            }
            MatrixShape::Full => {
                for (a, &xa) in x.iter().enumerate() {
                    for (qb, xb) in self.q[a][..d].iter_mut().zip(x) {
                        *qb += xa * xb;
                    }
                }
            }
        }
    }

    /// Block-at-a-time aggregation: the same update as
    /// [`NlqStorage::accumulate_point`] over every row at once, with
    /// each `Q` cell computed as one contiguous dot product (the
    /// `nlq_linalg::kernels` layer). `active` is an LSB-ordered bitmap
    /// of contributing rows (`None` = all rows; a clear bit means the
    /// row has a NULL coordinate or failed the `WHERE` selection);
    /// `kept` is the number of contributing rows.
    fn accumulate_block(&mut self, cols: &[&[f64]], active: Option<&[u64]>, kept: usize) {
        let d = self.d;
        debug_assert_eq!(cols.len(), d);
        self.n += kept as f64;
        for (a, col) in cols.iter().enumerate() {
            let (s, (lo, hi)) = match active {
                None => (kernels::sum(col), kernels::min_max(col)),
                Some(active) => (
                    kernels::sum_selected(col, active),
                    kernels::min_max_selected(col, active),
                ),
            };
            self.l[a] += s;
            if lo < self.min[a] {
                self.min[a] = lo;
            }
            if hi > self.max[a] {
                self.max[a] = hi;
            }
        }
        let q = self.q.as_flattened_mut();
        match (self.shape, active) {
            (MatrixShape::Diagonal, None) => kernels::block_diagonal(q, MAX_D, cols),
            (MatrixShape::Diagonal, Some(active)) => {
                kernels::block_diagonal_selected(q, MAX_D, cols, active);
            }
            (MatrixShape::Triangular, None) => kernels::block_triangular(q, MAX_D, cols),
            (MatrixShape::Triangular, Some(active)) => {
                kernels::block_triangular_selected(q, MAX_D, cols, active);
            }
            (MatrixShape::Full, None) => kernels::block_full(q, MAX_D, cols),
            (MatrixShape::Full, Some(active)) => {
                kernels::block_full_selected(q, MAX_D, cols, active);
            }
        }
    }

    /// Binds (or checks) the dimensionality on the first row.
    fn bind_d(&mut self, udf: &str, d: usize) -> Result<()> {
        if d == 0 || d > MAX_D {
            return Err(UdfError::InvalidArgument {
                udf: udf.to_owned(),
                message: format!("d={d} outside 1..={MAX_D}; use blocked calls for higher d"),
            });
        }
        if self.d == 0 {
            self.d = d;
        } else if self.d != d {
            return Err(UdfError::InvalidArgument {
                udf: udf.to_owned(),
                message: format!("d changed mid-aggregation: {} -> {d}", self.d),
            });
        }
        Ok(())
    }

    fn to_nlq(&self) -> Nlq {
        let d = self.d;
        let l = Vector::from_slice(&self.l[..d]);
        let q = Matrix::from_fn(d, d, |r, c| self.q[r][c]);
        Nlq::from_parts(
            self.shape,
            self.n,
            l,
            q,
            self.min[..d].to_vec(),
            self.max[..d].to_vec(),
        )
        .expect("storage dimensions are consistent")
    }
}

/// The paper's aggregate UDF computing `n, L, Q` in one table scan.
///
/// Two SQL-visible registrations exist, one per [`ParamStyle`]:
///
/// ```sql
/// SELECT nlq_list(d, 'triang', X1, ..., Xd) FROM X;
/// SELECT nlq_str('triang', pack(X1, ..., Xd)) FROM X;
/// ```
///
/// The return value is a single string ([`crate::pack::pack_nlq`]);
/// rows containing any NULL coordinate are skipped, following SQL
/// aggregate convention. Aggregating zero rows yields SQL NULL.
pub struct NlqUdf {
    style: ParamStyle,
}

impl NlqUdf {
    /// Creates the UDF for a parameter-passing style.
    pub fn new(style: ParamStyle) -> Self {
        NlqUdf { style }
    }
}

impl AggregateUdf for NlqUdf {
    fn name(&self) -> &str {
        match self.style {
            ParamStyle::List => "nlq_list",
            ParamStyle::String => "nlq_str",
        }
    }

    fn init(&self) -> Box<dyn AggregateState> {
        Box::new(NlqState {
            storage: NlqStorage::new(MatrixShape::Triangular),
            style: self.style,
            shape_bound: false,
        })
    }
}

struct NlqState {
    storage: Box<NlqStorage>,
    style: ParamStyle,
    /// Whether the shape argument has been seen yet (first row binds it).
    shape_bound: bool,
}

/// Builds a list-style `nlq` aggregate state pre-seeded from an
/// existing Γ statistic, as if the state had already aggregated every
/// row that Γ summarizes.
///
/// The engine uses this to turn a materialized-summary hit into a
/// *mergeable* partial: a shard answers from its local Γ (zero rows
/// scanned) and the gather step still combines shard partials through
/// the ordinary [`AggregateState::merge`] protocol. An empty Γ
/// (`n = 0`) seeds an empty state, which merges as a no-op and
/// finalizes to SQL NULL — the same convention as aggregating zero
/// rows.
pub fn seeded_nlq_state(nlq: &Nlq) -> Box<dyn AggregateState> {
    let mut storage = NlqStorage::new(nlq.shape());
    let d = nlq.d();
    if d > 0 && nlq.n() > 0.0 {
        storage.d = d;
        storage.n = nlq.n();
        let q = nlq.q_raw();
        for a in 0..d {
            storage.l[a] = nlq.l()[a];
            storage.min[a] = nlq.min()[a];
            storage.max[a] = nlq.max()[a];
            for b in 0..d {
                storage.q[a][b] = q[(a, b)];
            }
        }
    }
    Box::new(NlqState {
        storage,
        style: ParamStyle::List,
        shape_bound: true,
    })
}

impl NlqState {
    fn udf_name(&self) -> &'static str {
        match self.style {
            ParamStyle::List => "nlq_list",
            ParamStyle::String => "nlq_str",
        }
    }

    fn bind_shape(&mut self, arg: &Value) -> Result<()> {
        let name = self.udf_name();
        let shape_str = arg.as_str().ok_or_else(|| UdfError::InvalidArgument {
            udf: name.to_owned(),
            message: "shape argument must be a string ('diag'|'triang'|'full')".into(),
        })?;
        let shape = MatrixShape::parse(shape_str).ok_or_else(|| UdfError::InvalidArgument {
            udf: name.to_owned(),
            message: format!("unknown shape {shape_str:?}"),
        })?;
        if !self.shape_bound {
            self.storage.shape = shape;
            self.shape_bound = true;
        } else if self.storage.shape != shape {
            return Err(UdfError::InvalidArgument {
                udf: name.to_owned(),
                message: "shape changed mid-aggregation".into(),
            });
        }
        Ok(())
    }
}

impl AggregateState for NlqState {
    fn accumulate(&mut self, args: &[Value]) -> Result<()> {
        let name = self.udf_name();
        match self.style {
            ParamStyle::List => {
                // nlq_list(d, shape, X1..Xd)
                let d = usize_arg(name, args, 0)?;
                if args.len() != d + 2 {
                    return Err(UdfError::WrongArity {
                        udf: name.to_owned(),
                        expected: format!("{} (d + 2)", d + 2),
                        got: args.len(),
                    });
                }
                self.bind_shape(&args[1])?;
                self.storage.bind_d(name, d)?;
                // Gather coordinates; a NULL skips the whole row.
                let mut x = [0.0; MAX_D];
                for a in 0..d {
                    match args[2 + a].as_f64() {
                        Some(v) => x[a] = v,
                        None if args[2 + a].is_null() => return Ok(()),
                        None => {
                            return Err(UdfError::InvalidArgument {
                                udf: name.to_owned(),
                                message: format!("X{} is not numeric", a + 1),
                            })
                        }
                    }
                }
                self.storage.accumulate_point(&x[..d]);
            }
            ParamStyle::String => {
                // nlq_str(shape, packed)
                if args.len() != 2 {
                    return Err(UdfError::WrongArity {
                        udf: name.to_owned(),
                        expected: "2 (shape, packed vector)".into(),
                        got: args.len(),
                    });
                }
                self.bind_shape(&args[0])?;
                let packed = match &args[1] {
                    Value::Null => return Ok(()), // NULL row is skipped
                    Value::Str(s) => s,
                    other => {
                        return Err(UdfError::InvalidArgument {
                            udf: name.to_owned(),
                            message: format!("expected packed string, got {other:?}"),
                        })
                    }
                };
                // "The unpacking routine determines d."
                let x = unpack_vector(packed)?;
                self.storage.bind_d(name, x.len())?;
                self.storage.accumulate_point(&x);
            }
        }
        Ok(())
    }

    /// Columnar phase 2 for the list style: `d` and the shape are
    /// block constants and every coordinate is a block column, so the
    /// whole block reduces to sums, min/max folds, and one dot product
    /// per `Q` cell. Any other argument shape (string style, literal
    /// coordinates) replays the row-wise path, which is always
    /// equivalent.
    fn accumulate_batch(
        &mut self,
        block: &ColumnBlock,
        args: &[BatchArg],
        selection: Option<&[u64]>,
    ) -> Result<()> {
        let name = self.udf_name();
        let columnar = self.style == ParamStyle::List
            && args.len() >= 2
            && matches!(args[0], BatchArg::Const(_))
            && matches!(args[1], BatchArg::Const(_))
            && args[2..].iter().all(|a| matches!(a, BatchArg::Col(_)));
        if !columnar {
            return for_each_row_args(block, args, selection, |row| self.accumulate(row));
        }
        let (BatchArg::Const(d_arg), BatchArg::Const(shape_arg)) = (&args[0], &args[1]) else {
            unreachable!("checked above");
        };
        let d = usize_arg(name, std::slice::from_ref(d_arg), 0)?;
        if args.len() != d + 2 {
            return Err(UdfError::WrongArity {
                udf: name.to_owned(),
                expected: format!("{} (d + 2)", d + 2),
                got: args.len(),
            });
        }
        self.bind_shape(shape_arg)?;
        self.storage.bind_d(name, d)?;
        let cols: Vec<&[f64]> = args[2..]
            .iter()
            .map(|a| match a {
                BatchArg::Col(c) => block.column(*c).values,
                BatchArg::Const(_) => unreachable!("checked above"),
            })
            .collect();
        // A row contributes iff it passed the WHERE selection and no
        // coordinate is NULL: AND the selection words with every
        // column's validity words. Fully dense + unfiltered blocks
        // keep `active = None` and ride the dense kernels.
        let any_null = args[2..].iter().any(|a| match a {
            BatchArg::Col(c) => !block.column(*c).is_dense(),
            BatchArg::Const(_) => false,
        });
        if selection.is_none() && !any_null {
            self.storage.accumulate_block(&cols, None, block.len());
            return Ok(());
        }
        let n = block.len();
        let words = nlq_storage::bitmap_words(n);
        let mut active = match selection {
            Some(sel) => sel.to_vec(),
            None => {
                let mut all = vec![!0u64; words];
                nlq_storage::bitmap_mask_tail(&mut all, n);
                all
            }
        };
        for a in &args[2..] {
            let BatchArg::Col(c) = a else { unreachable!() };
            if let Some(validity) = block.column(*c).validity() {
                for (w, v) in active.iter_mut().zip(validity) {
                    *w &= v;
                }
            }
        }
        let kept = nlq_storage::bitmap_count_ones(&active);
        self.storage.accumulate_block(&cols, Some(&active), kept);
        Ok(())
    }

    fn merge(&mut self, other: &dyn AggregateState) -> Result<()> {
        let name = self.udf_name();
        let other =
            other
                .as_any()
                .downcast_ref::<NlqState>()
                .ok_or_else(|| UdfError::MergeMismatch {
                    udf: name.to_owned(),
                    message: "partial state has a different type".into(),
                })?;
        if other.storage.d == 0 {
            return Ok(()); // empty partial
        }
        if self.storage.d == 0 {
            // This side is empty: adopt the other side's binding.
            self.storage.d = other.storage.d;
            self.storage.shape = other.storage.shape;
            self.shape_bound = other.shape_bound;
        }
        if self.storage.d != other.storage.d || self.storage.shape != other.storage.shape {
            return Err(UdfError::MergeMismatch {
                udf: name.to_owned(),
                message: format!(
                    "d/shape mismatch: ({}, {}) vs ({}, {})",
                    self.storage.d,
                    self.storage.shape.name(),
                    other.storage.d,
                    other.storage.shape.name()
                ),
            });
        }
        let d = self.storage.d;
        self.storage.n += other.storage.n;
        for a in 0..d {
            self.storage.l[a] += other.storage.l[a];
            if other.storage.min[a] < self.storage.min[a] {
                self.storage.min[a] = other.storage.min[a];
            }
            if other.storage.max[a] > self.storage.max[a] {
                self.storage.max[a] = other.storage.max[a];
            }
            for b in 0..d {
                self.storage.q[a][b] += other.storage.q[a][b];
            }
        }
        Ok(())
    }

    fn finalize(self: Box<Self>) -> Result<Value> {
        // `d == 0`: no rows seen at all. `n == 0`: rows were seen but
        // every one had a NULL coordinate (the list style binds d
        // before the NULL check, the string style after) — both cases
        // aggregated nothing, so both return SQL NULL.
        if self.storage.d == 0 || self.storage.n == 0.0 {
            return Ok(Value::Null);
        }
        Ok(Value::Str(pack_nlq(&self.storage.to_nlq())))
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<NlqStorage>()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Block-partitioned aggregate UDF for `d > MAX_D` (Table 6).
///
/// ```sql
/// SELECT nlq_block(d, a0, a1, b0, b1,
///                  pack(Xa0+1..Xa1), pack(Xb0+1..Xb1)) FROM X;
/// ```
///
/// Each call computes the `Q` submatrix for subscript ranges
/// `a0..a1 × b0..b1` (half-open, each at most [`MAX_D`] wide) and, for
/// diagonal blocks (`a0 == b0`), the matching `L` segment. Crucially,
/// a call receives **only the two coordinate segments it needs**, so
/// its per-row cost is constant in `d` and the total elapsed time is
/// proportional to the number of calls — exactly the scaling Table 6
/// reports. All calls for one data set are submitted in a single
/// statement (the paper's synchronized table scan);
/// [`crate::pack::assemble_blocks`] reassembles the full statistics
/// client-side.
pub struct NlqBlockUdf;

impl AggregateUdf for NlqBlockUdf {
    fn name(&self) -> &str {
        "nlq_block"
    }

    fn init(&self) -> Box<dyn AggregateState> {
        Box::new(BlockState {
            d: 0,
            a0: 0,
            a1: 0,
            b0: 0,
            b1: 0,
            n: 0.0,
            l: [0.0; MAX_D],
            q: Box::new([[0.0; MAX_D]; MAX_D]),
        })
    }
}

struct BlockState {
    d: usize,
    a0: usize,
    a1: usize,
    b0: usize,
    b1: usize,
    n: f64,
    l: [f64; MAX_D],
    q: Box<[[f64; MAX_D]; MAX_D]>,
}

impl BlockState {
    fn bind_ranges(&mut self, d: usize, a0: usize, a1: usize, b0: usize, b1: usize) -> Result<()> {
        const NAME: &str = "nlq_block";
        if self.d == 0 {
            if a0 >= a1 || b0 >= b1 || a1 > d || b1 > d {
                return Err(UdfError::InvalidArgument {
                    udf: NAME.into(),
                    message: format!("invalid ranges {a0}..{a1} x {b0}..{b1} for d={d}"),
                });
            }
            if a1 - a0 > MAX_D || b1 - b0 > MAX_D {
                return Err(UdfError::InvalidArgument {
                    udf: NAME.into(),
                    message: format!("block wider than MAX_D={MAX_D}"),
                });
            }
            self.d = d;
            self.a0 = a0;
            self.a1 = a1;
            self.b0 = b0;
            self.b1 = b1;
        } else if (self.d, self.a0, self.a1, self.b0, self.b1) != (d, a0, a1, b0, b1) {
            return Err(UdfError::InvalidArgument {
                udf: NAME.into(),
                message: "block ranges changed mid-aggregation".into(),
            });
        }
        Ok(())
    }
}

impl AggregateState for BlockState {
    fn accumulate(&mut self, args: &[Value]) -> Result<()> {
        const NAME: &str = "nlq_block";
        if args.len() != 7 {
            return Err(UdfError::WrongArity {
                udf: NAME.into(),
                expected: "7 (d, a0, a1, b0, b1, packed a-segment, packed b-segment)".into(),
                got: args.len(),
            });
        }
        let d = usize_arg(NAME, args, 0)?;
        let a0 = usize_arg(NAME, args, 1)?;
        let a1 = usize_arg(NAME, args, 2)?;
        let b0 = usize_arg(NAME, args, 3)?;
        let b1 = usize_arg(NAME, args, 4)?;
        self.bind_ranges(d, a0, a1, b0, b1)?;
        let unpack_segment = |arg: &Value, what: &str, expect: usize| -> Result<Option<Vec<f64>>> {
            let packed = match arg {
                Value::Null => return Ok(None),
                Value::Str(s) => s,
                other => {
                    return Err(UdfError::InvalidArgument {
                        udf: NAME.into(),
                        message: format!("expected packed {what} segment, got {other:?}"),
                    })
                }
            };
            let seg = unpack_vector(packed)?;
            if seg.len() != expect {
                return Err(UdfError::InvalidArgument {
                    udf: NAME.into(),
                    message: format!("{what} segment has {} values, expected {expect}", seg.len()),
                });
            }
            Ok(Some(seg))
        };
        let Some(xa) = unpack_segment(&args[5], "a", a1 - a0)? else {
            return Ok(()); // NULL row is skipped
        };
        let Some(xb) = unpack_segment(&args[6], "b", b1 - b0)? else {
            return Ok(());
        };
        self.n += 1.0;
        if self.a0 == self.b0 {
            for (i, &v) in xa.iter().enumerate() {
                self.l[i] += v;
            }
        }
        for (i, &va) in xa.iter().enumerate() {
            let row = &mut self.q[i];
            for (j, &vb) in xb.iter().enumerate() {
                row[j] += va * vb;
            }
        }
        Ok(())
    }

    fn merge(&mut self, other: &dyn AggregateState) -> Result<()> {
        const NAME: &str = "nlq_block";
        let other =
            other
                .as_any()
                .downcast_ref::<BlockState>()
                .ok_or_else(|| UdfError::MergeMismatch {
                    udf: NAME.into(),
                    message: "partial state has a different type".into(),
                })?;
        if other.d == 0 {
            return Ok(());
        }
        if self.d == 0 {
            self.bind_ranges(other.d, other.a0, other.a1, other.b0, other.b1)?;
        }
        if (self.d, self.a0, self.a1, self.b0, self.b1)
            != (other.d, other.a0, other.a1, other.b0, other.b1)
        {
            return Err(UdfError::MergeMismatch {
                udf: NAME.into(),
                message: "block ranges differ between partials".into(),
            });
        }
        self.n += other.n;
        for i in 0..(self.a1 - self.a0) {
            self.l[i] += other.l[i];
            for j in 0..(self.b1 - self.b0) {
                self.q[i][j] += other.q[i][j];
            }
        }
        Ok(())
    }

    fn finalize(self: Box<Self>) -> Result<Value> {
        if self.d == 0 {
            return Ok(Value::Null);
        }
        let rows = self.a1 - self.a0;
        let cols = self.b1 - self.b0;
        let mut q = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            q.extend_from_slice(&self.q[i][..cols]);
        }
        let l = if self.a0 == self.b0 {
            self.l[..rows].to_vec()
        } else {
            Vec::new()
        };
        Ok(Value::Str(pack_block(&NlqBlock {
            d: self.d,
            a0: self.a0,
            a1: self.a1,
            b0: self.b0,
            b1: self.b1,
            n: self.n,
            l,
            q,
        })))
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<BlockState>() + std::mem::size_of::<[[f64; MAX_D]; MAX_D]>()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::check_heap;
    use crate::pack::{assemble_blocks, pack_vector, unpack_block, unpack_nlq};

    fn rows(n: usize, d: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..d).map(|a| ((i * d + a) % 17) as f64 - 8.0).collect())
            .collect()
    }

    fn run_list(rows: &[Vec<f64>], shape: &str) -> Value {
        let udf = NlqUdf::new(ParamStyle::List);
        let mut state = udf.init();
        let d = rows[0].len();
        for r in rows {
            let mut args = vec![Value::Int(d as i64), Value::from(shape)];
            args.extend(r.iter().map(|&v| Value::Float(v)));
            state.accumulate(&args).unwrap();
        }
        state.finalize().unwrap()
    }

    fn run_str(rows: &[Vec<f64>], shape: &str) -> Value {
        let udf = NlqUdf::new(ParamStyle::String);
        let mut state = udf.init();
        for r in rows {
            state
                .accumulate(&[Value::from(shape), Value::Str(pack_vector(r))])
                .unwrap();
        }
        state.finalize().unwrap()
    }

    #[test]
    fn list_style_matches_reference() {
        let data = rows(100, 4);
        let out = run_list(&data, "triang");
        let got = unpack_nlq(out.as_str().unwrap()).unwrap();
        let expect = Nlq::from_rows(4, MatrixShape::Triangular, &data);
        assert_eq!(got, expect);
    }

    #[test]
    fn string_style_matches_list_style() {
        let data = rows(50, 6);
        for shape in ["diag", "triang", "full"] {
            let a = run_list(&data, shape);
            let b = run_str(&data, shape);
            let na = unpack_nlq(a.as_str().unwrap()).unwrap();
            let nb = unpack_nlq(b.as_str().unwrap()).unwrap();
            assert_eq!(na.n(), nb.n());
            assert_eq!(na.l(), nb.l());
            assert_eq!(na.q_raw(), nb.q_raw(), "shape {shape}");
        }
    }

    #[test]
    fn parallel_merge_matches_serial() {
        let data = rows(100, 5);
        let udf = NlqUdf::new(ParamStyle::List);
        // Two workers over halves, merged.
        let mut s1 = udf.init();
        let mut s2 = udf.init();
        for (i, r) in data.iter().enumerate() {
            let mut args = vec![Value::Int(5), Value::from("full")];
            args.extend(r.iter().map(|&v| Value::Float(v)));
            if i % 2 == 0 {
                s1.accumulate(&args).unwrap();
            } else {
                s2.accumulate(&args).unwrap();
            }
        }
        s1.merge(s2.as_ref()).unwrap();
        let merged = unpack_nlq(s1.finalize().unwrap().as_str().unwrap()).unwrap();
        let serial = unpack_nlq(run_list(&data, "full").as_str().unwrap()).unwrap();
        assert_eq!(merged, serial);
    }

    #[test]
    fn merge_with_empty_partial_works_both_ways() {
        let data = rows(10, 3);
        let udf = NlqUdf::new(ParamStyle::List);
        // Non-empty merged into empty.
        let mut empty = udf.init();
        let mut full = udf.init();
        for r in &data {
            let mut args = vec![Value::Int(3), Value::from("triang")];
            args.extend(r.iter().map(|&v| Value::Float(v)));
            full.accumulate(&args).unwrap();
        }
        empty.merge(full.as_ref()).unwrap();
        let a = unpack_nlq(empty.finalize().unwrap().as_str().unwrap()).unwrap();
        assert_eq!(a.n(), 10.0);
        // Empty merged into non-empty.
        let mut full2 = udf.init();
        for r in &data {
            let mut args = vec![Value::Int(3), Value::from("triang")];
            args.extend(r.iter().map(|&v| Value::Float(v)));
            full2.accumulate(&args).unwrap();
        }
        let empty2 = udf.init();
        full2.merge(empty2.as_ref()).unwrap();
        let b = unpack_nlq(full2.finalize().unwrap().as_str().unwrap()).unwrap();
        assert_eq!(b.n(), 10.0);
    }

    #[test]
    fn null_rows_are_skipped() {
        let udf = NlqUdf::new(ParamStyle::List);
        let mut state = udf.init();
        state
            .accumulate(&[
                Value::Int(2),
                Value::from("diag"),
                Value::Float(1.0),
                Value::Float(2.0),
            ])
            .unwrap();
        state
            .accumulate(&[
                Value::Int(2),
                Value::from("diag"),
                Value::Null,
                Value::Float(9.0),
            ])
            .unwrap();
        let out = unpack_nlq(state.finalize().unwrap().as_str().unwrap()).unwrap();
        assert_eq!(out.n(), 1.0);
        assert_eq!(out.l().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn empty_aggregate_returns_null() {
        let udf = NlqUdf::new(ParamStyle::String);
        assert_eq!(udf.init().finalize().unwrap(), Value::Null);
    }

    #[test]
    fn all_null_rows_return_null_in_both_styles() {
        // Regression: the list style binds d/shape before the NULL
        // check, so it used to finalize a packed n=0 result while the
        // string style returned SQL NULL for the same input.
        let udf = NlqUdf::new(ParamStyle::List);
        let mut state = udf.init();
        state
            .accumulate(&[
                Value::Int(2),
                Value::from("diag"),
                Value::Null,
                Value::Float(1.0),
            ])
            .unwrap();
        assert_eq!(state.finalize().unwrap(), Value::Null);

        let udf = NlqUdf::new(ParamStyle::String);
        let mut state = udf.init();
        state
            .accumulate(&[Value::from("diag"), Value::Null])
            .unwrap();
        assert_eq!(state.finalize().unwrap(), Value::Null);
    }

    /// Builds a table of float points (with optional NULL holes) and
    /// aggregates it through `accumulate_batch`.
    fn run_batched(data: &[Vec<f64>], nulls: &[(usize, usize)], shape: &str) -> Value {
        use nlq_storage::{Schema, Table};
        let d = data[0].len();
        let mut t = Table::new(Schema::points(d, false), 1);
        for (i, r) in data.iter().enumerate() {
            let mut row = vec![Value::Int(i as i64)];
            row.extend(r.iter().enumerate().map(|(a, &v)| {
                if nulls.contains(&(i, a)) {
                    Value::Null
                } else {
                    Value::Float(v)
                }
            }));
            t.insert(row).unwrap();
        }
        let cols: Vec<usize> = (1..=d).collect();
        let mut iter = t.scan_partition_blocks(0, &cols).unwrap();
        let mut args = vec![
            BatchArg::Const(Value::Int(d as i64)),
            BatchArg::Const(Value::from(shape)),
        ];
        args.extend((0..d).map(BatchArg::Col));
        let udf = NlqUdf::new(ParamStyle::List);
        let mut state = udf.init();
        while let Some(block) = iter.next_block() {
            state
                .accumulate_batch(&block.unwrap(), &args, None)
                .unwrap();
        }
        state.finalize().unwrap()
    }

    #[test]
    fn batched_accumulation_matches_rowwise() {
        // Enough rows for multiple blocks, every shape.
        let data = rows(2500, 5);
        for shape in ["diag", "triang", "full"] {
            let batched = unpack_nlq(run_batched(&data, &[], shape).as_str().unwrap()).unwrap();
            let rowwise = unpack_nlq(run_list(&data, shape).as_str().unwrap()).unwrap();
            assert_eq!(batched.n(), rowwise.n(), "shape {shape}");
            assert_eq!(batched.min(), rowwise.min());
            assert_eq!(batched.max(), rowwise.max());
            for a in 0..5 {
                let rel = (batched.l()[a] - rowwise.l()[a]).abs() / rowwise.l()[a].abs().max(1.0);
                assert!(rel < 1e-12, "L[{a}] {shape}");
            }
            let (bq, rq) = (batched.q_raw(), rowwise.q_raw());
            for a in 0..5 {
                for b in 0..5 {
                    let rel = (bq[(a, b)] - rq[(a, b)]).abs() / rq[(a, b)].abs().max(1.0);
                    assert!(rel < 1e-12, "Q[{a}][{b}] {shape}");
                }
            }
        }
    }

    #[test]
    fn batched_accumulation_skips_null_rows() {
        let data = rows(40, 3);
        let nulls = [(3, 1), (17, 0), (17, 2), (39, 2)];
        let batched = unpack_nlq(run_batched(&data, &nulls, "triang").as_str().unwrap()).unwrap();
        // Row-wise reference over the same data with the NULL rows
        // (3, 17, 39) removed entirely.
        let kept: Vec<Vec<f64>> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| ![3, 17, 39].contains(i))
            .map(|(_, r)| r.clone())
            .collect();
        let expect = Nlq::from_rows(3, MatrixShape::Triangular, &kept);
        assert_eq!(batched.n(), expect.n());
        assert_eq!(batched.min(), expect.min());
        assert_eq!(batched.max(), expect.max());
        for a in 0..3 {
            assert!((batched.l()[a] - expect.l()[a]).abs() < 1e-9);
            for b in 0..=a {
                assert!((batched.q_raw()[(a, b)] - expect.q_raw()[(a, b)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn d_above_max_is_rejected() {
        let udf = NlqUdf::new(ParamStyle::List);
        let mut state = udf.init();
        let mut args = vec![Value::Int((MAX_D + 1) as i64), Value::from("diag")];
        args.extend((0..=MAX_D).map(|_| Value::Float(0.0)));
        assert!(matches!(
            state.accumulate(&args),
            Err(UdfError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn state_fits_heap_limit() {
        let udf = NlqUdf::new(ParamStyle::List);
        let state = udf.init();
        check_heap("nlq_list", state.as_ref()).unwrap();
        assert!(state.heap_bytes() <= crate::UDF_HEAP_LIMIT);
        // And it genuinely is a ~34 KB struct, as the paper computes.
        assert!(state.heap_bytes() > 30 * 1024);
    }

    #[test]
    fn changing_d_mid_stream_is_rejected() {
        let udf = NlqUdf::new(ParamStyle::String);
        let mut state = udf.init();
        state
            .accumulate(&[Value::from("diag"), Value::Str("1,2".into())])
            .unwrap();
        assert!(state
            .accumulate(&[Value::from("diag"), Value::Str("1,2,3".into())])
            .is_err());
    }

    #[test]
    fn blocked_calls_cover_high_d() {
        // d = 6 with 3x3 blocks of width 2 (here MAX_D is plenty; the
        // mechanism is what's under test).
        let d = 6;
        let data = rows(40, d);
        let udf = NlqBlockUdf;
        let mut blocks = Vec::new();
        for a0 in (0..d).step_by(2) {
            for b0 in (0..d).step_by(2) {
                let mut state = udf.init();
                for r in &data {
                    state
                        .accumulate(&[
                            Value::Int(d as i64),
                            Value::Int(a0 as i64),
                            Value::Int((a0 + 2) as i64),
                            Value::Int(b0 as i64),
                            Value::Int((b0 + 2) as i64),
                            Value::Str(pack_vector(&r[a0..a0 + 2])),
                            Value::Str(pack_vector(&r[b0..b0 + 2])),
                        ])
                        .unwrap();
                }
                let out = state.finalize().unwrap();
                blocks.push(unpack_block(out.as_str().unwrap()).unwrap());
            }
        }
        let assembled = assemble_blocks(d, &blocks).unwrap();
        let direct = Nlq::from_rows(d, MatrixShape::Full, &data);
        assert_eq!(assembled.n(), direct.n());
        assert_eq!(assembled.l(), direct.l());
        assert_eq!(assembled.q_raw(), direct.q_raw());
    }

    #[test]
    fn blocked_merge_matches_single_worker() {
        let d = 4;
        let data = rows(30, d);
        let udf = NlqBlockUdf;
        let args_for = |r: &Vec<f64>| {
            vec![
                Value::Int(d as i64),
                Value::Int(0),
                Value::Int(2),
                Value::Int(2),
                Value::Int(4),
                Value::Str(pack_vector(&r[0..2])),
                Value::Str(pack_vector(&r[2..4])),
            ]
        };
        let mut s1 = udf.init();
        let mut s2 = udf.init();
        for (i, r) in data.iter().enumerate() {
            if i < 15 {
                s1.accumulate(&args_for(r)).unwrap();
            } else {
                s2.accumulate(&args_for(r)).unwrap();
            }
        }
        s1.merge(s2.as_ref()).unwrap();
        let merged = unpack_block(s1.finalize().unwrap().as_str().unwrap()).unwrap();

        let mut serial = udf.init();
        for r in &data {
            serial.accumulate(&args_for(r)).unwrap();
        }
        let single = unpack_block(serial.finalize().unwrap().as_str().unwrap()).unwrap();
        assert_eq!(merged, single);
        // Off-diagonal block carries no L segment.
        assert!(merged.l.is_empty());
    }

    #[test]
    fn block_rejects_bad_ranges() {
        let udf = NlqBlockUdf;
        let mut state = udf.init();
        let bad = vec![
            Value::Int(4),
            Value::Int(2),
            Value::Int(2), // empty range
            Value::Int(0),
            Value::Int(2),
            Value::Str("".into()),
            Value::Str("1,2".into()),
        ];
        assert!(state.accumulate(&bad).is_err());
    }
}
