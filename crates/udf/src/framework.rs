use std::any::Any;

use nlq_storage::{ColumnBlock, Value};

use crate::{Result, UdfError};

/// The single heap segment a UDF may allocate (§2.2: "the amount of
/// memory that can be allocated is somewhat low and it is currently
/// limited to one 64 kb segment").
pub const UDF_HEAP_LIMIT: usize = 64 * 1024;

/// A scalar UDF: called once per row, returns one value, keeps no
/// state between rows (§2.2: "scalar functions cannot keep values in
/// main memory from row to row").
///
/// Implementations must be pure functions of their arguments.
pub trait ScalarUdf: Send + Sync {
    /// SQL-visible function name (matched case-insensitively).
    fn name(&self) -> &str;

    /// Evaluates the function on one row's argument values.
    ///
    /// Following SQL convention, implementations return `Value::Null`
    /// when any input argument is NULL.
    fn eval(&self, args: &[Value]) -> Result<Value>;

    /// Optional columnar fast path: evaluates the function over a
    /// whole block of `rows` rows at once, pushing one result per row
    /// onto `out`. Returns `Ok(false)` to decline (the caller then
    /// falls back to row-at-a-time [`ScalarUdf::eval`]); `Ok(true)`
    /// after filling `out`.
    ///
    /// Implementations must produce, for every row `i`, exactly the
    /// value `eval` would return for that row's materialized
    /// arguments, and may only raise errors that are uniform across
    /// rows (arity, argument types) — callers may evaluate rows a
    /// `WHERE` predicate would have excluded.
    fn eval_batch(
        &self,
        args: &[ScalarBatchArg<'_>],
        rows: usize,
        out: &mut Vec<Value>,
    ) -> Result<bool> {
        let _ = (args, rows, out);
        Ok(false)
    }
}

/// One argument position of a columnar [`ScalarUdf::eval_batch`] call.
#[derive(Debug, Clone, Copy)]
pub enum ScalarBatchArg<'a> {
    /// Per-row values, one per block row. `validity` is an LSB-ordered
    /// bitmap (set bit = valid, bits past the row count are zero);
    /// `None` means no NULLs. NULL slots hold an arbitrary value.
    Col {
        /// The dense per-row values.
        values: &'a [f64],
        /// Validity bitmap; `None` when every row is valid.
        validity: Option<&'a [u64]>,
    },
    /// A literal argument, identical on every row.
    Const(&'a Value),
}

impl ScalarBatchArg<'_> {
    /// The argument's numeric value on row `i`; `None` for SQL NULL.
    #[inline]
    pub fn at(&self, i: usize) -> Option<f64> {
        match self {
            ScalarBatchArg::Col { values, validity } => match validity {
                Some(words) => nlq_storage::bitmap_get(words, i).then(|| values[i]),
                None => Some(values[i]),
            },
            ScalarBatchArg::Const(v) => v.as_f64(),
        }
    }
}

/// An aggregate UDF: definition object that creates per-group,
/// per-worker state.
///
/// Execution follows the four run-time phases of §3.4:
/// 1. **Initialization** — [`AggregateUdf::init`] allocates the state
///    (checked against [`UDF_HEAP_LIMIT`] by the caller via
///    [`AggregateState::heap_bytes`]).
/// 2. **Row aggregation** — [`AggregateState::accumulate`], executed
///    `n` times; the hot path.
/// 3. **Partial result aggregation** — [`AggregateState::merge`]
///    combines per-worker partials on a master thread.
/// 4. **Returning results** — [`AggregateState::finalize`] packs the
///    result into a single simple value.
pub trait AggregateUdf: Send + Sync {
    /// SQL-visible function name (matched case-insensitively).
    fn name(&self) -> &str;

    /// Phase 1: allocates fresh aggregation state.
    fn init(&self) -> Box<dyn AggregateState>;
}

/// Where one aggregate-call argument position comes from when a whole
/// [`ColumnBlock`] is aggregated at once.
///
/// A call like `nlq_list(4, 'triang', X1, X2, X3, X4)` becomes the
/// batch argument list `[Const(4), Const('triang'), Col(0), Col(1),
/// Col(2), Col(3)]` where `Col(i)` indexes the block's projection.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchArg {
    /// A literal argument, identical on every row of the block.
    Const(Value),
    /// Index of a float column within the block's projection.
    Col(usize),
}

/// Mutable aggregation state for one group on one worker.
pub trait AggregateState: Send {
    /// Phase 2: folds one row's argument values into the state.
    fn accumulate(&mut self, args: &[Value]) -> Result<()>;

    /// Phase 2, vectorized: folds a whole column block into the state.
    ///
    /// `args[i]` describes where the `i`-th argument of each logical
    /// [`AggregateState::accumulate`] call comes from. `selection` is
    /// an optional LSB-ordered bitmap over the block's rows (set bit =
    /// row passed the `WHERE` predicate, bits past `block.len()` are
    /// zero); `None` means every row participates. The default
    /// implementation re-materializes per-row argument vectors and
    /// delegates to `accumulate` — correct for every state, so
    /// implementing it is optional; high-volume states override it
    /// with columnar kernels (see the `nlq_list` state).
    fn accumulate_batch(
        &mut self,
        block: &ColumnBlock,
        args: &[BatchArg],
        selection: Option<&[u64]>,
    ) -> Result<()> {
        for_each_row_args(block, args, selection, |row| self.accumulate(row))
    }

    /// Phase 3: folds another worker's partial state into this one.
    ///
    /// Implementations downcast `other` via [`AggregateState::as_any`]
    /// and must return [`UdfError::MergeMismatch`] if the states are
    /// incompatible (different UDF, different parameters).
    fn merge(&mut self, other: &dyn AggregateState) -> Result<()>;

    /// Phase 4: produces the final value, consuming the state.
    fn finalize(self: Box<Self>) -> Result<Value>;

    /// Heap footprint of this state in bytes; callers enforce
    /// [`UDF_HEAP_LIMIT`].
    fn heap_bytes(&self) -> usize;

    /// Downcast support for [`AggregateState::merge`].
    fn as_any(&self) -> &dyn Any;
}

/// Replays a [`ColumnBlock`] row by row, materializing each selected
/// row's argument vector per `args` and passing it to `f` — the
/// row-wise fallback behind the default
/// [`AggregateState::accumulate_batch`]. Rows whose `selection` bit is
/// clear are skipped entirely (they failed the `WHERE` predicate).
/// States overriding that method can call this for argument shapes
/// their columnar kernels do not cover.
pub fn for_each_row_args(
    block: &ColumnBlock,
    args: &[BatchArg],
    selection: Option<&[u64]>,
    mut f: impl FnMut(&[Value]) -> Result<()>,
) -> Result<()> {
    let mut row_args: Vec<Value> = Vec::with_capacity(args.len());
    for i in 0..block.len() {
        if let Some(sel) = selection {
            if !nlq_storage::bitmap_get(sel, i) {
                continue;
            }
        }
        row_args.clear();
        for a in args {
            row_args.push(match a {
                BatchArg::Const(v) => v.clone(),
                BatchArg::Col(c) => {
                    let col = block.column(*c);
                    if col.is_null(i) {
                        Value::Null
                    } else {
                        Value::Float(col.values[i])
                    }
                }
            });
        }
        f(&row_args)?;
    }
    Ok(())
}

/// Checks a freshly initialized state against the heap budget; call
/// after [`AggregateUdf::init`].
pub fn check_heap(udf: &str, state: &dyn AggregateState) -> Result<()> {
    let needed = state.heap_bytes();
    if needed > UDF_HEAP_LIMIT {
        return Err(UdfError::HeapExceeded {
            udf: udf.to_owned(),
            needed,
            limit: UDF_HEAP_LIMIT,
        });
    }
    Ok(())
}

/// Extracts a required float argument (ints widen), reporting the UDF
/// name and position on failure. Returns `None` for SQL NULL.
pub(crate) fn float_arg(udf: &str, args: &[Value], idx: usize) -> Result<Option<f64>> {
    match args.get(idx) {
        None => Err(UdfError::WrongArity {
            udf: udf.to_owned(),
            expected: format!("at least {}", idx + 1),
            got: args.len(),
        }),
        Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| UdfError::InvalidArgument {
                udf: udf.to_owned(),
                message: format!("argument {} must be numeric, got {v:?}", idx + 1),
            }),
    }
}

/// Extracts a required positive integer argument.
pub(crate) fn usize_arg(udf: &str, args: &[Value], idx: usize) -> Result<usize> {
    let v = float_arg(udf, args, idx)?.ok_or_else(|| UdfError::InvalidArgument {
        udf: udf.to_owned(),
        message: format!("argument {} must not be NULL", idx + 1),
    })?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(UdfError::InvalidArgument {
            udf: udf.to_owned(),
            message: format!(
                "argument {} must be a non-negative integer, got {v}",
                idx + 1
            ),
        });
    }
    Ok(v as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountState {
        n: i64,
    }

    impl AggregateState for CountState {
        fn accumulate(&mut self, _args: &[Value]) -> Result<()> {
            self.n += 1;
            Ok(())
        }
        fn merge(&mut self, other: &dyn AggregateState) -> Result<()> {
            let other = other.as_any().downcast_ref::<CountState>().ok_or_else(|| {
                UdfError::MergeMismatch {
                    udf: "count".into(),
                    message: "type".into(),
                }
            })?;
            self.n += other.n;
            Ok(())
        }
        fn finalize(self: Box<Self>) -> Result<Value> {
            Ok(Value::Int(self.n))
        }
        fn heap_bytes(&self) -> usize {
            std::mem::size_of::<Self>()
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn four_phase_protocol_works() {
        let mut a = CountState { n: 0 };
        let mut b = CountState { n: 0 };
        for _ in 0..3 {
            a.accumulate(&[]).unwrap();
        }
        for _ in 0..4 {
            b.accumulate(&[]).unwrap();
        }
        a.merge(&b).unwrap();
        let v = Box::new(a).finalize().unwrap();
        assert_eq!(v, Value::Int(7));
    }

    #[test]
    fn default_accumulate_batch_matches_rowwise() {
        use nlq_storage::{Column, DataType, Schema, Table};

        struct SumState {
            total: f64,
            rows: usize,
        }
        impl AggregateState for SumState {
            fn accumulate(&mut self, args: &[Value]) -> Result<()> {
                self.rows += 1;
                if let Some(v) = args[1].as_f64() {
                    self.total += v + args[0].as_f64().unwrap_or(0.0);
                }
                Ok(())
            }
            fn merge(&mut self, _: &dyn AggregateState) -> Result<()> {
                Ok(())
            }
            fn finalize(self: Box<Self>) -> Result<Value> {
                Ok(Value::Float(self.total))
            }
            fn heap_bytes(&self) -> usize {
                std::mem::size_of::<Self>()
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }

        let mut t = Table::new(Schema::new(vec![Column::new("x", DataType::Float)]), 1);
        for i in 0..5 {
            let v = if i == 2 {
                Value::Null
            } else {
                Value::Float(i as f64)
            };
            t.insert(vec![v]).unwrap();
        }
        let mut iter = t.scan_partition_blocks(0, &[0]).unwrap();
        let block = iter.next_block().unwrap().unwrap();

        let mut s = SumState {
            total: 0.0,
            rows: 0,
        };
        let args = [BatchArg::Const(Value::Float(10.0)), BatchArg::Col(0)];
        s.accumulate_batch(&block, &args, None).unwrap();
        // Rows 0, 1, 3, 4 contribute value + 10; the NULL row is seen
        // but contributes nothing.
        assert_eq!(s.rows, 5);
        assert_eq!(s.total, (0.0 + 1.0 + 3.0 + 4.0) + 4.0 * 10.0);

        // With a selection keeping rows 1 and 3 only, unselected rows
        // are never even presented to the state.
        let mut s = SumState {
            total: 0.0,
            rows: 0,
        };
        let selection = [0b01010u64];
        s.accumulate_batch(&block, &args, Some(&selection)).unwrap();
        assert_eq!(s.rows, 2);
        assert_eq!(s.total, (1.0 + 3.0) + 2.0 * 10.0);
    }

    #[test]
    fn heap_check_accepts_small_state() {
        let s = CountState { n: 0 };
        assert!(check_heap("count", &s).is_ok());
    }

    struct HugeState;

    impl AggregateState for HugeState {
        fn accumulate(&mut self, _: &[Value]) -> Result<()> {
            Ok(())
        }
        fn merge(&mut self, _: &dyn AggregateState) -> Result<()> {
            Ok(())
        }
        fn finalize(self: Box<Self>) -> Result<Value> {
            Ok(Value::Null)
        }
        fn heap_bytes(&self) -> usize {
            UDF_HEAP_LIMIT + 1
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn heap_check_rejects_oversized_state() {
        assert!(matches!(
            check_heap("huge", &HugeState),
            Err(UdfError::HeapExceeded { .. })
        ));
    }

    #[test]
    fn float_arg_handles_types() {
        let args = vec![
            Value::Int(2),
            Value::Float(1.5),
            Value::Null,
            Value::from("x"),
        ];
        assert_eq!(float_arg("f", &args, 0).unwrap(), Some(2.0));
        assert_eq!(float_arg("f", &args, 1).unwrap(), Some(1.5));
        assert_eq!(float_arg("f", &args, 2).unwrap(), None);
        assert!(float_arg("f", &args, 3).is_err());
        assert!(matches!(
            float_arg("f", &args, 9),
            Err(UdfError::WrongArity { .. })
        ));
    }

    #[test]
    fn usize_arg_validates() {
        assert_eq!(usize_arg("f", &[Value::Int(5)], 0).unwrap(), 5);
        assert!(usize_arg("f", &[Value::Float(1.5)], 0).is_err());
        assert!(usize_arg("f", &[Value::Int(-1)], 0).is_err());
        assert!(usize_arg("f", &[Value::Null], 0).is_err());
    }
}
