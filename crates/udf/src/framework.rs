use std::any::Any;

use nlq_storage::Value;

use crate::{Result, UdfError};

/// The single heap segment a UDF may allocate (§2.2: "the amount of
/// memory that can be allocated is somewhat low and it is currently
/// limited to one 64 kb segment").
pub const UDF_HEAP_LIMIT: usize = 64 * 1024;

/// A scalar UDF: called once per row, returns one value, keeps no
/// state between rows (§2.2: "scalar functions cannot keep values in
/// main memory from row to row").
///
/// Implementations must be pure functions of their arguments.
pub trait ScalarUdf: Send + Sync {
    /// SQL-visible function name (matched case-insensitively).
    fn name(&self) -> &str;

    /// Evaluates the function on one row's argument values.
    ///
    /// Following SQL convention, implementations return `Value::Null`
    /// when any input argument is NULL.
    fn eval(&self, args: &[Value]) -> Result<Value>;
}

/// An aggregate UDF: definition object that creates per-group,
/// per-worker state.
///
/// Execution follows the four run-time phases of §3.4:
/// 1. **Initialization** — [`AggregateUdf::init`] allocates the state
///    (checked against [`UDF_HEAP_LIMIT`] by the caller via
///    [`AggregateState::heap_bytes`]).
/// 2. **Row aggregation** — [`AggregateState::accumulate`], executed
///    `n` times; the hot path.
/// 3. **Partial result aggregation** — [`AggregateState::merge`]
///    combines per-worker partials on a master thread.
/// 4. **Returning results** — [`AggregateState::finalize`] packs the
///    result into a single simple value.
pub trait AggregateUdf: Send + Sync {
    /// SQL-visible function name (matched case-insensitively).
    fn name(&self) -> &str;

    /// Phase 1: allocates fresh aggregation state.
    fn init(&self) -> Box<dyn AggregateState>;
}

/// Mutable aggregation state for one group on one worker.
pub trait AggregateState: Send {
    /// Phase 2: folds one row's argument values into the state.
    fn accumulate(&mut self, args: &[Value]) -> Result<()>;

    /// Phase 3: folds another worker's partial state into this one.
    ///
    /// Implementations downcast `other` via [`AggregateState::as_any`]
    /// and must return [`UdfError::MergeMismatch`] if the states are
    /// incompatible (different UDF, different parameters).
    fn merge(&mut self, other: &dyn AggregateState) -> Result<()>;

    /// Phase 4: produces the final value, consuming the state.
    fn finalize(self: Box<Self>) -> Result<Value>;

    /// Heap footprint of this state in bytes; callers enforce
    /// [`UDF_HEAP_LIMIT`].
    fn heap_bytes(&self) -> usize;

    /// Downcast support for [`AggregateState::merge`].
    fn as_any(&self) -> &dyn Any;
}

/// Checks a freshly initialized state against the heap budget; call
/// after [`AggregateUdf::init`].
pub fn check_heap(udf: &str, state: &dyn AggregateState) -> Result<()> {
    let needed = state.heap_bytes();
    if needed > UDF_HEAP_LIMIT {
        return Err(UdfError::HeapExceeded {
            udf: udf.to_owned(),
            needed,
            limit: UDF_HEAP_LIMIT,
        });
    }
    Ok(())
}

/// Extracts a required float argument (ints widen), reporting the UDF
/// name and position on failure. Returns `None` for SQL NULL.
pub(crate) fn float_arg(udf: &str, args: &[Value], idx: usize) -> Result<Option<f64>> {
    match args.get(idx) {
        None => Err(UdfError::WrongArity {
            udf: udf.to_owned(),
            expected: format!("at least {}", idx + 1),
            got: args.len(),
        }),
        Some(Value::Null) => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| UdfError::InvalidArgument {
            udf: udf.to_owned(),
            message: format!("argument {} must be numeric, got {v:?}", idx + 1),
        }),
    }
}

/// Extracts a required positive integer argument.
pub(crate) fn usize_arg(udf: &str, args: &[Value], idx: usize) -> Result<usize> {
    let v = float_arg(udf, args, idx)?.ok_or_else(|| UdfError::InvalidArgument {
        udf: udf.to_owned(),
        message: format!("argument {} must not be NULL", idx + 1),
    })?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(UdfError::InvalidArgument {
            udf: udf.to_owned(),
            message: format!("argument {} must be a non-negative integer, got {v}", idx + 1),
        });
    }
    Ok(v as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountState {
        n: i64,
    }

    impl AggregateState for CountState {
        fn accumulate(&mut self, _args: &[Value]) -> Result<()> {
            self.n += 1;
            Ok(())
        }
        fn merge(&mut self, other: &dyn AggregateState) -> Result<()> {
            let other = other.as_any().downcast_ref::<CountState>().ok_or_else(|| {
                UdfError::MergeMismatch { udf: "count".into(), message: "type".into() }
            })?;
            self.n += other.n;
            Ok(())
        }
        fn finalize(self: Box<Self>) -> Result<Value> {
            Ok(Value::Int(self.n))
        }
        fn heap_bytes(&self) -> usize {
            std::mem::size_of::<Self>()
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn four_phase_protocol_works() {
        let mut a = CountState { n: 0 };
        let mut b = CountState { n: 0 };
        for _ in 0..3 {
            a.accumulate(&[]).unwrap();
        }
        for _ in 0..4 {
            b.accumulate(&[]).unwrap();
        }
        a.merge(&b).unwrap();
        let v = Box::new(a).finalize().unwrap();
        assert_eq!(v, Value::Int(7));
    }

    #[test]
    fn heap_check_accepts_small_state() {
        let s = CountState { n: 0 };
        assert!(check_heap("count", &s).is_ok());
    }

    struct HugeState;

    impl AggregateState for HugeState {
        fn accumulate(&mut self, _: &[Value]) -> Result<()> {
            Ok(())
        }
        fn merge(&mut self, _: &dyn AggregateState) -> Result<()> {
            Ok(())
        }
        fn finalize(self: Box<Self>) -> Result<Value> {
            Ok(Value::Null)
        }
        fn heap_bytes(&self) -> usize {
            UDF_HEAP_LIMIT + 1
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn heap_check_rejects_oversized_state() {
        assert!(matches!(
            check_heap("huge", &HugeState),
            Err(UdfError::HeapExceeded { .. })
        ));
    }

    #[test]
    fn float_arg_handles_types() {
        let args = vec![Value::Int(2), Value::Float(1.5), Value::Null, Value::from("x")];
        assert_eq!(float_arg("f", &args, 0).unwrap(), Some(2.0));
        assert_eq!(float_arg("f", &args, 1).unwrap(), Some(1.5));
        assert_eq!(float_arg("f", &args, 2).unwrap(), None);
        assert!(float_arg("f", &args, 3).is_err());
        assert!(matches!(
            float_arg("f", &args, 9),
            Err(UdfError::WrongArity { .. })
        ));
    }

    #[test]
    fn usize_arg_validates() {
        assert_eq!(usize_arg("f", &[Value::Int(5)], 0).unwrap(), 5);
        assert!(usize_arg("f", &[Value::Float(1.5)], 0).is_err());
        assert!(usize_arg("f", &[Value::Int(-1)], 0).is_err());
        assert!(usize_arg("f", &[Value::Null], 0).is_err());
    }
}
