use std::collections::HashMap;
use std::sync::Arc;

use crate::nlq_udf::{NlqBlockUdf, NlqUdf, ParamStyle};
use crate::scoring_udfs::{ClusterScoreUdf, DistanceUdf, FaScoreUdf, LinearRegScoreUdf};
use crate::{AggregateUdf, ScalarUdf};

/// Name-indexed registry of scalar and aggregate UDFs, playing the
/// role of the DBMS function catalog. Lookup is case-insensitive, as
/// SQL identifiers are.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    scalars: HashMap<String, Arc<dyn ScalarUdf>>,
    aggregates: HashMap<String, Arc<dyn AggregateUdf>>,
}

impl UdfRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        UdfRegistry::default()
    }

    /// A registry pre-loaded with every UDF from the paper:
    /// `nlq_list`, `nlq_str`, `nlq_block` (aggregates) and
    /// `linearregscore`, `fascore`, `distance`, `clusterscore`
    /// (scalars).
    pub fn with_builtins() -> Self {
        let mut r = UdfRegistry::new();
        r.register_aggregate(Arc::new(NlqUdf::new(ParamStyle::List)));
        r.register_aggregate(Arc::new(NlqUdf::new(ParamStyle::String)));
        r.register_aggregate(Arc::new(NlqBlockUdf));
        r.register_scalar(Arc::new(LinearRegScoreUdf));
        r.register_scalar(Arc::new(FaScoreUdf));
        r.register_scalar(Arc::new(DistanceUdf));
        r.register_scalar(Arc::new(ClusterScoreUdf));
        r
    }

    /// Registers (or replaces) a scalar UDF.
    pub fn register_scalar(&mut self, udf: Arc<dyn ScalarUdf>) {
        self.scalars.insert(udf.name().to_ascii_lowercase(), udf);
    }

    /// Registers (or replaces) an aggregate UDF.
    pub fn register_aggregate(&mut self, udf: Arc<dyn AggregateUdf>) {
        self.aggregates.insert(udf.name().to_ascii_lowercase(), udf);
    }

    /// Looks up a scalar UDF by name.
    pub fn scalar(&self, name: &str) -> Option<&Arc<dyn ScalarUdf>> {
        self.scalars.get(&name.to_ascii_lowercase())
    }

    /// Looks up an aggregate UDF by name.
    pub fn aggregate(&self, name: &str) -> Option<&Arc<dyn AggregateUdf>> {
        self.aggregates.get(&name.to_ascii_lowercase())
    }

    /// Whether any UDF (scalar or aggregate) has this name.
    pub fn contains(&self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        self.scalars.contains_key(&key) || self.aggregates.contains_key(&key)
    }

    /// Names of all registered scalar UDFs.
    pub fn scalar_names(&self) -> Vec<&str> {
        self.scalars.keys().map(String::as_str).collect()
    }

    /// Names of all registered aggregate UDFs.
    pub fn aggregate_names(&self) -> Vec<&str> {
        self.aggregates.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlq_storage::Value;

    #[test]
    fn builtins_are_present() {
        let r = UdfRegistry::with_builtins();
        for name in ["nlq_list", "nlq_str", "nlq_block"] {
            assert!(r.aggregate(name).is_some(), "{name}");
        }
        for name in ["linearregscore", "fascore", "distance", "clusterscore"] {
            assert!(r.scalar(name).is_some(), "{name}");
        }
        assert!(r.scalar("nope").is_none());
        assert!(r.contains("DISTANCE"));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let r = UdfRegistry::with_builtins();
        let udf = r.scalar("ClusterScore").unwrap();
        let out = udf.eval(&[Value::Float(2.0), Value::Float(1.0)]).unwrap();
        assert_eq!(out, Value::Int(2));
    }

    #[test]
    fn empty_registry_has_nothing() {
        let r = UdfRegistry::new();
        assert!(r.scalar_names().is_empty());
        assert!(r.aggregate_names().is_empty());
    }
}
