use nlq_models::scoring;
use nlq_storage::{bitmap_get, Value};

use crate::framework::{float_arg, ScalarBatchArg, ScalarUdf};
use crate::{Result, UdfError};

/// Collects `count` float arguments starting at `from`; `Ok(None)`
/// signals a NULL input (SQL semantics: the UDF returns NULL).
fn float_slice(udf: &str, args: &[Value], from: usize, count: usize) -> Result<Option<Vec<f64>>> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        match float_arg(udf, args, from + i)? {
            Some(v) => out.push(v),
            None => return Ok(None),
        }
    }
    Ok(Some(out))
}

/// One [`ScalarBatchArg`] lowered for the per-row hot loop: constants
/// resolved to plain floats once, columns as raw slices.
enum BatchSrc<'a> {
    Dense(&'a [f64]),
    Masked(&'a [f64], &'a [u64]),
    Lit(f64),
    Null,
}

impl BatchSrc<'_> {
    #[inline]
    fn at(&self, i: usize) -> Option<f64> {
        match self {
            BatchSrc::Dense(v) => Some(v[i]),
            BatchSrc::Masked(v, m) => bitmap_get(m, i).then(|| v[i]),
            BatchSrc::Lit(c) => Some(*c),
            BatchSrc::Null => None,
        }
    }
}

/// Lowers batch arguments, raising the per-constant type errors the
/// row path's [`float_arg`] would raise on every row.
fn lower<'a>(udf: &str, args: &'a [ScalarBatchArg<'a>]) -> Result<Vec<BatchSrc<'a>>> {
    args.iter()
        .enumerate()
        .map(|(i, a)| {
            Ok(match a {
                ScalarBatchArg::Col {
                    values,
                    validity: None,
                } => BatchSrc::Dense(values),
                ScalarBatchArg::Col {
                    values,
                    validity: Some(m),
                } => BatchSrc::Masked(values, m),
                ScalarBatchArg::Const(Value::Null) => BatchSrc::Null,
                ScalarBatchArg::Const(v) => {
                    BatchSrc::Lit(v.as_f64().ok_or_else(|| UdfError::InvalidArgument {
                        udf: udf.to_owned(),
                        message: format!("argument {} must be numeric, got {v:?}", i + 1),
                    })?)
                }
            })
        })
        .collect()
}

/// Shared `eval_batch` kernel: gathers `args` row by row into a reused
/// buffer and maps it through `f`, emitting NULL whenever any argument
/// is NULL — exactly the scoring UDFs' row semantics with the per-row
/// allocation, argument re-boxing, and dynamic dispatch stripped out.
fn batch_map(
    srcs: &[BatchSrc<'_>],
    rows: usize,
    out: &mut Vec<Value>,
    mut f: impl FnMut(&[f64]) -> Value,
) {
    let mut gathered = vec![0.0f64; srcs.len()];
    out.reserve(rows);
    'rows: for i in 0..rows {
        for (g, s) in gathered.iter_mut().zip(srcs) {
            match s.at(i) {
                Some(v) => *g = v,
                None => {
                    out.push(Value::Null);
                    continue 'rows;
                }
            }
        }
        out.push(f(&gathered));
    }
}

/// `linearregscore(X1..Xd, β0, β1..βd)` — the regression scoring UDF
/// (§3.5): returns `ŷ = β₀ + βᵀx`. Arity is `2d + 1`; `d` is inferred.
///
/// The paper stores the model as the one-row table `BETA(β1..βd)` and
/// cross-joins it with `X`, so each row's call receives both the point
/// and the coefficients.
pub struct LinearRegScoreUdf;

impl ScalarUdf for LinearRegScoreUdf {
    fn name(&self) -> &str {
        "linearregscore"
    }

    fn eval(&self, args: &[Value]) -> Result<Value> {
        if args.len() < 3 || args.len().is_multiple_of(2) {
            return Err(UdfError::WrongArity {
                udf: self.name().into(),
                expected: "2d + 1 (X1..Xd, b0, b1..bd)".into(),
                got: args.len(),
            });
        }
        let d = (args.len() - 1) / 2;
        let Some(x) = float_slice(self.name(), args, 0, d)? else {
            return Ok(Value::Null);
        };
        let Some(b0) = float_arg(self.name(), args, d)? else {
            return Ok(Value::Null);
        };
        let Some(beta) = float_slice(self.name(), args, d + 1, d)? else {
            return Ok(Value::Null);
        };
        Ok(Value::Float(scoring::linear_reg_score(&x, b0, &beta)))
    }

    fn eval_batch(
        &self,
        args: &[ScalarBatchArg<'_>],
        rows: usize,
        out: &mut Vec<Value>,
    ) -> Result<bool> {
        if args.len() < 3 || args.len().is_multiple_of(2) {
            return Err(UdfError::WrongArity {
                udf: self.name().into(),
                expected: "2d + 1 (X1..Xd, b0, b1..bd)".into(),
                got: args.len(),
            });
        }
        let d = (args.len() - 1) / 2;
        let srcs = lower(self.name(), args)?;
        batch_map(&srcs, rows, out, |g| {
            Value::Float(scoring::linear_reg_score(&g[..d], g[d], &g[d + 1..]))
        });
        Ok(true)
    }
}

/// `fascore(X1..Xd, μ1..μd, Λ1j..Λdj)` — the PCA / factor analysis
/// scoring UDF (§3.5): returns the `j`-th coordinate of the reduced
/// vector, `Λ_jᵀ (x − μ)`. Arity is `3d`.
///
/// "This UDF is called k times in the same SELECT statement with
/// j = 1..k to obtain x'_i" — one call per component, because UDFs
/// cannot return vectors.
pub struct FaScoreUdf;

impl ScalarUdf for FaScoreUdf {
    fn name(&self) -> &str {
        "fascore"
    }

    fn eval(&self, args: &[Value]) -> Result<Value> {
        if args.is_empty() || !args.len().is_multiple_of(3) {
            return Err(UdfError::WrongArity {
                udf: self.name().into(),
                expected: "3d (X1..Xd, mu1..mud, l1..ld)".into(),
                got: args.len(),
            });
        }
        let d = args.len() / 3;
        let (Some(x), Some(mu), Some(lam)) = (
            float_slice(self.name(), args, 0, d)?,
            float_slice(self.name(), args, d, d)?,
            float_slice(self.name(), args, 2 * d, d)?,
        ) else {
            return Ok(Value::Null);
        };
        Ok(Value::Float(scoring::fa_score(&x, &mu, &lam)))
    }

    fn eval_batch(
        &self,
        args: &[ScalarBatchArg<'_>],
        rows: usize,
        out: &mut Vec<Value>,
    ) -> Result<bool> {
        if args.is_empty() || !args.len().is_multiple_of(3) {
            return Err(UdfError::WrongArity {
                udf: self.name().into(),
                expected: "3d (X1..Xd, mu1..mud, l1..ld)".into(),
                got: args.len(),
            });
        }
        let d = args.len() / 3;
        let srcs = lower(self.name(), args)?;
        batch_map(&srcs, rows, out, |g| {
            Value::Float(scoring::fa_score(&g[..d], &g[d..2 * d], &g[2 * d..]))
        });
        Ok(true)
    }
}

/// `distance(X1..Xd, C1j..Cdj)` — squared Euclidean distance to one
/// centroid (§3.5). Arity is `2d`. Called `k` times per row for
/// clustering scoring.
pub struct DistanceUdf;

impl ScalarUdf for DistanceUdf {
    fn name(&self) -> &str {
        "distance"
    }

    fn eval(&self, args: &[Value]) -> Result<Value> {
        if args.is_empty() || !args.len().is_multiple_of(2) {
            return Err(UdfError::WrongArity {
                udf: self.name().into(),
                expected: "2d (X1..Xd, C1..Cd)".into(),
                got: args.len(),
            });
        }
        let d = args.len() / 2;
        let (Some(x), Some(c)) = (
            float_slice(self.name(), args, 0, d)?,
            float_slice(self.name(), args, d, d)?,
        ) else {
            return Ok(Value::Null);
        };
        Ok(Value::Float(scoring::squared_distance(&x, &c)))
    }

    fn eval_batch(
        &self,
        args: &[ScalarBatchArg<'_>],
        rows: usize,
        out: &mut Vec<Value>,
    ) -> Result<bool> {
        if args.is_empty() || !args.len().is_multiple_of(2) {
            return Err(UdfError::WrongArity {
                udf: self.name().into(),
                expected: "2d (X1..Xd, C1..Cd)".into(),
                got: args.len(),
            });
        }
        let d = args.len() / 2;
        let srcs = lower(self.name(), args)?;
        batch_map(&srcs, rows, out, |g| {
            Value::Float(scoring::squared_distance(&g[..d], &g[d..]))
        });
        Ok(true)
    }
}

/// `clusterscore(d1..dk)` — nearest-centroid selection (§3.5): returns
/// the 1-based subscript `J` such that `d_J ≤ d_j` for all `j`,
/// matching the paper's `j = 1..k` cluster numbering.
pub struct ClusterScoreUdf;

impl ScalarUdf for ClusterScoreUdf {
    fn name(&self) -> &str {
        "clusterscore"
    }

    fn eval(&self, args: &[Value]) -> Result<Value> {
        if args.is_empty() {
            return Err(UdfError::WrongArity {
                udf: self.name().into(),
                expected: "k >= 1 distances".into(),
                got: 0,
            });
        }
        let Some(dists) = float_slice(self.name(), args, 0, args.len())? else {
            return Ok(Value::Null);
        };
        Ok(Value::Int(scoring::nearest_centroid(&dists) as i64 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn floats(vals: &[f64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Float(v)).collect()
    }

    #[test]
    fn linearregscore_computes_prediction() {
        // x = (1, 2), b0 = 10, beta = (3, 4) -> 10 + 3 + 8 = 21
        let udf = LinearRegScoreUdf;
        let out = udf.eval(&floats(&[1.0, 2.0, 10.0, 3.0, 4.0])).unwrap();
        assert_eq!(out, Value::Float(21.0));
    }

    #[test]
    fn linearregscore_rejects_even_arity() {
        let udf = LinearRegScoreUdf;
        assert!(matches!(
            udf.eval(&floats(&[1.0, 2.0, 3.0, 4.0])),
            Err(UdfError::WrongArity { .. })
        ));
    }

    #[test]
    fn fascore_projects_centered_point() {
        // x=(3,4), mu=(1,1), lambda=(0.5,0.25) -> 1.75
        let udf = FaScoreUdf;
        let out = udf.eval(&floats(&[3.0, 4.0, 1.0, 1.0, 0.5, 0.25])).unwrap();
        assert_eq!(out, Value::Float(1.75));
    }

    #[test]
    fn distance_is_squared_euclidean() {
        let udf = DistanceUdf;
        let out = udf.eval(&floats(&[0.0, 0.0, 3.0, 4.0])).unwrap();
        assert_eq!(out, Value::Float(25.0));
    }

    #[test]
    fn clusterscore_returns_one_based_argmin() {
        let udf = ClusterScoreUdf;
        assert_eq!(udf.eval(&floats(&[5.0, 1.0, 3.0])).unwrap(), Value::Int(2));
        assert_eq!(udf.eval(&floats(&[0.5])).unwrap(), Value::Int(1));
        // Tie resolves to the lowest subscript, like the paper's <=.
        assert_eq!(udf.eval(&floats(&[2.0, 2.0])).unwrap(), Value::Int(1));
    }

    #[test]
    fn null_inputs_yield_null() {
        let mut args = floats(&[1.0, 2.0, 10.0, 3.0, 4.0]);
        args[1] = Value::Null;
        assert_eq!(LinearRegScoreUdf.eval(&args).unwrap(), Value::Null);

        let mut args = floats(&[0.0, 0.0, 3.0, 4.0]);
        args[3] = Value::Null;
        assert_eq!(DistanceUdf.eval(&args).unwrap(), Value::Null);

        assert_eq!(
            ClusterScoreUdf
                .eval(&[Value::Float(1.0), Value::Null])
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn non_numeric_inputs_error() {
        let args = vec![Value::from("x"), Value::Float(1.0), Value::Float(1.0)];
        assert!(LinearRegScoreUdf.eval(&args).is_err());
    }

    #[test]
    fn eval_batch_matches_row_eval() {
        // Mixed argument shapes: a dense column, a column with a NULL
        // hole, and constants — the batch result must equal calling
        // `eval` on each row's materialized arguments.
        let x1 = [1.0, 2.0, 3.0, 4.0, 5.0];
        let x2 = [0.5, -1.0, 2.5, 0.0, 9.0];
        let validity = [0b10111u64]; // row 3 of x2 is NULL
        let (b0, b1, b2) = (Value::Float(10.0), Value::Float(3.0), Value::Float(-2.0));
        let args = [
            ScalarBatchArg::Col {
                values: &x1,
                validity: None,
            },
            ScalarBatchArg::Col {
                values: &x2,
                validity: Some(&validity),
            },
            ScalarBatchArg::Const(&b0),
            ScalarBatchArg::Const(&b1),
            ScalarBatchArg::Const(&b2),
        ];
        let mut out = Vec::new();
        assert!(LinearRegScoreUdf
            .eval_batch(&args, x1.len(), &mut out)
            .unwrap());
        assert_eq!(out.len(), x1.len());
        for i in 0..x1.len() {
            let row = vec![
                Value::Float(x1[i]),
                if i == 3 {
                    Value::Null
                } else {
                    Value::Float(x2[i])
                },
                b0.clone(),
                b1.clone(),
                b2.clone(),
            ];
            assert_eq!(out[i], LinearRegScoreUdf.eval(&row).unwrap(), "row {i}");
        }
    }

    #[test]
    fn eval_batch_checks_arity_and_const_types() {
        let x = [1.0, 2.0];
        let col = ScalarBatchArg::Col {
            values: &x,
            validity: None,
        };
        let mut out = Vec::new();
        assert!(matches!(
            LinearRegScoreUdf.eval_batch(&[col, col], 2, &mut out),
            Err(UdfError::WrongArity { .. })
        ));
        let s = Value::from("oops");
        assert!(LinearRegScoreUdf
            .eval_batch(&[col, ScalarBatchArg::Const(&s), col], 2, &mut out)
            .is_err());
        // A NULL constant turns every row NULL, same as the row path.
        let null = Value::Null;
        out.clear();
        assert!(DistanceUdf
            .eval_batch(&[col, ScalarBatchArg::Const(&null)], 2, &mut out)
            .unwrap());
        assert_eq!(out, vec![Value::Null, Value::Null]);
    }
}
