//! Property-based tests for the UDF layer: the aggregate UDF must
//! match direct computation for arbitrary data, partials must merge
//! associatively, and scoring UDFs must match the pure scoring
//! functions.

use nlq_models::{scoring, MatrixShape, Nlq};
use nlq_storage::Value;
use nlq_testkit::{run_cases, Rng};
use nlq_udf::pack::{pack_vector, unpack_nlq};
use nlq_udf::{
    AggregateUdf, ClusterScoreUdf, DistanceUdf, FaScoreUdf, LinearRegScoreUdf, NlqUdf, ParamStyle,
    ScalarUdf,
};

fn random_rows(rng: &mut Rng) -> Vec<Vec<f64>> {
    let d = rng.range_usize(1, 6);
    let n = rng.range_usize(1, 40);
    (0..n).map(|_| rng.vec_f64(d, -1e6, 1e6)).collect()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

fn run_udf(style: ParamStyle, shape: &str, rows: &[Vec<f64>]) -> Nlq {
    let udf = NlqUdf::new(style);
    let mut state = udf.init();
    let d = rows[0].len();
    for r in rows {
        let args = match style {
            ParamStyle::List => {
                let mut a = vec![Value::Int(d as i64), Value::from(shape)];
                a.extend(r.iter().map(|&v| Value::Float(v)));
                a
            }
            ParamStyle::String => vec![Value::from(shape), Value::Str(pack_vector(r))],
        };
        state.accumulate(&args).unwrap();
    }
    unpack_nlq(state.finalize().unwrap().as_str().unwrap()).unwrap()
}

#[test]
fn aggregate_udf_matches_direct() {
    run_cases(32, 0xadf1, |rng| {
        let rows = random_rows(rng);
        let d = rows[0].len();
        for (shape_name, shape) in [
            ("diag", MatrixShape::Diagonal),
            ("triang", MatrixShape::Triangular),
            ("full", MatrixShape::Full),
        ] {
            let direct = Nlq::from_rows(d, shape, &rows);
            for style in [ParamStyle::List, ParamStyle::String] {
                let got = run_udf(style, shape_name, &rows);
                assert_eq!(got.n(), direct.n());
                for a in 0..d {
                    assert!(close(got.l()[a], direct.l()[a]));
                    assert!(close(got.min()[a], direct.min()[a]));
                    assert!(close(got.max()[a], direct.max()[a]));
                    for b in 0..d {
                        assert!(
                            close(got.q_raw()[(a, b)], direct.q_raw()[(a, b)]),
                            "style {style:?} shape {shape_name} Q[{a}][{b}]"
                        );
                    }
                }
            }
        }
    });
}

#[test]
fn partial_merges_match_any_split() {
    run_cases(32, 0xadf2, |rng| {
        let rows = random_rows(rng);
        let d = rows[0].len();
        let cut = rng.range_usize(0, rows.len());
        let udf = NlqUdf::new(ParamStyle::List);
        let mut left = udf.init();
        let mut right = udf.init();
        for (i, r) in rows.iter().enumerate() {
            let mut args = vec![Value::Int(d as i64), Value::from("triang")];
            args.extend(r.iter().map(|&v| Value::Float(v)));
            if i < cut {
                left.accumulate(&args).unwrap();
            } else {
                right.accumulate(&args).unwrap();
            }
        }
        left.merge(right.as_ref()).unwrap();
        let merged = unpack_nlq(left.finalize().unwrap().as_str().unwrap()).unwrap();
        let whole = run_udf(ParamStyle::List, "triang", &rows);
        assert_eq!(merged.n(), whole.n());
        for a in 0..d {
            assert!(close(merged.l()[a], whole.l()[a]));
            for b in 0..=a {
                assert!(close(merged.q_raw()[(a, b)], whole.q_raw()[(a, b)]));
            }
        }
    });
}

/// The summary store's maintenance invariant: folding partition and
/// delta states into a summary in *any* merge order and grouping must
/// reproduce the single-scan state — including NULL-bearing rows
/// (skipped identically everywhere) and empty partitions (identity
/// elements for merge).
#[test]
fn merge_any_order_and_grouping_matches_single_scan() {
    run_cases(64, 0xadf5, |rng| {
        let d = rng.range_usize(1, 6);
        let n = rng.range_usize(0, 60);
        // Rows as SQL values; ~1 in 8 coordinates is NULL, which must
        // drop the whole row from the statistics.
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| {
                (0..d)
                    .map(|_| {
                        if rng.chance(0.125) {
                            Value::Null
                        } else {
                            Value::Float(rng.range_f64(-1e3, 1e3))
                        }
                    })
                    .collect()
            })
            .collect();
        let shape = ["diag", "triang", "full"][rng.range_usize(0, 2)];
        let udf = NlqUdf::new(ParamStyle::List);
        let args_for = |r: &[Value]| {
            let mut a = vec![Value::Int(d as i64), Value::from(shape)];
            a.extend(r.iter().cloned());
            a
        };

        // Reference: one state, one scan.
        let mut single = udf.init();
        for r in &rows {
            single.accumulate(&args_for(r)).unwrap();
        }
        let want_value = single.finalize().unwrap();

        // Scatter rows across partitions (some end up empty), then add
        // a couple of guaranteed-empty delta states.
        let parts = rng.range_usize(1, 8);
        let mut states: Vec<_> = (0..parts + 2).map(|_| udf.init()).collect();
        for r in &rows {
            let p = rng.range_usize(0, parts - 1);
            states[p].accumulate(&args_for(r)).unwrap();
        }

        // Random merge tree: any pair, either direction, until one
        // state remains. This covers arbitrary order *and* grouping.
        while states.len() > 1 {
            let i = rng.range_usize(0, states.len() - 1);
            let mut a = states.swap_remove(i);
            let j = rng.range_usize(0, states.len() - 1);
            let b = states.swap_remove(j);
            a.merge(b.as_ref()).unwrap();
            states.push(a);
        }
        let merged = states.pop().unwrap().finalize().unwrap();
        if want_value.is_null() {
            // All rows NULL-skipped (or n = 0): both sides agree on
            // the empty state.
            assert!(merged.is_null(), "empty merge finalized {merged:?}");
            return;
        }
        let want = unpack_nlq(want_value.as_str().unwrap()).unwrap();
        let got = unpack_nlq(merged.as_str().unwrap()).unwrap();

        // "Within 1e-12": relative to the accumulated L1 mass of each
        // entry, the correct scale for reassociated sums.
        let kept: Vec<Vec<f64>> = rows
            .iter()
            .filter(|r| r.iter().all(|v| !v.is_null()))
            .map(|r| r.iter().map(|v| v.as_f64().unwrap()).collect())
            .collect();
        let close12 = |a: f64, b: f64, mass: f64| (a - b).abs() <= 1e-12 * (1.0 + mass);
        assert_eq!(got.n(), want.n());
        assert_eq!(got.d(), want.d());
        for a in 0..d {
            let mass_l: f64 = kept.iter().map(|r| r[a].abs()).sum();
            assert!(close12(got.l()[a], want.l()[a], mass_l), "L[{a}]");
            assert_eq!(got.min()[a], want.min()[a], "min[{a}] is merge-exact");
            assert_eq!(got.max()[a], want.max()[a], "max[{a}] is merge-exact");
            for b in 0..d {
                let mass_q: f64 = kept.iter().map(|r| (r[a] * r[b]).abs()).sum();
                assert!(
                    close12(got.q_raw()[(a, b)], want.q_raw()[(a, b)], mass_q),
                    "shape {shape} Q[{a}][{b}]"
                );
            }
        }
    });
}

#[test]
fn scoring_udfs_match_pure_functions() {
    run_cases(48, 0xadf3, |rng| {
        let d = rng.range_usize(1, 7);
        let x = rng.vec_f64(d, -1e3, 1e3);
        let params = rng.vec_f64(8, -1e3, 1e3);
        let b0 = rng.range_f64(-1e3, 1e3);
        let beta = &params[..d];
        let mu = &params[..d];
        let lam = &params[..d];
        let floats =
            |vals: &[f64]| -> Vec<Value> { vals.iter().map(|&v| Value::Float(v)).collect() };

        // linearregscore
        let mut args = floats(&x);
        args.push(Value::Float(b0));
        args.extend(floats(beta));
        let got = LinearRegScoreUdf.eval(&args).unwrap();
        assert_eq!(got, Value::Float(scoring::linear_reg_score(&x, b0, beta)));

        // fascore
        let mut args = floats(&x);
        args.extend(floats(mu));
        args.extend(floats(lam));
        let got = FaScoreUdf.eval(&args).unwrap();
        assert_eq!(got, Value::Float(scoring::fa_score(&x, mu, lam)));

        // distance
        let mut args = floats(&x);
        args.extend(floats(mu));
        let got = DistanceUdf.eval(&args).unwrap();
        assert_eq!(got, Value::Float(scoring::squared_distance(&x, mu)));
    });
}

#[test]
fn clusterscore_matches_argmin() {
    run_cases(48, 0xadf4, |rng| {
        let k = rng.range_usize(1, 19);
        let dists = rng.vec_f64(k, 0.0, 1e9);
        let args: Vec<Value> = dists.iter().map(|&v| Value::Float(v)).collect();
        let got = ClusterScoreUdf.eval(&args).unwrap();
        assert_eq!(
            got,
            Value::Int(scoring::nearest_centroid(&dists) as i64 + 1)
        );
    });
}
