//! Property-based tests for the UDF layer: the aggregate UDF must
//! match direct computation for arbitrary data, partials must merge
//! associatively, and scoring UDFs must match the pure scoring
//! functions.

use nlq_models::{scoring, MatrixShape, Nlq};
use nlq_storage::Value;
use nlq_udf::pack::{pack_vector, unpack_nlq};
use nlq_udf::{
    AggregateUdf, ClusterScoreUdf, DistanceUdf, FaScoreUdf, LinearRegScoreUdf, NlqUdf,
    ParamStyle, ScalarUdf,
};
use proptest::prelude::*;

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..=6, 1usize..=40).prop_flat_map(|(d, n)| {
        proptest::collection::vec(proptest::collection::vec(-1e6_f64..1e6, d), n)
    })
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

fn run_udf(style: ParamStyle, shape: &str, rows: &[Vec<f64>]) -> Nlq {
    let udf = NlqUdf::new(style);
    let mut state = udf.init();
    let d = rows[0].len();
    for r in rows {
        let args = match style {
            ParamStyle::List => {
                let mut a = vec![Value::Int(d as i64), Value::from(shape)];
                a.extend(r.iter().map(|&v| Value::Float(v)));
                a
            }
            ParamStyle::String => vec![Value::from(shape), Value::Str(pack_vector(r))],
        };
        state.accumulate(&args).unwrap();
    }
    unpack_nlq(state.finalize().unwrap().as_str().unwrap()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn aggregate_udf_matches_direct(rows in rows_strategy()) {
        let d = rows[0].len();
        for (shape_name, shape) in [
            ("diag", MatrixShape::Diagonal),
            ("triang", MatrixShape::Triangular),
            ("full", MatrixShape::Full),
        ] {
            let direct = Nlq::from_rows(d, shape, &rows);
            for style in [ParamStyle::List, ParamStyle::String] {
                let got = run_udf(style, shape_name, &rows);
                prop_assert_eq!(got.n(), direct.n());
                for a in 0..d {
                    prop_assert!(close(got.l()[a], direct.l()[a]));
                    prop_assert!(close(got.min()[a], direct.min()[a]));
                    prop_assert!(close(got.max()[a], direct.max()[a]));
                    for b in 0..d {
                        prop_assert!(
                            close(got.q_raw()[(a, b)], direct.q_raw()[(a, b)]),
                            "style {style:?} shape {shape_name} Q[{a}][{b}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partial_merges_match_any_split(rows in rows_strategy(), cut_seed in 0usize..1000) {
        let d = rows[0].len();
        let cut = cut_seed % (rows.len() + 1);
        let udf = NlqUdf::new(ParamStyle::List);
        let mut left = udf.init();
        let mut right = udf.init();
        for (i, r) in rows.iter().enumerate() {
            let mut args = vec![Value::Int(d as i64), Value::from("triang")];
            args.extend(r.iter().map(|&v| Value::Float(v)));
            if i < cut {
                left.accumulate(&args).unwrap();
            } else {
                right.accumulate(&args).unwrap();
            }
        }
        left.merge(right.as_ref()).unwrap();
        let merged = unpack_nlq(left.finalize().unwrap().as_str().unwrap()).unwrap();
        let whole = run_udf(ParamStyle::List, "triang", &rows);
        prop_assert_eq!(merged.n(), whole.n());
        for a in 0..d {
            prop_assert!(close(merged.l()[a], whole.l()[a]));
            for b in 0..=a {
                prop_assert!(close(merged.q_raw()[(a, b)], whole.q_raw()[(a, b)]));
            }
        }
    }

    #[test]
    fn scoring_udfs_match_pure_functions(
        x in proptest::collection::vec(-1e3_f64..1e3, 1..8),
        params in proptest::collection::vec(-1e3_f64..1e3, 8),
        b0 in -1e3_f64..1e3,
    ) {
        let d = x.len();
        let beta = &params[..d];
        let mu = &params[..d];
        let lam = &params[..d];
        let floats = |vals: &[f64]| -> Vec<Value> {
            vals.iter().map(|&v| Value::Float(v)).collect()
        };

        // linearregscore
        let mut args = floats(&x);
        args.push(Value::Float(b0));
        args.extend(floats(beta));
        let got = LinearRegScoreUdf.eval(&args).unwrap();
        prop_assert_eq!(got, Value::Float(scoring::linear_reg_score(&x, b0, beta)));

        // fascore
        let mut args = floats(&x);
        args.extend(floats(mu));
        args.extend(floats(lam));
        let got = FaScoreUdf.eval(&args).unwrap();
        prop_assert_eq!(got, Value::Float(scoring::fa_score(&x, mu, lam)));

        // distance
        let mut args = floats(&x);
        args.extend(floats(mu));
        let got = DistanceUdf.eval(&args).unwrap();
        prop_assert_eq!(got, Value::Float(scoring::squared_distance(&x, mu)));
    }

    #[test]
    fn clusterscore_matches_argmin(dists in proptest::collection::vec(0.0_f64..1e9, 1..20)) {
        let args: Vec<Value> = dists.iter().map(|&v| Value::Float(v)).collect();
        let got = ClusterScoreUdf.eval(&args).unwrap();
        prop_assert_eq!(
            got,
            Value::Int(scoring::nearest_centroid(&dists) as i64 + 1)
        );
    }
}
