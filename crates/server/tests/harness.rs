//! Deterministic in-process server harness.
//!
//! Every test boots a real [`serve`] instance on an OS-assigned port
//! with a scripted [`ServerConfig`] and drives it through
//! [`nlq_client::Client`]. Race windows are synchronized on condition
//! variables and observable server state (the shared
//! [`nlq_server::Metrics`] counters), never on bare sleeps, so the
//! chunk-boundary, cancel-race, and drain tests are reproducible.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use nlq_client::{validate_exposition, Client, ClientError, Outcome, Phase};
use nlq_engine::{Db, SqlEngine};
use nlq_feature::TickGate;
use nlq_server::wire::{ErrorCode, MAX_FRAME};
use nlq_server::{serve, Metrics, ServerConfig, ServerHandle};
use nlq_storage::Value;
use nlq_udf::ScalarUdf;

/// An in-process server over its own single-partition `Db`
/// (single-partition keeps scan order, and therefore chunk contents,
/// deterministic).
struct TestServer {
    db: Arc<Db>,
    handle: ServerHandle,
}

impl TestServer {
    fn start(config: ServerConfig) -> TestServer {
        TestServer::start_with(Arc::new(Db::new(1)), config)
    }

    fn start_with(db: Arc<Db>, config: ServerConfig) -> TestServer {
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..config
        };
        let handle =
            serve(Arc::clone(&db) as Arc<dyn SqlEngine>, config).expect("bind test server");
        TestServer { db, handle }
    }

    fn client(&self) -> Client {
        Client::connect(self.handle.addr()).expect("connect to test server")
    }

    fn metrics(&self) -> Arc<Metrics> {
        self.handle.metrics()
    }
}

/// Loads `n` rows `(i, i + 0.5)` into table `t`.
fn load_rows(c: &mut Client, t: &str, n: usize) {
    c.execute(&format!("CREATE TABLE {t} (i INT, X1 FLOAT)"))
        .unwrap();
    let values: Vec<String> = (0..n).map(|i| format!("({i}, {i}.5)")).collect();
    c.execute(&format!("INSERT INTO {t} VALUES {}", values.join(", ")))
        .unwrap();
}

/// Condvar-backed gate shared with the `gate`/`stall` UDFs: tests wait
/// for a scan to provably be inside an eval (`wait_entered`) before
/// acting, and decide when blocked evals may proceed (`release`).
#[derive(Debug, Default)]
struct GateState {
    entered: Mutex<u64>,
    entered_cv: Condvar,
    open: Mutex<bool>,
    open_cv: Condvar,
}

impl GateState {
    fn note_entered(&self) {
        *self.entered.lock().unwrap() += 1;
        self.entered_cv.notify_all();
    }

    fn wait_entered(&self, n: u64) {
        let mut e = self.entered.lock().unwrap();
        while *e < n {
            e = self.entered_cv.wait(e).unwrap();
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.open_cv.notify_all();
    }
}

/// `gate(x)`: signals entry, then blocks until the test releases it.
#[derive(Debug)]
struct GateUdf(Arc<GateState>);

impl ScalarUdf for GateUdf {
    fn name(&self) -> &str {
        "gate"
    }
    fn eval(&self, args: &[Value]) -> nlq_udf::Result<Value> {
        self.0.note_entered();
        let mut open = self.0.open.lock().unwrap();
        while !*open {
            open = self.0.open_cv.wait(open).unwrap();
        }
        Ok(args[0].clone())
    }
}

/// `stall(x)`: signals entry and takes 10 ms per call — a query long
/// enough to still be running when a drain grace period expires.
#[derive(Debug)]
struct StallUdf(Arc<GateState>);

impl ScalarUdf for StallUdf {
    fn name(&self) -> &str {
        "stall"
    }
    fn eval(&self, args: &[Value]) -> nlq_udf::Result<Value> {
        self.0.note_entered();
        std::thread::sleep(Duration::from_millis(10));
        Ok(args[0].clone())
    }
}

/// Scrapes the *live* Prometheus endpoint and validates the text
/// exposition format — every e2e test runs this against real traffic
/// before tearing its server down, so a malformed metric line (bad
/// name, non-numeric value, duplicate series) fails the whole suite,
/// not just the dedicated metrics test.
fn assert_live_scrape_valid(c: &mut Client) {
    let text = c.metrics_prometheus().expect("live Prometheus scrape");
    if let Err(why) = validate_exposition(&text) {
        panic!("live scrape violates the exposition format: {why}\n{text}");
    }
}

/// Polls an observable condition to true within a hard deadline.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// Encoded size of one `Value::Int` row cell: 1 tag byte + 8 payload
/// bytes. `SELECT i FROM t` rows are exactly this big on the wire,
/// which is what makes the boundary tests exact.
const INT_ROW_BYTES: usize = 9;

#[test]
fn large_result_streams_chunked_and_matches_direct_execution() {
    let ts = TestServer::start(ServerConfig {
        chunk_bytes: 64,
        ..ServerConfig::default()
    });
    let mut c = ts.client();
    load_rows(&mut c, "R", 500);

    let direct = ts.db.execute("SELECT i, X1 FROM R").unwrap();
    let mut stream = c.query("SELECT i, X1 FROM R").unwrap();
    assert_eq!(stream.columns().unwrap(), ["i", "X1"]);
    let rows: Vec<Vec<Value>> = stream.by_ref().map(|r| r.unwrap()).collect();
    assert!(
        stream.chunks_received() >= 4,
        "expected a many-chunk stream, got {}",
        stream.chunks_received()
    );
    assert!(stream.stats().is_some(), "trailer must be verified");
    assert_eq!(rows, direct.rows, "streamed rows must be identical");
    drop(stream);

    // The collecting convenience API sees the same result.
    let collected = c.execute("SELECT i, X1 FROM R").unwrap();
    assert_eq!(collected.rows, direct.rows);
    assert!(ts.metrics().chunks_streamed.load(Ordering::Relaxed) >= 8);
    assert!(ts.metrics().bytes_streamed.load(Ordering::Relaxed) > 0);
    assert_live_scrape_valid(&mut c);
}

#[test]
fn chunks_cut_exactly_at_the_configured_boundary() {
    // chunk = 4 int rows exactly; 8 rows → 2 full chunks, 9 rows → 3.
    let ts = TestServer::start(ServerConfig {
        chunk_bytes: 4 * INT_ROW_BYTES,
        ..ServerConfig::default()
    });
    let mut c = ts.client();
    load_rows(&mut c, "B", 9);

    let mut stream = c.query("SELECT i FROM B WHERE i < 8").unwrap();
    let rows: Vec<_> = stream.by_ref().map(|r| r.unwrap()).collect();
    assert_eq!(rows.len(), 8);
    assert_eq!(stream.chunks_received(), 2, "8 rows = exactly 2 chunks");
    drop(stream);

    let mut stream = c.query("SELECT i FROM B").unwrap();
    let rows: Vec<_> = stream.by_ref().map(|r| r.unwrap()).collect();
    assert_eq!(rows.len(), 9);
    assert_eq!(stream.chunks_received(), 3, "one past the boundary spills");
    drop(stream);
    assert_live_scrape_valid(&mut c);
}

#[test]
fn byte_budget_exactly_at_passes_one_past_refuses_mid_stream() {
    const N: usize = 10;
    // Exactly at the budget: all rows stream.
    let at = TestServer::start(ServerConfig {
        max_result_bytes: N * INT_ROW_BYTES,
        chunk_bytes: INT_ROW_BYTES, // one row per chunk
        ..ServerConfig::default()
    });
    let mut c = at.client();
    load_rows(&mut c, "E", N);
    let rs = c.execute("SELECT i FROM E").unwrap();
    assert_eq!(rs.rows.len(), N);

    // One byte short: the stream opens, five chunks arrive, then the
    // budget trips mid-stream as a terminal TooLarge — not after
    // encoding everything.
    let past = TestServer::start(ServerConfig {
        max_result_bytes: 5 * INT_ROW_BYTES,
        chunk_bytes: INT_ROW_BYTES,
        ..ServerConfig::default()
    });
    let mut c = past.client();
    load_rows(&mut c, "E", N);
    let mut stream = c.query("SELECT i FROM E").unwrap();
    let mut delivered = 0;
    let mut failure = None;
    for item in stream.by_ref() {
        match item {
            Ok(_) => delivered += 1,
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }
    assert_eq!(delivered, 5, "rows inside the budget still stream");
    match failure {
        Some(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::TooLarge),
        other => panic!("expected mid-stream TooLarge, got {other:?}"),
    }
    drop(stream);
    assert_eq!(past.metrics().results_too_large.load(Ordering::Relaxed), 1);
    // The session survives the refused statement.
    c.ping().unwrap();
    assert_live_scrape_valid(&mut c);
}

/// `pad(x)`: a 64 KiB string per row, to build results bigger than
/// any single frame is allowed to be.
#[derive(Debug)]
struct Pad;

impl ScalarUdf for Pad {
    fn name(&self) -> &str {
        "pad"
    }
    fn eval(&self, _args: &[Value]) -> nlq_udf::Result<Value> {
        Ok(Value::Str("x".repeat(1 << 16)))
    }
}

#[test]
fn results_larger_than_max_frame_stream_to_completion() {
    let db = Arc::new(Db::new(1));
    db.with_registry_mut(|r| r.register_scalar(Arc::new(Pad)));
    let ts = TestServer::start_with(db, ServerConfig::default());
    let mut c = ts.client();
    // 1100 × 64 KiB ≈ 68.8 MiB encoded — beyond the 64 MiB frame cap
    // that used to bound a whole result.
    load_rows(&mut c, "P", 1100);
    c.set_option("block_scan", "off").unwrap();

    let mut stream = c.query("SELECT pad(i) FROM P").unwrap();
    let mut rows = 0usize;
    for item in stream.by_ref() {
        let row = item.unwrap();
        assert_eq!(row[0].as_str().map(str::len), Some(1 << 16));
        rows += 1;
    }
    assert_eq!(rows, 1100);
    assert!(stream.stats().is_some(), "trailer totals verified");
    assert!(
        stream.chunks_received() > 64,
        "got {} chunks",
        stream.chunks_received()
    );
    drop(stream);
    let streamed = ts.metrics().bytes_streamed.load(Ordering::Relaxed);
    assert!(
        streamed as usize > MAX_FRAME,
        "streamed {streamed} bytes, frame cap is {MAX_FRAME}"
    );
    assert_live_scrape_valid(&mut c);
}

#[test]
fn cancel_wins_the_race_against_a_blocked_scan() {
    let gate = Arc::new(GateState::default());
    let db = Arc::new(Db::new(1));
    db.with_registry_mut(|r| r.register_scalar(Arc::new(GateUdf(Arc::clone(&gate)))));
    let ts = TestServer::start_with(db, ServerConfig::default());
    let metrics = ts.metrics();

    let mut c = ts.client();
    load_rows(&mut c, "G", 2);
    c.set_option("block_scan", "off").unwrap();

    let mut stream = c.query("SELECT gate(X1) FROM G").unwrap();
    // The scan is provably inside row 1's eval...
    gate.wait_entered(1);
    // ...cancel it, and wait until the server has actually flipped the
    // token (the reader counts the request only after delivering it).
    stream.cancel().unwrap();
    wait_until("cancel delivery", || {
        metrics.cancel_requests.load(Ordering::Relaxed) == 1
    });
    // Only now may the scan proceed: the next per-row check cancels.
    gate.release();
    match stream.next() {
        Some(Err(ClientError::Server { code, .. })) => assert_eq!(code, ErrorCode::Cancelled),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    drop(stream);

    assert_eq!(metrics.queries_cancelled.load(Ordering::Relaxed), 1);
    // The session outlives its cancelled statement, and reports it.
    c.ping().unwrap();
    let status = c.status().unwrap();
    assert_eq!(status.lookup("last.cancelled"), Some(&Value::Int(1)));
    assert_live_scrape_valid(&mut c);
}

#[test]
fn cancel_mid_scan_at_one_million_rows_frees_the_worker_fast() {
    let gate = Arc::new(GateState::default());
    let db = Arc::new(Db::new(1));
    db.with_registry_mut(|r| r.register_scalar(Arc::new(GateUdf(Arc::clone(&gate)))));
    let points: Vec<Vec<f64>> = (0..1_000_000).map(|i| vec![i as f64]).collect();
    db.load_points("M", &points, false).unwrap();
    let ts = TestServer::start_with(
        db,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let metrics = ts.metrics();

    let mut c = ts.client();
    c.set_option("block_scan", "off").unwrap();
    let mut stream = c.query("SELECT gate(X1) FROM M").unwrap();
    // The scan is provably inside row 1 of 1M; cancel it and wait for
    // the token to be flipped before letting the eval return.
    gate.wait_entered(1);
    stream.cancel().unwrap();
    wait_until("cancel delivery", || {
        metrics.cancel_requests.load(Ordering::Relaxed) == 1
    });

    // 999,999 rows remain. Reaction time is one per-row check, not the
    // tail of the scan: the terminal frame must arrive within 100 ms.
    let t0 = Instant::now();
    gate.release();
    match stream.next() {
        Some(Err(ClientError::Server { code, .. })) => assert_eq!(code, ErrorCode::Cancelled),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    let reacted_in = t0.elapsed();
    drop(stream);
    assert!(
        reacted_in < Duration::from_millis(100),
        "cancel took {reacted_in:?} to end a 1M-row scan"
    );
    assert_eq!(metrics.queries_cancelled.load(Ordering::Relaxed), 1);

    // The lone worker really is back in the pool: live METRICS report
    // it idle over an empty queue.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m = c.metrics().unwrap();
        if m.lookup("workers_busy") == Some(&Value::Int(0))
            && m.lookup("queue_depth") == Some(&Value::Int(0))
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "worker never freed: {:?} busy, {:?} queued",
            m.lookup("workers_busy"),
            m.lookup("queue_depth")
        );
        std::thread::yield_now();
    }
    assert_live_scrape_valid(&mut c);
}

#[test]
fn completion_wins_the_race_against_a_late_cancel() {
    let gate = Arc::new(GateState::default());
    let db = Arc::new(Db::new(1));
    db.with_registry_mut(|r| r.register_scalar(Arc::new(GateUdf(Arc::clone(&gate)))));
    let ts = TestServer::start_with(db, ServerConfig::default());
    let metrics = ts.metrics();

    let mut c = ts.client();
    load_rows(&mut c, "G", 1);
    c.set_option("block_scan", "off").unwrap();

    let mut stream = c.query("SELECT gate(X1) FROM G").unwrap();
    gate.wait_entered(1);
    gate.release();
    // The statement completes normally...
    let rows: Vec<_> = stream.by_ref().map(|r| r.unwrap()).collect();
    assert_eq!(rows, vec![vec![Value::Float(0.5)]]);
    // ...and a cancel arriving after its terminal frame must be a
    // no-op: acknowledged by nothing, misdelivered to no one.
    stream.cancel().unwrap();
    drop(stream);
    wait_until("late cancel delivery", || {
        metrics.cancel_requests.load(Ordering::Relaxed) == 1
    });

    // The next statement on the session is NOT the cancel's victim.
    let rs = c.execute("SELECT count(*) FROM G").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(1));
    assert_eq!(metrics.queries_cancelled.load(Ordering::Relaxed), 0);
    assert_live_scrape_valid(&mut c);
}

#[test]
fn drain_cancels_streaming_queries_past_the_grace_period() {
    let gate = Arc::new(GateState::default());
    let db = Arc::new(Db::new(1));
    db.with_registry_mut(|r| r.register_scalar(Arc::new(StallUdf(Arc::clone(&gate)))));
    let mut ts = TestServer::start_with(
        db,
        ServerConfig {
            drain_grace: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    );
    let metrics = ts.metrics();
    let addr = ts.handle.addr();

    {
        let mut c = ts.client();
        load_rows(&mut c, "S", 500);
    }
    // ~5 s of single-partition scan: still in flight when the 100 ms
    // grace expires, so the drain's second phase must cancel it.
    let worker = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.set_option("block_scan", "off").unwrap();
        c.execute("SELECT stall(X1) FROM S")
    });
    gate.wait_entered(1);

    // The scrape must be valid while a statement is mid-flight (the
    // server is about to shut down, so this is the last live window).
    assert_live_scrape_valid(&mut ts.client());

    let t0 = Instant::now();
    ts.handle.shutdown();
    let drained_in = t0.elapsed();
    assert!(
        drained_in < Duration::from_secs(3),
        "drain waited {drained_in:?} — it must cancel, not sit out a 5 s scan"
    );

    match worker.join().expect("client thread") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Cancelled),
        other => panic!("expected Cancelled from the drain, got {other:?}"),
    }
    assert_eq!(metrics.queries_cancelled.load(Ordering::Relaxed), 1);
}

#[test]
fn trace_ring_pages_completed_queries_over_the_wire() {
    let ts = TestServer::start(ServerConfig {
        // Everything is slow at a zero threshold, so the slow ring
        // retains this test's queries too.
        slow_query: Duration::from_millis(0),
        ..ServerConfig::default()
    });
    let mut c = ts.client();
    load_rows(&mut c, "T", 100);
    c.execute("SELECT sum(X1) FROM T").unwrap();
    let _ = c.execute("SELECT nope FROM T");

    let records = c.trace(false, 0, 256).unwrap();
    // CREATE, INSERT, the aggregate, and the failed statement — every
    // completed statement is retained, in completion order.
    assert!(records.len() >= 4, "got {} trace records", records.len());
    assert!(records.windows(2).all(|w| w[0].id < w[1].id));

    let agg = records
        .iter()
        .find(|r| r.sql == "SELECT sum(X1) FROM T")
        .expect("aggregate query traced");
    assert_eq!(agg.outcome, Outcome::Ok);
    assert_eq!(agg.session, c.session_id());
    assert!(agg.total_nanos > 0);
    let phases: Vec<&str> = agg.spans.iter().map(|s| s.phase.name()).collect();
    for want in ["parse", "scan", "encode", "stream"] {
        assert!(phases.contains(&want), "missing {want} span in {phases:?}");
    }
    let scan = agg.spans.iter().find(|s| s.phase == Phase::Scan).unwrap();
    assert_eq!(scan.rows, 100);
    // Spans never claim more time than the statement took end to end.
    assert!(agg.spans.iter().map(|s| s.dur_nanos).sum::<u64>() <= agg.total_nanos);

    let failed = records
        .iter()
        .find(|r| r.sql.contains("nope"))
        .expect("failed query traced");
    assert_eq!(failed.outcome, Outcome::Error);
    assert!(!failed.detail.is_empty(), "error detail retained");

    // Paging: after the last id there is nothing; the slow ring (zero
    // threshold) retained the same statements, all marked slow.
    let last_id = records.last().unwrap().id;
    assert!(c.trace(false, last_id, 256).unwrap().is_empty());
    let slow = c.trace(true, 0, 256).unwrap();
    assert!(slow.len() >= 4);
    assert!(slow.iter().all(|r| r.slow));
    assert!(ts.metrics().slow_queries.load(Ordering::Relaxed) >= 4);
    assert_live_scrape_valid(&mut c);
}

#[test]
fn cancel_of_a_queued_statement_skips_execution_entirely() {
    let gate = Arc::new(GateState::default());
    let db = Arc::new(Db::new(1));
    db.with_registry_mut(|r| r.register_scalar(Arc::new(GateUdf(Arc::clone(&gate)))));
    let ts = TestServer::start_with(
        db,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let metrics = ts.metrics();

    let mut c1 = ts.client();
    load_rows(&mut c1, "Q", 2);
    c1.set_option("block_scan", "off").unwrap();

    // Occupy the lone worker with a gated scan...
    let mut blocked = c1.query("SELECT gate(X1) FROM Q").unwrap();
    gate.wait_entered(1);

    // ...queue a second statement behind it, and cancel it while it is
    // provably still waiting (the worker is inside the gated eval).
    let mut c2 = ts.client();
    let mut queued = c2.query("SELECT X1 FROM Q").unwrap();
    queued.cancel().unwrap();
    wait_until("queued cancel delivery", || {
        metrics.cancel_requests.load(Ordering::Relaxed) >= 1
    });

    // Release the worker. It finishes the first statement, dequeues the
    // second, sees the flipped token, and answers Cancelled without
    // ever starting the scan.
    gate.release();
    let rows: Vec<_> = blocked.by_ref().map(|r| r.unwrap()).collect();
    assert_eq!(rows.len(), 2);
    drop(blocked);

    match queued.next() {
        Some(Err(ClientError::Server { code, .. })) => assert_eq!(code, ErrorCode::Cancelled),
        other => panic!("expected Cancelled for the queued statement, got {other:?}"),
    }
    drop(queued);

    // The skip path is accounted separately from mid-scan cancels.
    assert_eq!(metrics.queries_cancelled_queued.load(Ordering::Relaxed), 1);
    assert_eq!(metrics.queries_cancelled.load(Ordering::Relaxed), 0);

    // The trace ring records the distinct outcome.
    let records = c2.trace(false, 0, 256).unwrap();
    let skipped = records
        .iter()
        .find(|r| r.outcome == Outcome::CancelledQueued)
        .expect("queued-cancel outcome traced");
    assert_eq!(skipped.sql, "SELECT X1 FROM Q");
    assert_eq!(skipped.session, c2.session_id());

    // Both sessions remain usable.
    c1.ping().unwrap();
    c2.ping().unwrap();
    assert_live_scrape_valid(&mut c1);
}

#[test]
fn ingest_envelope_commits_atomically_and_scores_over_the_wire() {
    let ts = TestServer::start(ServerConfig::default());
    let mut c = ts.client();
    c.execute("CREATE TABLE F (i INT, X1 FLOAT, X2 FLOAT)")
        .unwrap();
    c.execute("CREATE TABLE BETA (b0 FLOAT, b1 FLOAT, b2 FLOAT)")
        .unwrap();
    c.execute("INSERT INTO BETA VALUES (1.0, 0.5, -0.25)")
        .unwrap();

    // Stream 200 rows in 4 pipelined chunks; nothing is visible until
    // the envelope's single InsertAck.
    let mut ing = c.begin_ingest("F", &[]).unwrap();
    for chunk in 0..4i64 {
        let rows = (0..50)
            .map(|r| {
                let i = chunk * 50 + r + 1;
                vec![
                    Value::Int(i),
                    Value::Float(i as f64),
                    Value::Float(2.0 * i as f64),
                ]
            })
            .collect();
        ing.chunk(rows).unwrap();
    }
    assert_eq!(ing.rows_sent(), 200);
    assert_eq!(ing.finish().unwrap(), 200);
    assert_eq!(ts.metrics().ingest_rows.load(Ordering::Relaxed), 200);
    let rs = c.execute("SELECT count(*) FROM F").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(200));

    // Batch scoring: one round trip, rows in key order, NULL for the
    // absent key, and PK point lookups rather than a scan.
    let keys = [1i64, 100, 200, 999];
    let rs = c.batch_score("F", "BETA", &keys, false).unwrap();
    assert_eq!(rs.columns, vec!["i".to_string(), "score".to_string()]);
    assert_eq!(rs.rows.len(), keys.len());
    for (row, &k) in rs.rows.iter().zip(&keys) {
        assert_eq!(row[0], Value::Int(k));
    }
    let expect = |k: f64| 1.0 + 0.5 * k - 0.25 * 2.0 * k;
    for (r, &k) in keys[..3].iter().enumerate() {
        let got = rs.rows[r][1].as_f64().unwrap();
        assert!((got - expect(k as f64)).abs() < 1e-12, "key {k}: {got}");
    }
    assert!(rs.rows[3][1].is_null(), "absent key scores NULL");
    assert!(
        rs.stats.rows_scanned <= keys.len() as u64,
        "point lookups must not scan: {:?}",
        rs.stats
    );
    assert_eq!(
        ts.metrics().batch_score_keys.load(Ordering::Relaxed),
        keys.len() as u64
    );

    // EXPLAIN names the index path.
    let plan = c.batch_score("F", "BETA", &keys, true).unwrap();
    let text: Vec<String> = plan
        .rows
        .iter()
        .filter_map(|r| r.first().map(|v| v.to_string()))
        .collect();
    assert!(
        text.iter().any(|l| l.contains("point lookup: pk index")),
        "plan was {text:?}"
    );
    assert_live_scrape_valid(&mut c);
}

#[test]
fn aborted_ingest_mid_chunk_leaves_no_partial_batch() {
    let ts = TestServer::start(ServerConfig::default());
    let mut c = ts.client();
    c.execute("CREATE TABLE A (i INT, X1 FLOAT)").unwrap();

    // Explicit abort after two buffered chunks: nothing commits.
    let mut ing = c.begin_ingest("A", &[]).unwrap();
    ing.chunk(vec![vec![Value::Int(1), Value::Float(1.5)]])
        .unwrap();
    ing.chunk(vec![vec![Value::Int(2), Value::Float(2.5)]])
        .unwrap();
    ing.abort().unwrap();
    let rs = c.execute("SELECT count(*) FROM A").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(0), "aborted rows visible");

    // Dropping the handle mid-envelope aborts too.
    {
        let mut ing = c.begin_ingest("A", &[]).unwrap();
        ing.chunk(vec![vec![Value::Int(3), Value::Float(3.5)]])
            .unwrap();
    }
    let rs = c.execute("SELECT count(*) FROM A").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(0), "dropped rows visible");

    // A disconnect with an envelope in flight commits nothing either:
    // the session dies with its buffered chunks.
    {
        let mut c2 = ts.client();
        let mut ing = c2.begin_ingest("A", &[]).unwrap();
        ing.chunk(vec![vec![Value::Int(4), Value::Float(4.5)]])
            .unwrap();
        // Neither finish nor abort: the whole connection drops.
        std::mem::forget(ing);
    }
    wait_until("disconnected session to close", || {
        ts.metrics().sessions_active.load(Ordering::SeqCst) <= 1
    });
    let rs = c.execute("SELECT count(*) FROM A").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(0), "disconnect leaked rows");

    // The surviving session still ingests normally after all of that.
    let mut ing = c.begin_ingest("A", &[]).unwrap();
    ing.chunk(vec![vec![Value::Int(10), Value::Float(0.5)]])
        .unwrap();
    assert_eq!(ing.finish().unwrap(), 1);
    let rs = c.execute("SELECT count(*) FROM A").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(1));
    assert_live_scrape_valid(&mut c);
}

#[test]
fn poisoned_envelope_reports_the_first_error_at_done() {
    let ts = TestServer::start(ServerConfig::default());
    let mut c = ts.client();
    c.execute("CREATE TABLE P (i INT, X1 FLOAT)").unwrap();

    let mut ing = c.begin_ingest("P", &[]).unwrap();
    ing.chunk(vec![vec![Value::Int(1), Value::Float(1.0)]])
        .unwrap();
    // Wrong arity poisons the stream server-side; later chunks are
    // swallowed and the error surfaces once, at finish.
    ing.chunk(vec![vec![Value::Int(2)]]).unwrap();
    ing.chunk(vec![vec![Value::Int(3), Value::Float(3.0)]])
        .unwrap();
    match ing.finish() {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Protocol);
            assert!(message.contains("header columns"), "{message}");
        }
        other => panic!("expected the poisoning error, got {other:?}"),
    }
    let rs = c.execute("SELECT count(*) FROM P").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(0), "poisoned rows visible");

    // An unknown table fails the same way (header errors also park
    // until Done), and the session survives for a correct retry.
    let ing = c.begin_ingest("NOPE", &[]).unwrap();
    assert!(ing.finish().is_err());
    let mut ing = c.begin_ingest("P", &["X1", "i"]).unwrap();
    ing.chunk(vec![vec![Value::Float(7.0), Value::Int(42)]])
        .unwrap();
    assert_eq!(ing.finish().unwrap(), 1);
    let rs = c.execute("SELECT i, X1 FROM P").unwrap();
    assert_eq!(rs.rows[0], vec![Value::Int(42), Value::Float(7.0)]);
    assert_live_scrape_valid(&mut c);
}

/// One training row `(i, X1, X2, Y)` per key, with X2 decorrelated
/// from X1 so the daemon's OLS refit is never singular.
fn training_rows(lo: i64, n: i64) -> Vec<Vec<Value>> {
    (lo..lo + n)
        .map(|i| {
            let x2 = ((i * 37) % 101) as f64 * 0.1;
            vec![
                Value::Int(i),
                Value::Float(i as f64 * 0.5),
                Value::Float(x2),
                Value::Float(1.0 + i as f64 * 0.125 - 0.5 * x2),
            ]
        })
        .collect()
}

#[test]
fn ingest_backpressure_refuses_with_retry_until_the_daemon_catches_up() {
    // The daemon is gated: it ticks only on `gate.step()`, which also
    // blocks until the tick completes — every phase of this test is
    // synchronized on that edge, never on a sleep.
    let gate = Arc::new(TickGate::default());
    let ts = TestServer::start(ServerConfig {
        refresh_cadence: Some(Duration::from_secs(3600)),
        refresh_gate: Some(Arc::clone(&gate)),
        staleness_bound: Some(50),
        ..ServerConfig::default()
    });
    let mut c = ts.client();
    c.execute("CREATE TABLE PTS (i INT, X1 FLOAT, X2 FLOAT, Y FLOAT)")
        .unwrap();
    c.execute("CREATE SUMMARY S ON PTS (X1, X2, Y) NO MINMAX")
        .unwrap();

    fn ingest(c: &mut Client, rows: Vec<Vec<Value>>) -> Result<u64, ClientError> {
        let mut ing = c.begin_ingest("PTS", &[])?;
        ing.chunk(rows)?;
        ing.finish()
    }

    // Before the first tick no binding exists, so there is no model to
    // be stale relative to: the envelope commits.
    assert_eq!(ingest(&mut c, training_rows(1, 100)).unwrap(), 100);
    // Tick 1: discovery binds a regression model to S and publishes it
    // at 100 folded rows.
    gate.step();

    // The bound is checked *before* the envelope applies, so this one
    // still sees zero lag and acks — and leaves the daemon 100 rows
    // behind.
    assert_eq!(ingest(&mut c, training_rows(101, 100)).unwrap(), 100);
    let status = c.status().unwrap();
    assert_eq!(status.lookup("refresh.staleness"), Some(&Value::Int(100)));

    // Past the bound: refused with the retry hint; nothing committed.
    match ingest(&mut c, training_rows(201, 10)) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Retry);
            assert!(message.contains("retry"), "{message}");
        }
        other => panic!("expected Retry back-pressure, got {other:?}"),
    }
    assert_eq!(ts.metrics().ingest_backpressure.load(Ordering::Relaxed), 1);
    let rs = c.execute("SELECT count(*) FROM PTS").unwrap();
    assert_eq!(
        rs.value(0, 0),
        &Value::Int(200),
        "refused envelope must not commit"
    );

    // Tick 2 republishes at 200 folded rows; the lag drains to zero
    // and the retried envelope acks.
    gate.step();
    let status = c.status().unwrap();
    assert_eq!(status.lookup("refresh.staleness"), Some(&Value::Int(0)));
    assert_eq!(ingest(&mut c, training_rows(201, 10)).unwrap(), 10);
    let rs = c.execute("SELECT count(*) FROM PTS").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(210));
    // The session survives the refusal; the retry hint is a per-envelope
    // verdict, not a poisoned connection.
    c.ping().unwrap();
    assert_live_scrape_valid(&mut c);
}

#[test]
fn durable_server_survives_restart_with_checkpoint_and_status_counters() {
    let dir = std::env::temp_dir().join(format!("nlq-harness-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Arc::new(Db::open_durable(1, &dir, true).unwrap());
        let ts = TestServer::start_with(db, ServerConfig::default());
        let mut c = ts.client();
        c.execute("CREATE TABLE T (i INT, X1 FLOAT)").unwrap();
        let mut ing = c.begin_ingest("T", &[]).unwrap();
        ing.chunk(
            (1..=100i64)
                .map(|i| vec![Value::Int(i), Value::Float(i as f64)])
                .collect(),
        )
        .unwrap();
        assert_eq!(ing.finish().unwrap(), 100);

        // A durable engine surfaces its WAL through STATUS, METRICS,
        // and the Prometheus scrape.
        let status = c.status().unwrap();
        let log_bytes = status
            .lookup("wal.log_bytes")
            .and_then(|v| v.as_i64())
            .expect("durable engine reports wal.log_bytes");
        assert!(log_bytes > 0, "live log is non-empty after commits");
        let m = c.metrics().unwrap();
        assert!(m.lookup("wal.fsyncs").and_then(|v| v.as_i64()).unwrap() >= 1);
        let prom = c.metrics_prometheus().unwrap();
        assert!(prom.contains("nlq_wal_bytes_total"));
        assert!(prom.contains("nlq_checkpoints_total"));

        // An explicit client checkpoint snapshots and truncates.
        c.checkpoint().unwrap();
        let status = c.status().unwrap();
        assert_eq!(status.lookup("wal.log_bytes"), Some(&Value::Int(0)));
        assert_eq!(status.lookup("wal.checkpoints"), Some(&Value::Int(1)));

        // A post-checkpoint tail, to be replayed at the next open.
        let mut ing = c.begin_ingest("T", &[]).unwrap();
        ing.chunk(
            (101..=150i64)
                .map(|i| vec![Value::Int(i), Value::Float(i as f64)])
                .collect(),
        )
        .unwrap();
        assert_eq!(ing.finish().unwrap(), 50);
    }

    // "Restart": a fresh durable open over the same directory sees the
    // checkpoint plus the logged tail.
    let db = Arc::new(Db::open_durable(1, &dir, true).unwrap());
    let info = db.recovery_info().expect("recovered engine reports info");
    assert!(info.checkpoint_tables >= 1, "{info:?}");
    assert_eq!(
        info.replayed_envelopes, 1,
        "only the post-checkpoint envelope replays: {info:?}"
    );
    let ts = TestServer::start_with(db, ServerConfig::default());
    let mut c = ts.client();
    let rs = c.execute("SELECT count(*), sum(X1) FROM T").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(150));
    assert_eq!(rs.value(0, 1).as_f64(), Some((1..=150).sum::<i64>() as f64));
    let status = c.status().unwrap();
    assert!(
        status
            .lookup("recovery.replayed_records")
            .and_then(|v| v.as_i64())
            .unwrap()
            >= 1
    );
    assert_live_scrape_valid(&mut c);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn refresh_daemon_republishes_models_from_streamed_ingest() {
    let ts = TestServer::start(ServerConfig {
        refresh_cadence: Some(Duration::from_millis(5)),
        ..ServerConfig::default()
    });
    let mut c = ts.client();
    c.execute("CREATE TABLE PTS (i INT, X1 FLOAT, X2 FLOAT, Y FLOAT)")
        .unwrap();
    c.execute("CREATE SUMMARY S ON PTS (X1, X2, Y) NO MINMAX")
        .unwrap();

    // Stream the training rows; the daemon's auto-discovered binding
    // turns the folded Γ into a published s_beta model table.
    let mut ing = c.begin_ingest("PTS", &[]).unwrap();
    let rows: Vec<Vec<Value>> = (1..=400i64)
        .map(|i| {
            // X2 must not be collinear with X1 or the OLS refit is
            // singular and the daemon has nothing to publish.
            let x2 = ((i * 37) % 101) as f64 * 0.1;
            vec![
                Value::Int(i),
                Value::Float(i as f64 * 0.5),
                Value::Float(x2),
                Value::Float(1.0 + i as f64 * 0.125 - 0.5 * x2),
            ]
        })
        .collect();
    for chunk in rows.chunks(90) {
        ing.chunk(chunk.to_vec()).unwrap();
    }
    assert_eq!(ing.finish().unwrap(), 400);

    // The daemon publishes without any further client action; METRICS
    // mirrors its counter.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m = c.metrics().unwrap();
        if m.lookup("model_refreshes_total")
            .and_then(|v| v.as_i64())
            .unwrap_or(0)
            >= 1
        {
            break;
        }
        assert!(Instant::now() < deadline, "daemon never published");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The published model serves keyed scores over the wire.
    let rs = c
        .batch_score("PTS", "s_beta", &[1, 200, 400], false)
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    for row in &rs.rows {
        assert!(row[1].as_f64().is_some(), "score missing: {row:?}");
    }

    // The Prometheus scrape exposes the serving counters.
    let prom = c.metrics_prometheus().unwrap();
    for needle in [
        "nlq_ingest_rows_total",
        "nlq_batch_score_keys_total",
        "nlq_model_refreshes_total",
    ] {
        assert!(prom.contains(needle), "scrape missing {needle}");
    }
    assert_live_scrape_valid(&mut c);
}

#[test]
fn sys_catalog_answers_telemetry_queries_through_the_block_path() {
    let ts = TestServer::start(ServerConfig::default());
    let mut c = ts.client();
    let session = c.session_id();
    load_rows(&mut c, "W", 50);

    // Capture the server-minted query id from the stream header...
    let mut stream = c.query("SELECT sum(X1) FROM W").unwrap();
    let qid = stream.query_id().unwrap();
    assert!(qid > 0, "admission mints nonzero query ids");
    let rows: Vec<_> = stream.by_ref().map(|r| r.unwrap()).collect();
    assert_eq!(rows.len(), 1);
    drop(stream);
    let _ = c.execute("SELECT nope FROM W"); // one traced failure

    // ...and find the finished statement in sys.queries under that id,
    // with its text, outcome, and nonzero phase times.
    let rs = c
        .execute(&format!(
            "SELECT sql, outcome, total_us, parse_us, scan_us FROM sys.queries \
             WHERE query_id = {qid}"
        ))
        .unwrap();
    assert_eq!(rs.rows.len(), 1, "one catalog row per query id");
    assert_eq!(rs.value(0, 0), &Value::Str("SELECT sum(X1) FROM W".into()));
    assert_eq!(rs.value(0, 1), &Value::Str("ok".into()));
    for (i, phase) in [(2, "total_us"), (3, "parse_us"), (4, "scan_us")] {
        let us = rs.value(0, i).as_f64().unwrap();
        assert!(us > 0.0, "{phase} must be nonzero, got {us}");
    }

    // The failed statement is visible through its numeric companion
    // column (string predicates are row-path only).
    let rs = c
        .execute("SELECT count(*) FROM sys.queries WHERE ok = 0")
        .unwrap();
    assert!(rs.value(0, 0).as_i64().unwrap() >= 1, "failure traced");

    // A Γ aggregate over telemetry: the same nlq_list UDF that builds
    // model summaries, aggregating phase durations of the ok queries.
    let rs = c
        .execute("SELECT nlq_list(2, 'triang', parse_us, scan_us) FROM sys.queries WHERE ok = 1")
        .unwrap();
    assert!(!rs.rows.is_empty(), "Γ over sys.queries returns a result");

    // EXPLAIN confirms the snapshot scans through the normal block
    // path — telemetry is just another table to the engine.
    let plan = c
        .execute("EXPLAIN SELECT count(*), sum(total_us) FROM sys.queries WHERE ok = 1")
        .unwrap();
    let text: Vec<String> = plan
        .rows
        .iter()
        .filter_map(|r| r.first().map(|v| v.to_string()))
        .collect();
    assert!(
        text.iter().any(|l| l.contains("scan mode: block")),
        "sys.queries must ride the block path, plan was {text:?}"
    );

    // sys.sessions sees this live connection with its statement count.
    let rs = c
        .execute(&format!(
            "SELECT peer, statements FROM sys.sessions WHERE session = {session}"
        ))
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_ne!(rs.value(0, 0), &Value::Str(String::new()), "peer recorded");
    assert!(rs.value(0, 1).as_i64().unwrap() >= 1);

    // sys.metrics serves the METRICS counters as rows.
    let rs = c
        .execute("SELECT value FROM sys.metrics WHERE metric = 'sessions_active'")
        .unwrap();
    assert!(rs.value(0, 0).as_i64().unwrap() >= 1);
    assert_live_scrape_valid(&mut c);
}

#[test]
fn sharded_query_spans_share_one_query_id_across_all_shards() {
    const SHARDS: usize = 4;
    let sharded = Arc::new(nlq_shard::ShardedDb::new(SHARDS, 1));
    let handle = serve(
        Arc::clone(&sharded) as Arc<dyn SqlEngine>,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        },
    )
    .expect("bind sharded test server");
    let mut c = Client::connect(handle.addr()).expect("connect");
    load_rows(&mut c, "SH", 4000);

    let mut stream = c.query("SELECT count(*), sum(X1) FROM SH").unwrap();
    let qid = stream.query_id().unwrap();
    let rows: Vec<_> = stream.by_ref().map(|r| r.unwrap()).collect();
    assert_eq!(rows[0][0], Value::Int(4000));
    drop(stream);

    // Every shard's scatter span carries the same query id: the
    // catalog join is one WHERE clause away.
    let rs = c
        .execute(&format!(
            "SELECT shard FROM sys.spans WHERE query_id = {qid} AND shard >= 0"
        ))
        .unwrap();
    let mut shards: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    shards.sort_unstable();
    shards.dedup();
    assert_eq!(
        shards,
        (0..SHARDS as i64).collect::<Vec<_>>(),
        "all {SHARDS} shards report a span under query {qid}"
    );

    // sys.queries reports the per-query shard fan-out, and the
    // gathered CPU total contains the per-shard executor CPU.
    let rs = c
        .execute(&format!(
            "SELECT shards, cpu_us FROM sys.queries WHERE query_id = {qid}"
        ))
        .unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(SHARDS as i64));
    let total_cpu = rs.value(0, 1).as_f64().unwrap();
    let rs = c
        .execute(&format!(
            "SELECT sum(cpu_us) FROM sys.spans WHERE query_id = {qid} AND shard >= 0"
        ))
        .unwrap();
    let shard_cpu = rs.value(0, 0).as_f64().unwrap();
    assert!(
        total_cpu >= shard_cpu,
        "gathered cpu {total_cpu}µs must contain the shard sum {shard_cpu}µs"
    );
    assert!(total_cpu > 0.0, "worker CPU is sampled on linux");
    assert_live_scrape_valid(&mut c);
}

#[test]
fn trace_paging_reports_truncation_after_ring_wraparound() {
    let ts = TestServer::start(ServerConfig {
        trace_ring: 4,
        ..ServerConfig::default()
    });
    let mut c = ts.client();
    load_rows(&mut c, "TR", 2);
    for _ in 0..10 {
        c.execute("SELECT count(*) FROM TR").unwrap();
    }

    // A cursor at 0 has provably missed evicted records.
    let page = c.trace_page(false, 0, 256).unwrap();
    assert!(page.truncated, "cursor 0 is behind the wrapped ring");
    assert!(page.records.len() <= 4, "ring retains at most its capacity");

    // Paging from the newest retained id is complete, not truncated.
    let last = page.records.last().unwrap().id;
    let page = c.trace_page(false, last, 256).unwrap();
    assert!(!page.truncated);
    assert!(page.records.is_empty());

    // Eviction pressure is exported to METRICS and the scrape.
    let m = c.metrics().unwrap();
    assert!(
        m.lookup("trace_ring_evicted_total")
            .and_then(|v| v.as_i64())
            .unwrap()
            >= 1
    );
    let prom = c.metrics_prometheus().unwrap();
    assert!(prom.contains("nlq_trace_ring_evicted_total"));
    assert_live_scrape_valid(&mut c);
}
