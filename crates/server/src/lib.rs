#![warn(missing_docs)]

//! A concurrent network service over the SQL + scoring engine.
//!
//! The paper's workloads — building statistical models from the Γ
//! summary matrices and scoring data sets with UDFs — run inside the
//! DBMS; this crate puts the DBMS on the network. One shared
//! [`nlq_engine::Db`] behind an `Arc` serves every session: the full
//! SQL surface (queries, DML, `EXPLAIN`, `CREATE SUMMARY`, scoring
//! UDF calls) is reachable over a small length-prefixed binary
//! protocol ([`wire`]), with per-connection sessions, admission
//! control, and live metrics.
//!
//! * [`serve`] starts the server; [`ServerHandle`] owns it.
//! * [`wire`] defines the frame format shared with `nlq-client`.
//! * [`pool`] is the bounded worker pool that executes statements.
//! * [`metrics`] tracks per-command counts, latency histograms, queue
//!   depth, and summary-store hit/miss counters.
//!
//! The `nlq-server` binary wraps this in a CLI.

pub mod metrics;
pub mod pool;
mod server;
mod sys;
pub mod wire;

pub use metrics::Metrics;
pub use server::{serve, ServerConfig, ServerHandle};
