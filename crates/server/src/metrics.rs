//! Server-wide counters, gauges, and latency histograms.
//!
//! Everything here is updated from connection and pool threads and
//! rendered on demand by the `METRICS` command as a two-column
//! `(metric, value)` result set. Latencies go into equi-width
//! [`Histogram`]s over `log10(microseconds)` in `[0, 7)` — bucket `b`
//! covers `[10^(b/2), 10^((b+1)/2))` µs, spanning 1 µs to 10 s in 14
//! buckets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use nlq_models::Histogram;
use nlq_storage::Value;

/// Commands tracked separately in the metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// `Execute` requests.
    Execute,
    /// `SetOption` requests.
    SetOption,
    /// `Status` requests.
    Status,
    /// `Metrics` requests.
    Metrics,
    /// `Ping` requests.
    Ping,
    /// `Shutdown` requests.
    Shutdown,
    /// `Cancel` requests (handled inline by session readers).
    Cancel,
}

const COMMANDS: [(Command, &str); 7] = [
    (Command::Execute, "execute"),
    (Command::SetOption, "set_option"),
    (Command::Status, "status"),
    (Command::Metrics, "metrics"),
    (Command::Ping, "ping"),
    (Command::Shutdown, "shutdown"),
    (Command::Cancel, "cancel"),
];

fn slot(cmd: Command) -> usize {
    COMMANDS
        .iter()
        .position(|(c, _)| *c == cmd)
        .expect("command registered")
}

/// Histogram domain: log10 of the latency in microseconds.
const LAT_LO: f64 = 0.0;
const LAT_HI: f64 = 7.0;
const LAT_BUCKETS: usize = 14;

/// All server metrics; cheap to share behind an `Arc`.
pub struct Metrics {
    counts: [AtomicU64; 7],
    errors: [AtomicU64; 7],
    latency: [Mutex<Histogram>; 7],
    /// Connections refused by admission control.
    pub connections_rejected: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: AtomicU64,
    /// Currently open sessions.
    pub sessions_active: AtomicU64,
    /// Queries that hit the per-query wall-clock limit.
    pub query_timeouts: AtomicU64,
    /// Queries refused because the pool queue was full.
    pub queue_rejections: AtomicU64,
    /// Results dropped for exceeding row/byte limits.
    pub results_too_large: AtomicU64,
    /// Queries that ended with a client- or drain-initiated cancel.
    pub queries_cancelled: AtomicU64,
    /// `Cancel` request frames received (whether or not they landed
    /// on a live statement).
    pub cancel_requests: AtomicU64,
    /// Total `RowsChunk` payload bytes written to sockets.
    pub bytes_streamed: AtomicU64,
    /// Total `RowsChunk` frames written to sockets.
    pub chunks_streamed: AtomicU64,
    /// Summary-store hits accumulated across statements.
    pub summary_hits: AtomicU64,
    /// Summary-store misses accumulated across statements.
    pub summary_misses: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Metrics {
        Metrics {
            counts: Default::default(),
            errors: Default::default(),
            latency: std::array::from_fn(|_| {
                Mutex::new(Histogram::new(LAT_LO, LAT_HI, LAT_BUCKETS).expect("latency histogram"))
            }),
            connections_rejected: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            sessions_active: AtomicU64::new(0),
            query_timeouts: AtomicU64::new(0),
            queue_rejections: AtomicU64::new(0),
            results_too_large: AtomicU64::new(0),
            queries_cancelled: AtomicU64::new(0),
            cancel_requests: AtomicU64::new(0),
            bytes_streamed: AtomicU64::new(0),
            chunks_streamed: AtomicU64::new(0),
            summary_hits: AtomicU64::new(0),
            summary_misses: AtomicU64::new(0),
        }
    }

    /// Records one completed command with its wall-clock latency.
    pub fn record(&self, cmd: Command, latency: Duration, ok: bool) {
        let s = slot(cmd);
        self.counts[s].fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors[s].fetch_add(1, Ordering::Relaxed);
        }
        let micros = latency.as_micros().max(1) as f64;
        self.latency[s]
            .lock()
            .expect("latency histogram")
            .add(micros.log10());
    }

    /// Folds one statement's summary-store counters in.
    pub fn record_summary(&self, hits: u64, misses: u64) {
        self.summary_hits.fetch_add(hits, Ordering::Relaxed);
        self.summary_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Renders every metric as `(name, value)` rows. `queue_depth` and
    /// `workers_busy` are sampled by the caller (the pool owns them).
    pub fn render(&self, queue_depth: usize, workers_busy: usize) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        let mut gauge = |name: &str, v: u64| {
            rows.push(vec![Value::Str(name.to_owned()), Value::Int(v as i64)]);
        };
        gauge("queue_depth", queue_depth as u64);
        gauge("workers_busy", workers_busy as u64);
        gauge(
            "connections_accepted",
            self.connections_accepted.load(Ordering::Relaxed),
        );
        gauge(
            "connections_rejected",
            self.connections_rejected.load(Ordering::Relaxed),
        );
        gauge(
            "sessions_active",
            self.sessions_active.load(Ordering::Relaxed),
        );
        gauge(
            "query_timeouts",
            self.query_timeouts.load(Ordering::Relaxed),
        );
        gauge(
            "queue_rejections",
            self.queue_rejections.load(Ordering::Relaxed),
        );
        gauge(
            "results_too_large",
            self.results_too_large.load(Ordering::Relaxed),
        );
        gauge(
            "queries_cancelled",
            self.queries_cancelled.load(Ordering::Relaxed),
        );
        gauge(
            "cancel_requests",
            self.cancel_requests.load(Ordering::Relaxed),
        );
        gauge(
            "bytes_streamed",
            self.bytes_streamed.load(Ordering::Relaxed),
        );
        gauge(
            "chunks_streamed",
            self.chunks_streamed.load(Ordering::Relaxed),
        );
        gauge("summary_hits", self.summary_hits.load(Ordering::Relaxed));
        gauge(
            "summary_misses",
            self.summary_misses.load(Ordering::Relaxed),
        );
        for (i, (_, name)) in COMMANDS.iter().enumerate() {
            let count = self.counts[i].load(Ordering::Relaxed);
            rows.push(vec![
                Value::Str(format!("command.{name}.count")),
                Value::Int(count as i64),
            ]);
            rows.push(vec![
                Value::Str(format!("command.{name}.errors")),
                Value::Int(self.errors[i].load(Ordering::Relaxed) as i64),
            ]);
            if count == 0 {
                continue;
            }
            let hist = self.latency[i].lock().expect("latency histogram");
            for (b, &n) in hist.counts().iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let (lo, hi) = hist.bucket_range(b);
                rows.push(vec![
                    Value::Str(format!(
                        "command.{name}.latency_us[{:.0},{:.0})",
                        10f64.powf(lo),
                        10f64.powf(hi)
                    )),
                    Value::Int(n as i64),
                ]);
            }
            if hist.above() > 0 {
                rows.push(vec![
                    Value::Str(format!("command.{name}.latency_us[10s,inf)")),
                    Value::Int(hist.above() as i64),
                ]);
            }
        }
        rows
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_render() {
        let m = Metrics::new();
        m.record(Command::Execute, Duration::from_micros(50), true);
        m.record(Command::Execute, Duration::from_millis(20), false);
        m.record(Command::Ping, Duration::from_micros(2), true);
        m.record(Command::Cancel, Duration::from_micros(3), true);
        m.record_summary(3, 1);
        m.queries_cancelled.fetch_add(1, Ordering::Relaxed);
        m.bytes_streamed.fetch_add(4096, Ordering::Relaxed);
        m.chunks_streamed.fetch_add(2, Ordering::Relaxed);

        let rows = m.render(5, 2);
        let get = |name: &str| -> i64 {
            rows.iter()
                .find(|r| r[0].as_str() == Some(name))
                .unwrap_or_else(|| panic!("missing metric {name}"))[1]
                .as_i64()
                .unwrap()
        };
        assert_eq!(get("queue_depth"), 5);
        assert_eq!(get("workers_busy"), 2);
        assert_eq!(get("queries_cancelled"), 1);
        assert_eq!(get("bytes_streamed"), 4096);
        assert_eq!(get("chunks_streamed"), 2);
        assert_eq!(get("command.cancel.count"), 1);
        assert_eq!(get("command.execute.count"), 2);
        assert_eq!(get("command.execute.errors"), 1);
        assert_eq!(get("command.ping.count"), 1);
        assert_eq!(get("summary_hits"), 3);
        assert_eq!(get("summary_misses"), 1);
        // Both execute latencies landed in some histogram bucket.
        let hist_total: i64 = rows
            .iter()
            .filter(|r| {
                r[0].as_str()
                    .is_some_and(|s| s.starts_with("command.execute.latency_us["))
            })
            .map(|r| r[1].as_i64().unwrap())
            .sum();
        assert_eq!(hist_total, 2);
    }
}
