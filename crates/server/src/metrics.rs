//! Server-wide counters, gauges, and latency histograms.
//!
//! Everything here is updated from connection and pool threads and
//! rendered on demand by the `METRICS` command — either as a
//! two-column `(metric, value)` result set or as Prometheus text
//! exposition. Latencies go into fixed `AtomicHistogram`s over
//! `log10(microseconds)` in `[0, 7)` — bucket `b` covers
//! `[10^(b/2), 10^((b+1)/2))` µs, spanning 1 µs to 10 s in 14
//! buckets. Recording is lock-free: a bucket index is computed from
//! the latency and a single atomic increment lands the sample, so
//! worker threads never serialize on a histogram mutex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use nlq_obs::PromText;
use nlq_storage::Value;

/// Commands tracked separately in the metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// `Execute` requests.
    Execute,
    /// `SetOption` requests.
    SetOption,
    /// `Status` requests.
    Status,
    /// `Metrics` requests (both result-set and Prometheus forms).
    Metrics,
    /// `Ping` requests.
    Ping,
    /// `Shutdown` requests.
    Shutdown,
    /// `Cancel` requests (handled inline by session readers).
    Cancel,
    /// `Trace` requests (recent/slow query trace pages).
    Trace,
    /// Streamed-ingest envelopes (`InsertDone` commits; the header and
    /// chunk frames are unacknowledged and fold into this command).
    Ingest,
    /// `BatchScore` requests (keyed point-lookup scoring).
    BatchScore,
    /// `Checkpoint` requests (snapshot tables, truncate the WAL).
    Checkpoint,
}

/// How many commands the metrics arrays track.
const NCOMMANDS: usize = 11;

const COMMANDS: [(Command, &str); NCOMMANDS] = [
    (Command::Execute, "execute"),
    (Command::SetOption, "set_option"),
    (Command::Status, "status"),
    (Command::Metrics, "metrics"),
    (Command::Ping, "ping"),
    (Command::Shutdown, "shutdown"),
    (Command::Cancel, "cancel"),
    (Command::Trace, "trace"),
    (Command::Ingest, "ingest"),
    (Command::BatchScore, "batch_score"),
    (Command::Checkpoint, "checkpoint"),
];

fn slot(cmd: Command) -> usize {
    COMMANDS
        .iter()
        .position(|(c, _)| *c == cmd)
        .expect("command registered")
}

/// Histogram domain: log10 of the latency in microseconds.
const LAT_LO: f64 = 0.0;
const LAT_HI: f64 = 7.0;
const LAT_BUCKETS: usize = 14;
const LAT_WIDTH: f64 = (LAT_HI - LAT_LO) / LAT_BUCKETS as f64;

/// Lower bound of bucket `b` in microseconds: `10^(b/2)`.
fn bucket_bound_micros(b: usize) -> f64 {
    10f64.powf(LAT_LO + b as f64 * LAT_WIDTH)
}

/// Where one latency sample lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BucketIndex {
    Below,
    In(usize),
    Above,
}

/// Maps a latency in microseconds to its histogram bucket, preserving
/// the legacy `Histogram` semantics exactly: `log10(µs) < 0` falls
/// below, `> 7` falls above, and exactly `10^7` µs clamps into the
/// last bucket. The floating-point `log10` is boundary-corrected
/// against the exact bucket bounds so a sample of exactly `10^(b/2)`
/// µs always lands in bucket `b`.
fn bucket_index(micros: f64) -> BucketIndex {
    let x = micros.log10();
    if x < LAT_LO {
        return BucketIndex::Below;
    }
    if x > LAT_HI && micros > bucket_bound_micros(LAT_BUCKETS) {
        return BucketIndex::Above;
    }
    let mut b = (((x - LAT_LO) / LAT_WIDTH) as usize).min(LAT_BUCKETS - 1);
    // log10 rounding can land a boundary value one bucket off; nudge
    // against the exact bounds.
    while b + 1 < LAT_BUCKETS && micros >= bucket_bound_micros(b + 1) {
        b += 1;
    }
    while b > 0 && micros < bucket_bound_micros(b) {
        b -= 1;
    }
    BucketIndex::In(b)
}

/// A fixed-bucket latency histogram updated with plain atomic
/// increments — no mutex, so concurrent recorders never contend
/// beyond the cache line.
struct AtomicHistogram {
    buckets: [AtomicU64; LAT_BUCKETS],
    below: AtomicU64,
    above: AtomicU64,
    /// Sum of recorded latencies in microseconds (for Prometheus
    /// `_sum`).
    sum_micros: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: Default::default(),
            below: AtomicU64::new(0),
            above: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    fn record(&self, micros: u64) {
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        match bucket_index(micros.max(1) as f64) {
            BucketIndex::Below => self.below.fetch_add(1, Ordering::Relaxed),
            BucketIndex::In(b) => self.buckets[b].fetch_add(1, Ordering::Relaxed),
            BucketIndex::Above => self.above.fetch_add(1, Ordering::Relaxed),
        };
    }

    fn counts(&self) -> [u64; LAT_BUCKETS] {
        std::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed))
    }

    fn below(&self) -> u64 {
        self.below.load(Ordering::Relaxed)
    }

    fn above(&self) -> u64 {
        self.above.load(Ordering::Relaxed)
    }

    fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    fn total(&self) -> u64 {
        self.below() + self.counts().iter().sum::<u64>() + self.above()
    }
}

/// All server metrics; cheap to share behind an `Arc`.
pub struct Metrics {
    counts: [AtomicU64; NCOMMANDS],
    errors: [AtomicU64; NCOMMANDS],
    latency: [AtomicHistogram; NCOMMANDS],
    /// Connections refused by admission control.
    pub connections_rejected: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: AtomicU64,
    /// Currently open sessions.
    pub sessions_active: AtomicU64,
    /// Queries that hit the per-query wall-clock limit.
    pub query_timeouts: AtomicU64,
    /// Queries refused because the pool queue was full.
    pub queue_rejections: AtomicU64,
    /// Results dropped for exceeding row/byte limits.
    pub results_too_large: AtomicU64,
    /// Queries that ended with a client- or drain-initiated cancel.
    pub queries_cancelled: AtomicU64,
    /// Queries cancelled while still queued — the worker skipped them
    /// at dequeue without executing anything.
    pub queries_cancelled_queued: AtomicU64,
    /// `Cancel` request frames received (whether or not they landed
    /// on a live statement).
    pub cancel_requests: AtomicU64,
    /// Total `RowsChunk` payload bytes written to sockets.
    pub bytes_streamed: AtomicU64,
    /// Total `RowsChunk` frames written to sockets.
    pub chunks_streamed: AtomicU64,
    /// Summary-store hits accumulated across statements.
    pub summary_hits: AtomicU64,
    /// Summary-store misses accumulated across statements.
    pub summary_misses: AtomicU64,
    /// Stale summaries rebuilt on demand across statements.
    pub summary_stale_rebuilds: AtomicU64,
    /// Completed queries slower than the slow-query threshold.
    pub slow_queries: AtomicU64,
    /// Rows committed through streamed-ingest envelopes.
    pub ingest_rows: AtomicU64,
    /// Keys scored through `BatchScore` requests.
    pub batch_score_keys: AtomicU64,
    /// Models published by the refresh daemon (mirrored from the
    /// daemon's own counter at render time).
    pub model_refreshes: AtomicU64,
    /// Ingest envelopes refused with a retry hint because the refresh
    /// daemon was too far behind (`--staleness-bound`).
    pub ingest_backpressure: AtomicU64,
    /// Trace records overwritten after the rings wrapped (recent +
    /// slow rings; mirrored from the rings at render time). When this
    /// grows, `TRACE` pages anchored at old cursors report
    /// `truncated`.
    pub trace_ring_evicted: AtomicU64,
    /// CPU nanoseconds attributed to completed queries (worker thread
    /// plus per-shard executors, summed at gather).
    pub query_cpu_nanos: AtomicU64,
    /// Rows folded into bound summaries since their models were last
    /// published — the refresh daemon's worst-case lag (mirrored at
    /// render time; 0 without a daemon).
    pub refresh_lag_rows: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Metrics {
        Metrics {
            counts: Default::default(),
            errors: Default::default(),
            latency: std::array::from_fn(|_| AtomicHistogram::new()),
            connections_rejected: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            sessions_active: AtomicU64::new(0),
            query_timeouts: AtomicU64::new(0),
            queue_rejections: AtomicU64::new(0),
            results_too_large: AtomicU64::new(0),
            queries_cancelled: AtomicU64::new(0),
            queries_cancelled_queued: AtomicU64::new(0),
            cancel_requests: AtomicU64::new(0),
            bytes_streamed: AtomicU64::new(0),
            chunks_streamed: AtomicU64::new(0),
            summary_hits: AtomicU64::new(0),
            summary_misses: AtomicU64::new(0),
            summary_stale_rebuilds: AtomicU64::new(0),
            slow_queries: AtomicU64::new(0),
            ingest_rows: AtomicU64::new(0),
            batch_score_keys: AtomicU64::new(0),
            model_refreshes: AtomicU64::new(0),
            ingest_backpressure: AtomicU64::new(0),
            trace_ring_evicted: AtomicU64::new(0),
            query_cpu_nanos: AtomicU64::new(0),
            refresh_lag_rows: AtomicU64::new(0),
        }
    }

    /// Records one completed command with its wall-clock latency.
    pub fn record(&self, cmd: Command, latency: Duration, ok: bool) {
        let s = slot(cmd);
        self.counts[s].fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors[s].fetch_add(1, Ordering::Relaxed);
        }
        self.latency[s].record(latency.as_micros() as u64);
    }

    /// Folds one statement's summary-store counters in.
    pub fn record_summary(&self, hits: u64, misses: u64, stale_rebuilds: u64) {
        self.summary_hits.fetch_add(hits, Ordering::Relaxed);
        self.summary_misses.fetch_add(misses, Ordering::Relaxed);
        self.summary_stale_rebuilds
            .fetch_add(stale_rebuilds, Ordering::Relaxed);
    }

    /// The named gauges/counters as `(name, value)` pairs, in render
    /// order.
    fn named(&self, queue_depth: usize, workers_busy: usize) -> Vec<(&'static str, u64)> {
        vec![
            ("queue_depth", queue_depth as u64),
            ("workers_busy", workers_busy as u64),
            (
                "connections_accepted",
                self.connections_accepted.load(Ordering::Relaxed),
            ),
            (
                "connections_rejected",
                self.connections_rejected.load(Ordering::Relaxed),
            ),
            (
                "sessions_active",
                self.sessions_active.load(Ordering::Relaxed),
            ),
            (
                "query_timeouts",
                self.query_timeouts.load(Ordering::Relaxed),
            ),
            (
                "queue_rejections",
                self.queue_rejections.load(Ordering::Relaxed),
            ),
            (
                "results_too_large",
                self.results_too_large.load(Ordering::Relaxed),
            ),
            (
                "queries_cancelled",
                self.queries_cancelled.load(Ordering::Relaxed),
            ),
            (
                "queries_cancelled_queued",
                self.queries_cancelled_queued.load(Ordering::Relaxed),
            ),
            (
                "cancel_requests",
                self.cancel_requests.load(Ordering::Relaxed),
            ),
            (
                "bytes_streamed",
                self.bytes_streamed.load(Ordering::Relaxed),
            ),
            (
                "chunks_streamed",
                self.chunks_streamed.load(Ordering::Relaxed),
            ),
            ("summary_hits", self.summary_hits.load(Ordering::Relaxed)),
            (
                "summary_misses",
                self.summary_misses.load(Ordering::Relaxed),
            ),
            (
                "summary_stale_rebuilds",
                self.summary_stale_rebuilds.load(Ordering::Relaxed),
            ),
            ("slow_queries", self.slow_queries.load(Ordering::Relaxed)),
            (
                "ingest_rows_total",
                self.ingest_rows.load(Ordering::Relaxed),
            ),
            (
                "batch_score_keys_total",
                self.batch_score_keys.load(Ordering::Relaxed),
            ),
            (
                "model_refreshes_total",
                self.model_refreshes.load(Ordering::Relaxed),
            ),
            (
                "ingest_backpressure_total",
                self.ingest_backpressure.load(Ordering::Relaxed),
            ),
            (
                "trace_ring_evicted_total",
                self.trace_ring_evicted.load(Ordering::Relaxed),
            ),
            (
                "query_cpu_us_total",
                self.query_cpu_nanos.load(Ordering::Relaxed) / 1_000,
            ),
            (
                "refresh_lag_rows",
                self.refresh_lag_rows.load(Ordering::Relaxed),
            ),
        ]
    }

    /// Renders every metric as `(name, value)` rows. `queue_depth` and
    /// `workers_busy` are sampled by the caller (the pool owns them).
    pub fn render(&self, queue_depth: usize, workers_busy: usize) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for (name, v) in self.named(queue_depth, workers_busy) {
            rows.push(vec![Value::Str(name.to_owned()), Value::Int(v as i64)]);
        }
        for (i, (_, name)) in COMMANDS.iter().enumerate() {
            let count = self.counts[i].load(Ordering::Relaxed);
            rows.push(vec![
                Value::Str(format!("command.{name}.count")),
                Value::Int(count as i64),
            ]);
            rows.push(vec![
                Value::Str(format!("command.{name}.errors")),
                Value::Int(self.errors[i].load(Ordering::Relaxed) as i64),
            ]);
            if count == 0 {
                continue;
            }
            let hist = &self.latency[i];
            for (b, n) in hist.counts().into_iter().enumerate() {
                if n == 0 {
                    continue;
                }
                rows.push(vec![
                    Value::Str(format!(
                        "command.{name}.latency_us[{:.0},{:.0})",
                        bucket_bound_micros(b),
                        bucket_bound_micros(b + 1)
                    )),
                    Value::Int(n as i64),
                ]);
            }
            if hist.above() > 0 {
                rows.push(vec![
                    Value::Str(format!("command.{name}.latency_us[10s,inf)")),
                    Value::Int(hist.above() as i64),
                ]);
            }
        }
        rows
    }

    /// Renders every metric in the Prometheus text exposition format:
    /// the named gauges/counters as `nlq_<name>` families, per-command
    /// request/error counters with a `command` label, and per-command
    /// latency histograms with cumulative `_bucket` series (in
    /// seconds, as Prometheus convention wants).
    pub fn render_prometheus(&self, queue_depth: usize, workers_busy: usize) -> String {
        let mut p = PromText::new();
        for (name, v) in self.named(queue_depth, workers_busy) {
            let kind = match name {
                "queue_depth" | "workers_busy" | "sessions_active" | "refresh_lag_rows" => "gauge",
                _ => "counter",
            };
            let full = format!("nlq_{name}");
            p.family(&full, kind, name);
            p.sample(&full, &[], v as f64);
        }

        p.family(
            "nlq_command_requests_total",
            "counter",
            "Requests handled, by command",
        );
        for (i, (_, name)) in COMMANDS.iter().enumerate() {
            p.sample(
                "nlq_command_requests_total",
                &[("command", name)],
                self.counts[i].load(Ordering::Relaxed) as f64,
            );
        }
        p.family(
            "nlq_command_errors_total",
            "counter",
            "Requests that failed, by command",
        );
        for (i, (_, name)) in COMMANDS.iter().enumerate() {
            p.sample(
                "nlq_command_errors_total",
                &[("command", name)],
                self.errors[i].load(Ordering::Relaxed) as f64,
            );
        }

        p.family(
            "nlq_command_latency_seconds",
            "histogram",
            "Request wall-clock latency, by command",
        );
        for (i, (_, name)) in COMMANDS.iter().enumerate() {
            let hist = &self.latency[i];
            let counts = hist.counts();
            // Cumulative buckets: everything at or under the bucket's
            // upper bound, which includes the legacy "below" samples.
            let mut cumulative = hist.below();
            for (b, n) in counts.into_iter().enumerate() {
                cumulative += n;
                let le = format!("{}", bucket_bound_micros(b + 1) / 1e6);
                p.sample(
                    "nlq_command_latency_seconds_bucket",
                    &[("command", name), ("le", &le)],
                    cumulative as f64,
                );
            }
            p.sample(
                "nlq_command_latency_seconds_bucket",
                &[("command", name), ("le", "+Inf")],
                hist.total() as f64,
            );
            p.sample(
                "nlq_command_latency_seconds_sum",
                &[("command", name)],
                hist.sum_micros() as f64 / 1e6,
            );
            p.sample(
                "nlq_command_latency_seconds_count",
                &[("command", name)],
                hist.total() as f64,
            );
        }
        p.finish()
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Renders the engine-side gauges — shard count, per-shard counters,
/// and plan-cache state — as `(name, value)` METRICS rows. A plain
/// single-`Db` engine reports `shards = 1` with no per-shard rows and
/// no plan cache.
pub fn render_engine_rows(
    shard_count: usize,
    shards: &[nlq_engine::ShardMetricsSnapshot],
    plan_cache: Option<nlq_engine::PlanCacheStats>,
) -> Vec<Vec<Value>> {
    let mut rows = vec![vec![
        Value::Str("shards".into()),
        Value::Int(shard_count as i64),
    ]];
    for s in shards {
        let i = s.shard;
        rows.push(vec![
            Value::Str(format!("shard.{i}.queries")),
            Value::Int(s.queries as i64),
        ]);
        rows.push(vec![
            Value::Str(format!("shard.{i}.rows_scanned")),
            Value::Int(s.rows_scanned as i64),
        ]);
        rows.push(vec![
            Value::Str(format!("shard.{i}.queue_depth")),
            Value::Int(s.queue_depth as i64),
        ]);
        rows.push(vec![
            Value::Str(format!("shard.{i}.busy_us")),
            Value::Int((s.busy_nanos / 1_000) as i64),
        ]);
    }
    if let Some(c) = plan_cache {
        rows.push(vec![
            Value::Str("plan_cache.hits".into()),
            Value::Int(c.hits as i64),
        ]);
        rows.push(vec![
            Value::Str("plan_cache.misses".into()),
            Value::Int(c.misses as i64),
        ]);
        rows.push(vec![
            Value::Str("plan_cache.entries".into()),
            Value::Int(c.entries as i64),
        ]);
    }
    rows
}

/// Renders the engine-side gauges as Prometheus text exposition
/// families (appended after the server families by the caller).
pub fn render_engine_prometheus(
    shard_count: usize,
    shards: &[nlq_engine::ShardMetricsSnapshot],
    plan_cache: Option<nlq_engine::PlanCacheStats>,
) -> String {
    let mut p = PromText::new();
    p.family("nlq_shards", "gauge", "Number of engine shards");
    p.sample("nlq_shards", &[], shard_count as f64);
    if !shards.is_empty() {
        p.family(
            "nlq_shard_queries_total",
            "counter",
            "Statements executed, by shard",
        );
        for s in shards {
            let label = s.shard.to_string();
            p.sample(
                "nlq_shard_queries_total",
                &[("shard", &label)],
                s.queries as f64,
            );
        }
        p.family(
            "nlq_shard_rows_scanned_total",
            "counter",
            "Base-table rows scanned, by shard",
        );
        for s in shards {
            let label = s.shard.to_string();
            p.sample(
                "nlq_shard_rows_scanned_total",
                &[("shard", &label)],
                s.rows_scanned as f64,
            );
        }
        p.family(
            "nlq_shard_queue_depth",
            "gauge",
            "Jobs waiting on the shard's executor, by shard",
        );
        for s in shards {
            let label = s.shard.to_string();
            p.sample(
                "nlq_shard_queue_depth",
                &[("shard", &label)],
                s.queue_depth as f64,
            );
        }
        p.family(
            "nlq_shard_busy_seconds_total",
            "counter",
            "Executor-thread busy time, by shard",
        );
        for s in shards {
            let label = s.shard.to_string();
            p.sample(
                "nlq_shard_busy_seconds_total",
                &[("shard", &label)],
                s.busy_nanos as f64 / 1e9,
            );
        }
    }
    if let Some(c) = plan_cache {
        p.family("nlq_plan_cache_hits_total", "counter", "Plan-cache hits");
        p.sample("nlq_plan_cache_hits_total", &[], c.hits as f64);
        p.family(
            "nlq_plan_cache_misses_total",
            "counter",
            "Plan-cache misses",
        );
        p.sample("nlq_plan_cache_misses_total", &[], c.misses as f64);
        p.family("nlq_plan_cache_entries", "gauge", "Plans currently cached");
        p.sample("nlq_plan_cache_entries", &[], c.entries as f64);
    }
    p.finish()
}

/// Renders the durability gauges — WAL counters since open, current
/// log size, and what the last recovery replayed — as `(name, value)`
/// METRICS rows. A volatile engine (no `--wal-dir`) contributes no
/// rows at all.
pub fn render_wal_rows(
    wal: Option<nlq_storage::WalStatsSnapshot>,
    log_bytes: Option<u64>,
    recovery: Option<nlq_engine::RecoveryInfo>,
) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    if let Some(w) = wal {
        rows.push(vec![
            Value::Str("wal.bytes".into()),
            Value::Int(w.bytes as i64),
        ]);
        rows.push(vec![
            Value::Str("wal.records".into()),
            Value::Int(w.records as i64),
        ]);
        rows.push(vec![
            Value::Str("wal.fsyncs".into()),
            Value::Int(w.fsyncs as i64),
        ]);
        rows.push(vec![
            Value::Str("wal.checkpoints".into()),
            Value::Int(w.checkpoints as i64),
        ]);
    }
    if let Some(b) = log_bytes {
        rows.push(vec![
            Value::Str("wal.log_bytes".into()),
            Value::Int(b as i64),
        ]);
    }
    if let Some(r) = recovery {
        rows.push(vec![
            Value::Str("recovery.replayed_records".into()),
            Value::Int(r.replayed_records as i64),
        ]);
        rows.push(vec![
            Value::Str("recovery.replayed_envelopes".into()),
            Value::Int(r.replayed_envelopes as i64),
        ]);
        rows.push(vec![
            Value::Str("recovery.truncated_bytes".into()),
            Value::Int(r.truncated_bytes as i64),
        ]);
        rows.push(vec![
            Value::Str("recovery.checkpoint_tables".into()),
            Value::Int(r.checkpoint_tables as i64),
        ]);
    }
    rows
}

/// Renders the durability gauges as Prometheus text exposition
/// families (appended after the engine families by the caller). Emits
/// nothing for a volatile engine.
pub fn render_wal_prometheus(
    wal: Option<nlq_storage::WalStatsSnapshot>,
    log_bytes: Option<u64>,
    recovery: Option<nlq_engine::RecoveryInfo>,
) -> String {
    let mut p = PromText::new();
    if let Some(w) = wal {
        p.family(
            "nlq_wal_bytes_total",
            "counter",
            "Bytes appended to the write-ahead log since open",
        );
        p.sample("nlq_wal_bytes_total", &[], w.bytes as f64);
        p.family(
            "nlq_wal_records_total",
            "counter",
            "Records appended to the write-ahead log since open",
        );
        p.sample("nlq_wal_records_total", &[], w.records as f64);
        p.family("nlq_wal_fsyncs_total", "counter", "fsync calls issued");
        p.sample("nlq_wal_fsyncs_total", &[], w.fsyncs as f64);
        p.family(
            "nlq_checkpoints_total",
            "counter",
            "Checkpoints taken since open",
        );
        p.sample("nlq_checkpoints_total", &[], w.checkpoints as f64);
    }
    if let Some(b) = log_bytes {
        p.family(
            "nlq_wal_log_bytes",
            "gauge",
            "Live write-ahead log size (drops to zero at checkpoint)",
        );
        p.sample("nlq_wal_log_bytes", &[], b as f64);
    }
    if let Some(r) = recovery {
        p.family(
            "nlq_recovery_replayed_records",
            "gauge",
            "Committed WAL records re-applied at the last open",
        );
        p.sample(
            "nlq_recovery_replayed_records",
            &[],
            r.replayed_records as f64,
        );
        p.family(
            "nlq_recovery_replayed_envelopes",
            "gauge",
            "Committed envelopes re-applied at the last open",
        );
        p.sample(
            "nlq_recovery_replayed_envelopes",
            &[],
            r.replayed_envelopes as f64,
        );
        p.family(
            "nlq_recovery_truncated_bytes",
            "gauge",
            "Torn-tail bytes discarded at the last open",
        );
        p.sample(
            "nlq_recovery_truncated_bytes",
            &[],
            r.truncated_bytes as f64,
        );
    }
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_and_render() {
        let m = Metrics::new();
        m.record(Command::Execute, Duration::from_micros(50), true);
        m.record(Command::Execute, Duration::from_millis(20), false);
        m.record(Command::Ping, Duration::from_micros(2), true);
        m.record(Command::Cancel, Duration::from_micros(3), true);
        m.record_summary(3, 1, 2);
        m.queries_cancelled.fetch_add(1, Ordering::Relaxed);
        m.bytes_streamed.fetch_add(4096, Ordering::Relaxed);
        m.chunks_streamed.fetch_add(2, Ordering::Relaxed);

        let rows = m.render(5, 2);
        let get = |name: &str| -> i64 {
            rows.iter()
                .find(|r| r[0].as_str() == Some(name))
                .unwrap_or_else(|| panic!("missing metric {name}"))[1]
                .as_i64()
                .unwrap()
        };
        assert_eq!(get("queue_depth"), 5);
        assert_eq!(get("workers_busy"), 2);
        assert_eq!(get("queries_cancelled"), 1);
        assert_eq!(get("bytes_streamed"), 4096);
        assert_eq!(get("chunks_streamed"), 2);
        assert_eq!(get("command.cancel.count"), 1);
        assert_eq!(get("command.execute.count"), 2);
        assert_eq!(get("command.execute.errors"), 1);
        assert_eq!(get("command.ping.count"), 1);
        assert_eq!(get("summary_hits"), 3);
        assert_eq!(get("summary_misses"), 1);
        assert_eq!(get("summary_stale_rebuilds"), 2);
        // Both execute latencies landed in some histogram bucket.
        let hist_total: i64 = rows
            .iter()
            .filter(|r| {
                r[0].as_str()
                    .is_some_and(|s| s.starts_with("command.execute.latency_us["))
            })
            .map(|r| r[1].as_i64().unwrap())
            .sum();
        assert_eq!(hist_total, 2);
    }

    #[test]
    fn wal_rows_render_only_for_durable_engines() {
        assert!(render_wal_rows(None, None, None).is_empty());
        assert_eq!(render_wal_prometheus(None, None, None), "");

        let snap = nlq_storage::WalStatsSnapshot {
            bytes: 128,
            records: 3,
            fsyncs: 2,
            replayed: 0,
            checkpoints: 1,
        };
        let info = nlq_engine::RecoveryInfo {
            replayed_records: 7,
            replayed_envelopes: 4,
            truncated_bytes: 13,
            checkpoint_tables: 2,
        };
        let rows = render_wal_rows(Some(snap), Some(64), Some(info));
        let get = |name: &str| -> i64 {
            rows.iter()
                .find(|r| r[0].as_str() == Some(name))
                .unwrap_or_else(|| panic!("missing metric {name}"))[1]
                .as_i64()
                .unwrap()
        };
        assert_eq!(get("wal.bytes"), 128);
        assert_eq!(get("wal.fsyncs"), 2);
        assert_eq!(get("wal.checkpoints"), 1);
        assert_eq!(get("wal.log_bytes"), 64);
        assert_eq!(get("recovery.replayed_records"), 7);
        assert_eq!(get("recovery.truncated_bytes"), 13);
        assert_eq!(get("recovery.checkpoint_tables"), 2);

        let text = render_wal_prometheus(Some(snap), Some(64), Some(info));
        nlq_obs::validate_exposition(&text).expect("valid exposition");
        assert!(text.contains("nlq_wal_fsyncs_total 2"));
        assert!(text.contains("nlq_checkpoints_total 1"));
        assert!(text.contains("nlq_wal_log_bytes 64"));
        assert!(text.contains("nlq_recovery_replayed_records 7"));
    }

    #[test]
    fn bucket_boundaries_land_in_their_documented_bucket() {
        // A latency of exactly 10^(b/2) µs is the documented lower
        // bound of bucket b and must land there, not one off due to
        // floating-point log10.
        for b in 0..LAT_BUCKETS {
            let micros = bucket_bound_micros(b);
            assert_eq!(
                bucket_index(micros),
                BucketIndex::In(b),
                "boundary 10^({b}/2) = {micros} µs"
            );
            // Integer microsecond just below the boundary stays in the
            // previous bucket.
            if b > 0 {
                let just_below = (micros - 1.0).max(1.0);
                match bucket_index(just_below) {
                    BucketIndex::In(idx) => assert!(idx < b || just_below >= micros),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        // Exactly 10^7 µs (10 s) clamps into the last bucket, like the
        // legacy histogram; anything beyond falls above.
        assert_eq!(
            bucket_index(bucket_bound_micros(LAT_BUCKETS)),
            BucketIndex::In(LAT_BUCKETS - 1)
        );
        assert_eq!(bucket_index(2e7), BucketIndex::Above);
        assert_eq!(bucket_index(0.5), BucketIndex::Below);
    }

    #[test]
    fn concurrent_recording_matches_serial_replay() {
        // A deterministic latency workload recorded by 8 threads
        // concurrently must produce exactly the same buckets as the
        // same samples replayed serially.
        let samples: Vec<u64> = (0..4000u64).map(|i| (i * 2503 + 7) % 20_000_000).collect();
        let concurrent = Arc::new(Metrics::new());
        let threads: Vec<_> = samples
            .chunks(500)
            .map(|chunk| {
                let m = Arc::clone(&concurrent);
                let chunk = chunk.to_vec();
                std::thread::spawn(move || {
                    for micros in chunk {
                        m.record(Command::Execute, Duration::from_micros(micros), true);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }

        let serial = Metrics::new();
        for &micros in &samples {
            serial.record(Command::Execute, Duration::from_micros(micros), true);
        }

        let s = slot(Command::Execute);
        assert_eq!(concurrent.latency[s].counts(), serial.latency[s].counts());
        assert_eq!(concurrent.latency[s].below(), serial.latency[s].below());
        assert_eq!(concurrent.latency[s].above(), serial.latency[s].above());
        assert_eq!(
            concurrent.latency[s].sum_micros(),
            serial.latency[s].sum_micros()
        );
        assert_eq!(concurrent.latency[s].total() as usize, samples.len());
    }

    #[test]
    fn prometheus_rendering_round_trips_cumulative_buckets() {
        let m = Metrics::new();
        let samples = [1u64, 3, 10, 999, 50_000, 2_000_000, 20_000_000];
        for &micros in &samples {
            m.record(Command::Execute, Duration::from_micros(micros), true);
        }
        let text = m.render_prometheus(0, 0);
        nlq_obs::validate_exposition(&text).expect("valid exposition");

        // Parse the execute command's bucket series back out and check
        // it is cumulative, monotonic, and consistent with the raw
        // bucket counts.
        let mut cumulative = Vec::new();
        let mut inf = None;
        let mut count = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("nlq_command_latency_seconds_bucket{") {
                if !rest.contains("command=\"execute\"") {
                    continue;
                }
                let value: f64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
                if rest.contains("le=\"+Inf\"") {
                    inf = Some(value as u64);
                } else {
                    cumulative.push(value as u64);
                }
            } else if let Some(rest) =
                line.strip_prefix("nlq_command_latency_seconds_count{command=\"execute\"}")
            {
                count = Some(rest.trim().parse::<f64>().unwrap() as u64);
            }
        }
        assert_eq!(cumulative.len(), LAT_BUCKETS);
        assert!(
            cumulative.windows(2).all(|w| w[0] <= w[1]),
            "{cumulative:?}"
        );
        // Reconstruct per-bucket counts by differencing and compare
        // with the histogram's own view.
        let s = slot(Command::Execute);
        let raw = m.latency[s].counts();
        let mut prev = m.latency[s].below();
        for (b, &c) in cumulative.iter().enumerate() {
            assert_eq!(c - prev, raw[b], "bucket {b}");
            prev = c;
        }
        assert_eq!(inf, Some(samples.len() as u64));
        assert_eq!(count, Some(samples.len() as u64));
        // One 20 s sample fell past the last bucket: +Inf exceeds the
        // last finite bucket by exactly that overflow.
        assert_eq!(inf.unwrap() - cumulative[LAT_BUCKETS - 1], 1);
    }
}
