//! The length-prefixed binary wire protocol.
//!
//! Every frame is a 4-byte big-endian payload length followed by the
//! payload. The first payload byte is a tag; the rest is a sequence of
//! fixed-width big-endian integers and length-prefixed UTF-8 strings.
//! Frames are capped at [`MAX_FRAME`] bytes in both directions — a
//! peer announcing a larger frame is a protocol error. The cap bounds
//! a *frame*, not a result: query output streams as a chunked frame
//! sequence of unbounded total size.
//!
//! The protocol is request/response with one streaming exception.
//! After an initial unprompted [`Response::Hello`], the server sends
//! exactly one terminal reply per request — except `Execute`, whose
//! reply is a *stream*:
//!
//! ```text
//! RowsHeader (schema)
//! RowsChunk*  (row batches, each ≤ the server's chunk budget)
//! RowsDone | Error  (trailer with stats, or the failure)
//! ```
//!
//! Every streamed frame carries the statement's sequence number (the
//! 1-based count of `Execute` requests on the session, mirrored by
//! both peers). [`Request::Cancel`] names a sequence number and is the
//! one fire-and-forget request: the server never replies to it — the
//! stream's own terminal frame (a [`Response::Error`] with
//! [`ErrorCode::Cancelled`], or `RowsDone` if the query won the race)
//! is the acknowledgment. This keeps the frame ledger in lockstep
//! however the cancel races completion.

use std::io::{self, Read, Write};

use nlq_obs::{Outcome, Phase, Span, TraceRecord};
use nlq_storage::Value;

/// Hard ceiling on a frame payload (64 MiB).
pub const MAX_FRAME: usize = 64 << 20;

/// Protocol version spoken by this build (in `Hello`).
/// Version 2 added streamed results and cancellation; version 3 added
/// trace retrieval (`TRACE`) and Prometheus-format metrics; version 4
/// added the feature-serving loop: chunked streaming INSERT
/// (`InsertHeader` / `InsertChunk`* / `InsertDone` → `InsertAck`) and
/// single-round-trip batch scoring (`BatchScore`); version 5 added
/// durability: an explicit `Checkpoint` request and the `Retry` error
/// code carried by ingest back-pressure rejections.
pub const PROTOCOL_VERSION: u32 = 6;

// Request tags.
const REQ_EXECUTE: u8 = 0x01;
const REQ_SET_OPTION: u8 = 0x02;
const REQ_STATUS: u8 = 0x03;
const REQ_METRICS: u8 = 0x04;
const REQ_PING: u8 = 0x05;
const REQ_SHUTDOWN: u8 = 0x06;
const REQ_CANCEL: u8 = 0x07;
const REQ_TRACE: u8 = 0x08;
const REQ_METRICS_PROM: u8 = 0x09;
const REQ_INSERT_HEADER: u8 = 0x0A;
const REQ_INSERT_CHUNK: u8 = 0x0B;
const REQ_INSERT_DONE: u8 = 0x0C;
const REQ_INSERT_ABORT: u8 = 0x0D;
const REQ_BATCH_SCORE: u8 = 0x0E;
const REQ_CHECKPOINT: u8 = 0x0F;

// Response tags.
const RESP_HELLO: u8 = 0x80;
const RESP_RESULT: u8 = 0x81;
const RESP_ERROR: u8 = 0x82;
const RESP_OK: u8 = 0x83;
const RESP_PONG: u8 = 0x84;
const RESP_ROWS_HEADER: u8 = 0x85;
const RESP_ROWS_CHUNK: u8 = 0x86;
const RESP_ROWS_DONE: u8 = 0x87;
const RESP_METRICS_TEXT: u8 = 0x88;
const RESP_TRACE: u8 = 0x89;
const RESP_INSERT_ACK: u8 = 0x8A;

// Value tags.
const VAL_NULL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_STR: u8 = 3;

/// A client-to-server command.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one SQL statement.
    Execute {
        /// The SQL text.
        sql: String,
    },
    /// Set a per-session option (`block_scan` = `on`/`off`/`default`).
    SetOption {
        /// Option name.
        name: String,
        /// Option value.
        value: String,
    },
    /// Describe this session (id, settings, last statement's stats).
    Status,
    /// Server-wide counters, latency histograms, and gauges.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Ask the server to shut down gracefully (drain, then exit).
    Shutdown,
    /// Cooperatively cancel the session's `seq`-th `Execute`.
    /// Fire-and-forget: the server never replies to a `Cancel`; the
    /// targeted stream terminates with [`ErrorCode::Cancelled`] (or
    /// completes normally if it won the race). A `Cancel` for a
    /// statement that already finished — or has not started yet — is
    /// remembered against that sequence number, never misdelivered to
    /// a different statement.
    Cancel {
        /// 1-based `Execute` count identifying the statement.
        seq: u64,
    },
    /// Page through the server's retained query traces (the recent
    /// ring, or the slow-query ring).
    Trace {
        /// Read the slow-query ring instead of the recent-trace ring.
        slow_only: bool,
        /// Return only records with id strictly greater than this
        /// (paging cursor; 0 starts from the oldest retained record).
        after_id: u64,
        /// Maximum records to return (the server may clamp further).
        limit: u32,
    },
    /// Server-wide metrics in the Prometheus text exposition format.
    MetricsProm,
    /// Opens a streamed INSERT: target table and the frame column
    /// names (empty = all table columns in schema order). Ingest is an
    /// *envelope*: the header and every chunk go unacknowledged; the
    /// server replies exactly once, to [`Request::InsertDone`], with
    /// [`Response::InsertAck`] (rows accepted) or an error. A header
    /// or chunk that fails validation poisons the stream server-side;
    /// the poisoning error is what `InsertDone` returns. Nothing is
    /// visible to readers until the `InsertDone` commit.
    InsertHeader {
        /// Target base table.
        table: String,
        /// Named frame columns, mapped case-insensitively; table
        /// columns not named are filled with NULL.
        columns: Vec<String>,
    },
    /// One batch of pre-evaluated rows in a streamed INSERT. Chunks
    /// carry an explicit sequence number, checked strictly monotonic
    /// from zero, so a dropped or reordered frame surfaces as an error
    /// instead of silent row loss.
    InsertChunk {
        /// 0-based chunk sequence number within this stream.
        seq: u32,
        /// The rows, each with one value per header column.
        rows: Vec<Vec<Value>>,
    },
    /// Commits the open INSERT stream atomically. The one acknowledged
    /// frame of the envelope.
    InsertDone,
    /// Abandons the open INSERT stream, committing nothing.
    /// Fire-and-forget: the server never replies.
    InsertAbort,
    /// Scores up to [`nlq_engine::MAX_SCORE_KEYS`] primary keys
    /// against a registered model table in one round trip, via PK
    /// point lookups and the scalar scoring UDFs. Replies with a
    /// [`Response::Result`]: one `(key, score)` row per key in request
    /// order, NULL score for absent keys. With `explain`, returns the
    /// plan instead of executing.
    BatchScore {
        /// Table holding the feature rows (first column must be the
        /// INT primary key).
        table: String,
        /// Registered model table (`name(b0, b1..bd)` regression
        /// coefficients, or `name(j, X1..Xd)` centroids).
        model: String,
        /// The keys to score, in the order the rows should return.
        keys: Vec<i64>,
        /// Return the plan instead of executing.
        explain: bool,
    },
    /// Forces a durability checkpoint: snapshot the sealed state and
    /// truncate the write-ahead log. Replies [`Response::Ok`] (also
    /// when the engine has no WAL and the request is a no-op), or an
    /// error if the snapshot failed.
    Checkpoint,
}

/// Why a request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control: connection or queue capacity exhausted.
    Busy = 1,
    /// The query exceeded the per-query wall-clock limit.
    Timeout = 2,
    /// The result exceeded the per-query row or byte limit.
    TooLarge = 3,
    /// The SQL failed (parse, bind, or execution error).
    Sql = 4,
    /// Malformed frame or unknown option.
    Protocol = 5,
    /// The server is draining and no longer accepts work.
    ShuttingDown = 6,
    /// The query was cancelled (client `Cancel` or server drain).
    Cancelled = 7,
    /// Transient refusal with a retry hint: the refresh daemon is past
    /// its staleness bound, so ingest is back-pressured. Nothing was
    /// committed; re-send the same envelope after a pause.
    Retry = 8,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Busy,
            2 => ErrorCode::Timeout,
            3 => ErrorCode::TooLarge,
            4 => ErrorCode::Sql,
            5 => ErrorCode::Protocol,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Cancelled,
            8 => ErrorCode::Retry,
            _ => return None,
        })
    }
}

/// Execution counters carried alongside a result frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Base-table rows read.
    pub rows_scanned: u64,
    /// Column blocks decoded.
    pub blocks_scanned: u64,
    /// Whether the vectorized block path ran the scan.
    pub block_path: bool,
    /// Whether a materialized Γ summary answered the query.
    pub summary_path: bool,
    /// Summary hits while answering.
    pub summary_hits: u64,
    /// Summary misses (fell back to a scan).
    pub summary_misses: u64,
    /// Stale summaries rebuilt on demand.
    pub summary_stale_rebuilds: u64,
    /// Server-side wall-clock for the statement, microseconds.
    pub elapsed_micros: u64,
    /// Whether the statement was cancelled mid-execution.
    pub cancelled: bool,
}

/// A server-to-client reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// First frame on every accepted connection.
    Hello {
        /// Session identifier (unique per server process).
        session_id: u64,
        /// Protocol version the server speaks.
        version: u32,
    },
    /// A query result.
    Result {
        /// Output column names.
        columns: Vec<String>,
        /// Output rows.
        rows: Vec<Vec<Value>>,
        /// Execution counters.
        stats: WireStats,
    },
    /// The request was refused or failed.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Command acknowledged, no data.
    Ok,
    /// Reply to [`Request::Ping`].
    Pong,
    /// Opens a streamed result: the statement's sequence number and
    /// output schema. Row batches follow in [`Response::RowsChunk`]
    /// frames, closed by [`Response::RowsDone`] or an error.
    RowsHeader {
        /// The statement's 1-based `Execute` count on this session.
        seq: u64,
        /// Globally unique query id minted at admission — the join key
        /// into `sys.queries`/`sys.spans` and the slow-query log.
        query_id: u64,
        /// Output column names.
        columns: Vec<String>,
    },
    /// One batch of rows in a streamed result.
    RowsChunk {
        /// Sequence number matching the opening header.
        seq: u64,
        /// Output columns per row (repeated so a chunk is
        /// self-describing even when it carries zero rows).
        ncols: u32,
        /// The batch of rows.
        rows: Vec<Vec<Value>>,
    },
    /// Trailer closing a streamed result. The totals let the client
    /// verify nothing was dropped or torn mid-stream.
    RowsDone {
        /// Sequence number matching the opening header.
        seq: u64,
        /// Total rows across every chunk.
        total_rows: u64,
        /// Total encoded row bytes across every chunk (chunk payload
        /// sizes minus the fixed per-chunk overhead).
        total_bytes: u64,
        /// Execution counters.
        stats: WireStats,
    },
    /// Reply to [`Request::MetricsProm`]: the exposition text.
    MetricsText {
        /// Prometheus text exposition.
        text: String,
    },
    /// Reply to [`Request::Trace`]: a page of retained trace records
    /// in ascending id order.
    Trace {
        /// The page of records.
        records: Vec<TraceRecord>,
        /// Whether the ring evicted records the page's `after_id`
        /// cursor should have covered — the pager has a gap it can
        /// never fill.
        truncated: bool,
    },
    /// Reply to [`Request::InsertDone`]: the streamed batch committed.
    InsertAck {
        /// Rows accepted into the table (and folded into any fresh Γ
        /// summaries on it).
        rows: u64,
    },
}

// ---------------------------------------------------------------------------
// Primitive encoders
// ---------------------------------------------------------------------------

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(VAL_NULL),
        Value::Int(i) => {
            buf.push(VAL_INT);
            buf.extend_from_slice(&i.to_be_bytes());
        }
        Value::Float(f) => {
            buf.push(VAL_FLOAT);
            buf.extend_from_slice(&f.to_be_bytes());
        }
        Value::Str(s) => {
            buf.push(VAL_STR);
            put_str(buf, s);
        }
    }
}

/// A cursor over a received payload.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(bad("truncated frame"));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid utf-8 in string"))
    }

    fn value(&mut self) -> io::Result<Value> {
        Ok(match self.u8()? {
            VAL_NULL => Value::Null,
            VAL_INT => Value::Int(self.u64()? as i64),
            VAL_FLOAT => Value::Float(f64::from_bits(self.u64()?)),
            VAL_STR => Value::Str(self.str()?),
            _ => return Err(bad("unknown value tag")),
        })
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn done(&self) -> io::Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(bad("trailing bytes in frame"))
        }
    }
}

fn bad(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(bad("frame exceeds MAX_FRAME"));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame, `None` on clean EOF at a frame
/// boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(bad("peer announced an oversized frame"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Request encode/decode
// ---------------------------------------------------------------------------

impl Request {
    /// Encodes this request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Execute { sql } => {
                buf.push(REQ_EXECUTE);
                put_str(&mut buf, sql);
            }
            Request::SetOption { name, value } => {
                buf.push(REQ_SET_OPTION);
                put_str(&mut buf, name);
                put_str(&mut buf, value);
            }
            Request::Status => buf.push(REQ_STATUS),
            Request::Metrics => buf.push(REQ_METRICS),
            Request::Ping => buf.push(REQ_PING),
            Request::Shutdown => buf.push(REQ_SHUTDOWN),
            Request::Cancel { seq } => {
                buf.push(REQ_CANCEL);
                buf.extend_from_slice(&seq.to_be_bytes());
            }
            Request::Trace {
                slow_only,
                after_id,
                limit,
            } => {
                buf.push(REQ_TRACE);
                buf.push(u8::from(*slow_only));
                buf.extend_from_slice(&after_id.to_be_bytes());
                buf.extend_from_slice(&limit.to_be_bytes());
            }
            Request::MetricsProm => buf.push(REQ_METRICS_PROM),
            Request::InsertHeader { table, columns } => {
                buf.push(REQ_INSERT_HEADER);
                put_str(&mut buf, table);
                buf.extend_from_slice(&(columns.len() as u32).to_be_bytes());
                for c in columns {
                    put_str(&mut buf, c);
                }
            }
            Request::InsertChunk { seq, rows } => {
                buf.push(REQ_INSERT_CHUNK);
                buf.extend_from_slice(&seq.to_be_bytes());
                buf.extend_from_slice(&(rows.len() as u32).to_be_bytes());
                let ncols = rows.first().map_or(0, Vec::len) as u32;
                buf.extend_from_slice(&ncols.to_be_bytes());
                for row in rows {
                    for v in row {
                        put_value(&mut buf, v);
                    }
                }
            }
            Request::InsertDone => buf.push(REQ_INSERT_DONE),
            Request::InsertAbort => buf.push(REQ_INSERT_ABORT),
            Request::BatchScore {
                table,
                model,
                keys,
                explain,
            } => {
                buf.push(REQ_BATCH_SCORE);
                put_str(&mut buf, table);
                put_str(&mut buf, model);
                buf.push(u8::from(*explain));
                buf.extend_from_slice(&(keys.len() as u32).to_be_bytes());
                for k in keys {
                    buf.extend_from_slice(&k.to_be_bytes());
                }
            }
            Request::Checkpoint => buf.push(REQ_CHECKPOINT),
        }
        buf
    }

    /// Decodes a frame payload into a request.
    pub fn decode(payload: &[u8]) -> io::Result<Request> {
        let mut r = Reader { buf: payload };
        let req = match r.u8()? {
            REQ_EXECUTE => Request::Execute { sql: r.str()? },
            REQ_SET_OPTION => Request::SetOption {
                name: r.str()?,
                value: r.str()?,
            },
            REQ_STATUS => Request::Status,
            REQ_METRICS => Request::Metrics,
            REQ_PING => Request::Ping,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_CANCEL => Request::Cancel { seq: r.u64()? },
            REQ_TRACE => Request::Trace {
                slow_only: r.u8()? != 0,
                after_id: r.u64()?,
                limit: r.u32()?,
            },
            REQ_METRICS_PROM => Request::MetricsProm,
            REQ_INSERT_HEADER => {
                let table = r.str()?;
                let ncols = r.u32()? as usize;
                // Each name costs at least its 4-byte length prefix.
                if ncols.saturating_mul(4) > r.remaining() {
                    return Err(bad("column count exceeds frame size"));
                }
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    columns.push(r.str()?);
                }
                Request::InsertHeader { table, columns }
            }
            REQ_INSERT_CHUNK => {
                let seq = r.u32()?;
                let nrows = r.u32()? as usize;
                let ncols = r.u32()? as usize;
                // Each value is at least one tag byte.
                if nrows.saturating_mul(ncols.max(1)) > r.remaining() {
                    return Err(bad("row count exceeds frame size"));
                }
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    let mut row = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        row.push(r.value()?);
                    }
                    rows.push(row);
                }
                Request::InsertChunk { seq, rows }
            }
            REQ_INSERT_DONE => Request::InsertDone,
            REQ_INSERT_ABORT => Request::InsertAbort,
            REQ_BATCH_SCORE => {
                let table = r.str()?;
                let model = r.str()?;
                let explain = r.u8()? != 0;
                let nkeys = r.u32()? as usize;
                if nkeys.saturating_mul(8) > r.remaining() {
                    return Err(bad("key count exceeds frame size"));
                }
                let mut keys = Vec::with_capacity(nkeys);
                for _ in 0..nkeys {
                    keys.push(r.u64()? as i64);
                }
                Request::BatchScore {
                    table,
                    model,
                    keys,
                    explain,
                }
            }
            REQ_CHECKPOINT => Request::Checkpoint,
            _ => return Err(bad("unknown request tag")),
        };
        r.done()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Response encode/decode
// ---------------------------------------------------------------------------

fn put_stats(buf: &mut Vec<u8>, s: &WireStats) {
    buf.extend_from_slice(&s.rows_scanned.to_be_bytes());
    buf.extend_from_slice(&s.blocks_scanned.to_be_bytes());
    buf.push(
        u8::from(s.block_path) | (u8::from(s.summary_path) << 1) | (u8::from(s.cancelled) << 2),
    );
    buf.extend_from_slice(&s.summary_hits.to_be_bytes());
    buf.extend_from_slice(&s.summary_misses.to_be_bytes());
    buf.extend_from_slice(&s.summary_stale_rebuilds.to_be_bytes());
    buf.extend_from_slice(&s.elapsed_micros.to_be_bytes());
}

fn put_span(buf: &mut Vec<u8>, s: &Span) {
    buf.push(s.phase.as_u8());
    buf.extend_from_slice(&s.start_nanos.to_be_bytes());
    buf.extend_from_slice(&s.dur_nanos.to_be_bytes());
    buf.extend_from_slice(&s.rows.to_be_bytes());
    buf.extend_from_slice(&s.bytes.to_be_bytes());
    buf.extend_from_slice(&s.blocks.to_be_bytes());
    buf.extend_from_slice(&s.cpu_nanos.to_be_bytes());
    buf.extend_from_slice(&s.shard.to_be_bytes());
}

fn read_span(r: &mut Reader<'_>) -> io::Result<Span> {
    let phase = Phase::from_u8(r.u8()?).ok_or_else(|| bad("unknown phase tag"))?;
    Ok(Span {
        phase,
        start_nanos: r.u64()?,
        dur_nanos: r.u64()?,
        rows: r.u64()?,
        bytes: r.u64()?,
        blocks: r.u64()?,
        cpu_nanos: r.u64()?,
        shard: r.u64()? as i64,
    })
}

fn put_trace_record(buf: &mut Vec<u8>, t: &TraceRecord) {
    buf.extend_from_slice(&t.id.to_be_bytes());
    buf.extend_from_slice(&t.query_id.to_be_bytes());
    buf.extend_from_slice(&t.session.to_be_bytes());
    put_str(buf, &t.peer);
    buf.extend_from_slice(&t.shards.to_be_bytes());
    buf.extend_from_slice(&t.seq.to_be_bytes());
    put_str(buf, &t.sql);
    buf.push(t.outcome.as_u8());
    put_str(buf, &t.detail);
    buf.extend_from_slice(&t.total_nanos.to_be_bytes());
    buf.push(u8::from(t.slow));
    buf.extend_from_slice(&t.wal_bytes.to_be_bytes());
    buf.extend_from_slice(&t.fsyncs.to_be_bytes());
    buf.extend_from_slice(&t.cpu_nanos.to_be_bytes());
    buf.extend_from_slice(&(t.spans.len() as u32).to_be_bytes());
    for span in &t.spans {
        put_span(buf, span);
    }
}

fn read_trace_record(r: &mut Reader<'_>) -> io::Result<TraceRecord> {
    let id = r.u64()?;
    let query_id = r.u64()?;
    let session = r.u64()?;
    let peer = r.str()?;
    let shards = r.u32()?;
    let seq = r.u64()?;
    let sql = r.str()?;
    let outcome = Outcome::from_u8(r.u8()?).ok_or_else(|| bad("unknown outcome tag"))?;
    let detail = r.str()?;
    let total_nanos = r.u64()?;
    let slow = r.u8()? != 0;
    let wal_bytes = r.u64()?;
    let fsyncs = r.u64()?;
    let cpu_nanos = r.u64()?;
    let nspans = r.u32()? as usize;
    // Each span costs a fixed 57 bytes: reject counts the remaining
    // payload cannot hold.
    if nspans.saturating_mul(57) > r.remaining() {
        return Err(bad("span count exceeds frame size"));
    }
    let mut spans = Vec::with_capacity(nspans);
    for _ in 0..nspans {
        spans.push(read_span(r)?);
    }
    Ok(TraceRecord {
        id,
        query_id,
        session,
        peer,
        shards,
        seq,
        sql,
        outcome,
        detail,
        total_nanos,
        slow,
        wal_bytes,
        fsyncs,
        cpu_nanos,
        spans,
    })
}

fn read_stats(r: &mut Reader<'_>) -> io::Result<WireStats> {
    let rows_scanned = r.u64()?;
    let blocks_scanned = r.u64()?;
    let flags = r.u8()?;
    Ok(WireStats {
        rows_scanned,
        blocks_scanned,
        block_path: flags & 1 != 0,
        summary_path: flags & 2 != 0,
        cancelled: flags & 4 != 0,
        summary_hits: r.u64()?,
        summary_misses: r.u64()?,
        summary_stale_rebuilds: r.u64()?,
        elapsed_micros: r.u64()?,
    })
}

impl Response {
    /// Encodes this response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Hello {
                session_id,
                version,
            } => {
                buf.push(RESP_HELLO);
                buf.extend_from_slice(&session_id.to_be_bytes());
                buf.extend_from_slice(&version.to_be_bytes());
            }
            Response::Result {
                columns,
                rows,
                stats,
            } => {
                buf.push(RESP_RESULT);
                buf.extend_from_slice(&(columns.len() as u32).to_be_bytes());
                for c in columns {
                    put_str(&mut buf, c);
                }
                buf.extend_from_slice(&(rows.len() as u64).to_be_bytes());
                for row in rows {
                    for v in row {
                        put_value(&mut buf, v);
                    }
                }
                put_stats(&mut buf, stats);
            }
            Response::Error { code, message } => {
                buf.push(RESP_ERROR);
                buf.push(*code as u8);
                put_str(&mut buf, message);
            }
            Response::Ok => buf.push(RESP_OK),
            Response::Pong => buf.push(RESP_PONG),
            Response::RowsHeader {
                seq,
                query_id,
                columns,
            } => {
                buf.push(RESP_ROWS_HEADER);
                buf.extend_from_slice(&seq.to_be_bytes());
                buf.extend_from_slice(&query_id.to_be_bytes());
                buf.extend_from_slice(&(columns.len() as u32).to_be_bytes());
                for c in columns {
                    put_str(&mut buf, c);
                }
            }
            Response::RowsChunk { seq, ncols, rows } => {
                buf.push(RESP_ROWS_CHUNK);
                buf.extend_from_slice(&seq.to_be_bytes());
                buf.extend_from_slice(&(rows.len() as u32).to_be_bytes());
                buf.extend_from_slice(&ncols.to_be_bytes());
                for row in rows {
                    for v in row {
                        put_value(&mut buf, v);
                    }
                }
            }
            Response::RowsDone {
                seq,
                total_rows,
                total_bytes,
                stats,
            } => {
                buf.push(RESP_ROWS_DONE);
                buf.extend_from_slice(&seq.to_be_bytes());
                buf.extend_from_slice(&total_rows.to_be_bytes());
                buf.extend_from_slice(&total_bytes.to_be_bytes());
                put_stats(&mut buf, stats);
            }
            Response::MetricsText { text } => {
                buf.push(RESP_METRICS_TEXT);
                put_str(&mut buf, text);
            }
            Response::Trace { records, truncated } => {
                buf.push(RESP_TRACE);
                buf.push(u8::from(*truncated));
                buf.extend_from_slice(&(records.len() as u32).to_be_bytes());
                for record in records {
                    put_trace_record(&mut buf, record);
                }
            }
            Response::InsertAck { rows } => {
                buf.push(RESP_INSERT_ACK);
                buf.extend_from_slice(&rows.to_be_bytes());
            }
        }
        buf
    }

    /// Decodes a frame payload into a response.
    pub fn decode(payload: &[u8]) -> io::Result<Response> {
        let mut r = Reader { buf: payload };
        let resp = match r.u8()? {
            RESP_HELLO => Response::Hello {
                session_id: r.u64()?,
                version: r.u32()?,
            },
            RESP_RESULT => {
                let ncols = r.u32()? as usize;
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    columns.push(r.str()?);
                }
                let nrows = r.u64()? as usize;
                // Each value is at least one tag byte: reject row
                // counts the remaining payload cannot possibly hold.
                if nrows.saturating_mul(ncols.max(1)) > payload.len() {
                    return Err(bad("row count exceeds frame size"));
                }
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    let mut row = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        row.push(r.value()?);
                    }
                    rows.push(row);
                }
                let stats = read_stats(&mut r)?;
                Response::Result {
                    columns,
                    rows,
                    stats,
                }
            }
            RESP_ERROR => Response::Error {
                code: ErrorCode::from_u8(r.u8()?).ok_or_else(|| bad("unknown error code"))?,
                message: r.str()?,
            },
            RESP_OK => Response::Ok,
            RESP_PONG => Response::Pong,
            RESP_ROWS_HEADER => {
                let seq = r.u64()?;
                let query_id = r.u64()?;
                let ncols = r.u32()? as usize;
                // Each column name costs at least its 4-byte length
                // prefix: reject counts the payload cannot hold.
                if ncols.saturating_mul(4) > payload.len() {
                    return Err(bad("column count exceeds frame size"));
                }
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    columns.push(r.str()?);
                }
                Response::RowsHeader {
                    seq,
                    query_id,
                    columns,
                }
            }
            RESP_ROWS_CHUNK => {
                let seq = r.u64()?;
                let nrows = r.u32()? as usize;
                let ncols = r.u32()?;
                // Each value is at least one tag byte: reject row
                // counts the remaining payload cannot possibly hold.
                if nrows.saturating_mul((ncols as usize).max(1)) > payload.len() {
                    return Err(bad("row count exceeds frame size"));
                }
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    let mut row = Vec::with_capacity(ncols as usize);
                    for _ in 0..ncols {
                        row.push(r.value()?);
                    }
                    rows.push(row);
                }
                Response::RowsChunk { seq, ncols, rows }
            }
            RESP_ROWS_DONE => {
                let seq = r.u64()?;
                let total_rows = r.u64()?;
                let total_bytes = r.u64()?;
                let stats = read_stats(&mut r)?;
                Response::RowsDone {
                    seq,
                    total_rows,
                    total_bytes,
                    stats,
                }
            }
            RESP_METRICS_TEXT => Response::MetricsText { text: r.str()? },
            RESP_TRACE => {
                let truncated = r.u8()? != 0;
                let nrecords = r.u32()? as usize;
                // Each record costs at least its fixed-width fields
                // (83 bytes): reject counts the payload cannot hold.
                if nrecords.saturating_mul(83) > payload.len() {
                    return Err(bad("record count exceeds frame size"));
                }
                let mut records = Vec::with_capacity(nrecords);
                for _ in 0..nrecords {
                    records.push(read_trace_record(&mut r)?);
                }
                Response::Trace { records, truncated }
            }
            RESP_INSERT_ACK => Response::InsertAck { rows: r.u64()? },
            _ => return Err(bad("unknown response tag")),
        };
        r.done()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Streamed-result chunking
// ---------------------------------------------------------------------------

/// Fixed bytes of a `RowsChunk` payload that are not row data:
/// tag (1) + seq (8) + nrows (4) + ncols (4). A chunk's row bytes are
/// `payload.len() - CHUNK_OVERHEAD`; [`Response::RowsDone`]'s
/// `total_bytes` sums exactly these.
pub const CHUNK_OVERHEAD: usize = 1 + 8 + 4 + 4;

/// Incremental server-side encoder for a streamed result: rows go in,
/// ready-to-send `RowsChunk` frame payloads come out whenever the
/// accumulated row bytes reach the chunk budget. Byte totals are
/// tracked as rows are encoded, so a caller can enforce a result-size
/// budget *before* the next chunk is built — never after materializing
/// the whole result.
pub struct ChunkEncoder {
    seq: u64,
    ncols: u32,
    chunk_bytes: usize,
    /// Encoded row values for the chunk under construction.
    buf: Vec<u8>,
    rows_in_buf: u32,
    total_rows: u64,
    total_bytes: u64,
}

impl ChunkEncoder {
    /// A new encoder for statement `seq` with `ncols` output columns,
    /// cutting a chunk whenever its row bytes reach `chunk_bytes`
    /// (clamped so a chunk always fits a frame).
    pub fn new(seq: u64, ncols: usize, chunk_bytes: usize) -> ChunkEncoder {
        ChunkEncoder {
            seq,
            ncols: ncols as u32,
            chunk_bytes: chunk_bytes.clamp(1, MAX_FRAME - CHUNK_OVERHEAD),
            buf: Vec::new(),
            rows_in_buf: 0,
            total_rows: 0,
            total_bytes: 0,
        }
    }

    /// Encodes one row; returns a finished chunk payload once the
    /// pending bytes reach the chunk budget.
    pub fn push_row(&mut self, row: &[Value]) -> Option<Vec<u8>> {
        let before = self.buf.len();
        for v in row {
            put_value(&mut self.buf, v);
        }
        self.total_bytes += (self.buf.len() - before) as u64;
        self.rows_in_buf += 1;
        self.total_rows += 1;
        (self.buf.len() >= self.chunk_bytes).then(|| self.cut())
    }

    /// The final partial chunk, if any rows are pending.
    pub fn finish(&mut self) -> Option<Vec<u8>> {
        (self.rows_in_buf > 0).then(|| self.cut())
    }

    /// Total rows encoded so far.
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Total encoded row bytes so far (matching `RowsDone`'s
    /// `total_bytes`).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The trailer payload for this stream.
    pub fn done_payload(&self, stats: &WireStats) -> Vec<u8> {
        Response::RowsDone {
            seq: self.seq,
            total_rows: self.total_rows,
            total_bytes: self.total_bytes,
            stats: *stats,
        }
        .encode()
    }

    fn cut(&mut self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(CHUNK_OVERHEAD + self.buf.len());
        payload.push(RESP_ROWS_CHUNK);
        payload.extend_from_slice(&self.seq.to_be_bytes());
        payload.extend_from_slice(&self.rows_in_buf.to_be_bytes());
        payload.extend_from_slice(&self.ncols.to_be_bytes());
        payload.extend_from_slice(&self.buf);
        self.buf.clear();
        self.rows_in_buf = 0;
        payload
    }
}

/// Client-side reassembly of one streamed result. Feed every payload
/// that follows the stream's `RowsHeader`; the assembler verifies
/// sequence numbers, column arity, and the trailer's row/byte totals,
/// rejecting torn or corrupted streams with a clean error.
pub struct StreamAssembler {
    seq: u64,
    ncols: usize,
    rows: Vec<Vec<Value>>,
    bytes: u64,
    stats: Option<WireStats>,
}

impl StreamAssembler {
    /// An assembler for the stream opened by the given header fields.
    pub fn new(seq: u64, ncols: usize) -> StreamAssembler {
        StreamAssembler {
            seq,
            ncols,
            rows: Vec::new(),
            bytes: 0,
            stats: None,
        }
    }

    /// Consumes one post-header frame payload. Returns `Ok(true)` when
    /// the trailer arrived and verified, `Ok(false)` to keep reading.
    pub fn push_payload(&mut self, payload: &[u8]) -> io::Result<bool> {
        if self.stats.is_some() {
            return Err(bad("frame after stream trailer"));
        }
        match Response::decode(payload)? {
            Response::RowsChunk { seq, ncols, rows } => {
                if seq != self.seq {
                    return Err(bad("chunk for a different statement"));
                }
                if ncols as usize != self.ncols {
                    return Err(bad("chunk column count mismatch"));
                }
                self.bytes += (payload.len() - CHUNK_OVERHEAD) as u64;
                self.rows.extend(rows);
                Ok(false)
            }
            Response::RowsDone {
                seq,
                total_rows,
                total_bytes,
                stats,
            } => {
                if seq != self.seq {
                    return Err(bad("trailer for a different statement"));
                }
                if total_rows != self.rows.len() as u64 {
                    return Err(bad("stream trailer row count mismatch"));
                }
                if total_bytes != self.bytes {
                    return Err(bad("stream trailer byte count mismatch"));
                }
                self.stats = Some(stats);
                Ok(true)
            }
            _ => Err(bad("unexpected frame inside a result stream")),
        }
    }

    /// The verified stats, once the trailer arrived.
    pub fn stats(&self) -> Option<WireStats> {
        self.stats
    }

    /// Rows assembled so far; the complete result after the trailer.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        self.rows
    }

    /// Rows buffered so far, without consuming the assembler.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Total row bytes received so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(req: Request) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    fn round_trip_resp(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(Request::Execute {
            sql: "SELECT 1".into(),
        });
        round_trip_req(Request::SetOption {
            name: "block_scan".into(),
            value: "off".into(),
        });
        round_trip_req(Request::Status);
        round_trip_req(Request::Metrics);
        round_trip_req(Request::Ping);
        round_trip_req(Request::Shutdown);
        round_trip_req(Request::Cancel { seq: 17 });
        round_trip_req(Request::Trace {
            slow_only: true,
            after_id: 99,
            limit: 32,
        });
        round_trip_req(Request::MetricsProm);
        round_trip_req(Request::Checkpoint);
    }

    /// The WAL-era surface: the `Checkpoint` tag and the `Retry` error
    /// code survive encode/decode, and torn `Checkpoint` frames are
    /// rejected like any other.
    #[test]
    fn durability_frames_round_trip_and_reject_torn_input() {
        round_trip_resp(Response::Error {
            code: ErrorCode::Retry,
            message: "refresh daemon 1200 rows behind; retry ingest".into(),
        });
        // A Checkpoint with trailing bytes is a protocol error.
        assert!(Request::decode(&[REQ_CHECKPOINT, 0]).is_err());
        // Every prefix of an encoded Retry error fails to decode
        // rather than mis-decoding (torn-stream sweep).
        let full = Response::Error {
            code: ErrorCode::Retry,
            message: "stale".into(),
        }
        .encode();
        for cut in 0..full.len() {
            assert!(Response::decode(&full[..cut]).is_err(), "prefix {cut}");
        }
        assert!(Response::decode(&full).is_ok());
    }

    #[test]
    fn ingest_and_scoring_frames_round_trip() {
        round_trip_req(Request::InsertHeader {
            table: "pts".into(),
            columns: vec!["i".into(), "X2".into()],
        });
        round_trip_req(Request::InsertHeader {
            table: "pts".into(),
            columns: Vec::new(),
        });
        round_trip_req(Request::InsertChunk {
            seq: 3,
            rows: vec![
                vec![Value::Int(1), Value::Float(0.5)],
                vec![Value::Int(2), Value::Null],
            ],
        });
        round_trip_req(Request::InsertChunk {
            seq: 0,
            rows: Vec::new(),
        });
        round_trip_req(Request::InsertDone);
        round_trip_req(Request::InsertAbort);
        round_trip_req(Request::BatchScore {
            table: "pts".into(),
            model: "m".into(),
            keys: vec![1, -7, i64::MAX, i64::MIN],
            explain: true,
        });
        round_trip_resp(Response::InsertAck { rows: 10_000 });

        // Absurd counts in the new frames are rejected, not allocated.
        let mut buf = vec![REQ_INSERT_CHUNK];
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(&2u32.to_be_bytes());
        assert!(Request::decode(&buf).is_err());
        let mut buf = vec![REQ_BATCH_SCORE];
        put_str(&mut buf, "t");
        put_str(&mut buf, "m");
        buf.push(0);
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(Request::decode(&buf).is_err());
    }

    #[test]
    fn trace_responses_round_trip() {
        round_trip_resp(Response::MetricsText {
            text: "# HELP nlq_up up\n# TYPE nlq_up gauge\nnlq_up 1\n".into(),
        });
        round_trip_resp(Response::Trace {
            records: Vec::new(),
            truncated: false,
        });
        round_trip_resp(Response::Trace {
            records: vec![TraceRecord {
                id: 7,
                query_id: 19,
                session: 3,
                peer: "127.0.0.1:54321".into(),
                shards: 4,
                seq: 2,
                sql: "SELECT sum(X1) FROM X".into(),
                outcome: Outcome::Cancelled,
                detail: "query cancelled after 42 rows".into(),
                total_nanos: 1_234_567,
                slow: true,
                wal_bytes: 512,
                fsyncs: 1,
                cpu_nanos: 456_789,
                spans: vec![
                    Span::new(Phase::Parse, 1_000),
                    Span::new(Phase::Scan, 900_000).rows(42).blocks(3),
                    Span::new(Phase::Scatter, 800_000)
                        .rows(21)
                        .cpu_nanos(300_000)
                        .on_shard(2),
                    Span::new(Phase::Stream, 50_000).bytes(4096),
                ],
            }],
            truncated: true,
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_resp(Response::Hello {
            session_id: 42,
            version: PROTOCOL_VERSION,
        });
        round_trip_resp(Response::Result {
            columns: vec!["a".into(), "b".into()],
            rows: vec![
                vec![Value::Int(-7), Value::Float(2.5)],
                vec![Value::Null, Value::Str("x".into())],
            ],
            stats: WireStats {
                rows_scanned: 10,
                blocks_scanned: 2,
                block_path: true,
                summary_path: true,
                summary_hits: 1,
                summary_misses: 0,
                summary_stale_rebuilds: 3,
                elapsed_micros: 1234,
                cancelled: false,
            },
        });
        round_trip_resp(Response::Error {
            code: ErrorCode::Busy,
            message: "server at capacity".into(),
        });
        round_trip_resp(Response::Error {
            code: ErrorCode::Cancelled,
            message: "query cancelled after 42 rows".into(),
        });
        round_trip_resp(Response::Ok);
        round_trip_resp(Response::Pong);
        round_trip_resp(Response::RowsHeader {
            seq: 3,
            query_id: 11,
            columns: vec!["i".into(), "score".into()],
        });
        round_trip_resp(Response::RowsChunk {
            seq: 3,
            ncols: 2,
            rows: vec![
                vec![Value::Int(1), Value::Float(0.5)],
                vec![Value::Null, Value::Str("x".into())],
            ],
        });
        round_trip_resp(Response::RowsDone {
            seq: 3,
            total_rows: 2,
            total_bytes: 40,
            stats: WireStats {
                rows_scanned: 2,
                cancelled: true,
                ..WireStats::default()
            },
        });
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        // Header says 100 bytes, stream has 3.
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut cursor = &buf[..];
        assert!(read_frame(&mut cursor).is_err());

        let mut huge = Vec::new();
        huge.extend_from_slice(&((MAX_FRAME + 1) as u32).to_be_bytes());
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xFF]).is_err());
        assert!(Response::decode(&[0x55]).is_err());
        // Trailing garbage after a valid Ping.
        assert!(Request::decode(&[REQ_PING, 0]).is_err());
        // Absurd row count in a tiny frame.
        let mut buf = vec![RESP_RESULT];
        buf.extend_from_slice(&1u32.to_be_bytes());
        put_str(&mut buf, "c");
        buf.extend_from_slice(&u64::MAX.to_be_bytes());
        assert!(Response::decode(&buf).is_err());
        // Absurd counts in streaming frames.
        let mut buf = vec![RESP_ROWS_HEADER];
        buf.extend_from_slice(&1u64.to_be_bytes());
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(Response::decode(&buf).is_err());
        let mut buf = vec![RESP_ROWS_CHUNK];
        buf.extend_from_slice(&1u64.to_be_bytes());
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(&2u32.to_be_bytes());
        assert!(Response::decode(&buf).is_err());
    }

    // -- Chunked streaming ------------------------------------------------

    /// Encodes `rows` through a [`ChunkEncoder`] with the given chunk
    /// budget, returning every post-header payload (chunks + trailer).
    fn stream_payloads(
        seq: u64,
        ncols: usize,
        rows: &[Vec<Value>],
        chunk_bytes: usize,
        stats: &WireStats,
    ) -> Vec<Vec<u8>> {
        let mut enc = ChunkEncoder::new(seq, ncols, chunk_bytes);
        let mut payloads = Vec::new();
        for row in rows {
            payloads.extend(enc.push_row(row));
        }
        payloads.extend(enc.finish());
        payloads.push(enc.done_payload(stats));
        payloads
    }

    fn assemble(
        seq: u64,
        ncols: usize,
        payloads: &[Vec<u8>],
    ) -> io::Result<(Vec<Vec<Value>>, WireStats)> {
        let mut asm = StreamAssembler::new(seq, ncols);
        for (i, p) in payloads.iter().enumerate() {
            let done = asm.push_payload(p)?;
            assert_eq!(
                done,
                i + 1 == payloads.len(),
                "trailer must be the last payload and only it completes"
            );
        }
        let stats = asm.stats().expect("stream completed");
        Ok((asm.into_rows(), stats))
    }

    fn random_value(rng: &mut nlq_testkit::Rng) -> Value {
        match rng.range_usize(0, 3) {
            0 => Value::Null,
            1 => Value::Int(rng.any_i64()),
            2 => Value::Float(rng.range_f64(-1e9, 1e9)),
            _ => Value::Str(rng.string_from("abcdefghij \u{3b3}", 24)),
        }
    }

    fn random_rows(rng: &mut nlq_testkit::Rng) -> (usize, Vec<Vec<Value>>) {
        let ncols = rng.range_usize(1, 5);
        let nrows = rng.range_usize(0, 200);
        let rows = (0..nrows)
            .map(|_| (0..ncols).map(|_| random_value(rng)).collect())
            .collect();
        (ncols, rows)
    }

    /// Property: any result chunk-encoded at any chunk budget
    /// reassembles byte-identically, regardless of how the chunks
    /// split the rows.
    #[test]
    fn prop_chunked_round_trip() {
        nlq_testkit::run_cases(64, 0x57_4e_5f_31, |rng| {
            let (ncols, rows) = random_rows(rng);
            let seq = rng.next_u64();
            let chunk_bytes = rng.range_usize(1, 4096);
            let stats = WireStats {
                rows_scanned: rng.next_u64() % 1_000_000,
                cancelled: rng.chance(0.2),
                block_path: rng.chance(0.5),
                ..WireStats::default()
            };
            let payloads = stream_payloads(seq, ncols, &rows, chunk_bytes, &stats);
            // Every chunk respects the frame cap.
            for p in &payloads {
                assert!(p.len() <= MAX_FRAME);
            }
            let (got, got_stats) = assemble(seq, ncols, &payloads).expect("clean stream");
            assert_eq!(got, rows);
            assert_eq!(got_stats, stats);
        });
    }

    /// Property: truncated or corrupted chunk sequences error cleanly
    /// — no panic, no silently-wrong result.
    #[test]
    fn prop_torn_streams_error_not_panic() {
        nlq_testkit::run_cases(64, 0x574e_5f32, |rng| {
            let (ncols, rows) = random_rows(rng);
            let seq = rng.next_u64() % 1000;
            let payloads = stream_payloads(seq, ncols, &rows, 64, &WireStats::default());

            // Dropping any chunk (not the trailer) breaks the totals.
            if payloads.len() > 1 {
                let drop_at = rng.range_usize(0, payloads.len() - 2);
                let torn: Vec<Vec<u8>> = payloads
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop_at)
                    .map(|(_, p)| p.clone())
                    .collect();
                assert!(assemble(seq, ncols, &torn).is_err(), "dropped chunk");
            }

            // Truncating the final payload is a decode error.
            let mut truncated = payloads.clone();
            let last = truncated.last_mut().unwrap();
            let cut = rng.range_usize(0, last.len() - 1);
            last.truncate(cut);
            let mut asm = StreamAssembler::new(seq, ncols);
            let mut failed = false;
            for p in &truncated {
                match asm.push_payload(p) {
                    Err(_) => {
                        failed = true;
                        break;
                    }
                    Ok(done) => assert!(!done || p != truncated.last().unwrap()),
                }
            }
            assert!(failed, "truncated trailer must not verify");

            // Flipping one byte anywhere must never panic, and must
            // never complete the stream with different rows.
            let mut corrupted = payloads.clone();
            let f = rng.range_usize(0, corrupted.len() - 1);
            let b = rng.range_usize(0, corrupted[f].len() - 1);
            corrupted[f][b] ^= 1 << rng.range_usize(0, 7);
            let mut asm = StreamAssembler::new(seq, ncols);
            let mut completed = false;
            for p in &corrupted {
                match asm.push_payload(p) {
                    Err(_) => break,
                    Ok(true) => {
                        completed = true;
                        break;
                    }
                    Ok(false) => {}
                }
            }
            if completed {
                // The flip survived verification only if the decoded
                // result is still value-identical (e.g. a bit inside a
                // float's payload produces a different value *and*
                // different totals... which cannot verify; identical
                // re-encoding can happen for NaN-style no-ops).
                let got = asm.into_rows();
                if got != rows {
                    // Row/byte totals verified yet rows differ: only
                    // possible when the corrupted byte kept lengths
                    // intact — values may legitimately differ (a
                    // flipped float bit), so just require arity holds.
                    assert_eq!(got.len(), rows.len());
                    for r in &got {
                        assert_eq!(r.len(), ncols);
                    }
                }
            }
        });
    }

    /// Chunks and trailers from a different statement are rejected.
    #[test]
    fn cross_stream_frames_are_rejected() {
        let rows = vec![vec![Value::Int(1)]];
        let payloads = stream_payloads(7, 1, &rows, 64, &WireStats::default());
        let mut asm = StreamAssembler::new(8, 1);
        assert!(asm.push_payload(&payloads[0]).is_err());

        // Wrong column arity.
        let mut asm = StreamAssembler::new(7, 2);
        assert!(asm.push_payload(&payloads[0]).is_err());

        // A non-stream frame mid-stream.
        let mut asm = StreamAssembler::new(7, 1);
        assert!(asm.push_payload(&Response::Pong.encode()).is_err());
    }

    /// A tampered trailer (totals off by one) is rejected.
    #[test]
    fn tampered_trailer_is_rejected() {
        let rows: Vec<Vec<Value>> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let mut enc = ChunkEncoder::new(1, 1, 32);
        let mut payloads = Vec::new();
        for row in &rows {
            payloads.extend(enc.push_row(row));
        }
        payloads.extend(enc.finish());
        payloads.push(
            Response::RowsDone {
                seq: 1,
                total_rows: enc.total_rows() + 1,
                total_bytes: enc.total_bytes(),
                stats: WireStats::default(),
            }
            .encode(),
        );
        assert!(assemble(1, 1, &payloads).is_err());
    }

    /// The encoder cuts chunks at the budget: a 1-byte budget yields
    /// one chunk per row, and totals match the trailer contract.
    #[test]
    fn chunk_encoder_respects_budget() {
        let rows: Vec<Vec<Value>> = (0..5).map(|i| vec![Value::Int(i)]).collect();
        let mut enc = ChunkEncoder::new(2, 1, 1);
        let mut chunks = Vec::new();
        for row in &rows {
            chunks.extend(enc.push_row(row));
        }
        assert!(enc.finish().is_none(), "every row already flushed");
        assert_eq!(chunks.len(), 5);
        for c in &chunks {
            // 1 tag + 8 int payload per row.
            assert_eq!(c.len() - CHUNK_OVERHEAD, 9);
        }
        assert_eq!(enc.total_rows(), 5);
        assert_eq!(enc.total_bytes(), 45);
    }
}
