//! The length-prefixed binary wire protocol.
//!
//! Every frame is a 4-byte big-endian payload length followed by the
//! payload. The first payload byte is a tag; the rest is a sequence of
//! fixed-width big-endian integers and length-prefixed UTF-8 strings.
//! Frames are capped at [`MAX_FRAME`] bytes in both directions — a
//! peer announcing a larger frame is a protocol error, and a result
//! set that would encode past the cap is reported as
//! [`ErrorCode::TooLarge`] instead of sent.
//!
//! The protocol is strictly request/response: the server sends exactly
//! one [`Response`] per [`Request`], after an initial unprompted
//! [`Response::Hello`] that carries the session id.

use std::io::{self, Read, Write};

use nlq_storage::Value;

/// Hard ceiling on a frame payload (64 MiB).
pub const MAX_FRAME: usize = 64 << 20;

/// Protocol version spoken by this build (in `Hello`).
pub const PROTOCOL_VERSION: u32 = 1;

// Request tags.
const REQ_EXECUTE: u8 = 0x01;
const REQ_SET_OPTION: u8 = 0x02;
const REQ_STATUS: u8 = 0x03;
const REQ_METRICS: u8 = 0x04;
const REQ_PING: u8 = 0x05;
const REQ_SHUTDOWN: u8 = 0x06;

// Response tags.
const RESP_HELLO: u8 = 0x80;
const RESP_RESULT: u8 = 0x81;
const RESP_ERROR: u8 = 0x82;
const RESP_OK: u8 = 0x83;
const RESP_PONG: u8 = 0x84;

// Value tags.
const VAL_NULL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_STR: u8 = 3;

/// A client-to-server command.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one SQL statement.
    Execute {
        /// The SQL text.
        sql: String,
    },
    /// Set a per-session option (`block_scan` = `on`/`off`/`default`).
    SetOption {
        /// Option name.
        name: String,
        /// Option value.
        value: String,
    },
    /// Describe this session (id, settings, last statement's stats).
    Status,
    /// Server-wide counters, latency histograms, and gauges.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Ask the server to shut down gracefully (drain, then exit).
    Shutdown,
}

/// Why a request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control: connection or queue capacity exhausted.
    Busy = 1,
    /// The query exceeded the per-query wall-clock limit.
    Timeout = 2,
    /// The result exceeded the per-query row or byte limit.
    TooLarge = 3,
    /// The SQL failed (parse, bind, or execution error).
    Sql = 4,
    /// Malformed frame or unknown option.
    Protocol = 5,
    /// The server is draining and no longer accepts work.
    ShuttingDown = 6,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Busy,
            2 => ErrorCode::Timeout,
            3 => ErrorCode::TooLarge,
            4 => ErrorCode::Sql,
            5 => ErrorCode::Protocol,
            6 => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

/// Execution counters carried alongside a result frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Base-table rows read.
    pub rows_scanned: u64,
    /// Column blocks decoded.
    pub blocks_scanned: u64,
    /// Whether the vectorized block path ran the scan.
    pub block_path: bool,
    /// Whether a materialized Γ summary answered the query.
    pub summary_path: bool,
    /// Summary hits while answering.
    pub summary_hits: u64,
    /// Summary misses (fell back to a scan).
    pub summary_misses: u64,
    /// Stale summaries rebuilt on demand.
    pub summary_stale_rebuilds: u64,
    /// Server-side wall-clock for the statement, microseconds.
    pub elapsed_micros: u64,
}

/// A server-to-client reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// First frame on every accepted connection.
    Hello {
        /// Session identifier (unique per server process).
        session_id: u64,
        /// Protocol version the server speaks.
        version: u32,
    },
    /// A query result.
    Result {
        /// Output column names.
        columns: Vec<String>,
        /// Output rows.
        rows: Vec<Vec<Value>>,
        /// Execution counters.
        stats: WireStats,
    },
    /// The request was refused or failed.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Command acknowledged, no data.
    Ok,
    /// Reply to [`Request::Ping`].
    Pong,
}

// ---------------------------------------------------------------------------
// Primitive encoders
// ---------------------------------------------------------------------------

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(VAL_NULL),
        Value::Int(i) => {
            buf.push(VAL_INT);
            buf.extend_from_slice(&i.to_be_bytes());
        }
        Value::Float(f) => {
            buf.push(VAL_FLOAT);
            buf.extend_from_slice(&f.to_be_bytes());
        }
        Value::Str(s) => {
            buf.push(VAL_STR);
            put_str(buf, s);
        }
    }
}

/// A cursor over a received payload.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(bad("truncated frame"));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid utf-8 in string"))
    }

    fn value(&mut self) -> io::Result<Value> {
        Ok(match self.u8()? {
            VAL_NULL => Value::Null,
            VAL_INT => Value::Int(self.u64()? as i64),
            VAL_FLOAT => Value::Float(f64::from_bits(self.u64()?)),
            VAL_STR => Value::Str(self.str()?),
            _ => return Err(bad("unknown value tag")),
        })
    }

    fn done(&self) -> io::Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(bad("trailing bytes in frame"))
        }
    }
}

fn bad(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(bad("frame exceeds MAX_FRAME"));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame, `None` on clean EOF at a frame
/// boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(bad("peer announced an oversized frame"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Request encode/decode
// ---------------------------------------------------------------------------

impl Request {
    /// Encodes this request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Execute { sql } => {
                buf.push(REQ_EXECUTE);
                put_str(&mut buf, sql);
            }
            Request::SetOption { name, value } => {
                buf.push(REQ_SET_OPTION);
                put_str(&mut buf, name);
                put_str(&mut buf, value);
            }
            Request::Status => buf.push(REQ_STATUS),
            Request::Metrics => buf.push(REQ_METRICS),
            Request::Ping => buf.push(REQ_PING),
            Request::Shutdown => buf.push(REQ_SHUTDOWN),
        }
        buf
    }

    /// Decodes a frame payload into a request.
    pub fn decode(payload: &[u8]) -> io::Result<Request> {
        let mut r = Reader { buf: payload };
        let req = match r.u8()? {
            REQ_EXECUTE => Request::Execute { sql: r.str()? },
            REQ_SET_OPTION => Request::SetOption {
                name: r.str()?,
                value: r.str()?,
            },
            REQ_STATUS => Request::Status,
            REQ_METRICS => Request::Metrics,
            REQ_PING => Request::Ping,
            REQ_SHUTDOWN => Request::Shutdown,
            _ => return Err(bad("unknown request tag")),
        };
        r.done()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Response encode/decode
// ---------------------------------------------------------------------------

fn put_stats(buf: &mut Vec<u8>, s: &WireStats) {
    buf.extend_from_slice(&s.rows_scanned.to_be_bytes());
    buf.extend_from_slice(&s.blocks_scanned.to_be_bytes());
    buf.push(u8::from(s.block_path) | (u8::from(s.summary_path) << 1));
    buf.extend_from_slice(&s.summary_hits.to_be_bytes());
    buf.extend_from_slice(&s.summary_misses.to_be_bytes());
    buf.extend_from_slice(&s.summary_stale_rebuilds.to_be_bytes());
    buf.extend_from_slice(&s.elapsed_micros.to_be_bytes());
}

impl Response {
    /// Encodes this response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Hello {
                session_id,
                version,
            } => {
                buf.push(RESP_HELLO);
                buf.extend_from_slice(&session_id.to_be_bytes());
                buf.extend_from_slice(&version.to_be_bytes());
            }
            Response::Result {
                columns,
                rows,
                stats,
            } => {
                buf.push(RESP_RESULT);
                buf.extend_from_slice(&(columns.len() as u32).to_be_bytes());
                for c in columns {
                    put_str(&mut buf, c);
                }
                buf.extend_from_slice(&(rows.len() as u64).to_be_bytes());
                for row in rows {
                    for v in row {
                        put_value(&mut buf, v);
                    }
                }
                put_stats(&mut buf, stats);
            }
            Response::Error { code, message } => {
                buf.push(RESP_ERROR);
                buf.push(*code as u8);
                put_str(&mut buf, message);
            }
            Response::Ok => buf.push(RESP_OK),
            Response::Pong => buf.push(RESP_PONG),
        }
        buf
    }

    /// Decodes a frame payload into a response.
    pub fn decode(payload: &[u8]) -> io::Result<Response> {
        let mut r = Reader { buf: payload };
        let resp = match r.u8()? {
            RESP_HELLO => Response::Hello {
                session_id: r.u64()?,
                version: r.u32()?,
            },
            RESP_RESULT => {
                let ncols = r.u32()? as usize;
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    columns.push(r.str()?);
                }
                let nrows = r.u64()? as usize;
                // Each value is at least one tag byte: reject row
                // counts the remaining payload cannot possibly hold.
                if nrows.saturating_mul(ncols.max(1)) > payload.len() {
                    return Err(bad("row count exceeds frame size"));
                }
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    let mut row = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        row.push(r.value()?);
                    }
                    rows.push(row);
                }
                let rows_scanned = r.u64()?;
                let blocks_scanned = r.u64()?;
                let flags = r.u8()?;
                let stats = WireStats {
                    rows_scanned,
                    blocks_scanned,
                    block_path: flags & 1 != 0,
                    summary_path: flags & 2 != 0,
                    summary_hits: r.u64()?,
                    summary_misses: r.u64()?,
                    summary_stale_rebuilds: r.u64()?,
                    elapsed_micros: r.u64()?,
                };
                Response::Result {
                    columns,
                    rows,
                    stats,
                }
            }
            RESP_ERROR => Response::Error {
                code: ErrorCode::from_u8(r.u8()?).ok_or_else(|| bad("unknown error code"))?,
                message: r.str()?,
            },
            RESP_OK => Response::Ok,
            RESP_PONG => Response::Pong,
            _ => return Err(bad("unknown response tag")),
        };
        r.done()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(req: Request) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    fn round_trip_resp(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(Request::Execute {
            sql: "SELECT 1".into(),
        });
        round_trip_req(Request::SetOption {
            name: "block_scan".into(),
            value: "off".into(),
        });
        round_trip_req(Request::Status);
        round_trip_req(Request::Metrics);
        round_trip_req(Request::Ping);
        round_trip_req(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_resp(Response::Hello {
            session_id: 42,
            version: PROTOCOL_VERSION,
        });
        round_trip_resp(Response::Result {
            columns: vec!["a".into(), "b".into()],
            rows: vec![
                vec![Value::Int(-7), Value::Float(2.5)],
                vec![Value::Null, Value::Str("x".into())],
            ],
            stats: WireStats {
                rows_scanned: 10,
                blocks_scanned: 2,
                block_path: true,
                summary_path: true,
                summary_hits: 1,
                summary_misses: 0,
                summary_stale_rebuilds: 3,
                elapsed_micros: 1234,
            },
        });
        round_trip_resp(Response::Error {
            code: ErrorCode::Busy,
            message: "server at capacity".into(),
        });
        round_trip_resp(Response::Ok);
        round_trip_resp(Response::Pong);
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        // Header says 100 bytes, stream has 3.
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut cursor = &buf[..];
        assert!(read_frame(&mut cursor).is_err());

        let mut huge = Vec::new();
        huge.extend_from_slice(&((MAX_FRAME + 1) as u32).to_be_bytes());
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xFF]).is_err());
        assert!(Response::decode(&[0x55]).is_err());
        // Trailing garbage after a valid Ping.
        assert!(Request::decode(&[REQ_PING, 0]).is_err());
        // Absurd row count in a tiny frame.
        let mut buf = vec![RESP_RESULT];
        buf.extend_from_slice(&1u32.to_be_bytes());
        put_str(&mut buf, "c");
        buf.extend_from_slice(&u64::MAX.to_be_bytes());
        assert!(Response::decode(&buf).is_err());
    }
}
