//! Fixed-size worker thread pool with a bounded job queue.
//!
//! Query execution is decoupled from connection handling so a slow
//! query on one connection cannot starve frame I/O on the others, and
//! so admission control has a natural backpressure point: when the
//! queue is full, [`WorkerPool::submit`] refuses immediately and the
//! connection reports `Busy` instead of piling work up.
//!
//! Shutdown is graceful by construction: [`WorkerPool::shutdown`]
//! stops admission, then workers drain every job already queued before
//! exiting — in-flight queries complete and their responses are
//! delivered.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued unit of work, optionally guarded by a cancel token.
struct QueuedJob {
    job: Job,
    /// When set and already flipped by the time a worker dequeues the
    /// job, the worker runs `on_skip` instead of `job` — the query is
    /// answered as cancelled without ever occupying the worker.
    token: Option<Arc<AtomicBool>>,
    on_skip: Option<Job>,
}

struct Queue {
    jobs: VecDeque<QueuedJob>,
    shutting_down: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signaled when a job arrives or shutdown begins.
    available: Condvar,
    capacity: usize,
    /// Workers currently inside a job.
    busy: AtomicUsize,
}

/// Fixed worker threads pulling from one bounded queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// Refusal from [`WorkerPool::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity.
    Full,
    /// The pool no longer accepts work.
    ShuttingDown,
}

impl WorkerPool {
    /// Spawns `workers` threads servicing a queue of at most
    /// `capacity` pending jobs.
    pub fn new(workers: usize, capacity: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            busy: AtomicUsize::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nlq-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Enqueues a job, refusing when full or shutting down.
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        self.enqueue(QueuedJob {
            job,
            token: None,
            on_skip: None,
        })
    }

    /// Enqueues a job guarded by a cancel token. If the token is
    /// already flipped when a worker dequeues the job, the worker runs
    /// the cheap `on_skip` instead — a queued-but-not-started query
    /// answers its cancel without burning the worker on a scan it
    /// would immediately abandon.
    pub fn submit_with_token(
        &self,
        token: Arc<AtomicBool>,
        job: Job,
        on_skip: Job,
    ) -> Result<(), SubmitError> {
        self.enqueue(QueuedJob {
            job,
            token: Some(token),
            on_skip: Some(on_skip),
        })
    }

    fn enqueue(&self, queued: QueuedJob) -> Result<(), SubmitError> {
        let mut q = self.shared.queue.lock().expect("pool queue");
        if q.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if q.jobs.len() >= self.shared.capacity {
            return Err(SubmitError::Full);
        }
        q.jobs.push_back(queued);
        drop(q);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Number of jobs waiting (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("pool queue").jobs.len()
    }

    /// Number of workers currently executing a job. A cancelled query
    /// shows up here as the count dropping once the scan notices the
    /// token.
    pub fn workers_busy(&self) -> usize {
        self.shared.busy.load(Ordering::Relaxed)
    }

    /// Stops admission, drains every queued job, and joins the
    /// workers.
    pub fn shutdown(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue");
            if q.shutting_down {
                return;
            }
            q.shutting_down = true;
        }
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let queued = {
            let mut q = shared.queue.lock().expect("pool queue");
            loop {
                if let Some(queued) = q.jobs.pop_front() {
                    break queued;
                }
                if q.shutting_down {
                    return;
                }
                q = shared.available.wait(q).expect("pool queue");
            }
        };
        // A job whose cancel token flipped while it sat in the queue
        // never starts: answer it with the cheap skip path instead.
        if let Some(token) = &queued.token {
            if token.load(Ordering::SeqCst) {
                if let Some(on_skip) = queued.on_skip {
                    on_skip();
                }
                continue;
            }
        }
        shared.busy.fetch_add(1, Ordering::Relaxed);
        (queued.job)();
        shared.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_results_come_back() {
        let pool = WorkerPool::new(4, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..10u64 {
            let tx = tx.clone();
            pool.submit(Box::new(move || tx.send(i * i).unwrap()))
                .unwrap();
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_queue_refuses_when_full() {
        let pool = WorkerPool::new(1, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        pool.submit(Box::new(move || {
            let _ = gate_rx.recv();
        }))
        .unwrap();
        // ...then fill the queue. Depending on pickup timing the first
        // submit may still be queued, so allow one refusal early.
        let mut refused = 0;
        for _ in 0..3 {
            if pool.submit(Box::new(|| {})).is_err() {
                refused += 1;
            }
        }
        assert!(refused >= 1, "third queued job must be refused");
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn pre_cancelled_queued_job_is_skipped_at_dequeue() {
        let pool = WorkerPool::new(1, 8);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // Occupy the single worker and wait until it is really inside
        // the job, so the next submit definitely sits in the queue.
        pool.submit(Box::new(move || {
            started_tx.send(()).unwrap();
            let _ = gate_rx.recv();
        }))
        .unwrap();
        started_rx.recv().unwrap();

        let token = Arc::new(AtomicBool::new(false));
        let ran = Arc::new(AtomicUsize::new(0));
        let skipped = Arc::new(AtomicUsize::new(0));
        let (ran2, skipped2) = (Arc::clone(&ran), Arc::clone(&skipped));
        pool.submit_with_token(
            Arc::clone(&token),
            Box::new(move || {
                ran2.fetch_add(1, Ordering::SeqCst);
            }),
            Box::new(move || {
                skipped2.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .unwrap();

        // Cancel while queued, then release the worker.
        token.store(true, Ordering::SeqCst);
        gate_tx.send(()).unwrap();

        // The skip path must run; the job body must not.
        for _ in 0..200 {
            if skipped.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(skipped.load(Ordering::SeqCst), 1);
        assert_eq!(ran.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(2, 64);
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 32, "drain must finish all");
        assert!(matches!(
            pool.submit(Box::new(|| {})),
            Err(SubmitError::ShuttingDown)
        ));
    }
}
