//! `nlq-server`: serve the SQL + scoring engine over TCP.
//!
//! ```text
//! nlq-server [--addr HOST:PORT] [--workers N] [--shards N] [--max-connections N]
//!            [--queue N] [--timeout-ms N] [--max-result-rows N]
//!            [--max-result-bytes N] [--chunk-bytes N]
//!            [--drain-grace-ms N] [--slow-query-ms N] [--trace-ring N]
//!            [--refresh-ms N] [--refresh-delta N]
//! ```
//!
//! `--refresh-ms` sets the model-refresh daemon's cadence (0 disables
//! the daemon); `--refresh-delta` sets the minimum folded-row delta
//! before an ingest-driven summary change triggers a model refit.
//!
//! The process runs until a client issues `SHUTDOWN` (or the process
//! is killed). The bound address is printed on stdout as
//! `listening on HOST:PORT` once the listener is ready, so scripts
//! can bind port 0 and discover the port.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use nlq_engine::{Db, SqlEngine};
use nlq_server::{serve, ServerConfig};
use nlq_shard::ShardedDb;

fn parse_args() -> Result<(ServerConfig, usize), String> {
    let mut config = ServerConfig::default();
    let mut shards = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value ({what})"))
        };
        match flag.as_str() {
            "--addr" => config.addr = take("host:port")?,
            "--workers" => {
                config.workers = take("count")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--shards" => shards = take("count")?.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--max-connections" => {
                config.max_connections =
                    take("count")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--queue" => {
                config.queue_capacity =
                    take("count")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--timeout-ms" => {
                config.query_timeout = Duration::from_millis(
                    take("millis")?
                        .parse()
                        .map_err(|e| format!("{flag}: {e}"))?,
                )
            }
            "--max-result-rows" => {
                config.max_result_rows =
                    take("count")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--max-result-bytes" => {
                config.max_result_bytes =
                    take("bytes")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--chunk-bytes" => {
                config.chunk_bytes = take("bytes")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--drain-grace-ms" => {
                config.drain_grace = Duration::from_millis(
                    take("millis")?
                        .parse()
                        .map_err(|e| format!("{flag}: {e}"))?,
                )
            }
            "--slow-query-ms" => {
                config.slow_query = Duration::from_millis(
                    take("millis")?
                        .parse()
                        .map_err(|e| format!("{flag}: {e}"))?,
                )
            }
            "--trace-ring" => {
                config.trace_ring = take("count")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--refresh-ms" => {
                let millis: u64 = take("millis")?
                    .parse()
                    .map_err(|e| format!("{flag}: {e}"))?;
                config.refresh_cadence = (millis > 0).then(|| Duration::from_millis(millis));
            }
            "--refresh-delta" => {
                config.refresh_delta_rows =
                    take("rows")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: nlq-server [--addr HOST:PORT] [--workers N] [--shards N] \
                     [--max-connections N] [--queue N] [--timeout-ms N] [--max-result-rows N] \
                     [--max-result-bytes N] [--chunk-bytes N] [--drain-grace-ms N] \
                     [--slow-query-ms N] [--trace-ring N] [--refresh-ms N] [--refresh-delta N]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok((config, shards))
}

fn main() -> ExitCode {
    let (config, shards) = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let workers = config.workers;
    // With --shards S, statements scatter over S independent engine
    // shards (each with its own slice of the scan workers); otherwise
    // a single Db serves every statement.
    let db: Arc<dyn SqlEngine> = if shards > 1 {
        Arc::new(ShardedDb::new(shards, (workers / shards).max(1)))
    } else {
        Arc::new(Db::new(workers))
    };
    let mut handle = match serve(db, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", handle.addr());
    handle.join();
    println!("shut down");
    ExitCode::SUCCESS
}
