//! `nlq-server`: serve the SQL + scoring engine over TCP.
//!
//! ```text
//! nlq-server [--addr HOST:PORT] [--workers N] [--shards N] [--max-connections N]
//!            [--queue N] [--timeout-ms N] [--max-result-rows N]
//!            [--max-result-bytes N] [--chunk-bytes N]
//!            [--drain-grace-ms N] [--slow-query-ms N] [--trace-ring N]
//!            [--refresh-ms N] [--refresh-delta N]
//!            [--wal-dir DIR] [--no-fsync] [--checkpoint-bytes N]
//!            [--staleness-bound N]
//! ```
//!
//! `--refresh-ms` sets the model-refresh daemon's cadence (0 disables
//! the daemon); `--refresh-delta` sets the minimum folded-row delta
//! before an ingest-driven summary change triggers a model refit.
//!
//! `--wal-dir DIR` opens the engine durably: every DDL/DML statement
//! and ingest envelope is logged to a write-ahead log under `DIR`
//! before it is applied, and an ack means the data survives `kill
//! -9`. Restarting with the same `DIR` replays the log (recovery
//! counters show up under `STATUS`). `--no-fsync` keeps the log but
//! skips the per-commit fsync (group commit still batches writes) —
//! faster, durable against process crash but not against power loss.
//! `--checkpoint-bytes N` checkpoints (snapshot + log truncation)
//! automatically once the live log reaches `N` bytes.
//! `--staleness-bound N` enables ingest back-pressure: when the
//! refresh daemon falls more than `N` folded rows behind, `InsertDone`
//! answers a `Retry` error instead of committing.
//!
//! The process runs until a client issues `SHUTDOWN` (or the process
//! is killed). The bound address is printed on stdout as
//! `listening on HOST:PORT` once the listener is ready, so scripts
//! can bind port 0 and discover the port.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use nlq_engine::{Db, SqlEngine};
use nlq_server::{serve, ServerConfig};
use nlq_shard::ShardedDb;

/// Durability knobs that shape how the engine is opened.
struct WalOpts {
    dir: Option<std::path::PathBuf>,
    fsync: bool,
}

fn parse_args() -> Result<(ServerConfig, usize, WalOpts), String> {
    let mut config = ServerConfig::default();
    let mut shards = 1usize;
    let mut wal = WalOpts {
        dir: None,
        fsync: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value ({what})"))
        };
        match flag.as_str() {
            "--addr" => config.addr = take("host:port")?,
            "--workers" => {
                config.workers = take("count")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--shards" => shards = take("count")?.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--max-connections" => {
                config.max_connections =
                    take("count")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--queue" => {
                config.queue_capacity =
                    take("count")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--timeout-ms" => {
                config.query_timeout = Duration::from_millis(
                    take("millis")?
                        .parse()
                        .map_err(|e| format!("{flag}: {e}"))?,
                )
            }
            "--max-result-rows" => {
                config.max_result_rows =
                    take("count")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--max-result-bytes" => {
                config.max_result_bytes =
                    take("bytes")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--chunk-bytes" => {
                config.chunk_bytes = take("bytes")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--drain-grace-ms" => {
                config.drain_grace = Duration::from_millis(
                    take("millis")?
                        .parse()
                        .map_err(|e| format!("{flag}: {e}"))?,
                )
            }
            "--slow-query-ms" => {
                config.slow_query = Duration::from_millis(
                    take("millis")?
                        .parse()
                        .map_err(|e| format!("{flag}: {e}"))?,
                )
            }
            "--trace-ring" => {
                config.trace_ring = take("count")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--refresh-ms" => {
                let millis: u64 = take("millis")?
                    .parse()
                    .map_err(|e| format!("{flag}: {e}"))?;
                config.refresh_cadence = (millis > 0).then(|| Duration::from_millis(millis));
            }
            "--refresh-delta" => {
                config.refresh_delta_rows =
                    take("rows")?.parse().map_err(|e| format!("{flag}: {e}"))?
            }
            "--wal-dir" => wal.dir = Some(take("dir")?.into()),
            "--no-fsync" => wal.fsync = false,
            "--checkpoint-bytes" => {
                config.checkpoint_bytes =
                    Some(take("bytes")?.parse().map_err(|e| format!("{flag}: {e}"))?)
            }
            "--staleness-bound" => {
                config.staleness_bound =
                    Some(take("rows")?.parse().map_err(|e| format!("{flag}: {e}"))?)
            }
            "--help" | "-h" => {
                return Err(
                    "usage: nlq-server [--addr HOST:PORT] [--workers N] [--shards N] \
                     [--max-connections N] [--queue N] [--timeout-ms N] [--max-result-rows N] \
                     [--max-result-bytes N] [--chunk-bytes N] [--drain-grace-ms N] \
                     [--slow-query-ms N] [--trace-ring N] [--refresh-ms N] [--refresh-delta N] \
                     [--wal-dir DIR] [--no-fsync] [--checkpoint-bytes N] [--staleness-bound N]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok((config, shards, wal))
}

fn main() -> ExitCode {
    let (config, shards, wal) = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let workers = config.workers;
    // With --shards S, statements scatter over S independent engine
    // shards (each with its own slice of the scan workers); otherwise
    // a single Db serves every statement. With --wal-dir the engine
    // opens durably, replaying whatever a previous process logged.
    let db: Arc<dyn SqlEngine> = match (&wal.dir, shards > 1) {
        (Some(dir), true) => {
            match ShardedDb::open_durable(shards, (workers / shards).max(1), dir, wal.fsync) {
                Ok(db) => Arc::new(db),
                Err(e) => {
                    eprintln!("recovery failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (Some(dir), false) => match Db::open_durable(workers, dir, wal.fsync) {
            Ok(db) => Arc::new(db),
            Err(e) => {
                eprintln!("recovery failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, true) => Arc::new(ShardedDb::new(shards, (workers / shards).max(1))),
        (None, false) => Arc::new(Db::new(workers)),
    };
    if let Some(info) = db.recovery_info() {
        eprintln!(
            "recovered: {} records ({} envelopes) replayed, {} torn bytes truncated, \
             {} tables from checkpoint",
            info.replayed_records,
            info.replayed_envelopes,
            info.truncated_bytes,
            info.checkpoint_tables
        );
    }
    let mut handle = match serve(db, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", handle.addr());
    handle.join();
    println!("shut down");
    ExitCode::SUCCESS
}
