//! The TCP server: accept loop, per-connection sessions, admission
//! control, streamed results, cooperative cancellation, and graceful
//! shutdown.
//!
//! ## Threading model
//!
//! One accept thread owns the listener and every connection
//! `JoinHandle`. Each accepted connection gets a **session thread**
//! (owns the write side, answers requests strictly in order) and a
//! **frame-reader thread** (decodes incoming frames). The reader
//! forwards ordinary requests to the session over a channel and
//! handles [`Request::Cancel`] inline — flipping the targeted
//! statement's cancel token the moment the frame arrives, even while
//! the session thread is busy streaming that statement's result.
//!
//! `Execute` requests are handed to the shared [`WorkerPool`]. The
//! worker runs the statement with a cancellation token threaded into
//! the engine's scan loops and streams the result back through a
//! small bounded channel — [`Response::RowsHeader`], pre-encoded
//! [`Response::RowsChunk`] payloads, then a [`Response::RowsDone`]
//! trailer — which the session thread relays to the socket. The
//! bounded channel is the backpressure: a slow client stalls its own
//! worker instead of buffering an unbounded result in memory.
//!
//! On deadline the session flips the token (the scan stops at its
//! next per-row/per-block check and the worker frees up) and reports
//! [`ErrorCode::Timeout`]; a client `Cancel` ends the stream with
//! [`ErrorCode::Cancelled`].
//!
//! ## Admission control
//!
//! * At most `max_connections` sessions: the `(max+1)`-th connection
//!   is answered with one [`ErrorCode::Busy`] error frame and closed.
//! * The pool queue is bounded: when full, `Execute` answers `Busy`
//!   without queueing.
//! * `max_result_rows` and `max_result_bytes` are streaming budgets:
//!   the row budget is checked before the stream opens, the byte
//!   budget incrementally as rows are encoded — a result that exceeds
//!   it terminates the stream with [`ErrorCode::TooLarge`] without
//!   ever encoding the remainder.
//!
//! ## Graceful shutdown
//!
//! [`ServerHandle::shutdown`] (or a client `SHUTDOWN` command) flips
//! the drain flag and wakes the accept thread with a self-connection.
//! The accept thread stops accepting and half-closes every session's
//! read side; in-flight statements keep streaming. Sessions still
//! running `drain_grace` later get their statements cancelled; after
//! a second grace their sockets are force-closed (a client that
//! stopped reading its stream could otherwise block the drain
//! forever).

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nlq_engine::{EngineError, ExecOptions, ExecStats, SqlEngine};
use nlq_feature::{IngestStream, RefreshConfig, RefreshDaemon, TickGate};
use nlq_obs::{Outcome, Phase, Span, Trace, TraceRecord, TraceRing};
use nlq_storage::Value;

use crate::metrics::{Command, Metrics};
use crate::pool::{SubmitError, WorkerPool};
use crate::wire::{
    read_frame, write_frame, ChunkEncoder, ErrorCode, Request, Response, WireStats,
    PROTOCOL_VERSION,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Pool worker threads executing statements.
    pub workers: usize,
    /// Bounded pool queue capacity.
    pub queue_capacity: usize,
    /// Maximum concurrent sessions.
    pub max_connections: usize,
    /// Per-query wall-clock limit; on expiry the statement is
    /// cancelled (the worker frees up) and the client gets
    /// [`ErrorCode::Timeout`].
    pub query_timeout: Duration,
    /// Per-result row budget, checked before the stream opens.
    pub max_result_rows: usize,
    /// Per-result byte budget over total encoded row bytes, enforced
    /// incrementally while streaming (`usize::MAX` = unlimited).
    pub max_result_bytes: usize,
    /// Target encoded row bytes per `RowsChunk` frame.
    pub chunk_bytes: usize,
    /// How long a drain waits for in-flight statements before
    /// cancelling them (and force-closing sockets after twice this).
    pub drain_grace: Duration,
    /// Completed queries at or above this wall-clock duration are
    /// written to the slow-query log (stderr) and retained in the
    /// slow-trace ring.
    pub slow_query: Duration,
    /// Capacity of each trace ring (recent and slow).
    pub trace_ring: usize,
    /// Cadence of the continuous model-refresh daemon; `None` runs
    /// the server without one. The daemon auto-discovers a regression
    /// binding for every eligible summary and republishes its model
    /// table whenever the summary's Γ moved far enough.
    pub refresh_cadence: Option<Duration>,
    /// Minimum folded-row delta since the last refresh before a
    /// fold-driven summary change triggers a refit (structural
    /// changes always trigger).
    pub refresh_delta_rows: u64,
    /// Ingest back-pressure bound: when the refresh daemon is more
    /// than this many folded rows behind its last published models,
    /// `InsertDone` answers [`ErrorCode::Retry`] instead of
    /// committing. `None` never pushes back.
    pub staleness_bound: Option<u64>,
    /// Auto-checkpoint threshold: after a committed ingest envelope,
    /// if the live WAL has grown to at least this many bytes the
    /// server checkpoints (snapshot + log truncation) inline. `None`
    /// leaves checkpoints to explicit `Checkpoint` requests. Ignored
    /// by volatile engines.
    pub checkpoint_bytes: Option<u64>,
    /// Test seam: when set, the refresh daemon runs gated — it ticks
    /// only when [`TickGate::step`] is called instead of on the
    /// cadence — so back-pressure tests control refresh progress
    /// deterministically, without sleeps.
    pub refresh_gate: Option<Arc<TickGate>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 64,
            max_connections: 32,
            query_timeout: Duration::from_secs(30),
            max_result_rows: 1_000_000,
            max_result_bytes: usize::MAX,
            chunk_bytes: 1 << 20,
            drain_grace: Duration::from_secs(5),
            slow_query: Duration::from_millis(500),
            trace_ring: 256,
            refresh_cadence: Some(Duration::from_millis(250)),
            refresh_delta_rows: 0,
            staleness_bound: None,
            checkpoint_bytes: None,
            refresh_gate: None,
        }
    }
}

/// Cancellation registry for one session. The frame-reader thread
/// flips tokens through it while the session thread is busy; sequence
/// numbers (the session's 1-based `Execute` count, mirrored by the
/// client) make sure a `Cancel` is never misdelivered to a different
/// statement, whichever side of the race it lands on.
#[derive(Default)]
struct ActiveQuery {
    inner: Mutex<ActiveInner>,
}

#[derive(Default)]
struct ActiveInner {
    /// The in-flight statement's `(seq, cancel token)`.
    current: Option<(u64, Arc<AtomicBool>)>,
    /// Highest sequence number that has begun executing.
    last_seq: u64,
    /// A cancel that arrived before its statement began.
    pending_cancel: Option<u64>,
}

impl ActiveQuery {
    /// Registers statement `seq` as in-flight. A cancel already
    /// recorded against this sequence number flips the token
    /// immediately (the cancel raced ahead of the execute).
    fn begin(&self, seq: u64, token: &Arc<AtomicBool>) {
        let mut inner = self.inner.lock().expect("active query");
        inner.last_seq = seq;
        if inner.pending_cancel == Some(seq) {
            inner.pending_cancel = None;
            token.store(true, Ordering::SeqCst);
        }
        inner.current = Some((seq, Arc::clone(token)));
    }

    /// Unregisters the in-flight statement.
    fn end(&self) {
        self.inner.lock().expect("active query").current = None;
    }

    /// Delivers a client cancel for `seq`: flips the matching live
    /// token, remembers a future sequence number, ignores the past.
    fn cancel(&self, seq: u64) {
        let mut inner = self.inner.lock().expect("active query");
        match &inner.current {
            Some((cur, token)) if *cur == seq => token.store(true, Ordering::SeqCst),
            _ if seq > inner.last_seq => inner.pending_cancel = Some(seq),
            _ => {} // Already finished; the stream's terminal frame answered it.
        }
    }

    /// Cancels whatever is in flight (the drain path).
    fn cancel_current(&self) {
        if let Some((_, token)) = &self.inner.lock().expect("active query").current {
            token.store(true, Ordering::SeqCst);
        }
    }
}

/// A live session as the accept thread tracks it for the drain (and
/// as `sys.sessions` snapshots it).
pub(crate) struct LiveSession {
    pub(crate) id: u64,
    read_half: TcpStream,
    active: Arc<ActiveQuery>,
    /// Peer address of the connection, as accepted.
    pub(crate) peer: String,
    /// Statements the session has completed (shared with the session
    /// thread's own counter).
    pub(crate) statements: Arc<AtomicU64>,
}

pub(crate) struct Shared {
    pub(crate) db: Arc<dyn SqlEngine>,
    pub(crate) pool: WorkerPool,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) config: ServerConfig,
    /// The bound listener address (for shutdown self-wakes).
    addr: SocketAddr,
    shutting_down: AtomicBool,
    next_session: AtomicU64,
    /// Live sessions: read-halves (closed on shutdown to unblock
    /// their frame reads) and cancellation registries.
    pub(crate) live: Mutex<Vec<LiveSession>>,
    /// Ring of the most recently completed query traces.
    pub(crate) traces: TraceRing,
    /// Ring of queries that crossed the slow-query threshold.
    pub(crate) slow_traces: TraceRing,
    /// Server-wide monotone trace id (the `TRACE` paging cursor).
    /// Assigned at completion, so ids are retention-ordered.
    next_trace_id: AtomicU64,
    /// Server-wide query id, minted at admission — before queueing —
    /// and threaded through `ExecOptions` into every span, shard
    /// partial, and WAL commit the statement produces. The join key
    /// across `RowsHeader`, `sys.queries`, `sys.spans`, and the
    /// slow-query log.
    next_query_id: AtomicU64,
    /// The continuous model-refresh daemon (when configured); taken
    /// and joined on shutdown.
    pub(crate) daemon: Mutex<Option<RefreshDaemon>>,
}

impl Shared {
    /// Mirrors state owned elsewhere — the refresh daemon's publish
    /// counter and lag, the trace rings' eviction counts — into the
    /// metrics so `METRICS` / Prometheus scrapes and `sys.metrics`
    /// see them without holding the source locks longer than a load.
    pub(crate) fn sync_derived_metrics(&self) {
        if let Some(d) = self.daemon.lock().expect("daemon").as_ref() {
            self.metrics
                .model_refreshes
                .store(d.refreshes(), Ordering::Relaxed);
            self.metrics
                .refresh_lag_rows
                .store(d.staleness(), Ordering::Relaxed);
        }
        self.metrics.trace_ring_evicted.store(
            self.traces.evicted() + self.slow_traces.evicted(),
            Ordering::Relaxed,
        );
    }

    /// How many folded rows the refresh daemon is behind its last
    /// published models, when a daemon is running.
    fn refresh_staleness(&self) -> Option<u64> {
        self.daemon
            .lock()
            .expect("daemon")
            .as_ref()
            .map(|d| d.staleness())
    }

    /// Whether an `InsertDone` must be refused with a retry hint:
    /// `Some(lag)` when the refresh daemon has fallen further behind
    /// than the configured staleness bound.
    fn ingest_backpressure(&self) -> Option<u64> {
        let bound = self.config.staleness_bound?;
        let lag = self.refresh_staleness()?;
        (lag > bound).then_some(lag)
    }

    /// Checkpoints inline after a committed envelope once the live WAL
    /// crosses the configured size threshold. Failures are logged, not
    /// fatal — the log is still intact, so durability is unaffected.
    fn maybe_checkpoint(&self) {
        let Some(threshold) = self.config.checkpoint_bytes else {
            return;
        };
        if self.db.wal_log_bytes().is_some_and(|b| b >= threshold) {
            if let Err(e) = self.db.checkpoint() {
                eprintln!("auto-checkpoint failed: {e}");
            }
        }
    }
}

/// Running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Starts a server for `db` per `config`, returning once the listener
/// is bound.
pub fn serve(db: Arc<dyn SqlEngine>, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let daemon = config.refresh_cadence.map(|cadence| {
        RefreshDaemon::spawn_with_gate(
            Arc::clone(&db),
            Vec::new(),
            RefreshConfig {
                cadence,
                min_delta_rows: config.refresh_delta_rows,
                auto_discover: true,
            },
            config.refresh_gate.clone(),
        )
    });
    let shared = Arc::new(Shared {
        pool: WorkerPool::new(config.workers, config.queue_capacity),
        metrics: Arc::new(Metrics::new()),
        db,
        addr,
        shutting_down: AtomicBool::new(false),
        next_session: AtomicU64::new(1),
        live: Mutex::new(Vec::new()),
        traces: TraceRing::new(config.trace_ring),
        slow_traces: TraceRing::new(config.trace_ring),
        next_trace_id: AtomicU64::new(1),
        next_query_id: AtomicU64::new(1),
        daemon: Mutex::new(daemon),
        config,
    });
    // Register the virtual system catalog: `sys.*` names resolve to
    // snapshots of this server's live state, queryable through the
    // ordinary scan/aggregate path. The provider holds a weak
    // reference — the engine outliving the server must not keep it
    // alive, and `Shared.db` already owns the engine.
    shared
        .db
        .set_system_tables(Arc::new(crate::sys::SysCatalog::new(Arc::downgrade(
            &shared,
        ))));
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("nlq-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared))?;
    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server metrics (shared with the sessions).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Initiates a graceful shutdown and blocks until every in-flight
    /// query has completed (or was cancelled past the drain grace)
    /// and all threads exited.
    pub fn shutdown(&mut self) {
        if let Some(d) = self.shared.daemon.lock().expect("daemon").take() {
            d.stop();
        }
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the accept thread; it owns the rest of the drain.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until the server exits (e.g. a client sent `SHUTDOWN`).
    pub fn join(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A response is several small frames (header, chunks, trailer);
        // Nagle + delayed ACK would serialize them at ~40 ms apiece.
        let _ = stream.set_nodelay(true);
        sessions.retain(|s| !s.is_finished());
        let active_sessions = shared.metrics.sessions_active.load(Ordering::SeqCst);
        if active_sessions as usize >= shared.config.max_connections {
            shared
                .metrics
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
            refuse(stream, ErrorCode::Busy, "server at max connections");
            continue;
        }
        shared
            .metrics
            .sessions_active
            .fetch_add(1, Ordering::SeqCst);
        shared
            .metrics
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        let active = Arc::new(ActiveQuery::default());
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_default();
        let statements = Arc::new(AtomicU64::new(0));
        if let Ok(read_half) = stream.try_clone() {
            shared.live.lock().expect("live list").push(LiveSession {
                id,
                read_half,
                active: Arc::clone(&active),
                peer: peer.clone(),
                statements: Arc::clone(&statements),
            });
        }
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("nlq-session-{id}"))
            .spawn(move || {
                session_loop(stream, id, peer, statements, &active, &conn_shared);
                conn_shared
                    .metrics
                    .sessions_active
                    .fetch_sub(1, Ordering::SeqCst);
                conn_shared
                    .live
                    .lock()
                    .expect("live list")
                    .retain(|s| s.id != id);
            })
            .expect("spawn session thread");
        sessions.push(handle);
    }
    // Drain, in up to three phases. Phase 1: unblock session reads and
    // give in-flight statements a grace period to stream out.
    for s in shared.live.lock().expect("live list").iter() {
        let _ = s.read_half.shutdown(Shutdown::Read);
    }
    let grace = shared.config.drain_grace;
    if !wait_sessions(&sessions, grace) {
        // Phase 2: cancel whatever is still running; the scan loops
        // notice within a row/block and the streams terminate with
        // `Cancelled`.
        for s in shared.live.lock().expect("live list").iter() {
            s.active.cancel_current();
        }
        if !wait_sessions(&sessions, grace) {
            // Phase 3: force-close the sockets. A session blocked
            // writing to a client that stopped reading can only be
            // freed by failing the write.
            for s in shared.live.lock().expect("live list").iter() {
                let _ = s.read_half.shutdown(Shutdown::Both);
            }
        }
    }
    for s in sessions {
        let _ = s.join();
    }
}

/// Polls until every session thread finished or `grace` elapsed.
fn wait_sessions(sessions: &[JoinHandle<()>], grace: Duration) -> bool {
    let deadline = Instant::now() + grace;
    loop {
        if sessions.iter().all(|s| s.is_finished()) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn refuse(stream: TcpStream, code: ErrorCode, message: &str) {
    let mut w = BufWriter::new(stream);
    let _ = write_frame(
        &mut w,
        &Response::Error {
            code,
            message: message.into(),
        }
        .encode(),
    );
    let _ = w.flush();
}

/// Per-session mutable state.
struct Session {
    id: u64,
    /// Peer address of the connection (stamped on trace records).
    peer: String,
    /// `None` = server default; `Some` = per-session override.
    block_scan: Option<bool>,
    last_stats: Option<ExecStats>,
    /// Statements completed; shared with the accept thread's
    /// [`LiveSession`] so `sys.sessions` reads it live.
    statements: Arc<AtomicU64>,
    /// 1-based count of `Execute` requests received; its value for
    /// the current statement is the stream's sequence number. The
    /// client keeps the same count, which is how both sides agree on
    /// what a `Cancel { seq }` targets without extra round trips.
    execute_seq: u64,
    /// The session's open ingest envelope, if any. Headers and chunks
    /// are unacknowledged, so a failure anywhere mid-envelope parks
    /// here as `Failed` and is reported once, at `InsertDone`.
    ingest: IngestSlot,
}

/// Where the session's ingest envelope stands.
enum IngestSlot {
    /// No envelope open.
    Idle,
    /// Header accepted; chunks are being buffered.
    Active(IngestStream),
    /// The envelope is poisoned: the first error, held until
    /// `InsertDone` reports it.
    Failed(String),
}

/// What the frame-reader thread forwards to the session thread.
enum Incoming {
    Req(Request),
    /// An undecodable frame; the session answers with a protocol
    /// error to keep the request/response ledger aligned.
    Bad(String),
}

fn session_loop(
    stream: TcpStream,
    id: u64,
    peer: String,
    statements: Arc<AtomicU64>,
    active: &Arc<ActiveQuery>,
    shared: &Arc<Shared>,
) {
    let (Ok(read_stream), Ok(write_stream)) = (stream.try_clone(), stream.try_clone()) else {
        return;
    };
    let mut writer = BufWriter::new(write_stream);
    let mut session = Session {
        id,
        peer,
        block_scan: None,
        last_stats: None,
        statements,
        execute_seq: 0,
        ingest: IngestSlot::Idle,
    };
    if write_frame(
        &mut writer,
        &Response::Hello {
            session_id: id,
            version: PROTOCOL_VERSION,
        }
        .encode(),
    )
    .is_err()
    {
        return;
    }

    // The reader decodes frames as they arrive. Cancels are handled
    // here — the session thread may be blocked streaming the very
    // statement being cancelled — and everything else is forwarded in
    // order.
    let (tx, rx) = mpsc::channel::<Incoming>();
    let reader_active = Arc::clone(active);
    let reader_shared = Arc::clone(shared);
    let reader = std::thread::Builder::new()
        .name(format!("nlq-session-{id}-reader"))
        .spawn(move || {
            let mut reader = BufReader::new(read_stream);
            while let Ok(Some(payload)) = read_frame(&mut reader) {
                match Request::decode(&payload) {
                    Ok(Request::Cancel { seq }) => {
                        let started = Instant::now();
                        reader_active.cancel(seq);
                        // Counted only after delivery, so the counter
                        // doubles as an is-the-token-flipped signal.
                        reader_shared
                            .metrics
                            .cancel_requests
                            .fetch_add(1, Ordering::Relaxed);
                        reader_shared
                            .metrics
                            .record(Command::Cancel, started.elapsed(), true);
                    }
                    Ok(req) => {
                        if tx.send(Incoming::Req(req)).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        if tx.send(Incoming::Bad(e.to_string())).is_err() {
                            break;
                        }
                    }
                }
            }
        })
        .expect("spawn session reader");

    while let Ok(incoming) = rx.recv() {
        let started = Instant::now();
        let request = match incoming {
            Incoming::Req(r) => r,
            Incoming::Bad(message) => {
                if write_frame(
                    &mut writer,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message,
                    }
                    .encode(),
                )
                .is_err()
                {
                    break;
                }
                continue;
            }
        };
        match request {
            Request::Execute { sql } => {
                match execute_streaming(sql, &mut session, active, shared, &mut writer) {
                    Ok(ok) => shared
                        .metrics
                        .record(Command::Execute, started.elapsed(), ok),
                    Err(_) => break,
                }
            }
            // Cancels never reach this channel (the reader intercepts
            // them); tolerate one anyway as fire-and-forget.
            Request::Cancel { .. } => {}
            // The ingest envelope: header and chunks are
            // unacknowledged (errors poison the slot and surface at
            // Done), Done is the envelope's one reply, Abort is
            // fire-and-forget. Keeping header/chunk silent is what
            // lets a client pipeline a whole stream without waiting
            // out a round trip per chunk.
            Request::InsertHeader { table, columns } => {
                session.ingest = match IngestStream::begin(shared.db.as_ref(), &table, &columns) {
                    Ok(s) => IngestSlot::Active(s),
                    Err(e) => IngestSlot::Failed(e.to_string()),
                };
            }
            Request::InsertChunk { seq, rows } => match &mut session.ingest {
                IngestSlot::Active(s) => {
                    if let Err(e) = s.chunk(seq, rows) {
                        session.ingest = IngestSlot::Failed(e.to_string());
                    }
                }
                // Already poisoned: the first error wins; Done reports it.
                IngestSlot::Failed(_) => {}
                IngestSlot::Idle => {
                    session.ingest =
                        IngestSlot::Failed("InsertChunk without an open ingest stream".into());
                }
            },
            Request::InsertDone => {
                let response = match std::mem::replace(&mut session.ingest, IngestSlot::Idle) {
                    // Back-pressure: when the refresh daemon has fallen
                    // past the staleness bound, refuse the envelope with
                    // a retry hint *before* committing anything. The
                    // whole stream is discarded — `Retry` means "resend
                    // the envelope later", never "partially applied".
                    IngestSlot::Active(_) if shared.ingest_backpressure().is_some() => {
                        let lag = shared.ingest_backpressure().unwrap_or(0);
                        shared
                            .metrics
                            .ingest_backpressure
                            .fetch_add(1, Ordering::Relaxed);
                        Response::Error {
                            code: ErrorCode::Retry,
                            message: format!(
                                "refresh daemon is {lag} rows behind (bound {}); \
                                 envelope not committed, retry later",
                                shared.config.staleness_bound.unwrap_or(0)
                            ),
                        }
                    }
                    IngestSlot::Active(s) => match s.done(shared.db.as_ref()) {
                        Ok(rows) => {
                            shared
                                .metrics
                                .ingest_rows
                                .fetch_add(rows, Ordering::Relaxed);
                            shared.maybe_checkpoint();
                            Response::InsertAck { rows }
                        }
                        Err(e) => Response::Error {
                            code: ErrorCode::Sql,
                            message: e.to_string(),
                        },
                    },
                    IngestSlot::Failed(message) => Response::Error {
                        code: ErrorCode::Protocol,
                        message,
                    },
                    IngestSlot::Idle => Response::Error {
                        code: ErrorCode::Protocol,
                        message: "InsertDone without an open ingest stream".into(),
                    },
                };
                let ok = !matches!(response, Response::Error { .. });
                shared
                    .metrics
                    .record(Command::Ingest, started.elapsed(), ok);
                if write_frame(&mut writer, &response.encode()).is_err() {
                    break;
                }
            }
            Request::InsertAbort => {
                session.ingest = IngestSlot::Idle;
            }
            Request::BatchScore {
                table,
                model,
                keys,
                explain,
            } => {
                let response = batch_score(&table, &model, &keys, explain, &mut session, shared);
                let ok = !matches!(response, Response::Error { .. });
                shared
                    .metrics
                    .record(Command::BatchScore, started.elapsed(), ok);
                if write_frame(&mut writer, &response.encode()).is_err() {
                    break;
                }
            }
            Request::Shutdown => {
                shared
                    .metrics
                    .record(Command::Shutdown, started.elapsed(), true);
                let _ = write_frame(&mut writer, &Response::Ok.encode());
                // Trigger the server drain from inside a session: flip
                // the flag and nudge the accept loop awake.
                shared.shutting_down.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(shared.addr);
                break;
            }
            other => {
                let cmd = command_of(&other);
                let response = handle_request(other, &mut session, shared);
                let ok = !matches!(response, Response::Error { .. });
                shared.metrics.record(cmd, started.elapsed(), ok);
                if write_frame(&mut writer, &response.encode()).is_err() {
                    break;
                }
            }
        }
    }
    // Unblock the reader (it may be parked in read_frame) and reap it.
    let _ = stream.shutdown(Shutdown::Both);
    let _ = reader.join();
}

fn command_of(req: &Request) -> Command {
    match req {
        Request::Execute { .. } => Command::Execute,
        Request::SetOption { .. } => Command::SetOption,
        Request::Status => Command::Status,
        Request::Metrics | Request::MetricsProm => Command::Metrics,
        Request::Ping => Command::Ping,
        Request::Shutdown => Command::Shutdown,
        Request::Cancel { .. } => Command::Cancel,
        Request::Trace { .. } => Command::Trace,
        Request::InsertHeader { .. }
        | Request::InsertChunk { .. }
        | Request::InsertDone
        | Request::InsertAbort => Command::Ingest,
        Request::BatchScore { .. } => Command::BatchScore,
        Request::Checkpoint => Command::Checkpoint,
    }
}

/// Runs one `BatchScore` request: keyed PK point lookups scored
/// through the model's scalar UDF, one reply frame for the whole key
/// batch. Key-count limits are enforced by the engine
/// ([`nlq_engine::MAX_SCORE_KEYS`]).
fn batch_score(
    table: &str,
    model: &str,
    keys: &[i64],
    explain: bool,
    session: &mut Session,
    shared: &Arc<Shared>,
) -> Response {
    let started = Instant::now();
    let opts = ExecOptions {
        block_scan: session.block_scan,
        cancel: None,
        trace: None,
        query_id: shared.next_query_id.fetch_add(1, Ordering::Relaxed),
    };
    match shared.db.batch_score(table, model, keys, explain, &opts) {
        Ok(rs) => {
            shared
                .metrics
                .batch_score_keys
                .fetch_add(keys.len() as u64, Ordering::Relaxed);
            session.last_stats = Some(rs.stats);
            session.statements.fetch_add(1, Ordering::Relaxed);
            Response::Result {
                columns: rs.columns,
                rows: rs.rows,
                stats: WireStats {
                    rows_scanned: rs.stats.rows_scanned,
                    blocks_scanned: rs.stats.blocks_scanned,
                    block_path: rs.stats.block_path,
                    summary_path: rs.stats.summary_path,
                    summary_hits: rs.stats.summary_hits,
                    summary_misses: rs.stats.summary_misses,
                    summary_stale_rebuilds: rs.stats.summary_stale_rebuilds,
                    elapsed_micros: started.elapsed().as_micros() as u64,
                    cancelled: false,
                },
            }
        }
        Err(e) => Response::Error {
            code: ErrorCode::Sql,
            message: e.to_string(),
        },
    }
}

fn handle_request(request: Request, session: &mut Session, shared: &Arc<Shared>) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::SetOption { name, value } => set_option(session, &name, &value),
        Request::Status => status(session, shared),
        Request::Checkpoint => match shared.db.checkpoint() {
            Ok(_) => Response::Ok,
            Err(e) => Response::Error {
                code: ErrorCode::Sql,
                message: e.to_string(),
            },
        },
        Request::Metrics => {
            shared.sync_derived_metrics();
            let mut rows = shared
                .metrics
                .render(shared.pool.queue_depth(), shared.pool.workers_busy());
            rows.extend(crate::metrics::render_engine_rows(
                shared.db.shard_count(),
                &shared.db.shard_metrics(),
                shared.db.plan_cache_stats(),
            ));
            rows.extend(crate::metrics::render_wal_rows(
                shared.db.wal_stats(),
                shared.db.wal_log_bytes(),
                shared.db.recovery_info(),
            ));
            Response::Result {
                columns: vec!["metric".into(), "value".into()],
                rows,
                stats: WireStats::default(),
            }
        }
        Request::MetricsProm => {
            shared.sync_derived_metrics();
            let mut text = shared
                .metrics
                .render_prometheus(shared.pool.queue_depth(), shared.pool.workers_busy());
            text.push_str(&crate::metrics::render_engine_prometheus(
                shared.db.shard_count(),
                &shared.db.shard_metrics(),
                shared.db.plan_cache_stats(),
            ));
            text.push_str(&crate::metrics::render_wal_prometheus(
                shared.db.wal_stats(),
                shared.db.wal_log_bytes(),
                shared.db.recovery_info(),
            ));
            Response::MetricsText { text }
        }
        Request::Trace {
            slow_only,
            after_id,
            limit,
        } => {
            let ring = if slow_only {
                &shared.slow_traces
            } else {
                &shared.traces
            };
            // Clamp the page so the reply always fits one frame even
            // with long SQL texts.
            let limit = (limit as usize).clamp(1, 256);
            Response::Trace {
                records: ring.page(after_id, limit),
                // The cursor points below an overwritten record: the
                // client has missed traces it can never page to.
                truncated: ring.truncated(after_id),
            }
        }
        // Execute, Shutdown, Cancel, and the ingest/scoring family are
        // handled in the session loop (they need the writer, the drain
        // flag, the reader, or the session's ingest slot).
        Request::Execute { .. }
        | Request::Shutdown
        | Request::Cancel { .. }
        | Request::InsertHeader { .. }
        | Request::InsertChunk { .. }
        | Request::InsertDone
        | Request::InsertAbort
        | Request::BatchScore { .. } => Response::Error {
            code: ErrorCode::Protocol,
            message: "request not routable here".into(),
        },
    }
}

fn set_option(session: &mut Session, name: &str, value: &str) -> Response {
    match (name, value) {
        ("block_scan", "on") => session.block_scan = Some(true),
        ("block_scan", "off") => session.block_scan = Some(false),
        ("block_scan", "default") => session.block_scan = None,
        _ => {
            return Response::Error {
                code: ErrorCode::Protocol,
                message: format!("unknown option {name}={value}"),
            }
        }
    }
    Response::Ok
}

fn status(session: &Session, shared: &Arc<Shared>) -> Response {
    let mut rows = vec![
        vec![
            Value::Str("session_id".into()),
            Value::Int(session.id as i64),
        ],
        vec![
            Value::Str("block_scan".into()),
            Value::Str(
                match session.block_scan {
                    None => "default",
                    Some(true) => "on",
                    Some(false) => "off",
                }
                .into(),
            ),
        ],
        vec![
            Value::Str("statements".into()),
            Value::Int(session.statements.load(Ordering::Relaxed) as i64),
        ],
    ];
    if let Some(s) = &session.last_stats {
        rows.push(vec![
            Value::Str("last.rows_scanned".into()),
            Value::Int(s.rows_scanned as i64),
        ]);
        rows.push(vec![
            Value::Str("last.blocks_scanned".into()),
            Value::Int(s.blocks_scanned as i64),
        ]);
        rows.push(vec![
            Value::Str("last.block_path".into()),
            Value::Int(i64::from(s.block_path)),
        ]);
        rows.push(vec![
            Value::Str("last.summary_path".into()),
            Value::Int(i64::from(s.summary_path)),
        ]);
        rows.push(vec![
            Value::Str("last.cancelled".into()),
            Value::Int(i64::from(s.cancelled)),
        ]);
    }
    // Durability: `wal.*` and `recovery.*` rows appear only for a
    // durable engine (opened with `--wal-dir`).
    rows.extend(crate::metrics::render_wal_rows(
        shared.db.wal_stats(),
        shared.db.wal_log_bytes(),
        shared.db.recovery_info(),
    ));
    if let Some(lag) = shared.refresh_staleness() {
        rows.push(vec![
            Value::Str("refresh.staleness".into()),
            Value::Int(lag as i64),
        ]);
    }
    Response::Result {
        columns: vec!["property".into(), "value".into()],
        rows,
        stats: WireStats::default(),
    }
}

/// What the pool worker streams back to the session thread. Chunk
/// payloads are pre-encoded so the session does pure frame relay.
enum StreamMsg {
    Header {
        columns: Vec<String>,
    },
    Chunk(Vec<u8>),
    Done {
        payload: Vec<u8>,
        stats: ExecStats,
    },
    Failed {
        code: ErrorCode,
        message: String,
        stats: Option<ExecStats>,
        /// The statement was cancelled while still queued — the
        /// worker skipped it at dequeue without executing anything.
        cancelled_queued: bool,
    },
}

/// How many chunks may sit between worker and session before the
/// worker blocks — the streaming backpressure bound.
const STREAM_BUFFER: usize = 4;

/// Runs one `Execute` to its terminal frame. `Ok(ok)` reports whether
/// the statement succeeded (for command metrics); `Err` means the
/// socket died and the session should end.
fn execute_streaming(
    sql: String,
    session: &mut Session,
    active: &Arc<ActiveQuery>,
    shared: &Arc<Shared>,
    writer: &mut BufWriter<TcpStream>,
) -> io::Result<bool> {
    // Every Execute consumes a sequence number, even refused ones —
    // the client counts its own sends and the two ledgers must agree.
    session.execute_seq += 1;
    let seq = session.execute_seq;
    if shared.shutting_down.load(Ordering::SeqCst) {
        write_error(writer, ErrorCode::ShuttingDown, "server is draining")?;
        return Ok(false);
    }

    // Minted at admission — before queueing — so the id exists even
    // for statements that never reach a worker, and admission order
    // is observable next to the completion-ordered trace id.
    let query_id = shared.next_query_id.fetch_add(1, Ordering::Relaxed);
    let token = Arc::new(AtomicBool::new(false));
    active.begin(seq, &token);
    let trace = Trace::new();
    let (tx, rx) = mpsc::sync_channel::<StreamMsg>(STREAM_BUFFER);
    let job = stream_job(
        sql.clone(),
        seq,
        ExecOptions {
            block_scan: session.block_scan,
            cancel: Some(Arc::clone(&token)),
            trace: Some(trace.clone()),
            query_id,
        },
        Arc::clone(&shared.db),
        shared.config.clone(),
        tx.clone(),
    );
    // A cancel that lands while the job still sits in the pool queue
    // skips execution entirely: the worker answers through this cheap
    // path instead of starting a scan it would immediately abandon.
    let on_skip = move || {
        let _ = tx.send(StreamMsg::Failed {
            code: ErrorCode::Cancelled,
            message: "query cancelled while queued".into(),
            stats: None,
            cancelled_queued: true,
        });
    };
    match shared
        .pool
        .submit_with_token(Arc::clone(&token), Box::new(job), Box::new(on_skip))
    {
        Ok(()) => {}
        Err(SubmitError::Full) => {
            shared
                .metrics
                .queue_rejections
                .fetch_add(1, Ordering::Relaxed);
            active.end();
            write_error(writer, ErrorCode::Busy, "query queue is full")?;
            return Ok(false);
        }
        Err(SubmitError::ShuttingDown) => {
            active.end();
            write_error(writer, ErrorCode::ShuttingDown, "server is draining")?;
            return Ok(false);
        }
    }

    let out = relay_stream(seq, query_id, session, shared, &token, &trace, &rx, writer);
    if out.is_err() {
        // The socket died mid-stream; free the worker.
        token.store(true, Ordering::SeqCst);
    }
    active.end();
    let end = match &out {
        Ok(end) => (end.outcome, end.detail.clone()),
        Err(e) => (Outcome::Error, e.to_string()),
    };
    finish_trace(session, shared, seq, query_id, &sql, trace, end.0, end.1);
    // `rx` drops here: a worker still streaming fails its next send
    // and abandons the statement.
    out.map(|end| end.ok)
}

/// Retains one completed statement's trace: assign the server-wide
/// id, push into the recent ring, and — past the slow threshold —
/// into the slow ring plus the stderr slow-query log.
#[allow(clippy::too_many_arguments)]
fn finish_trace(
    session: &Session,
    shared: &Arc<Shared>,
    seq: u64,
    query_id: u64,
    sql: &str,
    trace: Trace,
    outcome: Outcome,
    detail: String,
) {
    let total_nanos = trace.elapsed_nanos();
    let slow = Duration::from_nanos(total_nanos) >= shared.config.slow_query;
    let spans = trace.spans();
    // Shards the statement actually fanned out to: distinct shard
    // indices across its scatter spans (0 for a single-node engine).
    let mut shard_ids: Vec<i64> = spans.iter().map(|s| s.shard).filter(|&s| s >= 0).collect();
    shard_ids.sort_unstable();
    shard_ids.dedup();
    let record = TraceRecord {
        id: shared.next_trace_id.fetch_add(1, Ordering::Relaxed),
        query_id,
        session: session.id,
        peer: session.peer.clone(),
        shards: shard_ids.len() as u32,
        seq,
        sql: sql.to_owned(),
        outcome,
        detail,
        total_nanos,
        slow,
        wal_bytes: trace.wal_bytes(),
        fsyncs: trace.wal_fsyncs(),
        cpu_nanos: trace.cpu_nanos(),
        spans,
    };
    shared
        .metrics
        .query_cpu_nanos
        .fetch_add(record.cpu_nanos, Ordering::Relaxed);
    if slow {
        shared.metrics.slow_queries.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "slow query: query_id={} session={} peer={} seq={} shards={} total={} outcome={} sql={:?}{}",
            record.query_id,
            record.session,
            record.peer,
            record.seq,
            record.shards,
            nlq_obs::fmt_nanos(record.total_nanos),
            record.outcome.name(),
            record.sql,
            if record.detail.is_empty() {
                String::new()
            } else {
                format!(" detail={:?}", record.detail)
            }
        );
        shared.slow_traces.push(record.clone());
    }
    shared.traces.push(record);
}

/// How `relay_stream` saw the statement end.
struct StreamEnd {
    /// Whether the statement succeeded (for command metrics).
    ok: bool,
    /// The trace-record outcome.
    outcome: Outcome,
    /// Detail for non-`Ok` outcomes.
    detail: String,
}

/// The pool-worker half of a streamed execute: run the statement,
/// then encode and push frames until done, cancelled, over budget, or
/// the session stopped listening (send failure).
fn stream_job(
    sql: String,
    seq: u64,
    opts: ExecOptions,
    db: Arc<dyn SqlEngine>,
    config: ServerConfig,
    tx: mpsc::SyncSender<StreamMsg>,
) -> impl FnOnce() + Send + 'static {
    move || {
        let started = Instant::now();
        let token = opts.cancel.as_ref().expect("stream job has a token");
        let trace = opts.trace.clone();
        let result = db.execute_with(&sql, &opts);
        let rs = match result {
            Err(EngineError::Cancelled { rows_scanned }) => {
                let stats = ExecStats {
                    rows_scanned,
                    cancelled: true,
                    ..ExecStats::default()
                };
                let _ = tx.send(StreamMsg::Failed {
                    code: ErrorCode::Cancelled,
                    message: format!("query cancelled after {rows_scanned} rows"),
                    stats: Some(stats),
                    cancelled_queued: false,
                });
                return;
            }
            Err(e) => {
                let _ = tx.send(StreamMsg::Failed {
                    code: ErrorCode::Sql,
                    message: e.to_string(),
                    stats: None,
                    cancelled_queued: false,
                });
                return;
            }
            Ok(rs) => rs,
        };
        if rs.rows.len() > config.max_result_rows {
            let _ = tx.send(StreamMsg::Failed {
                code: ErrorCode::TooLarge,
                message: format!(
                    "result has {} rows (limit {})",
                    rs.rows.len(),
                    config.max_result_rows
                ),
                stats: Some(rs.stats),
                cancelled_queued: false,
            });
            return;
        }
        let ncols = rs.columns.len();
        if tx
            .send(StreamMsg::Header {
                columns: rs.columns,
            })
            .is_err()
        {
            return;
        }
        let mut enc = ChunkEncoder::new(seq, ncols, config.chunk_bytes);
        let encode_started = Instant::now();
        for row in &rs.rows {
            // The engine finished, but the stream is still
            // cancellable between chunks.
            if token.load(Ordering::Relaxed) {
                let _ = tx.send(StreamMsg::Failed {
                    code: ErrorCode::Cancelled,
                    message: format!("query cancelled after streaming {} rows", enc.total_rows()),
                    stats: Some(ExecStats {
                        cancelled: true,
                        ..rs.stats
                    }),
                    cancelled_queued: false,
                });
                return;
            }
            let chunk = enc.push_row(row);
            // Incremental byte budget: refuse as soon as the encoded
            // size crosses the line, never after materializing the
            // whole encoding.
            if enc.total_bytes() > config.max_result_bytes as u64 {
                let _ = tx.send(StreamMsg::Failed {
                    code: ErrorCode::TooLarge,
                    message: format!(
                        "result exceeds {} encoded bytes (limit reached after {} rows)",
                        config.max_result_bytes,
                        enc.total_rows()
                    ),
                    stats: Some(rs.stats),
                    cancelled_queued: false,
                });
                return;
            }
            if let Some(payload) = chunk {
                if tx.send(StreamMsg::Chunk(payload)).is_err() {
                    return;
                }
            }
        }
        if let Some(payload) = enc.finish() {
            if tx.send(StreamMsg::Chunk(payload)).is_err() {
                return;
            }
        }
        if let Some(trace) = &trace {
            // Encode covers chunking plus any backpressure stalls
            // waiting on the relay (the channel send blocks).
            trace.record(
                Span::new(Phase::Encode, encode_started.elapsed().as_nanos() as u64)
                    .rows(enc.total_rows())
                    .bytes(enc.total_bytes()),
            );
        }
        let wire = WireStats {
            rows_scanned: rs.stats.rows_scanned,
            blocks_scanned: rs.stats.blocks_scanned,
            block_path: rs.stats.block_path,
            summary_path: rs.stats.summary_path,
            summary_hits: rs.stats.summary_hits,
            summary_misses: rs.stats.summary_misses,
            summary_stale_rebuilds: rs.stats.summary_stale_rebuilds,
            elapsed_micros: started.elapsed().as_micros() as u64,
            cancelled: false,
        };
        let _ = tx.send(StreamMsg::Done {
            payload: enc.done_payload(&wire),
            stats: rs.stats,
        });
    }
}

/// The session half of a streamed execute: relay worker messages to
/// the socket until a terminal frame, enforcing the query deadline.
#[allow(clippy::too_many_arguments)]
fn relay_stream(
    seq: u64,
    query_id: u64,
    session: &mut Session,
    shared: &Arc<Shared>,
    token: &Arc<AtomicBool>,
    trace: &Trace,
    rx: &mpsc::Receiver<StreamMsg>,
    writer: &mut BufWriter<TcpStream>,
) -> io::Result<StreamEnd> {
    let deadline = Instant::now() + shared.config.query_timeout;
    // Socket time only — excludes waiting on the worker, so the
    // stream span reflects relay cost rather than query runtime.
    let write_nanos = std::cell::Cell::new(0u64);
    let stream_bytes = std::cell::Cell::new(0u64);
    let timed_write = |writer: &mut BufWriter<TcpStream>, payload: &[u8]| -> io::Result<()> {
        let started = Instant::now();
        let out = write_frame(writer, payload);
        write_nanos.set(write_nanos.get() + started.elapsed().as_nanos() as u64);
        stream_bytes.set(stream_bytes.get() + payload.len() as u64);
        out
    };
    let finish = |session: &mut Session, end: StreamEnd| -> StreamEnd {
        session.statements.fetch_add(1, Ordering::Relaxed);
        trace.record(Span::new(Phase::Stream, write_nanos.get()).bytes(stream_bytes.get()));
        end
    };
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(remaining) {
            Ok(StreamMsg::Header { columns }) => {
                timed_write(
                    writer,
                    &Response::RowsHeader {
                        seq,
                        query_id,
                        columns,
                    }
                    .encode(),
                )?;
            }
            Ok(StreamMsg::Chunk(payload)) => {
                shared
                    .metrics
                    .bytes_streamed
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                shared
                    .metrics
                    .chunks_streamed
                    .fetch_add(1, Ordering::Relaxed);
                timed_write(writer, &payload)?;
            }
            Ok(StreamMsg::Done { payload, stats }) => {
                session.last_stats = Some(stats);
                shared.metrics.record_summary(
                    stats.summary_hits,
                    stats.summary_misses,
                    stats.summary_stale_rebuilds,
                );
                timed_write(writer, &payload)?;
                return Ok(finish(
                    session,
                    StreamEnd {
                        ok: true,
                        outcome: Outcome::Ok,
                        detail: String::new(),
                    },
                ));
            }
            Ok(StreamMsg::Failed {
                code,
                message,
                stats,
                cancelled_queued,
            }) => {
                if let Some(stats) = stats {
                    session.last_stats = Some(stats);
                    shared.metrics.record_summary(
                        stats.summary_hits,
                        stats.summary_misses,
                        stats.summary_stale_rebuilds,
                    );
                }
                let outcome = match code {
                    ErrorCode::Cancelled if cancelled_queued => {
                        shared
                            .metrics
                            .queries_cancelled_queued
                            .fetch_add(1, Ordering::Relaxed);
                        Outcome::CancelledQueued
                    }
                    ErrorCode::Cancelled => {
                        shared
                            .metrics
                            .queries_cancelled
                            .fetch_add(1, Ordering::Relaxed);
                        Outcome::Cancelled
                    }
                    ErrorCode::TooLarge => {
                        shared
                            .metrics
                            .results_too_large
                            .fetch_add(1, Ordering::Relaxed);
                        Outcome::Error
                    }
                    _ => Outcome::Error,
                };
                write_error(writer, code, &message)?;
                return Ok(finish(
                    session,
                    StreamEnd {
                        ok: false,
                        outcome,
                        detail: message,
                    },
                ));
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Deadline: cancel the statement (the worker stops at
                // its next check and frees up) and report Timeout.
                // The caller drops `rx`, so any frame the worker
                // already queued dies with it.
                token.store(true, Ordering::SeqCst);
                shared
                    .metrics
                    .query_timeouts
                    .fetch_add(1, Ordering::Relaxed);
                let message = format!(
                    "query exceeded {} ms",
                    shared.config.query_timeout.as_millis()
                );
                write_error(writer, ErrorCode::Timeout, &message)?;
                return Ok(finish(
                    session,
                    StreamEnd {
                        ok: false,
                        outcome: Outcome::Timeout,
                        detail: message,
                    },
                ));
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The worker died without a terminal message (pool
                // shutdown mid-statement).
                write_error(writer, ErrorCode::ShuttingDown, "query aborted")?;
                return Ok(finish(
                    session,
                    StreamEnd {
                        ok: false,
                        outcome: Outcome::Error,
                        detail: "query aborted".into(),
                    },
                ));
            }
        }
    }
}

fn write_error(
    writer: &mut BufWriter<TcpStream>,
    code: ErrorCode,
    message: &str,
) -> io::Result<()> {
    write_frame(
        writer,
        &Response::Error {
            code,
            message: message.into(),
        }
        .encode(),
    )
}
