//! The TCP server: accept loop, per-connection sessions, admission
//! control, and graceful shutdown.
//!
//! ## Threading model
//!
//! One accept thread owns the listener and every connection
//! `JoinHandle`. Each accepted connection gets a session thread that
//! reads frames and answers them; `Execute` requests are handed to the
//! shared [`WorkerPool`] and the session thread waits on a one-shot
//! channel with the per-query wall-clock limit. On timeout the session
//! marks the job abandoned (the pool worker drops the result instead
//! of sending it — queries are not interrupted mid-flight, the slot
//! frees when the statement finishes) and reports
//! [`ErrorCode::Timeout`].
//!
//! ## Admission control
//!
//! * At most `max_connections` sessions: the `(max+1)`-th connection
//!   is answered with one [`ErrorCode::Busy`] error frame and closed.
//! * The pool queue is bounded: when full, `Execute` answers `Busy`
//!   without queueing.
//! * Results larger than `max_result_rows` rows or whose encoding
//!   exceeds `max_result_bytes` answer [`ErrorCode::TooLarge`].
//!
//! ## Graceful shutdown
//!
//! [`ServerHandle::shutdown`] (or a client `SHUTDOWN` command) flips
//! the drain flag and wakes the accept thread with a self-connection.
//! The accept thread stops accepting, half-closes every session's read
//! side (in-flight responses still go out), joins the sessions, drains
//! the pool, and exits. Every query admitted before the flag flipped
//! completes and its response is delivered.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nlq_engine::{Db, ExecOptions, ExecStats};
use nlq_storage::Value;

use crate::metrics::{Command, Metrics};
use crate::pool::{SubmitError, WorkerPool};
use crate::wire::{
    read_frame, write_frame, ErrorCode, Request, Response, WireStats, MAX_FRAME, PROTOCOL_VERSION,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Pool worker threads executing statements.
    pub workers: usize,
    /// Bounded pool queue capacity.
    pub queue_capacity: usize,
    /// Maximum concurrent sessions.
    pub max_connections: usize,
    /// Per-query wall-clock limit.
    pub query_timeout: Duration,
    /// Per-result row limit.
    pub max_result_rows: usize,
    /// Per-result encoded-byte limit.
    pub max_result_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 64,
            max_connections: 32,
            query_timeout: Duration::from_secs(30),
            max_result_rows: 1_000_000,
            max_result_bytes: MAX_FRAME,
        }
    }
}

struct Shared {
    db: Arc<Db>,
    pool: WorkerPool,
    metrics: Arc<Metrics>,
    config: ServerConfig,
    /// The bound listener address (for shutdown self-wakes).
    addr: SocketAddr,
    shutting_down: AtomicBool,
    next_session: AtomicU64,
    /// Read-halves of live sessions, closed on shutdown to unblock
    /// their frame reads.
    live: Mutex<Vec<(u64, TcpStream)>>,
}

/// Running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Starts a server for `db` per `config`, returning once the listener
/// is bound.
pub fn serve(db: Arc<Db>, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        pool: WorkerPool::new(config.workers, config.queue_capacity),
        metrics: Arc::new(Metrics::new()),
        db,
        config,
        addr,
        shutting_down: AtomicBool::new(false),
        next_session: AtomicU64::new(1),
        live: Mutex::new(Vec::new()),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("nlq-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared))?;
    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server metrics (shared with the sessions).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Initiates a graceful shutdown and blocks until every in-flight
    /// query has completed and all threads exited.
    pub fn shutdown(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the accept thread; it owns the rest of the drain.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until the server exits (e.g. a client sent `SHUTDOWN`).
    pub fn join(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        sessions.retain(|s| !s.is_finished());
        let active = shared.metrics.sessions_active.load(Ordering::SeqCst);
        if active as usize >= shared.config.max_connections {
            shared
                .metrics
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
            refuse(stream, ErrorCode::Busy, "server at max connections");
            continue;
        }
        shared
            .metrics
            .sessions_active
            .fetch_add(1, Ordering::SeqCst);
        shared
            .metrics
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        if let Ok(read_half) = stream.try_clone() {
            shared.live.lock().expect("live list").push((id, read_half));
        }
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("nlq-session-{id}"))
            .spawn(move || {
                session_loop(stream, id, &conn_shared);
                conn_shared
                    .metrics
                    .sessions_active
                    .fetch_sub(1, Ordering::SeqCst);
                conn_shared
                    .live
                    .lock()
                    .expect("live list")
                    .retain(|(sid, _)| *sid != id);
            })
            .expect("spawn session thread");
        sessions.push(handle);
    }
    // Drain: unblock session reads, let in-flight work finish.
    for (_, s) in shared.live.lock().expect("live list").iter() {
        let _ = s.shutdown(Shutdown::Read);
    }
    for s in sessions {
        let _ = s.join();
    }
}

fn refuse(stream: TcpStream, code: ErrorCode, message: &str) {
    let mut w = BufWriter::new(stream);
    let _ = write_frame(
        &mut w,
        &Response::Error {
            code,
            message: message.into(),
        }
        .encode(),
    );
    let _ = w.flush();
}

/// Per-session mutable state.
struct Session {
    id: u64,
    /// `None` = server default; `Some` = per-session override.
    block_scan: Option<bool>,
    last_stats: Option<ExecStats>,
    statements: u64,
}

fn session_loop(stream: TcpStream, id: u64, shared: &Arc<Shared>) {
    let Ok(read_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_stream);
    let mut writer = BufWriter::new(stream);
    let mut session = Session {
        id,
        block_scan: None,
        last_stats: None,
        statements: 0,
    };
    if write_frame(
        &mut writer,
        &Response::Hello {
            session_id: id,
            version: PROTOCOL_VERSION,
        }
        .encode(),
    )
    .is_err()
    {
        return;
    }
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        let started = Instant::now();
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                let _ = write_frame(
                    &mut writer,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: e.to_string(),
                    }
                    .encode(),
                );
                continue;
            }
        };
        let cmd = command_of(&request);
        let shutdown_requested = request == Request::Shutdown;
        let response = handle_request(request, &mut session, shared);
        let ok = !matches!(response, Response::Error { .. });
        shared.metrics.record(cmd, started.elapsed(), ok);
        if write_frame(&mut writer, &response.encode()).is_err() {
            break;
        }
        if shutdown_requested {
            // Trigger the server drain from inside a session: flip the
            // flag and nudge the accept loop awake.
            shared.shutting_down.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(shared.addr);
            break;
        }
    }
}

fn command_of(req: &Request) -> Command {
    match req {
        Request::Execute { .. } => Command::Execute,
        Request::SetOption { .. } => Command::SetOption,
        Request::Status => Command::Status,
        Request::Metrics => Command::Metrics,
        Request::Ping => Command::Ping,
        Request::Shutdown => Command::Shutdown,
    }
}

fn handle_request(request: Request, session: &mut Session, shared: &Arc<Shared>) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::Ok,
        Request::SetOption { name, value } => set_option(session, &name, &value),
        Request::Status => status(session),
        Request::Metrics => {
            let rows = shared.metrics.render(shared.pool.queue_depth());
            Response::Result {
                columns: vec!["metric".into(), "value".into()],
                rows,
                stats: WireStats::default(),
            }
        }
        Request::Execute { sql } => execute(sql, session, shared),
    }
}

fn set_option(session: &mut Session, name: &str, value: &str) -> Response {
    match (name, value) {
        ("block_scan", "on") => session.block_scan = Some(true),
        ("block_scan", "off") => session.block_scan = Some(false),
        ("block_scan", "default") => session.block_scan = None,
        _ => {
            return Response::Error {
                code: ErrorCode::Protocol,
                message: format!("unknown option {name}={value}"),
            }
        }
    }
    Response::Ok
}

fn status(session: &Session) -> Response {
    let mut rows = vec![
        vec![
            Value::Str("session_id".into()),
            Value::Int(session.id as i64),
        ],
        vec![
            Value::Str("block_scan".into()),
            Value::Str(
                match session.block_scan {
                    None => "default",
                    Some(true) => "on",
                    Some(false) => "off",
                }
                .into(),
            ),
        ],
        vec![
            Value::Str("statements".into()),
            Value::Int(session.statements as i64),
        ],
    ];
    if let Some(s) = &session.last_stats {
        rows.push(vec![
            Value::Str("last.rows_scanned".into()),
            Value::Int(s.rows_scanned as i64),
        ]);
        rows.push(vec![
            Value::Str("last.blocks_scanned".into()),
            Value::Int(s.blocks_scanned as i64),
        ]);
        rows.push(vec![
            Value::Str("last.block_path".into()),
            Value::Int(i64::from(s.block_path)),
        ]);
        rows.push(vec![
            Value::Str("last.summary_path".into()),
            Value::Int(i64::from(s.summary_path)),
        ]);
    }
    Response::Result {
        columns: vec!["property".into(), "value".into()],
        rows,
        stats: WireStats::default(),
    }
}

fn execute(sql: String, session: &mut Session, shared: &Arc<Shared>) -> Response {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".into(),
        };
    }
    let opts = ExecOptions {
        block_scan: session.block_scan,
    };
    let db = Arc::clone(&shared.db);
    let abandoned = Arc::new(AtomicBool::new(false));
    let job_abandoned = Arc::clone(&abandoned);
    let (tx, rx) = mpsc::sync_channel(1);
    let submitted = shared.pool.submit(Box::new(move || {
        if job_abandoned.load(Ordering::SeqCst) {
            return;
        }
        let started = Instant::now();
        let result = db.execute_with(&sql, &opts);
        let elapsed = started.elapsed();
        if !job_abandoned.load(Ordering::SeqCst) {
            let _ = tx.send((result, elapsed));
        }
    }));
    match submitted {
        Ok(()) => {}
        Err(SubmitError::Full) => {
            shared
                .metrics
                .queue_rejections
                .fetch_add(1, Ordering::Relaxed);
            return Response::Error {
                code: ErrorCode::Busy,
                message: "query queue is full".into(),
            };
        }
        Err(SubmitError::ShuttingDown) => {
            return Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "server is draining".into(),
            };
        }
    }
    let (result, elapsed) = match rx.recv_timeout(shared.config.query_timeout) {
        Ok(r) => r,
        Err(_) => {
            abandoned.store(true, Ordering::SeqCst);
            shared
                .metrics
                .query_timeouts
                .fetch_add(1, Ordering::Relaxed);
            return Response::Error {
                code: ErrorCode::Timeout,
                message: format!(
                    "query exceeded {} ms",
                    shared.config.query_timeout.as_millis()
                ),
            };
        }
    };
    session.statements += 1;
    match result {
        Err(e) => Response::Error {
            code: ErrorCode::Sql,
            message: e.to_string(),
        },
        Ok(rs) => {
            session.last_stats = Some(rs.stats);
            shared
                .metrics
                .record_summary(rs.stats.summary_hits, rs.stats.summary_misses);
            if rs.rows.len() > shared.config.max_result_rows {
                shared
                    .metrics
                    .results_too_large
                    .fetch_add(1, Ordering::Relaxed);
                return Response::Error {
                    code: ErrorCode::TooLarge,
                    message: format!(
                        "result has {} rows (limit {})",
                        rs.rows.len(),
                        shared.config.max_result_rows
                    ),
                };
            }
            let response = Response::Result {
                columns: rs.columns,
                rows: rs.rows,
                stats: WireStats {
                    rows_scanned: rs.stats.rows_scanned,
                    blocks_scanned: rs.stats.blocks_scanned,
                    block_path: rs.stats.block_path,
                    summary_path: rs.stats.summary_path,
                    summary_hits: rs.stats.summary_hits,
                    summary_misses: rs.stats.summary_misses,
                    summary_stale_rebuilds: rs.stats.summary_stale_rebuilds,
                    elapsed_micros: elapsed.as_micros() as u64,
                },
            };
            let encoded = response.encode();
            if encoded.len() > shared.config.max_result_bytes.min(MAX_FRAME) {
                shared
                    .metrics
                    .results_too_large
                    .fetch_add(1, Ordering::Relaxed);
                return Response::Error {
                    code: ErrorCode::TooLarge,
                    message: format!(
                        "result encodes to {} bytes (limit {})",
                        encoded.len(),
                        shared.config.max_result_bytes.min(MAX_FRAME)
                    ),
                };
            }
            response
        }
    }
}
