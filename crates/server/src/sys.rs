//! The virtual system catalog: `sys.*` tables served from live server
//! state.
//!
//! [`SysCatalog`] implements the engine's
//! [`SystemTableProvider`] hook. When a statement references a
//! `sys.`-prefixed table, the engine's resolver asks the provider for
//! it and the provider materializes a fresh snapshot of the relevant
//! server state — trace rings, live sessions, shard counters, WAL
//! stats, the refresh daemon's publish ledger — as an ordinary
//! columnar [`Table`]. From there the statement runs through the
//! normal execution path: block scans, selection bitmaps, Γ
//! aggregates, and the scoring UDFs all work over telemetry exactly
//! as they do over data.
//!
//! ## Snapshot consistency
//!
//! Each referenced `sys.*` table is snapshotted once, at resolve time,
//! from its source's own synchronization (ring slot mutexes, the live
//! list mutex, atomic counters). Two tables in one statement are two
//! independent snapshots — a query completing between them can appear
//! in `sys.queries` but not yet in `sys.spans`. Rows are immutable
//! once snapshotted; a statement never sees a trace record mutate
//! mid-scan.
//!
//! ## Typing
//!
//! String columns (`outcome`, `phase`, `sql`, …) are row-path only —
//! the block predicate compiler is numeric. Every enum-like string
//! column therefore has a numeric companion (`ok` for
//! `outcome = 'ok'`, `shard` for span scoping) so selective telemetry
//! queries still ride the block path; durations are `Float`
//! microseconds for the same reason.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};

use nlq_engine::SystemTableProvider;
use nlq_obs::{Phase, Span, TraceRecord};
use nlq_storage::{Column, DataType, Schema, Table, Value};

use crate::server::Shared;

/// The `sys.*` provider registered by [`crate::serve`]; holds the
/// server state weakly (the engine outliving the server must not keep
/// it alive).
pub(crate) struct SysCatalog {
    shared: Weak<Shared>,
}

impl SysCatalog {
    pub(crate) fn new(shared: Weak<Shared>) -> SysCatalog {
        SysCatalog { shared }
    }
}

/// Every table the catalog serves, as dotted lowercase names.
const TABLES: [&str; 7] = [
    "sys.queries",
    "sys.spans",
    "sys.sessions",
    "sys.shards",
    "sys.summaries",
    "sys.wal",
    "sys.metrics",
];

impl SystemTableProvider for SysCatalog {
    fn table_names(&self) -> Vec<&'static str> {
        TABLES.to_vec()
    }

    fn sys_table(&self, name: &str) -> Option<Table> {
        let shared = self.shared.upgrade()?;
        match name {
            "sys.queries" => Some(queries(&shared)),
            "sys.spans" => Some(spans(&shared)),
            "sys.sessions" => Some(sessions(&shared)),
            "sys.shards" => Some(shards(&shared)),
            "sys.summaries" => Some(summaries(&shared)),
            "sys.wal" => Some(wal(&shared)),
            "sys.metrics" => Some(metrics(&shared)),
            _ => None,
        }
    }
}

/// Builds a single-partition table from a column spec and rows.
/// System snapshots are small (ring-bounded), so one partition keeps
/// the scan layout trivial.
fn build(cols: &[(&str, DataType)], rows: Vec<Vec<Value>>) -> Table {
    let schema = Schema::new(cols.iter().map(|(n, t)| Column::new(*n, *t)).collect());
    let mut table = Table::new(schema, 1);
    table
        .insert_rows(rows)
        .expect("system snapshot rows match their schema");
    table
}

fn int(v: u64) -> Value {
    Value::Int(v as i64)
}

fn micros(nanos: u64) -> Value {
    Value::Float(nanos as f64 / 1_000.0)
}

/// Sum of span durations for one phase, as a µs float.
fn phase_micros(record: &TraceRecord, phase: Phase) -> Value {
    micros(
        record
            .spans
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.dur_nanos)
            .sum(),
    )
}

/// `sys.queries`: one row per retained trace-ring record, newest ring
/// content only (the ring's capacity is the retention bound).
fn queries(shared: &Arc<Shared>) -> Table {
    let cols = [
        ("query_id", DataType::Int),
        ("trace_id", DataType::Int),
        ("session", DataType::Int),
        ("seq", DataType::Int),
        ("peer", DataType::Str),
        ("shards", DataType::Int),
        ("sql", DataType::Str),
        ("outcome", DataType::Str),
        ("ok", DataType::Int),
        ("slow", DataType::Int),
        ("rows", DataType::Int),
        ("bytes", DataType::Int),
        ("wal_bytes", DataType::Int),
        ("fsyncs", DataType::Int),
        ("cpu_us", DataType::Float),
        ("total_us", DataType::Float),
        ("parse_us", DataType::Float),
        ("plan_us", DataType::Float),
        ("summary_us", DataType::Float),
        ("scan_us", DataType::Float),
        ("scatter_us", DataType::Float),
        ("gather_us", DataType::Float),
        ("finalize_us", DataType::Float),
        ("encode_us", DataType::Float),
        ("stream_us", DataType::Float),
        ("wal_us", DataType::Float),
        ("detail", DataType::Str),
    ];
    let rows = shared
        .traces
        .page(0, usize::MAX)
        .into_iter()
        .map(|r| {
            vec![
                int(r.query_id),
                int(r.id),
                int(r.session),
                int(r.seq),
                Value::Str(r.peer.clone()),
                int(u64::from(r.shards)),
                Value::Str(r.sql.clone()),
                Value::Str(r.outcome.name().to_owned()),
                Value::Int(i64::from(r.outcome == nlq_obs::Outcome::Ok)),
                Value::Int(i64::from(r.slow)),
                int(r.rows()),
                int(r.bytes()),
                int(r.wal_bytes),
                int(r.fsyncs),
                micros(r.cpu_nanos),
                micros(r.total_nanos),
                phase_micros(&r, Phase::Parse),
                phase_micros(&r, Phase::Plan),
                phase_micros(&r, Phase::SummaryLookup),
                phase_micros(&r, Phase::Scan),
                // Per-shard scatter spans overlap in wall time, so this
                // is aggregate shard-side wall, not elapsed scatter.
                phase_micros(&r, Phase::Scatter),
                phase_micros(&r, Phase::Gather),
                phase_micros(&r, Phase::Finalize),
                phase_micros(&r, Phase::Encode),
                phase_micros(&r, Phase::Stream),
                phase_micros(&r, Phase::Wal),
                Value::Str(r.detail),
            ]
        })
        .collect();
    build(&cols, rows)
}

/// `sys.spans`: the flattened span tree of every retained trace,
/// keyed by `query_id` — per-shard scatter spans carry their shard
/// index and CPU time.
fn spans(shared: &Arc<Shared>) -> Table {
    let cols = [
        ("query_id", DataType::Int),
        ("trace_id", DataType::Int),
        ("span", DataType::Int),
        ("phase", DataType::Str),
        ("shard", DataType::Int),
        ("start_us", DataType::Float),
        ("dur_us", DataType::Float),
        ("cpu_us", DataType::Float),
        ("rows", DataType::Int),
        ("bytes", DataType::Int),
        ("blocks", DataType::Int),
    ];
    let mut rows = Vec::new();
    for r in shared.traces.page(0, usize::MAX) {
        for (i, s) in r.spans.iter().enumerate() {
            rows.push(span_row(&r, i, s));
        }
    }
    build(&cols, rows)
}

fn span_row(r: &TraceRecord, idx: usize, s: &Span) -> Vec<Value> {
    vec![
        int(r.query_id),
        int(r.id),
        int(idx as u64),
        Value::Str(s.phase.name().to_owned()),
        Value::Int(s.shard),
        micros(s.start_nanos),
        micros(s.dur_nanos),
        micros(s.cpu_nanos),
        int(s.rows),
        int(s.bytes),
        int(s.blocks),
    ]
}

/// `sys.sessions`: the currently connected sessions.
fn sessions(shared: &Arc<Shared>) -> Table {
    let cols = [
        ("session", DataType::Int),
        ("peer", DataType::Str),
        ("statements", DataType::Int),
    ];
    let rows = shared
        .live
        .lock()
        .expect("live list")
        .iter()
        .map(|s| {
            vec![
                int(s.id),
                Value::Str(s.peer.clone()),
                int(s.statements.load(Ordering::Relaxed)),
            ]
        })
        .collect();
    build(&cols, rows)
}

/// `sys.shards`: per-shard activity counters (empty on a single-node
/// engine, which reports no per-shard metrics).
fn shards(shared: &Arc<Shared>) -> Table {
    let cols = [
        ("shard", DataType::Int),
        ("queries", DataType::Int),
        ("rows_scanned", DataType::Int),
        ("queue_depth", DataType::Int),
        ("busy_us", DataType::Float),
    ];
    let rows = shared
        .db
        .shard_metrics()
        .into_iter()
        .map(|s| {
            vec![
                int(s.shard as u64),
                int(s.queries),
                int(s.rows_scanned),
                int(s.queue_depth),
                micros(s.busy_nanos),
            ]
        })
        .collect();
    build(&cols, rows)
}

/// `sys.summaries`: every registered Γ summary's live fold counters
/// joined against the refresh daemon's publish ledger — `lag_rows` is
/// the per-summary refresh lag (`NULL` for summaries no binding
/// maintains, e.g. grouped ones, and when no daemon runs).
fn summaries(shared: &Arc<Shared>) -> Table {
    let cols = [
        ("summary", DataType::Str),
        ("tbl", DataType::Str),
        ("d", DataType::Int),
        ("grouped", DataType::Int),
        ("fresh", DataType::Int),
        ("version", DataType::Int),
        ("rows_folded", DataType::Int),
        ("published_rows", DataType::Int),
        ("lag_rows", DataType::Int),
        ("last_refit_us", DataType::Float),
        ("refit_query_id", DataType::Int),
    ];
    let published: HashMap<String, nlq_feature::PublishState> = shared
        .daemon
        .lock()
        .expect("daemon")
        .as_ref()
        .map(|d| d.progress().snapshot().into_iter().collect())
        .unwrap_or_default();
    let rows = shared
        .db
        .summary_refresh_states()
        .into_iter()
        .map(|st| {
            let publish = published.get(&st.name.to_ascii_lowercase());
            let (published_rows, lag, refit_us, refit_id) = match publish {
                Some(p) => (
                    int(p.rows_folded),
                    int(st.rows_folded.saturating_sub(p.rows_folded)),
                    micros(p.last_refit_nanos),
                    int(p.refit_query_id),
                ),
                None => (Value::Null, Value::Null, Value::Null, Value::Null),
            };
            vec![
                Value::Str(st.name),
                Value::Str(st.table),
                int(st.d as u64),
                Value::Int(i64::from(st.grouped)),
                Value::Int(i64::from(st.fresh)),
                int(st.version),
                int(st.rows_folded),
                published_rows,
                lag,
                refit_us,
                refit_id,
            ]
        })
        .collect();
    build(&cols, rows)
}

/// `sys.wal`: durability gauges as `(metric, value)` rows — empty for
/// a volatile engine, same shape as the `STATUS` wal rows.
fn wal(shared: &Arc<Shared>) -> Table {
    build(
        &[("metric", DataType::Str), ("value", DataType::Int)],
        crate::metrics::render_wal_rows(
            shared.db.wal_stats(),
            shared.db.wal_log_bytes(),
            shared.db.recovery_info(),
        ),
    )
}

/// `sys.metrics`: every server and engine counter as `(metric, value)`
/// rows — the `METRICS` result set, queryable.
fn metrics(shared: &Arc<Shared>) -> Table {
    shared.sync_derived_metrics();
    let mut rows = shared
        .metrics
        .render(shared.pool.queue_depth(), shared.pool.workers_busy());
    rows.extend(crate::metrics::render_engine_rows(
        shared.db.shard_count(),
        &shared.db.shard_metrics(),
        shared.db.plan_cache_stats(),
    ));
    build(&[("metric", DataType::Str), ("value", DataType::Int)], rows)
}
