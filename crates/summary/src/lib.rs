#![warn(missing_docs)]

//! Materialized Γ summary store: catalog-registered, incrementally
//! maintained `(n, L, Q)` sufficient statistics.
//!
//! The paper's central observation is that correlation, linear
//! regression, PCA, and clustering all reduce to the additive
//! statistics `n, L, Q` (Γ). Additivity means Γ never has to be
//! recomputed from scratch: a [`SummaryStore`] keeps one materialized
//! [`Nlq`] state per registered summary (optionally keyed by one
//! GROUP BY column) and maintains it under DML:
//!
//! * `CREATE SUMMARY` computes the initial state with the existing
//!   block scan, one partial aggregate-UDF state per partition merged
//!   through the UDF **partial-merge phase** (§3.4 step 3);
//! * `INSERT` folds the new rows into a *delta* state built with the
//!   same UDF row-aggregation machinery and merges it in — O(batch)
//!   work, no rescan;
//! * `DELETE` *subtracts* the removed batch from global summaries
//!   declared `NO MINMAX` (Γ additivity runs both ways; min/max are
//!   the one non-invertible part, so summaries that keep them mark
//!   **stale** instead and rebuild on the next read);
//! * `UPDATE` marks the summary **stale** (assignments may rewrite
//!   arbitrary rows and columns);
//! * `DROP TABLE` drops the table's summaries.
//!
//! The state machine per summary is `fresh → stale → (rebuilt) fresh`.
//! Readers (the engine's planner rewrite) answer eligible statistical
//! queries from a fresh summary in O(d²) with no scan at all.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use nlq_linalg::{Matrix, Vector};
use nlq_models::{MatrixShape, Nlq};
use nlq_storage::{DataType, Row, Schema, Table, Value};
use nlq_udf::pack::unpack_nlq;
use nlq_udf::{AggregateState, AggregateUdf, BatchArg, NlqUdf, ParamStyle};

/// Errors raised by the summary store.
#[derive(Debug)]
pub enum SummaryError {
    /// A summary with this name already exists.
    DuplicateSummary(String),
    /// No summary with this name exists.
    UnknownSummary(String),
    /// A summarized column does not exist in the table.
    UnknownColumn {
        /// The missing column.
        column: String,
        /// The table it was looked up in.
        table: String,
    },
    /// A summarized column is not a float column.
    NotFloat {
        /// The offending column.
        column: String,
    },
    /// A summary needs at least one column.
    NoColumns,
    /// Error from the storage layer while scanning.
    Storage(nlq_storage::StorageError),
    /// Error from the UDF machinery while building a state.
    Udf(nlq_udf::UdfError),
    /// Error from the model layer while assembling statistics.
    Model(nlq_models::ModelError),
    /// A rebuild was cooperatively cancelled mid-scan. The entry's
    /// maintained state is untouched (it stays stale).
    Cancelled {
        /// Rows scanned before the cancellation took effect.
        rows_scanned: u64,
    },
}

impl fmt::Display for SummaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummaryError::DuplicateSummary(n) => write!(f, "summary '{n}' already exists"),
            SummaryError::UnknownSummary(n) => write!(f, "unknown summary '{n}'"),
            SummaryError::UnknownColumn { column, table } => {
                write!(f, "unknown column '{column}' in table '{table}'")
            }
            SummaryError::NotFloat { column } => {
                write!(f, "summary column '{column}' must be a float column")
            }
            SummaryError::NoColumns => write!(f, "a summary needs at least one column"),
            SummaryError::Storage(e) => write!(f, "storage error: {e}"),
            SummaryError::Udf(e) => write!(f, "udf error: {e}"),
            SummaryError::Model(e) => write!(f, "model error: {e}"),
            SummaryError::Cancelled { rows_scanned } => {
                write!(f, "summary build cancelled after {rows_scanned} rows")
            }
        }
    }
}

impl std::error::Error for SummaryError {}

impl From<nlq_storage::StorageError> for SummaryError {
    fn from(e: nlq_storage::StorageError) -> Self {
        SummaryError::Storage(e)
    }
}

impl From<nlq_udf::UdfError> for SummaryError {
    fn from(e: nlq_udf::UdfError) -> Self {
        SummaryError::Udf(e)
    }
}

impl From<nlq_models::ModelError> for SummaryError {
    fn from(e: nlq_models::ModelError) -> Self {
        SummaryError::Model(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SummaryError>;

/// Returns [`SummaryError::Cancelled`] when a build's cancel token
/// has flipped; a relaxed atomic load keeps the per-row/per-block
/// check effectively free.
fn check_cancelled(cancel: Option<&AtomicBool>, rows_scanned: u64) -> Result<()> {
    if let Some(c) = cancel {
        if c.load(Ordering::Relaxed) {
            return Err(SummaryError::Cancelled { rows_scanned });
        }
    }
    Ok(())
}

/// The definition of one registered summary (the DDL part of
/// `CREATE SUMMARY s ON t (X1, ..., Xd) [SHAPE ...] [GROUP BY g]`).
#[derive(Debug, Clone)]
pub struct SummaryDef {
    /// Summary name (stored lowercase; matching is case-insensitive).
    pub name: String,
    /// Base table name (lowercase).
    pub table: String,
    /// Summarized float columns, in declaration order.
    pub columns: Vec<String>,
    /// Shape of the maintained `Q` matrix.
    pub shape: MatrixShape,
    /// Whether the summary answers per-dimension min/max queries
    /// (`false` for `NO MINMAX` summaries). Min/max are not invertible
    /// from sums, so forgoing them buys exact DELETE subtraction: a
    /// `NO MINMAX` global summary stays fresh under DELETE.
    pub minmax: bool,
    /// Optional single GROUP BY key column.
    pub group_by: Option<String>,
}

impl SummaryDef {
    /// Dimensionality of the summarized statistics.
    pub fn d(&self) -> usize {
        self.columns.len()
    }

    /// Position of `column` among the summarized columns
    /// (case-insensitive), if present.
    pub fn dim_of(&self, column: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(column))
    }

    /// Resolves the summarized columns (and the group key, if any)
    /// against a table schema, validating existence and float type.
    fn resolve(&self, schema: &Schema) -> Result<(Vec<usize>, Option<usize>)> {
        if self.columns.is_empty() {
            return Err(SummaryError::NoColumns);
        }
        let mut cols = Vec::with_capacity(self.columns.len());
        for c in &self.columns {
            let idx = schema
                .index_of(c)
                .ok_or_else(|| SummaryError::UnknownColumn {
                    column: c.clone(),
                    table: self.table.clone(),
                })?;
            if schema.column(idx).ty != DataType::Float {
                return Err(SummaryError::NotFloat { column: c.clone() });
            }
            cols.push(idx);
        }
        let group = match &self.group_by {
            None => None,
            Some(g) => Some(
                schema
                    .index_of(g)
                    .ok_or_else(|| SummaryError::UnknownColumn {
                        column: g.clone(),
                        table: self.table.clone(),
                    })?,
            ),
        };
        Ok((cols, group))
    }
}

/// The materialized statistics of one summary.
#[derive(Debug, Clone)]
pub enum SummaryData {
    /// One global Γ state (no GROUP BY).
    Global(Nlq),
    /// One Γ state per group-key value. Keys follow SQL grouping
    /// semantics (NULLs form one group); the list is small in practice
    /// so lookup is a linear scan with [`Value::group_eq`].
    Grouped(Vec<(Value, Nlq)>),
}

/// A point-in-time copy of a summary's maintained state, safe to use
/// outside the store's locks.
#[derive(Debug, Clone)]
pub struct SummarySnapshot {
    /// The summary definition.
    pub def: SummaryDef,
    /// The materialized statistics.
    pub data: SummaryData,
    /// Rows the builder dropped because a summarized coordinate was
    /// NULL (the `nlq` UDF's row-skip rule). Non-zero means the
    /// summary's `n`/`L`/`Q` cover a strict subset of the table's
    /// rows, which restricts which plain aggregates it may answer.
    pub null_rows_skipped: u64,
    /// Whether the state reflects the current table contents.
    pub fresh: bool,
}

/// Mutable maintained state behind each entry's lock.
#[derive(Debug)]
struct SummaryContent {
    data: SummaryData,
    null_rows_skipped: u64,
    fresh: bool,
}

/// One registered summary: immutable definition plus lock-protected
/// maintained state.
#[derive(Debug)]
pub struct SummaryEntry {
    def: SummaryDef,
    content: RwLock<SummaryContent>,
    /// Monotonic change counter: bumped on every state transition
    /// (fold, subtraction, stale edge, rebuild). Refresh daemons poll
    /// it to detect that the maintained Γ moved without holding locks.
    version: AtomicU64,
    /// Cumulative rows folded in or subtracted out since creation —
    /// the delta-volume signal behind threshold-triggered refreshes.
    rows_folded: AtomicU64,
}

impl SummaryEntry {
    /// The summary definition.
    pub fn def(&self) -> &SummaryDef {
        &self.def
    }

    /// Whether the maintained state is fresh.
    pub fn is_fresh(&self) -> bool {
        self.content.read().expect("summary lock").fresh
    }

    /// Monotonic change counter (see the field docs).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Cumulative rows folded in or subtracted out since creation.
    pub fn rows_folded(&self) -> u64 {
        self.rows_folded.load(Ordering::Acquire)
    }

    /// Copies the maintained state out of the lock.
    pub fn snapshot(&self) -> SummarySnapshot {
        let c = self.content.read().expect("summary lock");
        SummarySnapshot {
            def: self.def.clone(),
            data: c.data.clone(),
            null_rows_skipped: c.null_rows_skipped,
            fresh: c.fresh,
        }
    }

    /// Recomputes the state from the table (the stale → fresh edge),
    /// returning the number of rows scanned.
    pub fn rebuild(&self, table: &Table) -> Result<u64> {
        self.rebuild_with_cancel(table, None)
    }

    /// [`SummaryEntry::rebuild`] with a cooperative cancellation
    /// token, checked per block (global builds) or per row (grouped
    /// builds). A cancelled rebuild returns
    /// [`SummaryError::Cancelled`] before the maintained state is
    /// touched — the entry stays stale for the next reader. On success
    /// the returned row count lets callers account the hidden scan
    /// (e.g. into `EXPLAIN ANALYZE` statistics).
    pub fn rebuild_with_cancel(&self, table: &Table, cancel: Option<&AtomicBool>) -> Result<u64> {
        let (content, scanned) = build_content(&self.def, table, cancel)?;
        *self.content.write().expect("summary lock") = content;
        self.version.fetch_add(1, Ordering::AcqRel);
        Ok(scanned)
    }

    /// Marks the state stale (the fresh → stale edge).
    pub fn mark_stale(&self) {
        self.content.write().expect("summary lock").fresh = false;
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Folds a batch of freshly inserted rows into the maintained
    /// state: builds a delta state with the `nlq` UDF machinery and
    /// merges it in. A stale summary stays stale (the delta would be
    /// merged into an already-wrong base); any error also degrades to
    /// stale rather than failing the caller's INSERT.
    fn fold_rows(&self, schema: &Schema, rows: &[Row]) {
        let mut c = self.content.write().expect("summary lock");
        if !c.fresh {
            return;
        }
        match fold_delta(&self.def, schema, rows, &mut c) {
            Ok(()) => {
                self.rows_folded
                    .fetch_add(rows.len() as u64, Ordering::AcqRel);
            }
            Err(_) => c.fresh = false,
        }
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Folds a batch of deleted rows *out* of the maintained state by
    /// Γ subtraction. Only a fresh, global, `NO MINMAX` summary
    /// qualifies: min/max are not invertible from sums, and a grouped
    /// state cannot tell a drained group (which a rebuild would drop)
    /// from one that only ever held NULL-coordinate rows. Everything
    /// else marks stale, as before.
    fn fold_deleted(&self, schema: &Schema, rows: &[Row]) {
        let mut c = self.content.write().expect("summary lock");
        if !c.fresh {
            return;
        }
        if self.def.minmax || self.def.group_by.is_some() {
            c.fresh = false;
            self.version.fetch_add(1, Ordering::AcqRel);
            return;
        }
        match subtract_delta(&self.def, schema, rows, &mut c) {
            Ok(()) => {
                self.rows_folded
                    .fetch_add(rows.len() as u64, Ordering::AcqRel);
            }
            Err(_) => c.fresh = false,
        }
        self.version.fetch_add(1, Ordering::AcqRel);
    }
}

/// The catalog of registered summaries, keyed by lowercase name.
///
/// Interior mutability mirrors the engine's table catalog: readers
/// executing queries hold `&SummaryStore` yet may trigger a
/// stale-summary rebuild.
#[derive(Debug, Default)]
pub struct SummaryStore {
    map: RwLock<HashMap<String, Arc<SummaryEntry>>>,
}

impl SummaryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SummaryStore::default()
    }

    /// Registers a summary and computes its initial state from the
    /// table via the block scan + UDF merge phase.
    pub fn create(&self, def: SummaryDef, table: &Table) -> Result<()> {
        let key = def.name.to_ascii_lowercase();
        // Validate and build before taking the write lock; the build
        // is the expensive part.
        let (content, _scanned) = build_content(&def, table, None)?;
        let mut map = self.map.write().expect("summary store lock");
        if map.contains_key(&key) {
            return Err(SummaryError::DuplicateSummary(def.name));
        }
        map.insert(
            key,
            Arc::new(SummaryEntry {
                def,
                content: RwLock::new(content),
                version: AtomicU64::new(1),
                rows_folded: AtomicU64::new(0),
            }),
        );
        Ok(())
    }

    /// Looks a summary up by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<Arc<SummaryEntry>> {
        self.map
            .read()
            .expect("summary store lock")
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    /// Removes a summary by name.
    pub fn remove(&self, name: &str) -> Result<()> {
        self.map
            .write()
            .expect("summary store lock")
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| SummaryError::UnknownSummary(name.to_owned()))
    }

    /// All summaries registered on `table`, in name order (name order
    /// keeps planner choices deterministic).
    pub fn for_table(&self, table: &str) -> Vec<Arc<SummaryEntry>> {
        let table = table.to_ascii_lowercase();
        let map = self.map.read().expect("summary store lock");
        let mut v: Vec<_> = map
            .values()
            .filter(|e| e.def.table == table)
            .cloned()
            .collect();
        v.sort_by(|a, b| a.def.name.cmp(&b.def.name));
        v
    }

    /// Whether any summary is registered on `table`.
    pub fn has_any_for_table(&self, table: &str) -> bool {
        let table = table.to_ascii_lowercase();
        self.map
            .read()
            .expect("summary store lock")
            .values()
            .any(|e| e.def.table == table)
    }

    /// Marks every summary on `table` stale (UPDATE/replace hook).
    pub fn mark_stale_for_table(&self, table: &str) {
        for e in self.for_table(table) {
            e.mark_stale();
        }
    }

    /// Subtracts a deleted batch from every summary on `table` that
    /// can absorb it exactly (fresh, global, `NO MINMAX`); the rest
    /// mark stale (DELETE hook). Never fails.
    pub fn fold_deleted_rows(&self, table: &str, schema: &Schema, rows: &[Row]) {
        for e in self.for_table(table) {
            e.fold_deleted(schema, rows);
        }
    }

    /// Drops every summary on `table` (DROP TABLE hook).
    pub fn drop_for_table(&self, table: &str) {
        let table = table.to_ascii_lowercase();
        self.map
            .write()
            .expect("summary store lock")
            .retain(|_, e| e.def.table != table);
    }

    /// Folds freshly inserted rows into every fresh summary on
    /// `table` (INSERT hook). Never fails: a summary that cannot
    /// absorb the delta is marked stale instead.
    pub fn fold_rows(&self, table: &str, schema: &Schema, rows: &[Row]) {
        for e in self.for_table(table) {
            e.fold_rows(schema, rows);
        }
    }

    /// Every registered summary entry, name-sorted (refresh daemons
    /// poll this to watch version/rows-folded counters move).
    pub fn entries(&self) -> Vec<Arc<SummaryEntry>> {
        let map = self.map.read().expect("summary store lock");
        let mut v: Vec<_> = map.values().cloned().collect();
        v.sort_by(|a, b| a.def.name.cmp(&b.def.name));
        v
    }

    /// `(name, table, fresh)` for every registered summary, name-sorted.
    pub fn list(&self) -> Vec<(String, String, bool)> {
        let map = self.map.read().expect("summary store lock");
        let mut v: Vec<_> = map
            .values()
            .map(|e| (e.def.name.clone(), e.def.table.clone(), e.is_fresh()))
            .collect();
        v.sort();
        v
    }

    /// Number of registered summaries.
    pub fn len(&self) -> usize {
        self.map.read().expect("summary store lock").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Whether a summary maintaining `have` can answer a query asking for
/// `want`: full covers everything, triangular covers triangular and
/// diagonal, diagonal only itself.
pub fn shape_covers(have: MatrixShape, want: MatrixShape) -> bool {
    match have {
        MatrixShape::Full => true,
        MatrixShape::Triangular => want != MatrixShape::Full,
        MatrixShape::Diagonal => want == MatrixShape::Diagonal,
    }
}

/// Projects a maintained Γ state onto the query's dimensions `dims`
/// (indices into the summary's column list, in query order), re-packed
/// in the query's `shape`. Valid only under [`shape_covers`] and, when
/// `dims` is a strict subset, only if the summary skipped no NULL rows
/// (the caller checks both).
pub fn project_nlq(nlq: &Nlq, dims: &[usize], shape: MatrixShape) -> Result<Nlq> {
    let d = dims.len();
    let q_src = nlq.q_full();
    let mut l = Vector::zeros(d);
    let mut q = Matrix::zeros(d, d);
    let mut min = vec![0.0; d];
    let mut max = vec![0.0; d];
    for (a, &sa) in dims.iter().enumerate() {
        l[a] = nlq.l()[sa];
        min[a] = nlq.min()[sa];
        max[a] = nlq.max()[sa];
        for (b, &sb) in dims.iter().enumerate() {
            let keep = match shape {
                MatrixShape::Diagonal => a == b,
                MatrixShape::Triangular => b <= a,
                MatrixShape::Full => true,
            };
            if keep {
                q[(a, b)] = q_src[(sa, sb)];
            }
        }
    }
    Ok(Nlq::from_parts(shape, nlq.n(), l, q, min, max)?)
}

/// Builds the initial (or rebuilt) state for a definition, returning
/// it with the number of rows scanned.
fn build_content(
    def: &SummaryDef,
    table: &Table,
    cancel: Option<&AtomicBool>,
) -> Result<(SummaryContent, u64)> {
    let (cols, group) = def.resolve(table.schema())?;
    let (mut content, scanned) = match group {
        None => build_global(def, table, &cols, cancel)?,
        Some(g) => build_grouped(def, table, &cols, g, cancel)?,
    };
    // A `NO MINMAX` summary stores no bounds: the −∞/+∞ sentinels the
    // pure-SQL path also uses. With no bounds to maintain, the state
    // is exactly subtractable and DELETE never makes it stale.
    if !def.minmax {
        match &mut content.data {
            SummaryData::Global(nlq) => *nlq = strip_bounds(nlq)?,
            SummaryData::Grouped(groups) => {
                for (_, nlq) in groups {
                    *nlq = strip_bounds(nlq)?;
                }
            }
        }
    }
    Ok((content, scanned))
}

/// Replaces a state's min/max with the "not computed" sentinels.
fn strip_bounds(nlq: &Nlq) -> Result<Nlq> {
    let d = nlq.d();
    Ok(Nlq::from_parts(
        nlq.shape(),
        nlq.n(),
        nlq.l().clone(),
        nlq.q_raw().clone(),
        vec![f64::NEG_INFINITY; d],
        vec![f64::INFINITY; d],
    )?)
}

/// Subtracts the Γ of a deleted batch from a fresh global state (the
/// `NO MINMAX` DELETE fast path). Deleted rows with a NULL coordinate
/// were never folded in, so they only decrement the skip counter.
fn subtract_delta(
    def: &SummaryDef,
    schema: &Schema,
    rows: &[Row],
    content: &mut SummaryContent,
) -> Result<()> {
    let (cols, _) = def.resolve(schema)?;
    let d = cols.len();
    let mut delta = Nlq::new(d, def.shape);
    let mut coords = vec![0.0f64; d];
    let mut skipped = 0u64;
    for row in rows {
        let mut any_null = false;
        for (k, &c) in cols.iter().enumerate() {
            match row[c].as_f64() {
                Some(v) => coords[k] = v,
                None => {
                    any_null = true;
                    break;
                }
            }
        }
        if any_null {
            skipped += 1;
        } else {
            delta.update(&coords);
        }
    }
    let SummaryData::Global(nlq) = &mut content.data else {
        return Err(SummaryError::Udf(nlq_udf::UdfError::InvalidArgument {
            udf: "nlq_list".into(),
            message: "DELETE subtraction requires a global state".into(),
        }));
    };
    nlq.subtract(&delta);
    content.null_rows_skipped = content.null_rows_skipped.saturating_sub(skipped);
    Ok(())
}

/// Ungrouped build: the existing vectorized block scan feeds one
/// partial `nlq_list` UDF state per partition; partials are combined
/// with the UDF merge phase and unpacked into the stored [`Nlq`].
fn build_global(
    def: &SummaryDef,
    table: &Table,
    cols: &[usize],
    cancel: Option<&AtomicBool>,
) -> Result<(SummaryContent, u64)> {
    let d = cols.len();
    let udf = NlqUdf::new(ParamStyle::List);
    let mut args: Vec<BatchArg> = Vec::with_capacity(d + 2);
    args.push(BatchArg::Const(Value::Int(d as i64)));
    args.push(BatchArg::Const(Value::from(def.shape.name())));
    args.extend((0..d).map(BatchArg::Col));

    let mut master = udf.init();
    let mut skipped = 0u64;
    let mut scanned = 0u64;
    for p in 0..table.partition_count() {
        let mut state = udf.init();
        let mut blocks = table.scan_partition_blocks(p, cols)?;
        while let Some(block) = blocks.next_block() {
            check_cancelled(cancel, scanned)?;
            let block = block?;
            scanned += block.len() as u64;
            state.accumulate_batch(&block, &args, None)?;
            skipped += rows_with_null(&block, d);
        }
        master.merge(state.as_ref())?;
    }
    let nlq = match master.finalize()? {
        // NULL: no row survived; keep an explicit empty state.
        Value::Null => Nlq::new(d, def.shape),
        Value::Str(packed) => unpack_nlq(&packed)?,
        other => {
            return Err(SummaryError::Udf(nlq_udf::UdfError::InvalidArgument {
                udf: "nlq_list".into(),
                message: format!("unexpected finalize result {other:?}"),
            }))
        }
    };
    Ok((
        SummaryContent {
            data: SummaryData::Global(nlq),
            null_rows_skipped: skipped,
            fresh: true,
        },
        scanned,
    ))
}

/// Rows of `block` with at least one NULL among its first `d` columns
/// — exactly the rows the `nlq` UDF skips. Computed by AND-ing the
/// validity bitmaps and popcounting the result.
fn rows_with_null(block: &nlq_storage::ColumnBlock, d: usize) -> u64 {
    let n = block.len();
    let mut valid = vec![!0u64; nlq_storage::bitmap_words(n)];
    nlq_storage::bitmap_mask_tail(&mut valid, n);
    let mut any = false;
    for c in 0..d {
        if let Some(validity) = block.column(c).validity() {
            any = true;
            for (w, v) in valid.iter_mut().zip(validity) {
                *w &= v;
            }
        }
    }
    if !any {
        return 0;
    }
    (n - nlq_storage::bitmap_count_ones(&valid)) as u64
}

/// Grouped build: a row scan partitions the statistics by the group
/// key (SQL semantics: NULL keys form one group); rows with a NULL
/// coordinate are skipped but still establish their group, matching
/// `SELECT g, nlq_list(...) FROM t GROUP BY g`.
fn build_grouped(
    def: &SummaryDef,
    table: &Table,
    cols: &[usize],
    g: usize,
    cancel: Option<&AtomicBool>,
) -> Result<(SummaryContent, u64)> {
    let d = cols.len();
    let mut groups: Vec<(Value, Nlq)> = Vec::new();
    let mut skipped = 0u64;
    let mut total = 0u64;
    let mut coords = vec![0.0f64; d];
    for (scanned, row) in table.scan_all().enumerate() {
        check_cancelled(cancel, scanned as u64)?;
        total += 1;
        let row = row?;
        let slot = group_slot(&mut groups, &row[g], d, def.shape);
        let mut any_null = false;
        for (k, &c) in cols.iter().enumerate() {
            match row[c].as_f64() {
                Some(v) => coords[k] = v,
                None => {
                    any_null = true;
                    break;
                }
            }
        }
        if any_null {
            skipped += 1;
        } else {
            groups[slot].1.update(&coords);
        }
    }
    Ok((
        SummaryContent {
            data: SummaryData::Grouped(groups),
            null_rows_skipped: skipped,
            fresh: true,
        },
        total,
    ))
}

/// Finds (or creates) the group entry for `key`.
fn group_slot(groups: &mut Vec<(Value, Nlq)>, key: &Value, d: usize, shape: MatrixShape) -> usize {
    if let Some(i) = groups.iter().position(|(k, _)| k.group_eq(key)) {
        return i;
    }
    groups.push((key.clone(), Nlq::new(d, shape)));
    groups.len() - 1
}

/// Folds an INSERT batch into fresh content: a delta state is built
/// per group with the `nlq_list` UDF row-aggregation phase, finalized,
/// unpacked, and merged into the maintained Γ (additivity of n, L, Q).
fn fold_delta(
    def: &SummaryDef,
    schema: &Schema,
    rows: &[Row],
    content: &mut SummaryContent,
) -> Result<()> {
    let (cols, group) = def.resolve(schema)?;
    let d = cols.len();
    let udf = NlqUdf::new(ParamStyle::List);

    // One delta UDF state per group key (a single anonymous group for
    // the ungrouped case).
    let mut deltas: Vec<(Value, Box<dyn AggregateState>)> = Vec::new();
    let mut args: Vec<Value> = Vec::with_capacity(d + 2);
    for row in rows {
        let key = match group {
            Some(g) => row[g].clone(),
            None => Value::Null,
        };
        let slot = match deltas.iter().position(|(k, _)| k.group_eq(&key)) {
            Some(i) => i,
            None => {
                deltas.push((key, udf.init()));
                deltas.len() - 1
            }
        };
        args.clear();
        args.push(Value::Int(d as i64));
        args.push(Value::from(def.shape.name()));
        let mut any_null = false;
        for &c in &cols {
            if row[c].is_null() {
                any_null = true;
            }
            args.push(match row[c].as_f64() {
                Some(v) => Value::Float(v),
                None => Value::Null,
            });
        }
        if any_null {
            content.null_rows_skipped += 1;
        }
        // The UDF state applies the same NULL-row skip itself; feeding
        // it every row keeps this path byte-identical to a real
        // `nlq_list` aggregation over the batch.
        deltas[slot].1.accumulate(&args)?;
    }

    for (key, state) in deltas {
        let delta = match state.finalize()? {
            Value::Null => continue, // all rows of this group were skipped
            Value::Str(packed) => unpack_nlq(&packed)?,
            other => {
                return Err(SummaryError::Udf(nlq_udf::UdfError::InvalidArgument {
                    udf: "nlq_list".into(),
                    message: format!("unexpected finalize result {other:?}"),
                }))
            }
        };
        match &mut content.data {
            SummaryData::Global(nlq) => nlq.merge(&delta),
            SummaryData::Grouped(groups) => {
                let slot = group_slot(groups, &key, d, def.shape);
                groups[slot].1.merge(&delta);
            }
        }
    }

    // Skipped rows must still establish their group, as the grouped
    // build does.
    if let (SummaryData::Grouped(groups), Some(g)) = (&mut content.data, group) {
        for row in rows {
            group_slot(groups, &row[g], d, def.shape);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def(name: &str, cols: &[&str], shape: MatrixShape, group: Option<&str>) -> SummaryDef {
        SummaryDef {
            name: name.into(),
            table: "x".into(),
            columns: cols.iter().map(|c| (*c).to_owned()).collect(),
            shape,
            minmax: true,
            group_by: group.map(str::to_owned),
        }
    }

    fn points_table(rows: &[Vec<f64>], partitions: usize) -> Table {
        let d = rows[0].len();
        let mut t = Table::new(Schema::points(d, false), partitions);
        for (i, r) in rows.iter().enumerate() {
            let mut row = vec![Value::Int(i as i64 + 1)];
            row.extend(r.iter().map(|&v| Value::Float(v)));
            t.insert(row).unwrap();
        }
        t
    }

    #[test]
    fn create_matches_direct_scan() {
        let rows: Vec<Vec<f64>> = (0..97)
            .map(|i| vec![i as f64, (i * i) as f64 * 0.25])
            .collect();
        let t = points_table(&rows, 4);
        let store = SummaryStore::new();
        store
            .create(def("s", &["X1", "X2"], MatrixShape::Triangular, None), &t)
            .unwrap();
        let snap = store.get("S").expect("case-insensitive lookup").snapshot();
        let SummaryData::Global(nlq) = &snap.data else {
            panic!("expected global data");
        };
        let expect = Nlq::from_rows(2, MatrixShape::Triangular, &rows);
        assert_eq!(nlq.n(), expect.n());
        for a in 0..2 {
            assert!((nlq.l()[a] - expect.l()[a]).abs() <= 1e-9 * expect.l()[a].abs());
            for b in 0..=a {
                assert!(
                    (nlq.q_raw()[(a, b)] - expect.q_raw()[(a, b)]).abs()
                        <= 1e-9 * expect.q_raw()[(a, b)].abs()
                );
            }
        }
        assert!(snap.fresh);
        assert_eq!(snap.null_rows_skipped, 0);
    }

    #[test]
    fn fold_equals_rebuild() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, -0.5 * i as f64]).collect();
        let mut t = points_table(&rows, 3);
        let store = SummaryStore::new();
        store
            .create(def("s", &["X1", "X2"], MatrixShape::Full, None), &t)
            .unwrap();

        // Insert a batch through both the table and the fold hook.
        let batch: Vec<Row> = (50..70)
            .map(|i| {
                vec![
                    Value::Int(i + 1),
                    Value::Float(i as f64),
                    Value::Float(1.0 + i as f64),
                ]
            })
            .collect();
        for r in &batch {
            t.insert(r.clone()).unwrap();
        }
        store.fold_rows("x", t.schema(), &batch);

        let entry = store.get("s").unwrap();
        assert!(entry.is_fresh());
        let folded = entry.snapshot();
        entry.rebuild(&t).unwrap();
        let rebuilt = entry.snapshot();
        let (SummaryData::Global(a), SummaryData::Global(b)) = (&folded.data, &rebuilt.data) else {
            panic!("expected global data");
        };
        assert_eq!(a.n(), b.n());
        for i in 0..2 {
            for j in 0..2 {
                let (x, y) = (a.q_raw()[(i, j)], b.q_raw()[(i, j)]);
                assert!((x - y).abs() <= 1e-12 * y.abs().max(1.0), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn null_rows_are_counted_and_skipped() {
        let mut t = Table::new(Schema::points(2, false), 2);
        t.insert(vec![Value::Int(1), Value::Float(1.0), Value::Float(2.0)])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Null, Value::Float(3.0)])
            .unwrap();
        t.insert(vec![Value::Int(3), Value::Float(5.0), Value::Null])
            .unwrap();
        let store = SummaryStore::new();
        store
            .create(def("s", &["X1", "X2"], MatrixShape::Triangular, None), &t)
            .unwrap();
        let snap = store.get("s").unwrap().snapshot();
        assert_eq!(snap.null_rows_skipped, 2);
        let SummaryData::Global(nlq) = &snap.data else {
            panic!()
        };
        assert_eq!(nlq.n(), 1.0);
    }

    #[test]
    fn grouped_build_and_fold() {
        let mut t = Table::new(Schema::points(1, true), 1);
        // X(i, X1, Y): group on Y in {0, 1}.
        for i in 0..10i64 {
            t.insert(vec![
                Value::Int(i + 1),
                Value::Float(i as f64),
                Value::Float((i % 2) as f64),
            ])
            .unwrap();
        }
        let store = SummaryStore::new();
        store
            .create(def("g", &["X1"], MatrixShape::Diagonal, Some("Y")), &t)
            .unwrap();
        let snap = store.get("g").unwrap().snapshot();
        let SummaryData::Grouped(groups) = &snap.data else {
            panic!()
        };
        assert_eq!(groups.len(), 2);
        for (k, nlq) in groups {
            assert_eq!(nlq.n(), 5.0, "group {k:?}");
        }

        // Fold three rows into group 0 and one into a new group 2.
        let batch: Vec<Row> = vec![
            vec![Value::Int(11), Value::Float(100.0), Value::Float(0.0)],
            vec![Value::Int(12), Value::Float(101.0), Value::Float(0.0)],
            vec![Value::Int(13), Value::Float(102.0), Value::Float(0.0)],
            vec![Value::Int(14), Value::Float(7.0), Value::Float(2.0)],
        ];
        store.fold_rows("x", t.schema(), &batch);
        let snap = store.get("g").unwrap().snapshot();
        let SummaryData::Grouped(groups) = &snap.data else {
            panic!()
        };
        assert_eq!(groups.len(), 3);
        let g0 = groups
            .iter()
            .find(|(k, _)| k.group_eq(&Value::Float(0.0)))
            .unwrap();
        assert_eq!(g0.1.n(), 8.0);
    }

    #[test]
    fn staleness_lifecycle() {
        let t = points_table(&[vec![1.0], vec![2.0]], 1);
        let store = SummaryStore::new();
        store
            .create(def("s", &["X1"], MatrixShape::Diagonal, None), &t)
            .unwrap();
        let entry = store.get("s").unwrap();
        assert!(entry.is_fresh());
        store.mark_stale_for_table("x");
        assert!(!entry.is_fresh());
        // Stale summaries ignore folds (the base is already wrong).
        store.fold_rows("x", t.schema(), &[vec![Value::Int(3), Value::Float(9.0)]]);
        assert!(!entry.is_fresh());
        entry.rebuild(&t).unwrap();
        assert!(entry.is_fresh());
        let SummaryData::Global(nlq) = entry.snapshot().data else {
            panic!()
        };
        assert_eq!(nlq.n(), 2.0);
    }

    #[test]
    fn version_and_rows_folded_advance_on_every_transition() {
        let t = points_table(&[vec![1.0], vec![2.0]], 1);
        let store = SummaryStore::new();
        store
            .create(def("s", &["X1"], MatrixShape::Diagonal, None), &t)
            .unwrap();
        let entry = store.get("s").unwrap();
        assert_eq!(entry.version(), 1);
        assert_eq!(entry.rows_folded(), 0);

        store.fold_rows("x", t.schema(), &[vec![Value::Int(3), Value::Float(9.0)]]);
        assert_eq!(entry.version(), 2);
        assert_eq!(entry.rows_folded(), 1);

        store.mark_stale_for_table("x");
        assert_eq!(entry.version(), 3);
        // Stale summaries ignore folds: neither counter moves.
        store.fold_rows("x", t.schema(), &[vec![Value::Int(4), Value::Float(1.0)]]);
        assert_eq!(entry.version(), 3);
        assert_eq!(entry.rows_folded(), 1);

        entry.rebuild(&t).unwrap();
        assert_eq!(entry.version(), 4);

        // NO MINMAX global summaries also count subtracted rows.
        let mut nm = def("nm", &["X1"], MatrixShape::Diagonal, None);
        nm.minmax = false;
        store.create(nm, &t).unwrap();
        let nm = store.get("nm").unwrap();
        store.fold_deleted_rows("x", t.schema(), &[vec![Value::Int(1), Value::Float(1.0)]]);
        assert_eq!(nm.version(), 2);
        assert_eq!(nm.rows_folded(), 1);
        assert!(nm.is_fresh());
    }

    #[test]
    fn validation_errors() {
        let t = points_table(&[vec![1.0]], 1);
        let store = SummaryStore::new();
        assert!(matches!(
            store.create(def("s", &["nope"], MatrixShape::Diagonal, None), &t),
            Err(SummaryError::UnknownColumn { .. })
        ));
        assert!(matches!(
            store.create(def("s", &["i"], MatrixShape::Diagonal, None), &t),
            Err(SummaryError::NotFloat { .. })
        ));
        assert!(matches!(
            store.create(def("s", &[], MatrixShape::Diagonal, None), &t),
            Err(SummaryError::NoColumns)
        ));
        store
            .create(def("s", &["X1"], MatrixShape::Diagonal, None), &t)
            .unwrap();
        assert!(matches!(
            store.create(def("S", &["X1"], MatrixShape::Diagonal, None), &t),
            Err(SummaryError::DuplicateSummary(_))
        ));
        assert!(matches!(
            store.remove("zzz"),
            Err(SummaryError::UnknownSummary(_))
        ));
        store.remove("S").unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn projection_extracts_sub_gamma() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, 2.0 * i as f64, 3.0 + i as f64])
            .collect();
        let full = Nlq::from_rows(3, MatrixShape::Full, &rows);
        // Project onto (X3, X1) as a triangular state.
        let sub = project_nlq(&full, &[2, 0], MatrixShape::Triangular).unwrap();
        let expect = Nlq::from_rows(
            2,
            MatrixShape::Triangular,
            &rows.iter().map(|r| vec![r[2], r[0]]).collect::<Vec<_>>(),
        );
        assert_eq!(sub.n(), expect.n());
        for a in 0..2 {
            assert!((sub.l()[a] - expect.l()[a]).abs() < 1e-9);
            for b in 0..2 {
                assert!((sub.q_raw()[(a, b)] - expect.q_raw()[(a, b)]).abs() < 1e-9);
            }
        }
        assert_eq!(sub.min()[0], 3.0);
        assert_eq!(sub.max()[1], 19.0);
    }

    #[test]
    fn shape_cover_matrix() {
        use MatrixShape::*;
        assert!(shape_covers(Full, Full));
        assert!(shape_covers(Full, Triangular));
        assert!(shape_covers(Full, Diagonal));
        assert!(!shape_covers(Triangular, Full));
        assert!(shape_covers(Triangular, Triangular));
        assert!(shape_covers(Triangular, Diagonal));
        assert!(!shape_covers(Diagonal, Triangular));
        assert!(shape_covers(Diagonal, Diagonal));
    }
}
