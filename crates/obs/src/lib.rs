#![warn(missing_docs)]

//! Zero-dependency observability substrate shared by the engine, the
//! server, and the client.
//!
//! Three pieces, each usable on its own:
//!
//! * **Spans** ([`Trace`], [`Span`], [`Phase`]): a cheap handle carried
//!   in the engine's `ExecOptions` that accumulates per-phase wall
//!   times (parse, plan, summary lookup, scan, finalize, encode,
//!   stream) with rows/bytes/blocks attributes. Rendering a span list
//!   ([`render_spans`]) is what `EXPLAIN ANALYZE` prints.
//! * **Trace retention** ([`TraceRing`], [`TraceRecord`]): a
//!   fixed-capacity ring the server pushes every completed query trace
//!   into (and every slow query into a second ring). Slot reservation
//!   is a single atomic fetch-add, so recording never serializes
//!   sessions behind one lock.
//! * **Prometheus text exposition** ([`PromText`],
//!   [`validate_exposition`]): a tiny writer producing the scrape
//!   format (`# HELP` / `# TYPE` / `name{labels} value`) and a strict
//!   line validator the CI smoke uses to fail on malformed output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Per-thread CPU clock
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod cpu_clock {
    //! Hand-rolled `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` — the
    //! workspace is std-only, so the two libc declarations live here
    //! (same idiom as the shard crate's `sched_setaffinity`).

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }

    pub fn thread_cpu_nanos() -> u64 {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid, writable timespec; the clock id is a
        // compile-time constant the kernel always supports.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc != 0 {
            return 0;
        }
        (ts.tv_sec as u64).saturating_mul(1_000_000_000) + ts.tv_nsec as u64
    }
}

/// CPU time consumed by the calling thread, in nanoseconds
/// (`CLOCK_THREAD_CPUTIME_ID`). Sampled at span boundaries to attribute
/// CPU to queries; returns 0 on platforms without the clock.
pub fn thread_cpu_nanos() -> u64 {
    #[cfg(target_os = "linux")]
    {
        cpu_clock::thread_cpu_nanos()
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// A query-execution phase, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// SQL text to AST.
    Parse,
    /// Planning and rewrite (table resolution, predicate
    /// classification, join-product construction).
    Plan,
    /// Probing the materialized Γ summary store (including any
    /// on-demand stale rebuild).
    SummaryLookup,
    /// The row- or block-at-a-time scan, including the partial merge.
    Scan,
    /// Finalizing accumulators, HAVING, projection, ORDER BY.
    Finalize,
    /// Encoding result rows into wire chunk frames.
    Encode,
    /// Relaying encoded frames to the client socket.
    Stream,
    /// Fanning a statement out to the shards of a sharded engine
    /// (covers each shard's local execution of its partial).
    Scatter,
    /// Collecting shard results and merging Γ/aggregate partials (or
    /// concatenating row streams) into the final result.
    Gather,
    /// Resolving keyed rows through the primary-key hash index (batch
    /// scoring's gather step; replaces the scan phase entirely).
    PointLookup,
    /// Appending a streamed INSERT batch through the segment write
    /// path and folding it into eligible Γ summaries.
    Ingest,
    /// Writing and fsyncing write-ahead-log records (payload append
    /// plus the commit marker's group fsync).
    Wal,
    /// Wall time not attributed to any other phase.
    Other,
}

/// Every phase, in pipeline order (the render order).
pub const PHASES: [Phase; 13] = [
    Phase::Parse,
    Phase::Plan,
    Phase::SummaryLookup,
    Phase::PointLookup,
    Phase::Scatter,
    Phase::Scan,
    Phase::Ingest,
    Phase::Wal,
    Phase::Finalize,
    Phase::Gather,
    Phase::Encode,
    Phase::Stream,
    Phase::Other,
];

impl Phase {
    /// Stable lowercase name (used in renders and on the wire).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Plan => "plan",
            Phase::SummaryLookup => "summary-lookup",
            Phase::Scan => "scan",
            Phase::Finalize => "finalize",
            Phase::Encode => "encode",
            Phase::Stream => "stream",
            Phase::Scatter => "scatter",
            Phase::Gather => "gather",
            Phase::PointLookup => "point-lookup",
            Phase::Ingest => "ingest",
            Phase::Wal => "wal",
            Phase::Other => "other",
        }
    }

    /// Wire tag for this phase.
    pub fn as_u8(self) -> u8 {
        match self {
            Phase::Parse => 0,
            Phase::Plan => 1,
            Phase::SummaryLookup => 2,
            Phase::Scan => 3,
            Phase::Finalize => 4,
            Phase::Encode => 5,
            Phase::Stream => 6,
            Phase::Other => 7,
            Phase::Scatter => 8,
            Phase::Gather => 9,
            Phase::PointLookup => 10,
            Phase::Ingest => 11,
            Phase::Wal => 12,
        }
    }

    /// Inverse of [`Phase::as_u8`].
    pub fn from_u8(b: u8) -> Option<Phase> {
        PHASES.into_iter().find(|p| p.as_u8() == b)
    }
}

/// One timed phase of one statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which phase this span times.
    pub phase: Phase,
    /// Offset from the trace start, nanoseconds. Phases run
    /// sequentially, so each span starts where the previous ended.
    pub start_nanos: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_nanos: u64,
    /// Rows processed in this phase (0 when not applicable).
    pub rows: u64,
    /// Payload bytes produced in this phase (0 when not applicable).
    pub bytes: u64,
    /// Column blocks decoded in this phase (0 when not applicable).
    pub blocks: u64,
    /// CPU nanoseconds consumed during this phase (0 when not
    /// sampled). For per-shard scatter spans this is the pinned shard
    /// thread's CPU time over its partial execution.
    pub cpu_nanos: u64,
    /// Shard index for per-shard scatter spans; -1 when the span is
    /// not shard-scoped.
    pub shard: i64,
}

impl Span {
    /// A span for `phase` lasting `dur_nanos`, no attributes.
    pub fn new(phase: Phase, dur_nanos: u64) -> Span {
        Span {
            phase,
            start_nanos: 0,
            dur_nanos,
            rows: 0,
            bytes: 0,
            blocks: 0,
            cpu_nanos: 0,
            shard: -1,
        }
    }

    /// Sets the rows attribute.
    pub fn rows(mut self, rows: u64) -> Span {
        self.rows = rows;
        self
    }

    /// Sets the bytes attribute.
    pub fn bytes(mut self, bytes: u64) -> Span {
        self.bytes = bytes;
        self
    }

    /// Sets the blocks attribute.
    pub fn blocks(mut self, blocks: u64) -> Span {
        self.blocks = blocks;
        self
    }

    /// Sets the CPU-time attribute.
    pub fn cpu_nanos(mut self, cpu_nanos: u64) -> Span {
        self.cpu_nanos = cpu_nanos;
        self
    }

    /// Marks this span as scoped to one shard's partial execution.
    pub fn on_shard(mut self, shard: usize) -> Span {
        self.shard = shard as i64;
        self
    }
}

/// How a traced statement ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Completed and streamed successfully.
    Ok,
    /// Failed (parse, bind, execution, or result-budget error).
    Error,
    /// Cancelled mid-execution (client cancel or server drain).
    Cancelled,
    /// Cancelled while still waiting in the pool queue — no worker
    /// ever executed it.
    CancelledQueued,
    /// Hit the per-query wall-clock limit.
    Timeout,
}

impl Outcome {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Error => "error",
            Outcome::Cancelled => "cancelled",
            Outcome::CancelledQueued => "cancelled-queued",
            Outcome::Timeout => "timeout",
        }
    }

    /// Wire tag for this outcome.
    pub fn as_u8(self) -> u8 {
        match self {
            Outcome::Ok => 0,
            Outcome::Error => 1,
            Outcome::Cancelled => 2,
            Outcome::CancelledQueued => 3,
            Outcome::Timeout => 4,
        }
    }

    /// Inverse of [`Outcome::as_u8`].
    pub fn from_u8(b: u8) -> Option<Outcome> {
        Some(match b {
            0 => Outcome::Ok,
            1 => Outcome::Error,
            2 => Outcome::Cancelled,
            3 => Outcome::CancelledQueued,
            4 => Outcome::Timeout,
            _ => return None,
        })
    }
}

struct TraceInner {
    started: Instant,
    spans: Mutex<Vec<Span>>,
    /// CPU nanoseconds attributed to this statement (worker thread
    /// plus per-shard executors, summed at gather).
    cpu_nanos: AtomicU64,
    /// WAL payload bytes appended on behalf of this statement.
    wal_bytes: AtomicU64,
    /// WAL fsyncs issued (or joined) on behalf of this statement.
    wal_fsyncs: AtomicU64,
}

/// A lightweight handle accumulating one statement's phase spans.
///
/// Clones share the same span list (the engine and the serving layer
/// each record their own phases into one trace). Recording takes a
/// short mutex on a per-phase — not per-row — cadence, so it never
/// shows up in a scan profile.
#[derive(Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl Trace {
    /// A fresh trace; its clock starts now.
    pub fn new() -> Trace {
        Trace {
            inner: Arc::new(TraceInner {
                started: Instant::now(),
                spans: Mutex::new(Vec::new()),
                cpu_nanos: AtomicU64::new(0),
                wal_bytes: AtomicU64::new(0),
                wal_fsyncs: AtomicU64::new(0),
            }),
        }
    }

    /// Appends a span, assigning its start offset to the end of the
    /// latest span already recorded (phases are sequential).
    pub fn record(&self, span: Span) {
        let mut spans = self.inner.spans.lock().expect("trace spans");
        let start = spans
            .iter()
            .map(|s| s.start_nanos + s.dur_nanos)
            .max()
            .unwrap_or(0);
        spans.push(Span {
            start_nanos: start,
            ..span
        });
    }

    /// Nanoseconds since the trace was created.
    pub fn elapsed_nanos(&self) -> u64 {
        self.inner.started.elapsed().as_nanos() as u64
    }

    /// A snapshot of the spans recorded so far.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.spans.lock().expect("trace spans").clone()
    }

    /// Adds CPU nanoseconds to this statement's total.
    pub fn add_cpu_nanos(&self, nanos: u64) {
        self.inner.cpu_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// CPU nanoseconds attributed so far.
    pub fn cpu_nanos(&self) -> u64 {
        self.inner.cpu_nanos.load(Ordering::Relaxed)
    }

    /// Adds WAL bytes and fsyncs to this statement's totals.
    pub fn add_wal(&self, bytes: u64, fsyncs: u64) {
        self.inner.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.inner.wal_fsyncs.fetch_add(fsyncs, Ordering::Relaxed);
    }

    /// WAL bytes attributed so far.
    pub fn wal_bytes(&self) -> u64 {
        self.inner.wal_bytes.load(Ordering::Relaxed)
    }

    /// WAL fsyncs attributed so far.
    pub fn wal_fsyncs(&self) -> u64 {
        self.inner.wal_fsyncs.load(Ordering::Relaxed)
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("spans", &self.spans().len())
            .finish()
    }
}

/// A completed statement's trace as the server retains and ships it.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Server-wide monotone trace id (paging cursor for `TRACE`).
    /// Assigned at completion, so ids are retention-ordered.
    pub id: u64,
    /// Globally unique query id minted at admission (before queueing),
    /// the join key across `sys.queries`, `sys.spans`, `RowsHeader`,
    /// and the slow-query log. Admission order, not completion order.
    pub query_id: u64,
    /// Session that ran the statement.
    pub session: u64,
    /// Peer address of the session's connection.
    pub peer: String,
    /// Shards the statement fanned out to (0 for a single-node
    /// engine).
    pub shards: u32,
    /// The statement's 1-based `Execute` sequence on its session.
    pub seq: u64,
    /// The SQL text.
    pub sql: String,
    /// How the statement ended.
    pub outcome: Outcome,
    /// Detail for non-`Ok` outcomes (the error message).
    pub detail: String,
    /// End-to-end wall time, nanoseconds.
    pub total_nanos: u64,
    /// Whether the statement crossed the slow-query threshold.
    pub slow: bool,
    /// WAL payload bytes this statement appended (0 when volatile).
    pub wal_bytes: u64,
    /// WAL fsyncs this statement issued or joined.
    pub fsyncs: u64,
    /// CPU nanoseconds consumed (worker + shard executors).
    pub cpu_nanos: u64,
    /// Per-phase spans, in recording order.
    pub spans: Vec<Span>,
}

impl TraceRecord {
    /// Rows streamed: the max `rows` attribute across spans (phases
    /// report the same row population at different stages).
    pub fn rows(&self) -> u64 {
        self.spans.iter().map(|s| s.rows).max().unwrap_or(0)
    }

    /// Payload bytes produced: the max `bytes` attribute across
    /// non-WAL spans.
    pub fn bytes(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.phase != Phase::Wal)
            .map(|s| s.bytes)
            .max()
            .unwrap_or(0)
    }
}

/// Fixed-capacity ring retaining the most recent [`TraceRecord`]s.
///
/// Writers reserve a slot with one atomic fetch-add and then fill it
/// under that slot's own mutex — two writers only contend when the
/// ring has wrapped onto the same slot, so pushing never serializes
/// sessions behind a global lock. Readers snapshot without blocking
/// writers of other slots.
pub struct TraceRing {
    slots: Box<[Mutex<Option<TraceRecord>>]>,
    next: AtomicU64,
    /// Records overwritten after the ring wrapped.
    evicted: AtomicU64,
    /// Highest record id evicted so far (0 = none). Lets `TRACE`
    /// paging report truncation when `after_id` has fallen off.
    max_evicted_id: AtomicU64,
}

impl TraceRing {
    /// A ring retaining the last `capacity` records (at least 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            max_evicted_id: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records pushed over the ring's lifetime (retained or evicted).
    pub fn pushed(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Records evicted (overwritten) over the ring's lifetime.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Whether a `TRACE` page anchored at `after_id` is missing
    /// evicted records: true when some record with id > `after_id`
    /// has already been overwritten.
    pub fn truncated(&self, after_id: u64) -> bool {
        self.max_evicted_id.load(Ordering::Relaxed) > after_id
    }

    /// Retains `record`, evicting the oldest once full.
    pub fn push(&self, record: TraceRecord) {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        let prev = self.slots[slot]
            .lock()
            .expect("trace ring slot")
            .replace(record);
        if let Some(old) = prev {
            self.evicted.fetch_add(1, Ordering::Relaxed);
            self.max_evicted_id.fetch_max(old.id, Ordering::Relaxed);
        }
    }

    /// The retained records with id greater than `after_id`, oldest
    /// first, at most `limit` — the `TRACE` command's paging shape.
    pub fn page(&self, after_id: u64, limit: usize) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("trace ring slot").clone())
            .filter(|r| r.id > after_id)
            .collect();
        out.sort_by_key(|r| r.id);
        out.truncate(limit);
        out
    }
}

/// Formats nanoseconds as a human `ms` figure with µs precision.
pub fn fmt_nanos(nanos: u64) -> String {
    format!("{:.3} ms", nanos as f64 / 1e6)
}

/// Renders a span list the way `EXPLAIN ANALYZE` prints it: one line
/// per phase with wall time and any rows/bytes/blocks attributes, plus
/// an `other` line for wall time not attributed to a phase — so the
/// per-phase times always sum exactly to `total_nanos`.
pub fn render_spans(total_nanos: u64, spans: &[Span]) -> Vec<String> {
    let mut lines = Vec::with_capacity(spans.len() + 2);
    lines.push(format!("total: {}", fmt_nanos(total_nanos)));
    let mut accounted = 0u64;
    for span in spans {
        accounted += span.dur_nanos;
        let mut line = format!("phase {}: {}", span.phase.name(), fmt_nanos(span.dur_nanos));
        let mut attrs = Vec::new();
        if span.rows > 0 {
            attrs.push(format!("rows={}", span.rows));
        }
        if span.blocks > 0 {
            attrs.push(format!("blocks={}", span.blocks));
        }
        if span.bytes > 0 {
            attrs.push(format!("bytes={}", span.bytes));
        }
        if !attrs.is_empty() {
            line.push_str(&format!(" ({})", attrs.join(", ")));
        }
        lines.push(line);
    }
    lines.push(format!(
        "phase other: {}",
        fmt_nanos(total_nanos.saturating_sub(accounted))
    ));
    lines
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Incremental writer for the Prometheus text exposition format.
///
/// Emits `# HELP` / `# TYPE` headers once per metric family and
/// `name{labels} value` sample lines with label values escaped per the
/// format (backslash, double quote, newline).
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> PromText {
        PromText { out: String::new() }
    }

    /// Writes the `# HELP` and `# TYPE` header for a metric family.
    /// `kind` is `counter`, `gauge`, or `histogram`.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Writes one sample line. Pass an empty label slice for a bare
    /// `name value` sample.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        if value == f64::INFINITY {
            self.out.push_str("+Inf");
        } else if value.fract() == 0.0 && value.abs() < 1e15 {
            // Integers render without a fraction (counter-friendly).
            self.out.push_str(&format!("{}", value as i64));
        } else {
            self.out.push_str(&format!("{value}"));
        }
        self.out.push('\n');
    }

    /// The finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

impl Default for PromText {
    fn default() -> Self {
        PromText::new()
    }
}

/// Strictly validates Prometheus text exposition: every non-empty line
/// must be a `# HELP`/`# TYPE` comment or a
/// `name{labels} value` sample. Returns the first offending line.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if rest.starts_with("HELP ") || rest.starts_with("TYPE ") {
                continue;
            }
            return Err(format!("malformed comment line: {line:?}"));
        }
        if !valid_sample_line(line) {
            return Err(format!("malformed sample line: {line:?}"));
        }
    }
    Ok(())
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_sample_line(line: &str) -> bool {
    // name [ "{" label "=" quoted ( "," label "=" quoted )* "}" ] SP value
    let (name_part, rest) = match line.find(['{', ' ']) {
        Some(i) => (&line[..i], &line[i..]),
        None => return false,
    };
    if !valid_metric_name(name_part) {
        return false;
    }
    let rest = if let Some(labels) = rest.strip_prefix('{') {
        let Some(close) = find_unescaped_close(labels) else {
            return false;
        };
        if !valid_labels(&labels[..close]) {
            return false;
        }
        &labels[close + 1..]
    } else {
        rest
    };
    let Some(value) = rest.strip_prefix(' ') else {
        return false;
    };
    !value.is_empty() && (value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN"))
}

/// Index of the `}` closing the label block (quotes respected).
fn find_unescaped_close(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn valid_labels(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    // Split on commas outside quotes.
    let mut in_quotes = false;
    let mut escaped = false;
    let mut start = 0;
    let mut pairs = Vec::new();
    for (i, c) in s.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                pairs.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pairs.push(&s[start..]);
    pairs.iter().all(|p| {
        let Some((k, v)) = p.split_once('=') else {
            return false;
        };
        valid_metric_name(k) && v.len() >= 2 && v.starts_with('"') && v.ends_with('"')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, session: u64, seq: u64, sql: String, total_nanos: u64) -> TraceRecord {
        TraceRecord {
            id,
            query_id: id,
            session,
            peer: String::new(),
            shards: 0,
            seq,
            sql,
            outcome: Outcome::Ok,
            detail: String::new(),
            total_nanos,
            slow: false,
            wal_bytes: 0,
            fsyncs: 0,
            cpu_nanos: 0,
            spans: Vec::new(),
        }
    }

    #[test]
    fn spans_get_sequential_offsets() {
        let t = Trace::new();
        t.record(Span::new(Phase::Parse, 100));
        t.record(Span::new(Phase::Plan, 50).rows(7));
        t.record(Span::new(Phase::Scan, 1000).rows(42).blocks(3));
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].start_nanos, 0);
        assert_eq!(spans[1].start_nanos, 100);
        assert_eq!(spans[2].start_nanos, 150);
        assert_eq!(spans[2].rows, 42);
        assert_eq!(spans[2].blocks, 3);
    }

    #[test]
    fn render_accounts_every_nanosecond() {
        let spans = vec![
            Span::new(Phase::Parse, 200),
            Span::new(Phase::Scan, 700).rows(10),
        ];
        let lines = render_spans(1000, &spans);
        assert_eq!(lines[0], "total: 0.001 ms");
        assert!(lines
            .iter()
            .any(|l| l.contains("phase scan") && l.contains("rows=10")));
        // `other` picks up the unaccounted 100ns, so phases sum to total.
        assert!(lines.last().unwrap().starts_with("phase other:"));
    }

    #[test]
    fn ring_retains_last_n_and_pages() {
        let ring = TraceRing::new(4);
        for id in 1..=10u64 {
            ring.push(record(id, 1, id, format!("SELECT {id}"), id * 10));
        }
        let all = ring.page(0, 100);
        assert_eq!(
            all.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        let after = ring.page(8, 100);
        assert_eq!(after.iter().map(|r| r.id).collect::<Vec<_>>(), vec![9, 10]);
        let limited = ring.page(0, 2);
        assert_eq!(limited.iter().map(|r| r.id).collect::<Vec<_>>(), vec![7, 8]);
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn ring_push_is_safe_under_concurrency() {
        let ring = Arc::new(TraceRing::new(8));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..100u64 {
                        ring.push(record(t * 100 + i, t, i, String::new(), 1));
                    }
                });
            }
        });
        assert_eq!(ring.pushed(), 400);
        assert_eq!(ring.page(0, 100).len(), 8);
    }

    #[test]
    fn ring_wraparound_reports_eviction_and_truncation() {
        let ring = TraceRing::new(4);
        for id in 1..=4u64 {
            ring.push(record(id, 1, id, String::new(), 1));
        }
        // Full but nothing overwritten yet: no eviction, no truncation.
        assert_eq!(ring.evicted(), 0);
        assert!(!ring.truncated(0));
        // Wrap: ids 1..=3 fall off.
        for id in 5..=7u64 {
            ring.push(record(id, 1, id, String::new(), 1));
        }
        assert_eq!(ring.evicted(), 3);
        // A cursor before (or at) an evicted id has missed records.
        assert!(ring.truncated(0));
        assert!(ring.truncated(2));
        // The highest evicted id is 3, so paging after 3 is complete.
        assert!(!ring.truncated(3));
        assert!(!ring.truncated(6));
        // Paging still returns what's retained.
        assert_eq!(
            ring.page(0, 100).iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![4, 5, 6, 7]
        );
    }

    #[test]
    fn thread_cpu_clock_is_monotone() {
        let a = thread_cpu_nanos();
        // Burn a little CPU so the clock must advance on Linux.
        let mut x = 0u64;
        for i in 0..200_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = thread_cpu_nanos();
        assert!(b >= a);
    }

    #[test]
    fn record_rows_and_bytes_take_span_maxima() {
        let mut r = record(1, 1, 1, String::new(), 1);
        r.spans = vec![
            Span::new(Phase::Scan, 10).rows(100),
            Span::new(Phase::Encode, 5).rows(100).bytes(4096),
            Span::new(Phase::Wal, 5).bytes(9999),
            Span::new(Phase::Stream, 5).bytes(4096),
        ];
        assert_eq!(r.rows(), 100);
        // WAL bytes are accounted separately, not as payload bytes.
        assert_eq!(r.bytes(), 4096);
    }

    #[test]
    fn phase_and_outcome_tags_round_trip() {
        for p in PHASES {
            assert_eq!(Phase::from_u8(p.as_u8()), Some(p));
        }
        for o in [
            Outcome::Ok,
            Outcome::Error,
            Outcome::Cancelled,
            Outcome::CancelledQueued,
            Outcome::Timeout,
        ] {
            assert_eq!(Outcome::from_u8(o.as_u8()), Some(o));
        }
        assert_eq!(Phase::from_u8(200), None);
        assert_eq!(Outcome::from_u8(200), None);
    }

    #[test]
    fn prom_writer_emits_valid_exposition() {
        let mut p = PromText::new();
        p.family("nlq_requests_total", "counter", "Requests by command.");
        p.sample("nlq_requests_total", &[("command", "execute")], 42.0);
        p.family(
            "nlq_queue_depth",
            "gauge",
            "Jobs waiting in the pool queue.",
        );
        p.sample("nlq_queue_depth", &[], 3.0);
        p.family("nlq_latency_us", "histogram", "Latency histogram.");
        p.sample("nlq_latency_us_bucket", &[("le", "10")], 5.0);
        p.sample("nlq_latency_us_bucket", &[("le", "+Inf")], 9.0);
        p.sample("nlq_latency_us_sum", &[], 1234.5);
        p.sample("nlq_latency_us_count", &[], 9.0);
        // A label value that needs escaping.
        p.sample("nlq_requests_total", &[("sql", "say \"hi\"\nagain\\")], 1.0);
        let text = p.finish();
        validate_exposition(&text).expect("writer output validates");
        assert!(text.contains("nlq_requests_total{command=\"execute\"} 42\n"));
        assert!(text.contains("le=\"+Inf\"} 9\n"));
        assert!(text.contains("\\\"hi\\\"\\nagain\\\\"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_exposition("# HELP a b\n# TYPE a counter\na 1\n").is_ok());
        assert!(validate_exposition("just some words\n").is_err());
        assert!(validate_exposition("# COMMENT nope\n").is_err());
        assert!(validate_exposition("name{unclosed=\"x\" 1\n").is_err());
        assert!(validate_exposition("name{k=\"v\"} not_a_number\n").is_err());
        assert!(validate_exposition("9leading_digit 1\n").is_err());
        assert!(validate_exposition("name 1\n").is_ok());
        assert!(validate_exposition("name{a=\"x\",b=\"y\"} 2.5\n").is_ok());
        assert!(validate_exposition("name{le=\"+Inf\"} +Inf\n").is_ok());
    }
}
