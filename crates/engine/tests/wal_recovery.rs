//! Crash-recovery tests for the durable engine: deterministic smoke
//! tests plus the central property — for a random workload trace and a
//! random crash point (including torn and bit-flipped tail records),
//! reopening the directory yields **exactly** the acked prefix of the
//! trace.
//!
//! The fault model makes this an exact property, not a probabilistic
//! one: the injected crash always happens *inside* an append, so an
//! envelope whose commit fsync returned before the crash is durable,
//! and one that errored never acked. The recovered database is
//! compared bit-for-bit (row multisets) against a volatile mirror that
//! applied only the acked operations.

use std::path::PathBuf;
use std::sync::Arc;

use nlq_engine::{Db, SqlEngine};
use nlq_storage::{Value, WalIo};
use nlq_testkit::{corrupt_tail, run_cases, FaultFs, FaultInjector, Rng};

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nlq-walrec-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn tight(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
}

// ---------------------------------------------------------------------
// Deterministic smoke tests
// ---------------------------------------------------------------------

#[test]
fn reopen_replays_statements_and_envelopes() {
    let dir = temp_dir("smoke");
    {
        let db = Db::open_durable(2, &dir, true).unwrap();
        db.execute("CREATE TABLE t (i INT, x FLOAT)").unwrap();
        db.execute("CREATE SUMMARY st ON t (x) NO MINMAX").unwrap();
        db.execute("INSERT INTO t VALUES (1, 1.5), (2, 2.5)")
            .unwrap();
        SqlEngine::ingest_rows(&db, "t", vec![vec![Value::Int(3), Value::Float(3.5)]]).unwrap();
    }
    let db = Db::open_durable(2, &dir, true).unwrap();
    let info = db.recovery_info().expect("durable db reports recovery");
    assert_eq!(info.replayed_records, 4);
    assert_eq!(info.replayed_envelopes, 1);
    let rs = db.execute("SELECT count(*), sum(x) FROM t").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(3));
    assert!(tight(rs.rows[0][1].as_f64().unwrap(), 7.5));
    // The summary definition replayed too and serves the aggregate.
    assert_eq!(db.summaries().entries().len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_truncates_log_and_survives_reopen() {
    let dir = temp_dir("ckpt");
    {
        let db = Db::open_durable(2, &dir, true).unwrap();
        db.execute("CREATE TABLE t (i INT, x FLOAT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 1.0)").unwrap();
        assert!(db.checkpoint().unwrap());
        assert_eq!(db.wal_log_bytes(), Some(0), "checkpoint resets the log");
        db.execute("INSERT INTO t VALUES (2, 2.0)").unwrap();
    }
    let db = Db::open_durable(2, &dir, true).unwrap();
    let info = db.recovery_info().unwrap();
    assert_eq!(info.checkpoint_tables, 1);
    assert_eq!(info.replayed_records, 1, "only the post-checkpoint insert");
    let rs = db.execute("SELECT count(*), sum(x) FROM t").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(2));
    assert!(tight(rs.rows[0][1].as_f64().unwrap(), 3.0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_envelope_commits_nothing_and_acked_survives() {
    let dir = temp_dir("midenv");
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("wal.log");
    {
        let db = Db::open_durable(2, &dir, true).unwrap();
        db.execute("CREATE TABLE t (i INT, x FLOAT)").unwrap();
        SqlEngine::ingest_rows(&db, "t", vec![vec![Value::Int(1), Value::Float(1.0)]]).unwrap();
    }
    // Allow 10 more appended bytes: the next envelope's payload record
    // tears mid-append, so its ingest never acks.
    let inj = FaultInjector::new(Some(10));
    let ff = Arc::new(FaultFs::open(&wal, inj).unwrap());
    let db = Db::open_durable_with_io(2, &dir, ff.clone() as Arc<dyn WalIo>, true).unwrap();
    let torn = SqlEngine::ingest_rows(&db, "t", vec![vec![Value::Int(2), Value::Float(2.0)]]);
    assert!(torn.is_err(), "append crossed the budget: simulated crash");
    drop(db);
    corrupt_tail(&wal, ff.synced_len(), &mut Rng::new(7)).unwrap();

    let db = Db::open_durable(2, &dir, true).unwrap();
    let rs = db.execute("SELECT count(*), sum(x) FROM t").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(1), "unacked envelope gone");
    assert!(
        tight(rs.rows[0][1].as_f64().unwrap(), 1.0),
        "acked survives"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// The property: reopen == acked prefix, for any trace x crash point
// ---------------------------------------------------------------------

#[derive(Clone)]
enum Op {
    Sql(String),
    Ingest(Vec<Vec<Value>>),
    Checkpoint,
}

fn gen_trace(rng: &mut Rng) -> Vec<Op> {
    let mut ops = vec![Op::Sql("CREATE TABLE t (i INT, x FLOAT)".into())];
    if rng.chance(0.6) {
        ops.push(Op::Sql("CREATE SUMMARY st ON t (x) NO MINMAX".into()));
    }
    let mut next_i = 0i64;
    for _ in 0..rng.range_usize(4, 14) {
        let roll = rng.f64();
        if roll < 0.5 {
            let rows = (0..rng.range_usize(1, 6))
                .map(|_| {
                    next_i += 1;
                    vec![Value::Int(next_i), Value::Float(rng.range_f64(-10.0, 10.0))]
                })
                .collect();
            ops.push(Op::Ingest(rows));
        } else if roll < 0.7 {
            let vals: Vec<String> = (0..rng.range_usize(1, 3))
                .map(|_| {
                    next_i += 1;
                    format!("({next_i}, {:.6})", rng.range_f64(-10.0, 10.0))
                })
                .collect();
            ops.push(Op::Sql(format!("INSERT INTO t VALUES {}", vals.join(", "))));
        } else if roll < 0.8 {
            let c = rng.range_i64(0, next_i.max(1));
            ops.push(Op::Sql(format!("UPDATE t SET x = x + 1.0 WHERE i < {c}")));
        } else if roll < 0.9 {
            let c = rng.range_i64(0, next_i.max(1));
            ops.push(Op::Sql(format!("DELETE FROM t WHERE i > {c}")));
        } else {
            ops.push(Op::Checkpoint);
        }
    }
    ops
}

fn apply(db: &Db, op: &Op) -> nlq_engine::Result<()> {
    match op {
        Op::Sql(s) => db.execute(s).map(|_| ()),
        Op::Ingest(rows) => SqlEngine::ingest_rows(db, "t", rows.clone()).map(|_| ()),
        Op::Checkpoint => db.checkpoint().map(|_| ()),
    }
}

/// The sorted row multiset of `t`, bitwise (replay reconstructs the
/// exact float bits the WAL recorded). `None` when `t` does not exist
/// (the crash predated its CREATE TABLE).
fn dump(db: &Db) -> Option<Vec<(i64, u64)>> {
    let rs = db.execute("SELECT i, x FROM t").ok()?;
    let mut out: Vec<(i64, u64)> = rs
        .rows
        .iter()
        .map(|r| {
            let i = match r[0] {
                Value::Int(v) => v,
                ref v => panic!("i column: {v:?}"),
            };
            let x = match r[1] {
                Value::Float(v) => v.to_bits(),
                Value::Null => u64::MAX,
                ref v => panic!("x column: {v:?}"),
            };
            (i, x)
        })
        .collect();
    out.sort_unstable();
    Some(out)
}

#[test]
fn recovery_equals_acked_prefix_under_random_crashes() {
    run_cases(64, 0x5EED_0009, |rng| {
        let trace = gen_trace(rng);
        // Dry run: how many bytes does the full trace append?
        let dry = temp_dir(&format!("dry-{:016x}", rng.next_u64()));
        let total = {
            let db = Db::open_durable(2, &dry, true).unwrap();
            for op in &trace {
                apply(&db, op).unwrap();
            }
            db.wal_stats().unwrap().bytes
        };
        let _ = std::fs::remove_dir_all(&dry);

        // Fault run: crash after a random number of appended bytes
        // (possibly never), then scramble the unsynced tail.
        let crash_after = rng.next_u64() % (total + 1);
        let dir = temp_dir(&format!("case-{:016x}", rng.next_u64()));
        std::fs::create_dir_all(&dir).unwrap();
        let inj = FaultInjector::new(Some(crash_after));
        let ff = Arc::new(FaultFs::open(&dir.join("wal.log"), inj).unwrap());
        let db = Db::open_durable_with_io(2, &dir, ff.clone() as Arc<dyn WalIo>, true).unwrap();
        let mirror = Db::new(2);
        let mut crashed = false;
        for op in &trace {
            match apply(&db, op) {
                Ok(()) => apply(&mirror, op).expect("mirror apply"),
                Err(_) => {
                    crashed = true;
                    break;
                }
            }
        }
        drop(db);
        if crashed {
            corrupt_tail(&dir.join("wal.log"), ff.synced_len(), rng).unwrap();
        }

        let rec = Db::open_durable(2, &dir, true).unwrap();
        assert_eq!(dump(&rec), dump(&mirror), "row multiset differs");
        if let (Ok(a), Ok(b)) = (
            rec.execute("SELECT count(*), sum(x) FROM t"),
            mirror.execute("SELECT count(*), sum(x) FROM t"),
        ) {
            assert_eq!(a.rows[0][0], b.rows[0][0], "count differs");
            match (a.rows[0][1].as_f64(), b.rows[0][1].as_f64()) {
                (Some(x), Some(y)) => assert!(tight(x, y), "sum {x} vs {y}"),
                (x, y) => assert_eq!(x.is_none(), y.is_none()),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    });
}
