//! SQL-level tests for builtin scalar functions, CASE, string
//! handling, and expression edge cases through the full engine stack.

use nlq_engine::Db;
use nlq_storage::Value;

fn db_one() -> Db {
    let db = Db::new(2);
    db.execute("CREATE TABLE one (x FLOAT, n INT, s VARCHAR)")
        .unwrap();
    db.execute("INSERT INTO one VALUES (9.0, -5, 'mid')")
        .unwrap();
    db
}

fn eval(db: &Db, expr: &str) -> Value {
    let rs = db.execute(&format!("SELECT {expr} FROM one")).unwrap();
    rs.rows[0][0].clone()
}

#[test]
fn math_functions() {
    let db = db_one();
    assert_eq!(eval(&db, "sqrt(x)"), Value::Float(3.0));
    assert_eq!(eval(&db, "abs(n)"), Value::Int(5));
    assert_eq!(eval(&db, "power(2, 10)"), Value::Float(1024.0));
    assert_eq!(eval(&db, "exp(0)"), Value::Float(1.0));
    assert_eq!(eval(&db, "ln(exp(1))"), Value::Float(1.0));
    assert_eq!(eval(&db, "floor(2.7)"), Value::Float(2.0));
    assert_eq!(eval(&db, "ceil(2.1)"), Value::Float(3.0));
    assert_eq!(eval(&db, "mod(7, 3)"), Value::Int(1));
    assert_eq!(eval(&db, "7 % 3"), Value::Int(1));
}

#[test]
fn least_and_greatest() {
    let db = db_one();
    assert_eq!(eval(&db, "least(3, 1.5, 2)"), Value::Float(1.5));
    assert_eq!(eval(&db, "greatest(3, 1.5, 2)"), Value::Int(3));
    // NULL makes the result NULL (SQL convention chosen here).
    assert_eq!(eval(&db, "least(1, NULL)"), Value::Null);
}

#[test]
fn null_arithmetic_propagates() {
    let db = db_one();
    assert_eq!(eval(&db, "x + NULL"), Value::Null);
    assert_eq!(eval(&db, "NULL * 0"), Value::Null);
    assert_eq!(eval(&db, "sqrt(NULL)"), Value::Null);
    // Division by zero is NULL, not an error, so scans never abort.
    assert_eq!(eval(&db, "1 / 0"), Value::Null);
    assert_eq!(eval(&db, "x / 0.0"), Value::Null);
}

#[test]
fn case_without_else_defaults_null() {
    let db = db_one();
    assert_eq!(eval(&db, "CASE WHEN x > 100 THEN 1 END"), Value::Null);
    assert_eq!(
        eval(
            &db,
            "CASE WHEN x > 1 THEN 'big' WHEN x > 0 THEN 'small' END"
        ),
        Value::from("big")
    );
}

#[test]
fn string_comparisons() {
    let db = db_one();
    assert_eq!(eval(&db, "s = 'mid'"), Value::Int(1));
    assert_eq!(eval(&db, "s < 'zzz'"), Value::Int(1));
    assert_eq!(eval(&db, "s <> 'mid'"), Value::Int(0));
    // Cross-type comparison is unknown.
    assert_eq!(eval(&db, "s = 1"), Value::Null);
}

#[test]
fn string_literal_escapes() {
    let db = db_one();
    assert_eq!(eval(&db, "'it''s'"), Value::from("it's"));
}

#[test]
fn not_and_boolean_outputs() {
    let db = db_one();
    assert_eq!(eval(&db, "NOT x > 100"), Value::Int(1));
    assert_eq!(eval(&db, "NOT (1 = 1)"), Value::Int(0));
    assert_eq!(eval(&db, "x > 1 AND n < 0"), Value::Int(1));
    assert_eq!(eval(&db, "x > 100 OR n < 0"), Value::Int(1));
}

#[test]
fn integer_overflow_wraps_not_panics() {
    let db = db_one();
    // Wrapping semantics keep scans total; matches documented behavior.
    let out = eval(&db, "9223372036854775807 + 1");
    assert_eq!(out, Value::Int(i64::MIN));
}

#[test]
fn aggregates_over_expressions_with_functions() {
    let db = Db::new(2);
    db.execute("CREATE TABLE t (v FLOAT)").unwrap();
    db.execute("INSERT INTO t VALUES (1.0), (4.0), (9.0)")
        .unwrap();
    let rs = db
        .execute("SELECT sum(sqrt(v)), avg(v * 2) FROM t")
        .unwrap();
    assert_eq!(rs.value(0, 0), &Value::Float(6.0));
    assert_eq!(rs.value(0, 1), &Value::Float(28.0 / 3.0));
}

#[test]
fn where_with_case_and_functions() {
    let db = Db::new(2);
    db.execute("CREATE TABLE t (v FLOAT)").unwrap();
    db.execute("INSERT INTO t VALUES (-3.0), (2.0), (-1.0), (5.0)")
        .unwrap();
    let rs = db
        .execute("SELECT count(*) FROM t WHERE CASE WHEN v < 0 THEN 1 ELSE 0 END = 1")
        .unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(2));
    let rs = db
        .execute("SELECT count(*) FROM t WHERE abs(v) >= 2")
        .unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(3));
}
