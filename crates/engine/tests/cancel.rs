//! Cooperative cancellation at the engine layer: a flipped token must
//! surface as `EngineError::Cancelled` at the next row/block check,
//! and a cancelled statement must leave no partial state behind — no
//! half-applied DML, no half-built summary.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use nlq_engine::{Db, EngineError, ExecOptions};
use nlq_models::MatrixShape;
use nlq_storage::{Column, DataType, Schema, Table, Value};
use nlq_summary::{SummaryDef, SummaryError, SummaryStore};
use nlq_udf::ScalarUdf;

/// `trip(x)`: returns `x`, flipping the captured cancel token once it
/// has been called `after` times — a deterministic mid-scan cancel.
#[derive(Debug)]
struct TripAfter {
    token: Arc<AtomicBool>,
    after: u64,
    calls: AtomicU64,
}

impl ScalarUdf for TripAfter {
    fn name(&self) -> &str {
        "trip"
    }
    fn eval(&self, args: &[Value]) -> nlq_udf::Result<Value> {
        if self.calls.fetch_add(1, Ordering::SeqCst) + 1 >= self.after {
            self.token.store(true, Ordering::SeqCst);
        }
        Ok(args[0].clone())
    }
}

fn cancel_opts(token: &Arc<AtomicBool>) -> ExecOptions {
    ExecOptions {
        cancel: Some(Arc::clone(token)),
        ..ExecOptions::default()
    }
}

/// A single-partition Db (deterministic scan order) with `n` rows and
/// a `trip` UDF wired to `token`.
fn tripping_db(n: usize, token: &Arc<AtomicBool>, after: u64) -> Db {
    let db = Db::new(1);
    db.with_registry_mut(|r| {
        r.register_scalar(Arc::new(TripAfter {
            token: Arc::clone(token),
            after,
            calls: AtomicU64::new(0),
        }))
    });
    db.execute("CREATE TABLE T (i INT, X1 FLOAT)").unwrap();
    let values: Vec<String> = (0..n).map(|i| format!("({i}, {i}.5)")).collect();
    db.execute(&format!("INSERT INTO T VALUES {}", values.join(", ")))
        .unwrap();
    db
}

#[test]
fn pre_flipped_token_fails_before_any_work() {
    let token = Arc::new(AtomicBool::new(true));
    let db = tripping_db(10, &token, u64::MAX);
    match db.execute_with("SELECT sum(X1) FROM T", &cancel_opts(&token)) {
        Err(EngineError::Cancelled { rows_scanned }) => assert_eq!(rows_scanned, 0),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // The same statement without a token still runs.
    let rs = db.execute("SELECT count(*) FROM T").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(10));
}

#[test]
fn mid_scan_flip_cancels_a_select() {
    let token = Arc::new(AtomicBool::new(false));
    let db = tripping_db(100, &token, 5);
    let opts = ExecOptions {
        block_scan: Some(false), // row path: the token check is per row
        ..cancel_opts(&token)
    };
    match db.execute_with("SELECT trip(X1) FROM T", &opts) {
        Err(EngineError::Cancelled { rows_scanned }) => {
            assert!(
                (5..100).contains(&rows_scanned),
                "cancel landed mid-scan, scanned {rows_scanned}"
            );
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn mid_scan_flip_cancels_the_block_path() {
    // 5000 rows = several 1024-row blocks; the flip in block 1 is
    // caught by the per-block check before block 2.
    let token = Arc::new(AtomicBool::new(false));
    let db = tripping_db(5000, &token, 5);
    match db.execute_with("SELECT trip(X1) FROM T", &cancel_opts(&token)) {
        Err(EngineError::Cancelled { rows_scanned }) => {
            assert!(rows_scanned < 5000, "scanned {rows_scanned}");
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn cancelled_update_mutates_nothing() {
    let token = Arc::new(AtomicBool::new(false));
    let db = tripping_db(50, &token, 3);
    db.execute("CREATE SUMMARY s ON T (X1)").unwrap();
    let before = db.execute("SELECT sum(X1) FROM T").unwrap();

    match db.execute_with("UPDATE T SET X1 = trip(X1) + 1.0", &cancel_opts(&token)) {
        Err(EngineError::Cancelled { .. }) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }

    // Neither the table nor the summary saw any of the update.
    let after = db.execute("SELECT sum(X1) FROM T").unwrap();
    assert_eq!(before.value(0, 0), after.value(0, 0));
    assert!(
        after.stats.summary_path && after.stats.rows_scanned == 0,
        "summary must still answer without a scan: {:?}",
        after.stats
    );

    // The statement itself was fine — it succeeds without a token.
    db.execute("UPDATE T SET X1 = X1 + 1.0").unwrap();
    let bumped = db.execute("SELECT sum(X1) FROM T").unwrap();
    let want = before.value(0, 0).as_f64().unwrap() + 50.0;
    assert!((bumped.value(0, 0).as_f64().unwrap() - want).abs() < 1e-9);
}

#[test]
fn cancelled_delete_removes_nothing() {
    let token = Arc::new(AtomicBool::new(false));
    let db = tripping_db(50, &token, 2);
    match db.execute_with("DELETE FROM T WHERE trip(X1) >= 0.0", &cancel_opts(&token)) {
        Err(EngineError::Cancelled { .. }) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    let rs = db.execute("SELECT count(*) FROM T").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(50));
}

#[test]
fn stale_summary_rebuild_honors_the_token() {
    // Direct summary-store check: a cancelled rebuild reports
    // `SummaryError::Cancelled` and leaves the entry stale.
    let schema = Schema::new(vec![
        Column::new("i", DataType::Int),
        Column::new("x1", DataType::Float),
    ]);
    let mut table = Table::new(schema, 1);
    for i in 0..2000 {
        table
            .insert(vec![Value::Int(i), Value::Float(i as f64 * 0.5)])
            .unwrap();
    }
    let store = SummaryStore::new();
    store
        .create(
            SummaryDef {
                name: "s".into(),
                table: "t".into(),
                columns: vec!["x1".into()],
                shape: MatrixShape::Triangular,
                minmax: true,
                group_by: None,
            },
            &table,
        )
        .unwrap();
    let entry = store.get("s").unwrap();
    entry.mark_stale();
    assert!(!entry.is_fresh());

    let flipped = AtomicBool::new(true);
    match entry.rebuild_with_cancel(&table, Some(&flipped)) {
        Err(SummaryError::Cancelled { rows_scanned }) => assert_eq!(rows_scanned, 0),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert!(!entry.is_fresh(), "cancelled rebuild must stay stale");

    // Without the token the same rebuild completes.
    entry.rebuild_with_cancel(&table, None).unwrap();
    assert!(entry.is_fresh());
}

#[test]
fn stale_rebuild_through_the_query_path_respects_cancel() {
    // DELETE makes a minmax summary stale; the next aggregate wants a
    // rebuild. With a pre-flipped token the statement dies before
    // touching the entry, which must remain stale.
    let token = Arc::new(AtomicBool::new(false));
    let db = tripping_db(50, &token, u64::MAX);
    db.execute("CREATE SUMMARY s ON T (X1)").unwrap();
    db.execute("DELETE FROM T WHERE i = 0").unwrap();
    let entry = db.summaries().get("s").unwrap();
    assert!(!entry.is_fresh(), "DELETE must stale a minmax summary");

    token.store(true, Ordering::SeqCst);
    match db.execute_with("SELECT count(*), sum(X1) FROM T", &cancel_opts(&token)) {
        Err(EngineError::Cancelled { .. }) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert!(!entry.is_fresh(), "cancelled statement must not rebuild");

    // Cleared token: the query rebuilds and answers from the summary.
    token.store(false, Ordering::SeqCst);
    let rs = db
        .execute_with("SELECT count(*), sum(X1) FROM T", &cancel_opts(&token))
        .unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(49));
    assert!(rs.stats.summary_stale_rebuilds >= 1 || rs.stats.summary_path);
    assert!(entry.is_fresh());
}
