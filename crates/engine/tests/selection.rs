//! Selection-bitmap predicate evaluation: filtered queries on the
//! block path must reproduce the row interpreter's SQL three-valued
//! logic exactly, stale-summary rebuilds must account the rows they
//! scan, and Int columns beyond the exact-`f64` range must fall back
//! to the row path.

use nlq_engine::{sqlgen, Db, ExecOptions, ResultSet};
use nlq_linalg::Vector;
use nlq_udf::pack::unpack_nlq;

/// A table with NULL holes in both float columns.
fn holey_db() -> Db {
    let db = Db::new(2);
    db.execute("CREATE TABLE X (i INT, X1 FLOAT, X2 FLOAT)")
        .unwrap();
    let mut values = Vec::new();
    for i in 0..600 {
        let x1 = if i % 7 == 3 {
            "NULL".to_owned()
        } else {
            format!("{:.1}", (i % 23) as f64 - 11.0)
        };
        let x2 = if i % 11 == 5 {
            "NULL".to_owned()
        } else {
            format!("{:.1}", (i % 17) as f64 - 8.0)
        };
        values.push(format!("({}, {x1}, {x2})", i + 1));
    }
    db.execute(&format!("INSERT INTO X VALUES {}", values.join(", ")))
        .unwrap();
    db
}

fn assert_rows_close(block: &ResultSet, row: &ResultSet, tol: f64) {
    assert_eq!(block.rows.len(), row.rows.len(), "row count");
    for (i, (b, r)) in block.rows.iter().zip(&row.rows).enumerate() {
        assert_eq!(b.len(), r.len(), "row {i} width");
        for (j, (x, y)) in b.iter().zip(r).enumerate() {
            match (x.as_f64(), y.as_f64()) {
                (Some(x), Some(y)) => assert!(
                    (x - y).abs() <= tol * y.abs().max(1.0),
                    "row {i} col {j}: {x} vs {y}"
                ),
                _ => assert_eq!(x, y, "row {i} col {j}"),
            }
        }
    }
}

/// Runs `sql` on the block path (asserting it really took it) and on
/// the row path, and checks the results agree.
fn block_vs_row(db: &Db, sql: &str) -> ResultSet {
    let block = db.execute(sql).unwrap();
    assert!(block.stats.block_path, "expected block path: {sql}");
    let row = db
        .execute_with(
            sql,
            &ExecOptions {
                block_scan: Some(false),
                ..ExecOptions::default()
            },
        )
        .unwrap();
    assert!(!row.stats.block_path);
    assert_rows_close(&block, &row, 1e-12);
    block
}

fn plan_text(db: &Db, sql: &str) -> String {
    db.execute(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_str().unwrap().to_owned())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn null_predicate_under_not_keeps_three_valued_logic() {
    let db = holey_db();
    // `NOT (X1 > 0)` on a NULL coordinate is NOT unknown = unknown:
    // the row must stay excluded, not flip to included as a boolean
    // `false` would under negation.
    for sql in [
        "SELECT count(*), sum(X2) FROM X WHERE NOT (X1 > 0)",
        "SELECT i, X1 FROM X WHERE NOT (X1 > 0)",
        "SELECT count(*) FROM X WHERE NOT (X1 > 0 AND X2 > 0)",
    ] {
        block_vs_row(&db, sql);
    }
}

#[test]
fn null_predicate_under_or_keeps_three_valued_logic() {
    let db = holey_db();
    // `unknown OR true` is true: a NULL X1 with a qualifying X2 must
    // stay included.
    for sql in [
        "SELECT count(*), sum(X1), sum(X2) FROM X WHERE X1 > 2 OR X2 > 2",
        "SELECT i FROM X WHERE X1 > 2 OR X2 > 2",
        "SELECT count(*) FROM X WHERE NOT (X1 > 2 OR X2 > 2)",
    ] {
        block_vs_row(&db, sql);
    }
}

#[test]
fn filtered_aggregates_match_row_path() {
    let db = holey_db();
    for sql in [
        "SELECT count(*), count(X1), sum(X1), avg(X2) FROM X WHERE X2 >= 3",
        "SELECT min(X1), max(X1) FROM X WHERE X2 < -6",
        "SELECT corr(X1, X2), stddev(X1) FROM X WHERE X1 <> 0",
        "SELECT sum(X1 * X2) FROM X WHERE X1 <= X2",
        "SELECT count(*) FROM X WHERE X1 IS NULL",
        "SELECT sum(X1) FROM X WHERE X1 IS NOT NULL AND X2 IS NULL",
        // Predicate over an Int column (widened in the block scan).
        "SELECT sum(X2) FROM X WHERE i > 550 OR X1 > 10",
        // Arithmetic inside a predicate is outside the compilable
        // subset and must fall back to the row path.
        "SELECT sum(X2) FROM X WHERE i % 2 = 0 OR i > 550",
        // Selection that keeps no rows at all.
        "SELECT count(*), sum(X1), min(X2) FROM X WHERE X1 > 1000",
    ] {
        let rs = db.execute(sql).unwrap();
        if sql.contains('%') {
            // `%` is arithmetic: not block-compilable, row path.
            assert!(!rs.stats.block_path, "{sql}");
            continue;
        }
        block_vs_row(&db, sql);
    }
}

#[test]
fn filtered_nlq_udf_matches_row_path() {
    let db = holey_db();
    let sql = "SELECT nlq_list(2, 'full', X1, X2) FROM X WHERE X1 > -5 AND X2 <= 4";
    let block = db.execute(sql).unwrap();
    assert!(block.stats.block_path, "{sql}");
    let row = db
        .execute_with(
            sql,
            &ExecOptions {
                block_scan: Some(false),
                ..ExecOptions::default()
            },
        )
        .unwrap();
    // Compare the packed Γ payloads after unpacking: the selection
    // bitmap must feed the UDF exactly the rows the interpreter kept.
    assert_eq!(block.rows.len(), row.rows.len());
    let unpack = |rs: &ResultSet| unpack_nlq(rs.value(0, 0).as_str().unwrap()).unwrap();
    let (b, r) = (unpack(&block), unpack(&row));
    assert_eq!(b.d(), r.d());
    assert_eq!(b.n(), r.n());
    for i in 0..b.d() {
        let (x, y) = (b.l()[i], r.l()[i]);
        assert!(
            (x - y).abs() <= 1e-12 * y.abs().max(1.0),
            "L[{i}]: {x} vs {y}"
        );
        for j in 0..b.d() {
            let (x, y) = (b.q_full()[(i, j)], r.q_full()[(i, j)]);
            assert!(
                (x - y).abs() <= 1e-12 * y.abs().max(1.0),
                "Q[{i},{j}]: {x} vs {y}"
            );
        }
    }
}

#[test]
fn filtered_scoring_query_runs_vectorized() {
    let db = Db::new(4);
    let rows: Vec<Vec<f64>> = (0..3000)
        .map(|i| {
            (0..3)
                .map(|a| ((i * 31 + a * 7) % 97) as f64 * 0.5 - 20.0)
                .collect()
        })
        .collect();
    db.load_points("X", &rows, false).unwrap();
    db.register_beta("BETA", 2.5, &Vector::from_vec(vec![0.25, -1.5, 3.0]))
        .unwrap();
    let names = sqlgen::x_cols(3);
    let score = sqlgen::score_regression_udf("X", &names, "BETA");
    // Append a WHERE to the scoring join: the predicate touches only
    // base columns, so it compiles to a selection bitmap while the
    // model coefficients stay per-scan constants.
    let filtered = format!("{score} WHERE x.X1 > 0 OR x.X2 > 10");

    let block = block_vs_row(&db, &filtered);
    assert!(!block.rows.is_empty());
    let plan = plan_text(&db, &format!("EXPLAIN {filtered}"));
    assert!(
        plan.contains("scan mode: block") && plan.contains("predicate(s) as selection bitmap"),
        "{plan}"
    );

    // LIMIT composes with the selection (workers stop early).
    let limited = db.execute(&format!("{filtered} LIMIT 5")).unwrap();
    assert!(limited.stats.block_path);
    assert_eq!(limited.rows.len(), 5);
}

#[test]
fn int_columns_beyond_exact_f64_range_fall_back() {
    let exact = 1i64 << 53;
    let db = Db::new(2);
    db.execute("CREATE TABLE B (v INT, X1 FLOAT)").unwrap();
    db.execute(&format!("INSERT INTO B VALUES ({exact}, 1.0), (3, 2.0)"))
        .unwrap();
    // 2^53 itself round-trips exactly: block path, exact value.
    let rs = db.execute("SELECT v FROM B").unwrap();
    assert!(rs.stats.block_path);
    assert_eq!(rs.value(0, 0), &nlq_storage::Value::Int(exact));

    // 2^53 + 1 does not: the planner must refuse the widening and the
    // row path must return the value un-mangled.
    db.execute(&format!("INSERT INTO B VALUES ({}, 3.0)", exact + 1))
        .unwrap();
    let plan = plan_text(&db, "EXPLAIN SELECT v FROM B");
    assert!(plan.contains("exceeds the exact f64 range"), "{plan}");
    let rs = db.execute("SELECT v FROM B").unwrap();
    assert!(!rs.stats.block_path);
    assert!(
        rs.rows
            .iter()
            .any(|r| r[0] == nlq_storage::Value::Int(exact + 1)),
        "row path must preserve 2^53 + 1 exactly"
    );

    // A negative overflow on the other side of the range too.
    let db2 = Db::new(2);
    db2.execute("CREATE TABLE C (v INT, X1 FLOAT)").unwrap();
    db2.execute(&format!("INSERT INTO C VALUES ({}, 1.0)", -(exact + 1)))
        .unwrap();
    let rs = db2.execute("SELECT v FROM C").unwrap();
    assert!(!rs.stats.block_path);
    assert_eq!(rs.value(0, 0), &nlq_storage::Value::Int(-(exact + 1)));

    // Predicates on huge Int columns are fine: both paths compare in
    // widened f64 (`Value::sql_cmp` does the same), so the block path
    // stays eligible when the projections avoid the Int column.
    let rs = db
        .execute(&format!("SELECT X1 FROM B WHERE v >= {exact}"))
        .unwrap();
    assert!(rs.stats.block_path);
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn stale_summary_rebuild_reports_scanned_rows() {
    let db = Db::new(2);
    let rows: Vec<Vec<f64>> = (0..600)
        .map(|i| vec![(i % 23) as f64 - 11.0, (i % 17) as f64 - 8.0])
        .collect();
    db.load_points("X", &rows, false).unwrap();
    db.execute("CREATE SUMMARY sx ON X (X1, X2)").unwrap();
    // Freshly built: answered with no scan.
    let rs = db.execute("SELECT sum(X1) FROM X").unwrap();
    assert!(rs.stats.summary_path);
    assert_eq!(rs.stats.rows_scanned, 0);

    // DELETE marks the min/max summary stale; the next read rebuilds
    // on the spot by scanning the whole table, and must say so instead
    // of reporting a free answer.
    db.execute("DELETE FROM X WHERE i > 599").unwrap();
    let rs = db.execute("SELECT sum(X1) FROM X").unwrap();
    assert!(rs.stats.summary_path);
    assert_eq!(rs.stats.summary_stale_rebuilds, 1);
    assert_eq!(rs.stats.summary_rebuild_rows, 599);
    assert_eq!(rs.stats.rows_scanned, 599);

    // EXPLAIN ANALYZE surfaces the same through the phase spans: the
    // rebuild rows ride the summary-lookup span, not a phantom scan.
    db.execute("UPDATE X SET X1 = 0.5 WHERE i = 1").unwrap();
    let plan = plan_text(&db, "EXPLAIN ANALYZE SELECT sum(X1) FROM X");
    let lookup = plan
        .lines()
        .find(|l| l.starts_with("phase summary-lookup: "))
        .unwrap_or_else(|| panic!("no summary-lookup span: {plan}"));
    assert!(lookup.contains("rows=599"), "{plan}");
    assert!(!plan.contains("phase scan: "), "{plan}");
    assert!(plan.contains("rows scanned: 599"), "{plan}");
    assert!(plan.contains("1 stale rebuild(s)"), "{plan}");
    assert!(
        plan.contains("scan mode: summary (stale; rebuilt by scanning the base table"),
        "{plan}"
    );
}
