//! End-to-end tests for the materialized Γ summary store: DDL, the
//! planner rewrite, incremental maintenance under INSERT, the
//! stale/rebuild lifecycle under DELETE/UPDATE, and EXPLAIN output
//! (including the block-path fallback reasons).

use nlq_engine::Db;
use nlq_models::Nlq;
use nlq_udf::pack::unpack_nlq;

fn plan_text(db: &Db, sql: &str) -> String {
    let rs = db.execute(sql).unwrap();
    rs.rows
        .iter()
        .map(|r| r[0].as_str().unwrap().to_owned())
        .collect::<Vec<_>>()
        .join("\n")
}

fn points_db(n: usize, d: usize) -> Db {
    let db = Db::new(4);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|a| (i * (a + 1)) as f64 * 0.25 - (a as f64))
                .collect()
        })
        .collect();
    db.load_points("pts", &rows, false).unwrap();
    db
}

fn unpack_cell(db: &Db, sql: &str) -> (Nlq, nlq_engine::ExecStats) {
    let rs = db.execute(sql).unwrap();
    let packed = rs.value(0, 0).as_str().expect("packed nLQ string");
    (unpack_nlq(packed).unwrap(), rs.stats)
}

fn assert_nlq_close(a: &Nlq, b: &Nlq, tol: f64) {
    assert_eq!(a.d(), b.d());
    assert_eq!(a.n(), b.n());
    for i in 0..a.d() {
        let (x, y) = (a.l()[i], b.l()[i]);
        assert!(
            (x - y).abs() <= tol * y.abs().max(1.0),
            "L[{i}]: {x} vs {y}"
        );
        for j in 0..a.d() {
            let (x, y) = (a.q_full()[(i, j)], b.q_full()[(i, j)]);
            assert!(
                (x - y).abs() <= tol * y.abs().max(1.0),
                "Q[{i},{j}]: {x} vs {y}"
            );
        }
    }
}

#[test]
fn summary_lifecycle_matches_block_scan() {
    let db = points_db(5000, 4);
    let q = "SELECT nlq_list(4, 'triang', X1, X2, X3, X4) FROM pts";

    // Baseline: the block scan answers, no summary registered.
    let (scan0, stats) = unpack_cell(&db, q);
    assert!(stats.block_path && !stats.summary_path);

    db.execute("CREATE SUMMARY s ON pts (X1, X2, X3, X4)")
        .unwrap();
    assert_eq!(
        db.summaries().list(),
        vec![("s".into(), "pts".into(), true)]
    );

    // Hit: answered from the summary with no scan at all, identical
    // statistics to within 1e-12 relative.
    let (hit, stats) = unpack_cell(&db, q);
    assert!(stats.summary_path, "{stats:?}");
    assert_eq!(stats.summary_hits, 1);
    assert_eq!(stats.rows_scanned, 0);
    assert_eq!(stats.blocks_scanned, 0);
    assert_nlq_close(&hit, &scan0, 1e-12);
    let plan = plan_text(&db, &format!("EXPLAIN {q}"));
    assert!(plan.contains("scan mode: summary (s, fresh)"), "{plan}");

    // INSERT folds the delta in: the summary stays fresh and keeps
    // matching a from-scratch scan exactly.
    db.execute(
        "INSERT INTO pts VALUES (5001, 3.5, -1.25, 8.0, 0.5), \
         (5002, -2.0, 4.75, 1.0, 9.5)",
    )
    .unwrap();
    let (hit, stats) = unpack_cell(&db, q);
    assert!(stats.summary_path && stats.summary_stale_rebuilds == 0);
    assert_eq!(hit.n(), 5002.0);

    // DELETE marks it stale; the next read rebuilds on the spot.
    db.execute("DELETE FROM pts WHERE i <= 100").unwrap();
    let plan = plan_text(&db, &format!("EXPLAIN {q}"));
    assert!(
        plan.contains("scan mode: summary (s, stale; rebuilt on execute)"),
        "{plan}"
    );
    let (rebuilt, stats) = unpack_cell(&db, q);
    assert!(stats.summary_path);
    assert_eq!(stats.summary_stale_rebuilds, 1);
    assert_eq!(rebuilt.n(), 4902.0);

    // Drop the summary: the same query falls back to the block scan
    // and agrees with the rebuilt answer to within 1e-12.
    db.execute("DROP SUMMARY s").unwrap();
    let (scan1, stats) = unpack_cell(&db, q);
    assert!(!stats.summary_path && stats.block_path);
    assert_nlq_close(&rebuilt, &scan1, 1e-12);
}

#[test]
fn summary_answers_plain_aggregates_and_projections() {
    let db = points_db(2000, 2);
    db.execute("CREATE SUMMARY s2 ON pts (X1, X2) SHAPE full")
        .unwrap();

    let q = "SELECT count(*), avg(X1), sum(X2), min(X1), max(X2), \
             var_pop(X1), covar_pop(X1, X2), corr(X1, X2) FROM pts";
    let with = db.execute(q).unwrap();
    assert!(with.stats.summary_path);
    assert_eq!(with.stats.rows_scanned, 0);

    db.execute("DROP SUMMARY s2").unwrap();
    let without = db.execute(q).unwrap();
    assert!(!without.stats.summary_path);

    assert_eq!(with.value(0, 0), without.value(0, 0)); // count
    for c in 1..8 {
        let (a, b) = (with.f64(0, c).unwrap(), without.f64(0, c).unwrap());
        assert!(
            (a - b).abs() <= 1e-12 * b.abs().max(1.0),
            "col {c}: {a} vs {b}"
        );
    }

    // A projected sub-Γ in a different column order also hits.
    let (hit, stats) = unpack_cell(
        &db2_with_summary(),
        "SELECT nlq_list(1, 'diag', X2) FROM pts",
    );
    assert!(stats.summary_path);
    assert_eq!(hit.d(), 1);
}

fn db2_with_summary() -> Db {
    let db = points_db(2000, 2);
    db.execute("CREATE SUMMARY s2 ON pts (X1, X2) SHAPE full")
        .unwrap();
    db
}

#[test]
fn grouped_summary_answers_group_by() {
    let db = Db::new(3);
    let rows: Vec<Vec<f64>> = (0..600)
        .map(|i| vec![(i as f64) * 0.5, (i % 5) as f64])
        .collect();
    // X(i, X1, Y): group on Y.
    db.load_points("pts", &rows, true).unwrap();
    db.execute("CREATE SUMMARY g ON pts (X1) SHAPE diag GROUP BY Y")
        .unwrap();

    let q = "SELECT Y, count(*), avg(X1), nlq_list(1, 'diag', X1) FROM pts GROUP BY Y";
    let with = db.execute(q).unwrap();
    assert!(with.stats.summary_path, "{:?}", with.stats);
    assert_eq!(with.len(), 5);

    db.execute("DROP SUMMARY g").unwrap();
    let without = db.execute(q).unwrap();
    assert!(!without.stats.summary_path);
    assert_eq!(with.len(), without.len());
    for r in 0..with.len() {
        assert_eq!(with.value(r, 0), without.value(r, 0));
        assert_eq!(with.value(r, 1), without.value(r, 1));
        let (a, b) = (with.f64(r, 2).unwrap(), without.f64(r, 2).unwrap());
        assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0));
        let x = unpack_nlq(with.value(r, 3).as_str().unwrap()).unwrap();
        let y = unpack_nlq(without.value(r, 3).as_str().unwrap()).unwrap();
        assert_nlq_close(&x, &y, 1e-12);
    }
}

#[test]
fn summary_misses_fall_back_to_scan() {
    let db = points_db(500, 2);
    db.execute("CREATE SUMMARY s ON pts (X1)").unwrap();

    // X2 is not summarized: structural mismatch, counted as a miss.
    let rs = db.execute("SELECT avg(X2) FROM pts").unwrap();
    assert!(!rs.stats.summary_path);
    assert_eq!(rs.stats.summary_misses, 1);

    // A WHERE predicate disqualifies the rewrite outright (no miss:
    // the summary was never a candidate for a filtered scan).
    let rs = db.execute("SELECT avg(X1) FROM pts WHERE X2 > 0").unwrap();
    assert!(!rs.stats.summary_path);
    assert_eq!(rs.stats.summary_misses, 0);

    // A triangular summary cannot serve a full-shape nLQ request.
    let rs = db
        .execute("SELECT nlq_list(1, 'full', X1) FROM pts")
        .unwrap();
    assert!(!rs.stats.summary_path);
    assert_eq!(rs.stats.summary_misses, 1);
}

#[test]
fn null_rows_restrict_plain_aggregates_but_not_full_nlq() {
    let db = Db::new(2);
    db.execute("CREATE TABLE t (x FLOAT, y FLOAT)").unwrap();
    db.execute("INSERT INTO t VALUES (1.0, 2.0), (NULL, 3.0), (4.0, 5.0)")
        .unwrap();
    db.execute("CREATE SUMMARY s ON t (x, y)").unwrap();

    // count(*) counts the NULL-bearing row; the summary's n does not —
    // it must NOT answer (and the scan result must stay correct).
    let rs = db.execute("SELECT count(*) FROM t").unwrap();
    assert!(!rs.stats.summary_path);
    assert_eq!(rs.value(0, 0), &nlq_storage::Value::Int(3));

    // The full-width nLQ has the same row-skip rule as the summary,
    // so it still hits.
    let rs = db
        .execute("SELECT nlq_list(2, 'triang', x, y) FROM t")
        .unwrap();
    assert!(rs.stats.summary_path);
    let nlq = unpack_nlq(rs.value(0, 0).as_str().unwrap()).unwrap();
    assert_eq!(nlq.n(), 2.0);

    // A strict-subset projection would have a different skip set: miss.
    let rs = db.execute("SELECT nlq_list(1, 'diag', y) FROM t").unwrap();
    assert!(!rs.stats.summary_path);
}

#[test]
fn summary_ddl_errors() {
    let db = points_db(10, 2);
    db.execute("CREATE SUMMARY s ON pts (X1)").unwrap();
    assert!(db.execute("CREATE SUMMARY s ON pts (X2)").is_err()); // duplicate
    assert!(db.execute("CREATE SUMMARY t ON nope (X1)").is_err()); // unknown table
    assert!(db.execute("CREATE SUMMARY t ON pts (zzz)").is_err()); // unknown column
    assert!(db.execute("CREATE SUMMARY t ON pts (i)").is_err()); // not float
    assert!(db
        .execute("CREATE SUMMARY t ON pts (X1) SHAPE oval")
        .is_err());
    assert!(db.execute("DROP SUMMARY nope").is_err());
    db.execute("DROP SUMMARY s").unwrap();
    assert!(db.summaries().is_empty());

    // DROP TABLE takes its summaries with it.
    db.execute("CREATE SUMMARY s ON pts (X1)").unwrap();
    db.execute("DROP TABLE pts").unwrap();
    assert!(db.summaries().is_empty());
}

#[test]
fn update_marks_stale_and_rebuild_reflects_new_values() {
    let db = points_db(100, 2);
    db.execute("CREATE SUMMARY s ON pts (X1, X2)").unwrap();
    db.execute("UPDATE pts SET X1 = X1 + 100.0 WHERE i <= 50")
        .unwrap();
    let entry = db.summaries().get("s").unwrap();
    assert!(!entry.is_fresh());

    let q = "SELECT nlq_list(2, 'triang', X1, X2) FROM pts";
    let (rebuilt, stats) = unpack_cell(&db, q);
    assert_eq!(stats.summary_stale_rebuilds, 1);
    db.execute("DROP SUMMARY s").unwrap();
    let (scan, _) = unpack_cell(&db, q);
    assert_nlq_close(&rebuilt, &scan, 1e-12);
}

#[test]
fn explain_states_block_fallback_reason() {
    let db = points_db(100, 2);

    let plan = plan_text(&db, "EXPLAIN SELECT X2, sum(X1) FROM pts GROUP BY X2");
    assert!(
        plan.contains("scan mode: row-at-a-time (GROUP BY requires row grouping)"),
        "{plan}"
    );

    // A comparison predicate compiles to a selection bitmap and stays
    // on the block path; an arithmetic one does not and falls back.
    let plan = plan_text(&db, "EXPLAIN SELECT sum(X1) FROM pts WHERE X2 > 1");
    assert!(
        plan.contains("1 predicate(s) as selection bitmap"),
        "{plan}"
    );
    let plan = plan_text(&db, "EXPLAIN SELECT sum(X1) FROM pts WHERE X1 * X2 > 1");
    assert!(
        plan.contains("scan mode: row-at-a-time (1 residual predicate(s) not block-compilable)"),
        "{plan}"
    );

    let plan = plan_text(&db, "EXPLAIN SELECT sum(i) FROM pts");
    assert!(
        plan.contains(
            "scan mode: row-at-a-time (aggregate arguments are not all float base-table columns)"
        ),
        "{plan}"
    );

    let db = points_db(100, 2);
    db.set_block_scan(false);
    let plan = plan_text(&db, "EXPLAIN SELECT sum(X1) FROM pts");
    assert!(
        plan.contains("scan mode: row-at-a-time (block scan disabled)"),
        "{plan}"
    );
}

#[test]
fn delete_folds_into_no_minmax_summary() {
    let db = points_db(400, 2);
    db.execute("CREATE SUMMARY s ON pts (X1, X2) SHAPE diag NO MINMAX")
        .unwrap();

    // DELETE subtracts the removed rows' Γ contribution instead of
    // marking the summary stale: no min/max means exact inversion.
    db.execute("DELETE FROM pts WHERE i <= 150").unwrap();
    let entry = db.summaries().get("s").unwrap();
    assert!(entry.is_fresh(), "NO MINMAX summary must stay fresh");

    let q = "SELECT nlq_list(2, 'diag', X1, X2) FROM pts";
    let (folded, stats) = unpack_cell(&db, q);
    assert!(stats.summary_path, "{stats:?}");
    assert_eq!(stats.rows_scanned, 0, "DELETE must not force a rescan");
    assert_eq!(stats.summary_stale_rebuilds, 0);
    assert_eq!(folded.n(), 250.0);

    // Plain aggregates also answer scan-free from the folded summary.
    let rs = db
        .execute("SELECT count(*), sum(X1), avg(X2) FROM pts")
        .unwrap();
    assert!(rs.stats.summary_path);
    assert_eq!(rs.stats.rows_scanned, 0);

    // Both agree with a from-scratch block scan.
    db.execute("DROP SUMMARY s").unwrap();
    let (scan, stats) = unpack_cell(&db, q);
    assert!(stats.block_path);
    assert_nlq_close(&folded, &scan, 1e-12);
}

#[test]
fn no_minmax_summary_does_not_answer_min_max() {
    let db = points_db(100, 2);
    db.execute("CREATE SUMMARY s ON pts (X1, X2) NO MINMAX")
        .unwrap();

    // min/max recipes are gated off: these fall back to the scan.
    let rs = db.execute("SELECT min(X1), max(X2) FROM pts").unwrap();
    assert!(!rs.stats.summary_path, "{:?}", rs.stats);
    assert!(rs.stats.rows_scanned > 0);

    // ... while moment aggregates still hit the summary.
    let rs = db.execute("SELECT sum(X1), count(X2) FROM pts").unwrap();
    assert!(rs.stats.summary_path);
}

#[test]
fn delete_still_marks_minmax_summary_stale() {
    let db = points_db(100, 2);
    db.execute("CREATE SUMMARY s ON pts (X1, X2)").unwrap();
    db.execute("DELETE FROM pts WHERE i <= 10").unwrap();
    let entry = db.summaries().get("s").unwrap();
    assert!(
        !entry.is_fresh(),
        "min/max summaries cannot invert DELETE and must go stale"
    );
}

#[test]
fn delete_with_null_coordinates_folds_exactly() {
    let db = Db::new(2);
    db.execute("CREATE TABLE pts (i INT, X1 FLOAT, X2 FLOAT)")
        .unwrap();
    db.execute(
        "INSERT INTO pts VALUES (1, 1.0, 2.0), (2, NULL, 3.0), \
         (3, 4.0, 5.0), (4, 2.5, NULL), (5, -1.0, 0.5)",
    )
    .unwrap();
    db.execute("CREATE SUMMARY s ON pts (X1, X2) NO MINMAX")
        .unwrap();

    // Deleted batch mixes complete rows and NULL-coordinate rows; the
    // latter only decrement the null-skip counter.
    db.execute("DELETE FROM pts WHERE i <= 2").unwrap();
    assert!(db.summaries().get("s").unwrap().is_fresh());

    let q = "SELECT nlq_list(2, 'triang', X1, X2) FROM pts";
    let (folded, stats) = unpack_cell(&db, q);
    assert!(stats.summary_path && stats.rows_scanned == 0);
    assert_eq!(folded.n(), 2.0); // rows 3 and 5; row 4 has a NULL

    db.execute("DROP SUMMARY s").unwrap();
    let (scan, _) = unpack_cell(&db, q);
    assert_nlq_close(&folded, &scan, 1e-12);
}
