//! Block-decoded scalar scoring (§3.5): the all-numeric scoring
//! queries (`linearregscore`, `clusterscore`) must take the
//! block-at-a-time path and produce results identical to the
//! row-at-a-time interpreter to within 1e-12.

use nlq_engine::{sqlgen, Db, ExecOptions, ResultSet};
use nlq_linalg::Vector;

fn scoring_db(n: usize, d: usize) -> Db {
    let db = Db::new(4);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|a| ((i * 31 + a * 7) % 97) as f64 * 0.5 - 20.0)
                .collect()
        })
        .collect();
    db.load_points("X", &rows, false).unwrap();
    db
}

fn assert_rows_close(block: &ResultSet, row: &ResultSet, tol: f64) {
    assert_eq!(block.rows.len(), row.rows.len());
    for (i, (b, r)) in block.rows.iter().zip(&row.rows).enumerate() {
        assert_eq!(b.len(), r.len(), "row {i} width");
        for (j, (x, y)) in b.iter().zip(r).enumerate() {
            match (x.as_f64(), y.as_f64()) {
                (Some(x), Some(y)) => assert!(
                    (x - y).abs() <= tol * y.abs().max(1.0),
                    "row {i} col {j}: {x} vs {y}"
                ),
                _ => assert_eq!(x, y, "row {i} col {j}"),
            }
        }
    }
}

/// Runs `sql` once on the block path and once on the row path (via the
/// per-statement override) and checks both stats and values.
fn block_vs_row(db: &Db, sql: &str) -> (ResultSet, ResultSet) {
    let block = db.execute(sql).unwrap();
    assert!(block.stats.block_path, "expected block path: {sql}");
    assert!(block.stats.blocks_scanned > 0);
    let row = db
        .execute_with(
            sql,
            &ExecOptions {
                block_scan: Some(false),
                ..ExecOptions::default()
            },
        )
        .unwrap();
    assert!(!row.stats.block_path);
    assert_eq!(row.stats.blocks_scanned, 0);
    assert_rows_close(&block, &row, 1e-12);
    (block, row)
}

#[test]
fn linearregscore_matches_row_path() {
    let db = scoring_db(3000, 4);
    let beta = Vector::from_vec(vec![0.25, -1.5, 3.0, 0.125]);
    db.register_beta("BETA", 2.5, &beta).unwrap();
    let names = sqlgen::x_cols(4);
    let sql = sqlgen::score_regression_udf("X", &names, "BETA");

    let (block, _) = block_vs_row(&db, &sql);
    assert_eq!(block.rows.len(), 3000);
    // The id column survives the block path as a real Int.
    assert_eq!(block.value(0, 0), &nlq_storage::Value::Int(1));
}

#[test]
fn clusterscore_matches_row_path() {
    let db = scoring_db(2000, 2);
    let centroids: Vec<Vector> = (0..8)
        .map(|j| Vector::from_vec(vec![j as f64 * 3.0 - 10.0, 5.0 - j as f64]))
        .collect();
    db.register_centroids("C", &centroids).unwrap();
    let names = sqlgen::x_cols(2);
    // Nested calls: clusterscore(distance(...), ...) — the pushdown
    // collapses the 8-way centroid join to one combination, so the
    // centroid coordinates compile to per-scan constants.
    let sql = sqlgen::score_cluster_udf("X", &names, 8, "C");
    block_vs_row(&db, &sql);
}

#[test]
fn block_path_handles_nulls_and_limit() {
    let db = Db::new(2);
    db.execute("CREATE TABLE X (i INT, X1 FLOAT, X2 FLOAT)")
        .unwrap();
    db.execute(
        "INSERT INTO X VALUES (1, 1.0, 2.0), (2, NULL, 3.0), \
         (3, 4.0, NULL), (4, 2.0, 1.0)",
    )
    .unwrap();
    db.register_beta("BETA", 1.0, &Vector::from_vec(vec![2.0, -1.0]))
        .unwrap();
    let names = sqlgen::x_cols(2);
    let sql = sqlgen::score_regression_udf("X", &names, "BETA");

    let (block, row) = block_vs_row(&db, &sql);
    assert_eq!(block.rows.len(), 4);
    assert_eq!(block.rows[1][1], row.rows[1][1], "NULL rows agree");

    let limited = db.execute(&format!("{sql} LIMIT 2")).unwrap();
    assert!(limited.stats.block_path);
    assert_eq!(limited.rows.len(), 2);
}

#[test]
fn explain_reports_block_mode_for_scoring() {
    let db = scoring_db(100, 2);
    db.register_beta("BETA", 0.0, &Vector::from_vec(vec![1.0, 1.0]))
        .unwrap();
    let names = sqlgen::x_cols(2);
    let sql = sqlgen::score_regression_udf("X", &names, "BETA");

    let plan: Vec<String> = db
        .execute(&format!("EXPLAIN {sql}"))
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_str().unwrap().to_owned())
        .collect();
    let plan = plan.join("\n");
    assert!(
        plan.contains("scan mode: block (1024-row column blocks over 3 numeric column(s))"),
        "{plan}"
    );

    // ORDER BY forces the row interpreter (and EXPLAIN says so).
    let plan_row = db
        .execute(&format!("EXPLAIN {sql} ORDER BY 1 DESC"))
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_str().unwrap().to_owned())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(plan_row.contains("scan mode: row-at-a-time"), "{plan_row}");
}
