//! Tests for EXPLAIN: the plan text must reflect the executor's
//! actual decisions (pushdown, join sizing, fast paths, aggregation).

use nlq_engine::{sqlgen, Db};
use nlq_models::MatrixShape;

fn plan_text(db: &Db, sql: &str) -> String {
    let rs = db.execute(sql).unwrap();
    assert_eq!(rs.columns, vec!["plan"]);
    rs.rows
        .iter()
        .map(|r| r[0].as_str().unwrap().to_owned())
        .collect::<Vec<_>>()
        .join("\n")
}

fn scoring_db() -> Db {
    let db = Db::new(4);
    let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, (i % 7) as f64]).collect();
    db.load_points("X", &rows, false).unwrap();
    db
}

#[test]
fn explain_simple_scan() {
    let db = scoring_db();
    let plan = plan_text(&db, "EXPLAIN SELECT X1, X2 FROM X WHERE X1 > 10");
    assert!(
        plan.contains("scan X (100 rows, 4 partitions, 4 workers)"),
        "{plan}"
    );
    assert!(plan.contains("filter: 1 residual predicate(s)"), "{plan}");
    assert!(plan.contains("project: 2 expression(s)"), "{plan}");
}

#[test]
fn explain_shows_pushdown_collapsing_the_join() {
    let db = scoring_db();
    // 16-centroid scoring: 16 aliases of C, each pinned by WHERE.
    let centroids: Vec<nlq_linalg::Vector> = (0..16)
        .map(|j| nlq_linalg::Vector::from_vec(vec![j as f64, 0.0]))
        .collect();
    db.register_centroids("C", &centroids).unwrap();
    let names = sqlgen::x_cols(2);
    let sql = format!(
        "EXPLAIN {}",
        sqlgen::score_cluster_udf("X", &names, 16, "C")
    );
    let plan = plan_text(&db, &sql);
    // Without pushdown this product would be 16^16; with it, exactly 1.
    assert!(
        plan.contains("-> 1 combination(s) after pushing 16 predicate(s)"),
        "{plan}"
    );
}

#[test]
fn explain_aggregate_counts_fast_paths_and_udfs() {
    let db = scoring_db();
    let names = sqlgen::x_cols(2);
    // The paper's long SQL query: 1 + d + d(d+1)/2 = 6 sum() terms at
    // d = 2 (plus 1 null placeholder) — all fast-path candidates.
    let sql = format!(
        "EXPLAIN {}",
        sqlgen::nlq_sql_query("X", &names, MatrixShape::Triangular)
    );
    let plan = plan_text(&db, &sql);
    assert!(
        plan.contains("aggregate: 6 call(s) (6 fast-path candidate(s), 0 UDF state(s))"),
        "{plan}"
    );

    // The UDF form: exactly one aggregate call, one UDF state.
    let sql = format!(
        "EXPLAIN {}",
        sqlgen::nlq_udf_query(
            "X",
            &names,
            MatrixShape::Triangular,
            nlq_udf::ParamStyle::List
        )
    );
    let plan = plan_text(&db, &sql);
    assert!(
        plan.contains("aggregate: 1 call(s) (0 fast-path candidate(s), 1 UDF state(s))"),
        "{plan}"
    );
}

#[test]
fn explain_group_order_limit() {
    let db = scoring_db();
    let plan = plan_text(
        &db,
        "EXPLAIN SELECT X2, count(*) FROM X GROUP BY X2 HAVING count(*) > 5 \
         ORDER BY count(*) DESC LIMIT 3",
    );
    assert!(plan.contains("group by 1 key(s)"), "{plan}");
    assert!(plan.contains("having: post-aggregation filter"), "{plan}");
    assert!(plan.contains("order by: 1 key(s)"), "{plan}");
    assert!(plan.contains("limit: 3"), "{plan}");
}

#[test]
fn explain_reports_scan_mode() {
    let db = scoring_db();
    let names = sqlgen::x_cols(2);

    // All-numeric aggregate pipeline, no predicates → block mode,
    // over the 2 projected float columns.
    let sql = format!(
        "EXPLAIN {}",
        sqlgen::nlq_udf_query(
            "X",
            &names,
            MatrixShape::Triangular,
            nlq_udf::ParamStyle::List
        )
    );
    let plan = plan_text(&db, &sql);
    assert!(
        plan.contains("scan mode: block (1024-row column blocks over 2 float column(s))"),
        "{plan}"
    );

    // A compilable residual predicate stays on the block path as a
    // selection bitmap.
    let plan = plan_text(&db, "EXPLAIN SELECT sum(X1) FROM X WHERE X2 > 1");
    assert!(
        plan.contains("scan mode: block") && plan.contains("1 predicate(s) as selection bitmap"),
        "{plan}"
    );

    // A predicate outside the compilable subset (arithmetic) forces
    // the row path.
    let plan = plan_text(&db, "EXPLAIN SELECT sum(X1) FROM X WHERE X1 + X2 > 1");
    assert!(
        plan.contains("scan mode: row-at-a-time (1 residual predicate(s) not block-compilable)"),
        "{plan}"
    );

    // GROUP BY forces the row path.
    let plan = plan_text(&db, "EXPLAIN SELECT X2, sum(X1) FROM X GROUP BY X2");
    assert!(plan.contains("scan mode: row-at-a-time"), "{plan}");

    // So does disabling the block path on the connection.
    let db = scoring_db();
    db.set_block_scan(false);
    let plan = plan_text(&db, "EXPLAIN SELECT sum(X1) FROM X");
    assert!(plan.contains("scan mode: row-at-a-time"), "{plan}");
}

#[test]
fn result_sets_carry_exec_stats() {
    let db = scoring_db();
    let rs = db.execute("SELECT sum(X1), min(X2) FROM X").unwrap();
    assert!(rs.stats.block_path);
    assert_eq!(rs.stats.rows_scanned, 100);
    // 100 rows over 4 partitions: one (partial) block each.
    assert_eq!(rs.stats.blocks_scanned, 4);

    let db = scoring_db();
    db.set_block_scan(false);
    let rs = db.execute("SELECT sum(X1), min(X2) FROM X").unwrap();
    assert!(!rs.stats.block_path);
    assert_eq!(rs.stats.rows_scanned, 100);
    assert_eq!(rs.stats.blocks_scanned, 0);
}

#[test]
fn explain_analyze_executes_and_reports_phases() {
    let db = scoring_db();
    let plan = plan_text(&db, "EXPLAIN ANALYZE SELECT sum(X1), min(X2) FROM X");
    assert!(plan.starts_with("total: "), "{plan}");
    assert!(plan.contains("phase parse: "), "{plan}");
    assert!(plan.contains("phase plan: "), "{plan}");
    assert!(plan.contains("phase scan: "), "{plan}");
    assert!(plan.contains("rows=100"), "{plan}");
    // The trailing remainder phase makes the listed times sum exactly
    // to the reported total.
    assert!(plan.contains("phase other: "), "{plan}");
    assert!(plan.contains("scan mode: block"), "{plan}");
    assert!(plan.contains("rows scanned: 100"), "{plan}");

    // EXPLAIN ANALYZE really executes: stats carry the scan counters.
    let rs = db.execute("EXPLAIN ANALYZE SELECT sum(X1) FROM X").unwrap();
    assert_eq!(rs.stats.rows_scanned, 100);
    assert!(rs.stats.block_path);
}

#[test]
fn explain_analyze_reports_summary_answers() {
    let db = scoring_db();
    db.execute("CREATE SUMMARY sx ON X (X1, X2)").unwrap();
    let plan = plan_text(&db, "EXPLAIN ANALYZE SELECT sum(X1) FROM X");
    assert!(plan.contains("phase summary-lookup: "), "{plan}");
    assert!(
        plan.contains("scan mode: summary (answered from materialized Γ, no scan)"),
        "{plan}"
    );
    assert!(plan.contains("rows scanned: 0"), "{plan}");
    assert!(plan.contains("summary: 1 hit(s)"), "{plan}");
}

#[test]
fn trace_option_records_engine_phase_spans() {
    use nlq_engine::ExecOptions;
    use nlq_obs::{Phase, Trace};

    let db = scoring_db();
    let trace = Trace::new();
    let opts = ExecOptions {
        trace: Some(trace.clone()),
        ..ExecOptions::default()
    };
    db.execute_with("SELECT sum(X1) FROM X", &opts).unwrap();
    let spans = trace.spans();
    let phases: Vec<Phase> = spans.iter().map(|s| s.phase).collect();
    assert!(phases.contains(&Phase::Parse), "{phases:?}");
    assert!(phases.contains(&Phase::Plan), "{phases:?}");
    assert!(phases.contains(&Phase::Scan), "{phases:?}");
    let scan = spans.iter().find(|s| s.phase == Phase::Scan).unwrap();
    assert_eq!(scan.rows, 100);
    // Spans are laid out sequentially from the statement start.
    for pair in spans.windows(2) {
        assert!(pair[1].start_nanos >= pair[0].start_nanos + pair[0].dur_nanos);
    }
}

#[test]
fn explain_does_not_execute_the_scan() {
    // EXPLAIN of a query with a failing UDF argument must still work:
    // the scan never runs, so per-row errors never happen.
    let db = scoring_db();
    let plan = plan_text(&db, "EXPLAIN SELECT sum(X1 / (X2 - X2)) FROM X");
    assert!(plan.contains("aggregate: 1 call(s)"), "{plan}");
}
