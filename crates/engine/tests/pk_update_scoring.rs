//! Regression tests: the PK point-lookup path behind `batch_score`
//! must serve *current* rows after UPDATE — whether the update rewrote
//! a feature column (sealed segment or unsealed tail) or the key
//! itself. "Newest wins" at the storage layer is only useful if the
//! scoring surface actually observes it.

use nlq_engine::{Db, ExecOptions};
use nlq_storage::Value;

/// The model scores `b0 + b1*X1 + b2*X2` = `1 + 0.25*X1 - 0.5*X2`.
fn expect_score(x1: f64, x2: f64) -> f64 {
    1.0 + 0.25 * x1 - 0.5 * x2
}

fn tight(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
}

fn score_of(db: &Db, keys: &[i64]) -> Vec<Value> {
    let rs = db
        .batch_score("F", "BETA", keys, false, &ExecOptions::default())
        .unwrap();
    assert_eq!(rs.rows.len(), keys.len());
    for (row, &k) in rs.rows.iter().zip(keys) {
        assert_eq!(row[0], Value::Int(k), "keys come back in request order");
    }
    rs.rows.into_iter().map(|mut r| r.remove(1)).collect()
}

/// Seeds `F` with 2500 rows `(i, i, 2i)` — two sealed 1024-row
/// segments plus an unsealed tail, so lookups exercise both paths —
/// and a one-row model table `BETA`.
fn seeded_db() -> Db {
    let db = Db::new(2);
    db.execute("CREATE TABLE F (i INT, X1 FLOAT, X2 FLOAT)")
        .unwrap();
    for chunk in (1..=2500i64).collect::<Vec<_>>().chunks(500) {
        let values: Vec<String> = chunk
            .iter()
            .map(|i| format!("({i}, {:.1}, {:.1})", *i as f64, (2 * i) as f64))
            .collect();
        db.execute(&format!("INSERT INTO F VALUES {}", values.join(", ")))
            .unwrap();
    }
    db.execute("CREATE TABLE BETA (b0 FLOAT, b1 FLOAT, b2 FLOAT)")
        .unwrap();
    db.execute("INSERT INTO BETA VALUES (1.0, 0.25, -0.5)")
        .unwrap();
    db
}

#[test]
fn batch_score_reflects_updated_feature_values() {
    let db = seeded_db();

    // Baseline: both a sealed-segment key and a tail key score off the
    // original features.
    let scores = score_of(&db, &[42, 2400]);
    assert!(tight(scores[0].as_f64().unwrap(), expect_score(42.0, 84.0)));
    assert!(tight(
        scores[1].as_f64().unwrap(),
        expect_score(2400.0, 4800.0)
    ));

    // Update one feature in a sealed row and one in a tail row. The
    // very next lookup must score the new values — a stale PK index
    // pointing at the superseded copy would silently serve old
    // features forever.
    db.execute("UPDATE F SET X1 = 1000.0 WHERE i = 42").unwrap();
    db.execute("UPDATE F SET X2 = -7.0 WHERE i = 2400").unwrap();
    let scores = score_of(&db, &[42, 2400]);
    assert!(
        tight(scores[0].as_f64().unwrap(), expect_score(1000.0, 84.0)),
        "sealed-row update not visible: {:?}",
        scores[0]
    );
    assert!(
        tight(scores[1].as_f64().unwrap(), expect_score(2400.0, -7.0)),
        "tail-row update not visible: {:?}",
        scores[1]
    );

    // A second update to the same key supersedes the first.
    db.execute("UPDATE F SET X1 = -3.0 WHERE i = 42").unwrap();
    let scores = score_of(&db, &[42]);
    assert!(tight(scores[0].as_f64().unwrap(), expect_score(-3.0, 84.0)));
}

#[test]
fn batch_score_follows_a_rewritten_primary_key() {
    let db = seeded_db();

    // Rewriting the key moves the row: the old key stops resolving and
    // the new key serves the row's features.
    db.execute("UPDATE F SET i = 9999 WHERE i = 17").unwrap();
    let scores = score_of(&db, &[17, 9999]);
    assert!(
        scores[0].is_null(),
        "rewritten-away key must score NULL, got {:?}",
        scores[0]
    );
    assert!(tight(scores[1].as_f64().unwrap(), expect_score(17.0, 34.0)));

    // Rewriting onto an existing key: duplicates resolve by global
    // insertion serial (an in-place UPDATE keeps its row's original
    // serial), so the pre-existing row 100 — inserted after row 99 —
    // deterministically wins the contested key.
    db.execute("UPDATE F SET X1 = 500.0, i = 100 WHERE i = 99")
        .unwrap();
    let scores = score_of(&db, &[99, 100]);
    assert!(scores[0].is_null(), "old key 99 must be gone");
    assert!(
        tight(scores[1].as_f64().unwrap(), expect_score(100.0, 200.0)),
        "contested key must resolve by insertion serial: {:?}",
        scores[1]
    );
}
