//! Property tests for the SQL front end: the lexer/parser never
//! panic on arbitrary input, generated statements always parse, and
//! arithmetic expressions evaluate with correct precedence.

use nlq_engine::{parse, sqlgen, Db};
use nlq_models::MatrixShape;
use nlq_storage::Value;
use proptest::prelude::*;
use nlq_udf::ParamStyle;

/// A random arithmetic expression over small integers, as both SQL
/// text and its expected value (evaluated with the engine's wrapping
/// semantics; division avoided so results stay integral).
#[derive(Debug, Clone)]
enum ExprTree {
    Lit(i32),
    Add(Box<ExprTree>, Box<ExprTree>),
    Sub(Box<ExprTree>, Box<ExprTree>),
    Mul(Box<ExprTree>, Box<ExprTree>),
    Neg(Box<ExprTree>),
}

impl ExprTree {
    fn sql(&self) -> String {
        match self {
            ExprTree::Lit(v) => {
                if *v < 0 {
                    format!("({v})")
                } else {
                    v.to_string()
                }
            }
            ExprTree::Add(a, b) => format!("({} + {})", a.sql(), b.sql()),
            ExprTree::Sub(a, b) => format!("({} - {})", a.sql(), b.sql()),
            ExprTree::Mul(a, b) => format!("({} * {})", a.sql(), b.sql()),
            ExprTree::Neg(a) => format!("(-{})", a.sql()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            ExprTree::Lit(v) => *v as i64,
            ExprTree::Add(a, b) => a.eval().wrapping_add(b.eval()),
            ExprTree::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            ExprTree::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            ExprTree::Neg(a) => -a.eval(),
        }
    }
}

fn expr_tree() -> impl Strategy<Value = ExprTree> {
    let leaf = (-50i32..=50).prop_map(ExprTree::Lit);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprTree::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprTree::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprTree::Mul(Box::new(a), Box::new(b))),
            inner.prop_map(|a| ExprTree::Neg(Box::new(a))),
        ]
    })
}

fn one_row_db() -> Db {
    let db = Db::new(1);
    db.execute("CREATE TABLE one (x INT)").unwrap();
    db.execute("INSERT INTO one VALUES (1)").unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lexer_and_parser_never_panic(input in ".{0,200}") {
        // Any outcome is fine; panics are not.
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_on_ascii_soup(input in "[a-zA-Z0-9 ()*+,.<>='%;-]{0,120}") {
        let _ = parse(&input);
    }

    #[test]
    fn arithmetic_precedence_matches_reference(tree in expr_tree()) {
        let db = one_row_db();
        let sql = format!("SELECT {} FROM one", tree.sql());
        let rs = db.execute(&sql).unwrap();
        prop_assert_eq!(rs.value(0, 0), &Value::Int(tree.eval()));
    }

    #[test]
    fn unparenthesized_precedence(a in -9i64..=9, b in -9i64..=9, c in 1i64..=9) {
        // a + b * c must bind as a + (b * c).
        let db = one_row_db();
        let rs = db
            .execute(&format!("SELECT {a} + {b} * {c} FROM one"))
            .unwrap();
        prop_assert_eq!(rs.value(0, 0), &Value::Int(a + b * c));
        // and a - b - c as (a - b) - c.
        let rs = db
            .execute(&format!("SELECT {a} - {b} - {c} FROM one"))
            .unwrap();
        prop_assert_eq!(rs.value(0, 0), &Value::Int(a - b - c));
    }

    #[test]
    fn generated_nlq_queries_always_parse(d in 1usize..=48) {
        let cols = sqlgen::x_cols(d);
        for shape in [MatrixShape::Diagonal, MatrixShape::Triangular, MatrixShape::Full] {
            prop_assert!(parse(&sqlgen::nlq_sql_query("X", &cols, shape)).is_ok());
            for style in [ParamStyle::List, ParamStyle::String] {
                prop_assert!(parse(&sqlgen::nlq_udf_query("X", &cols, shape, style)).is_ok());
            }
        }
        prop_assert!(parse(&sqlgen::nlq_grouped_query(
            "X", &cols, "i % 4", MatrixShape::Diagonal, ParamStyle::List
        )).is_ok());
        if d >= 2 {
            prop_assert!(parse(&sqlgen::nlq_block_query("X", &cols, d / 2)).is_ok());
        }
    }

    #[test]
    fn generated_scoring_queries_always_parse(d in 1usize..=16, k in 1usize..=8) {
        let cols = sqlgen::x_cols(d);
        prop_assert!(parse(&sqlgen::score_regression_udf("X", &cols, "BETA")).is_ok());
        prop_assert!(parse(&sqlgen::score_pca_udf("X", &cols, k, "LAMBDA", "MU")).is_ok());
        prop_assert!(parse(&sqlgen::score_cluster_udf("X", &cols, k, "C")).is_ok());
        prop_assert!(parse(&sqlgen::score_cluster_sql_argmin("DIST", k)).is_ok());
    }
}
