//! Property tests for the SQL front end: the lexer/parser never
//! panic on arbitrary input, generated statements always parse, and
//! arithmetic expressions evaluate with correct precedence.

use nlq_engine::{parse, sqlgen, Db};
use nlq_models::MatrixShape;
use nlq_storage::Value;
use nlq_testkit::{run_cases, Rng};
use nlq_udf::ParamStyle;

/// A random arithmetic expression over small integers, as both SQL
/// text and its expected value (evaluated with the engine's wrapping
/// semantics; division avoided so results stay integral).
#[derive(Debug, Clone)]
enum ExprTree {
    Lit(i32),
    Add(Box<ExprTree>, Box<ExprTree>),
    Sub(Box<ExprTree>, Box<ExprTree>),
    Mul(Box<ExprTree>, Box<ExprTree>),
    Neg(Box<ExprTree>),
}

impl ExprTree {
    fn sql(&self) -> String {
        match self {
            ExprTree::Lit(v) => {
                if *v < 0 {
                    format!("({v})")
                } else {
                    v.to_string()
                }
            }
            ExprTree::Add(a, b) => format!("({} + {})", a.sql(), b.sql()),
            ExprTree::Sub(a, b) => format!("({} - {})", a.sql(), b.sql()),
            ExprTree::Mul(a, b) => format!("({} * {})", a.sql(), b.sql()),
            ExprTree::Neg(a) => format!("(-{})", a.sql()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            ExprTree::Lit(v) => *v as i64,
            ExprTree::Add(a, b) => a.eval().wrapping_add(b.eval()),
            ExprTree::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            ExprTree::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            ExprTree::Neg(a) => -a.eval(),
        }
    }
}

/// Builds a random expression tree of bounded depth.
fn expr_tree(rng: &mut Rng, depth: usize) -> ExprTree {
    if depth == 0 || rng.chance(0.3) {
        return ExprTree::Lit(rng.range_i64(-50, 50) as i32);
    }
    match rng.range_usize(0, 3) {
        0 => ExprTree::Add(
            Box::new(expr_tree(rng, depth - 1)),
            Box::new(expr_tree(rng, depth - 1)),
        ),
        1 => ExprTree::Sub(
            Box::new(expr_tree(rng, depth - 1)),
            Box::new(expr_tree(rng, depth - 1)),
        ),
        2 => ExprTree::Mul(
            Box::new(expr_tree(rng, depth - 1)),
            Box::new(expr_tree(rng, depth - 1)),
        ),
        _ => ExprTree::Neg(Box::new(expr_tree(rng, depth - 1))),
    }
}

fn one_row_db() -> Db {
    let db = Db::new(1);
    db.execute("CREATE TABLE one (x INT)").unwrap();
    db.execute("INSERT INTO one VALUES (1)").unwrap();
    db
}

#[test]
fn lexer_and_parser_never_panic() {
    run_cases(64, 0x9a51, |rng| {
        // Any outcome is fine; panics are not.
        let input = rng.any_string(200);
        let _ = parse(&input);
    });
}

#[test]
fn parser_never_panics_on_ascii_soup() {
    run_cases(64, 0x9a52, |rng| {
        let input = rng.string_from("abcXYZselectfromwher0129 ()*+,.<>='%;-", 120);
        let _ = parse(&input);
    });
}

#[test]
fn arithmetic_precedence_matches_reference() {
    let db = one_row_db();
    run_cases(64, 0x9a53, |rng| {
        let tree = expr_tree(rng, 4);
        let sql = format!("SELECT {} FROM one", tree.sql());
        let rs = db.execute(&sql).unwrap();
        assert_eq!(rs.value(0, 0), &Value::Int(tree.eval()), "query: {sql}");
    });
}

#[test]
fn unparenthesized_precedence() {
    let db = one_row_db();
    run_cases(64, 0x9a54, |rng| {
        let a = rng.range_i64(-9, 9);
        let b = rng.range_i64(-9, 9);
        let c = rng.range_i64(1, 9);
        // a + b * c must bind as a + (b * c).
        let rs = db
            .execute(&format!("SELECT {a} + {b} * {c} FROM one"))
            .unwrap();
        assert_eq!(rs.value(0, 0), &Value::Int(a + b * c));
        // and a - b - c as (a - b) - c.
        let rs = db
            .execute(&format!("SELECT {a} - {b} - {c} FROM one"))
            .unwrap();
        assert_eq!(rs.value(0, 0), &Value::Int(a - b - c));
    });
}

#[test]
fn generated_nlq_queries_always_parse() {
    run_cases(48, 0x9a55, |rng| {
        let d = rng.range_usize(1, 48);
        let cols = sqlgen::x_cols(d);
        for shape in [
            MatrixShape::Diagonal,
            MatrixShape::Triangular,
            MatrixShape::Full,
        ] {
            assert!(parse(&sqlgen::nlq_sql_query("X", &cols, shape)).is_ok());
            for style in [ParamStyle::List, ParamStyle::String] {
                assert!(parse(&sqlgen::nlq_udf_query("X", &cols, shape, style)).is_ok());
            }
        }
        assert!(parse(&sqlgen::nlq_grouped_query(
            "X",
            &cols,
            "i % 4",
            MatrixShape::Diagonal,
            ParamStyle::List
        ))
        .is_ok());
        if d >= 2 {
            assert!(parse(&sqlgen::nlq_block_query("X", &cols, d / 2)).is_ok());
        }
    });
}

#[test]
fn generated_scoring_queries_always_parse() {
    run_cases(48, 0x9a56, |rng| {
        let d = rng.range_usize(1, 16);
        let k = rng.range_usize(1, 8);
        let cols = sqlgen::x_cols(d);
        assert!(parse(&sqlgen::score_regression_udf("X", &cols, "BETA")).is_ok());
        assert!(parse(&sqlgen::score_pca_udf("X", &cols, k, "LAMBDA", "MU")).is_ok());
        assert!(parse(&sqlgen::score_cluster_udf("X", &cols, k, "C")).is_ok());
        assert!(parse(&sqlgen::score_cluster_sql_argmin("DIST", k)).is_ok());
    });
}
