//! Tests for ORDER BY, LIMIT, and HAVING — the query-shaping features
//! an analyst uses on top of the paper's aggregation patterns (e.g.
//! "largest clusters first", "segments with at least N members").

use nlq_engine::{Db, EngineError};
use nlq_storage::Value;

fn sample_db() -> Db {
    let db = Db::new(4);
    db.execute("CREATE TABLE t (g INT, v FLOAT, s VARCHAR)")
        .unwrap();
    db.execute(
        "INSERT INTO t VALUES \
         (1, 5.0, 'e'), (1, 3.0, 'c'), (2, 8.0, 'h'), \
         (2, 1.0, 'a'), (3, 9.0, 'i'), (3, 2.0, 'b'), (3, NULL, 'z')",
    )
    .unwrap();
    db
}

#[test]
fn order_by_ascending_and_descending() {
    let db = sample_db();
    let rs = db
        .execute("SELECT v FROM t WHERE v IS NOT NULL ORDER BY v")
        .unwrap();
    let vals: Vec<f64> = rs.rows.iter().map(|r| r[0].as_f64().unwrap()).collect();
    assert_eq!(vals, vec![1.0, 2.0, 3.0, 5.0, 8.0, 9.0]);

    let rs = db
        .execute("SELECT v FROM t WHERE v IS NOT NULL ORDER BY v DESC")
        .unwrap();
    let vals: Vec<f64> = rs.rows.iter().map(|r| r[0].as_f64().unwrap()).collect();
    assert_eq!(vals, vec![9.0, 8.0, 5.0, 3.0, 2.0, 1.0]);
}

#[test]
fn nulls_sort_last() {
    let db = sample_db();
    let rs = db.execute("SELECT v FROM t ORDER BY v").unwrap();
    assert!(rs.rows.last().unwrap()[0].is_null());
    // ...even descending (NULL is "unknown", kept at the end).
    let rs = db.execute("SELECT v FROM t ORDER BY v DESC").unwrap();
    assert!(rs.rows.last().unwrap()[0].is_null());
}

#[test]
fn order_by_multiple_keys_and_expressions() {
    let db = sample_db();
    let rs = db
        .execute("SELECT g, s FROM t WHERE v IS NOT NULL ORDER BY g DESC, s ASC")
        .unwrap();
    let pairs: Vec<(i64, String)> = rs
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_str().unwrap().to_owned()))
        .collect();
    assert_eq!(
        pairs,
        vec![
            (3, "b".into()),
            (3, "i".into()),
            (2, "a".into()),
            (2, "h".into()),
            (1, "c".into()),
            (1, "e".into()),
        ]
    );

    // Expression key: order by -v equals descending v.
    let rs = db
        .execute("SELECT v FROM t WHERE v > 0 ORDER BY -v")
        .unwrap();
    let vals: Vec<f64> = rs.rows.iter().map(|r| r[0].as_f64().unwrap()).collect();
    assert_eq!(vals, vec![9.0, 8.0, 5.0, 3.0, 2.0, 1.0]);
}

#[test]
fn order_by_ordinal() {
    let db = sample_db();
    let rs = db
        .execute("SELECT s, v FROM t WHERE v IS NOT NULL ORDER BY 2 DESC LIMIT 2")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::from("i"));
    assert_eq!(rs.rows[1][0], Value::from("h"));

    assert!(matches!(
        db.execute("SELECT v FROM t ORDER BY 7"),
        Err(EngineError::Unsupported(_))
    ));
}

#[test]
fn limit_truncates() {
    let db = sample_db();
    let rs = db.execute("SELECT s FROM t LIMIT 3").unwrap();
    assert_eq!(rs.len(), 3);
    let rs = db.execute("SELECT s FROM t LIMIT 0").unwrap();
    assert!(rs.is_empty());
    // LIMIT larger than the result is harmless.
    let rs = db.execute("SELECT s FROM t LIMIT 100").unwrap();
    assert_eq!(rs.len(), 7);
}

#[test]
fn having_filters_groups() {
    let db = sample_db();
    // Groups with at least 3 rows (only g = 3, counting the NULL row).
    let rs = db
        .execute("SELECT g, count(*) FROM t GROUP BY g HAVING count(*) >= 3")
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.value(0, 0), &Value::Int(3));
    assert_eq!(rs.value(0, 1), &Value::Int(3));

    // HAVING may reference aggregates that are not projected.
    let rs = db
        .execute("SELECT g FROM t GROUP BY g HAVING sum(v) > 6.0 ORDER BY g")
        .unwrap();
    let gs: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(gs, vec![1, 2, 3]); // sums: 8, 9, 11
    let rs = db
        .execute("SELECT g FROM t GROUP BY g HAVING sum(v) > 8.5 ORDER BY g")
        .unwrap();
    let gs: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(gs, vec![2, 3]);
}

#[test]
fn order_by_aggregate_with_limit_top_k() {
    let db = sample_db();
    // "largest segment first" — the analyst pattern.
    let rs = db
        .execute("SELECT g, sum(v) FROM t GROUP BY g ORDER BY sum(v) DESC LIMIT 1")
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.value(0, 0), &Value::Int(3));
    assert_eq!(rs.value(0, 1), &Value::Float(11.0));
}

#[test]
fn having_without_group_rejected_on_scalar_queries() {
    let db = sample_db();
    assert!(matches!(
        db.execute("SELECT v FROM t HAVING v > 1"),
        Err(EngineError::Unsupported(_))
    ));
}

#[test]
fn group_by_with_limit_is_deterministic() {
    let db = sample_db();
    let rs = db
        .execute("SELECT g, count(*) FROM t GROUP BY g LIMIT 2")
        .unwrap();
    // Without ORDER BY, grouped output is sorted by the whole row, so
    // LIMIT takes the two smallest group keys.
    assert_eq!(rs.value(0, 0), &Value::Int(1));
    assert_eq!(rs.value(1, 0), &Value::Int(2));
}
