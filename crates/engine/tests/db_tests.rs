//! End-to-end tests of the `Db` facade: SQL execution, the three
//! `n, L, Q` implementations, grouped and blocked statistics, and the
//! scoring query patterns of §3.5.

use nlq_datagen::{MixtureGenerator, MixtureSpec};
use nlq_engine::{sqlgen, Db, EngineError, NlqMethod};
use nlq_linalg::Vector;
use nlq_models::{LinearRegression, MatrixShape, Nlq};
use nlq_storage::Value;
use nlq_udf::ParamStyle;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn ddl_insert_select_roundtrip() {
    let db = Db::new(4);
    db.execute("CREATE TABLE t (i INT, v FLOAT, s VARCHAR)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 1.5, 'a'), (2, NULL, 'b'), (3, 3.5, 'c')")
        .unwrap();
    let rs = db
        .execute("SELECT i, v, s FROM t WHERE v IS NOT NULL")
        .unwrap();
    assert_eq!(rs.len(), 2);
    let mut ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 3]);
}

#[test]
fn select_star_expands_columns() {
    let db = Db::new(2);
    db.execute("CREATE TABLE t (a INT, b FLOAT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 2.0)").unwrap();
    let rs = db.execute("SELECT * FROM t").unwrap();
    assert_eq!(rs.columns, vec!["a", "b"]);
    assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Float(2.0)]);
}

#[test]
fn builtin_aggregates_and_group_by() {
    let db = Db::new(4);
    db.execute("CREATE TABLE t (g INT, v FLOAT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 1.0), (1, 3.0), (2, 10.0), (2, NULL), (2, 20.0)")
        .unwrap();
    let rs = db
        .execute("SELECT g, count(*), count(v), sum(v), avg(v), min(v), max(v) FROM t GROUP BY g")
        .unwrap();
    assert_eq!(rs.len(), 2);
    // Rows are sorted by the group key.
    assert_eq!(rs.value(0, 0), &Value::Int(1));
    assert_eq!(rs.value(0, 1), &Value::Int(2));
    assert_eq!(rs.value(0, 3), &Value::Float(4.0));
    assert_eq!(rs.value(1, 0), &Value::Int(2));
    assert_eq!(rs.value(1, 1), &Value::Int(3)); // count(*) counts NULL rows
    assert_eq!(rs.value(1, 2), &Value::Int(2)); // count(v) does not
    assert_eq!(rs.value(1, 4), &Value::Float(15.0));
    assert_eq!(rs.value(1, 5), &Value::Float(10.0));
    assert_eq!(rs.value(1, 6), &Value::Float(20.0));
}

#[test]
fn global_aggregate_over_empty_table() {
    let db = Db::new(2);
    db.execute("CREATE TABLE t (v FLOAT)").unwrap();
    let rs = db.execute("SELECT count(*), sum(v) FROM t").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(0));
    assert_eq!(rs.value(0, 1), &Value::Null);
}

#[test]
fn aggregate_arithmetic_on_results() {
    let db = Db::new(2);
    db.execute("CREATE TABLE t (v FLOAT)").unwrap();
    db.execute("INSERT INTO t VALUES (1.0), (2.0), (3.0)")
        .unwrap();
    // Variance-style expression combining several aggregates.
    let rs = db
        .execute("SELECT sum(v*v)/count(*) - (sum(v)/count(*)) * (sum(v)/count(*)) FROM t")
        .unwrap();
    assert!(close(rs.f64(0, 0).unwrap(), 2.0 / 3.0));
}

#[test]
fn cross_join_with_aliases_and_where() {
    let db = Db::new(2);
    db.execute("CREATE TABLE x (i INT, v FLOAT)").unwrap();
    db.execute("INSERT INTO x VALUES (1, 10.0), (2, 20.0)")
        .unwrap();
    db.execute("CREATE TABLE c (j INT, w FLOAT)").unwrap();
    db.execute("INSERT INTO c VALUES (1, 0.5), (2, 2.0)")
        .unwrap();
    let rs = db
        .execute("SELECT x.i, x.v * c.w FROM x CROSS JOIN c WHERE c.j = 2")
        .unwrap();
    assert_eq!(rs.len(), 2);
    let mut vals: Vec<f64> = rs.rows.iter().map(|r| r[1].as_f64().unwrap()).collect();
    vals.sort_by(f64::total_cmp);
    assert_eq!(vals, vec![20.0, 40.0]);
}

#[test]
fn views_execute_on_access() {
    let db = Db::new(2);
    db.execute("CREATE TABLE t (v FLOAT)").unwrap();
    db.execute("INSERT INTO t VALUES (1.0), (2.0)").unwrap();
    db.execute("CREATE VIEW doubled AS SELECT v * 2 AS v2 FROM t")
        .unwrap();
    let rs = db.execute("SELECT sum(v2) FROM doubled").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Float(6.0));
}

#[test]
fn create_table_as_and_insert_select() {
    let db = Db::new(2);
    db.execute("CREATE TABLE t (v FLOAT)").unwrap();
    db.execute("INSERT INTO t VALUES (1.0), (2.0)").unwrap();
    db.execute("CREATE TABLE t2 AS SELECT v + 1 AS w FROM t")
        .unwrap();
    db.execute("INSERT INTO t2 SELECT v FROM t").unwrap();
    let rs = db.execute("SELECT count(*), sum(w) FROM t2").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(4));
    assert_eq!(rs.value(0, 1), &Value::Float(8.0));
}

#[test]
fn errors_are_descriptive() {
    let db = Db::new(2);
    assert!(matches!(
        db.execute("SELECT 1 FROM missing"),
        Err(EngineError::UnknownTable(_))
    ));
    db.execute("CREATE TABLE t (v FLOAT)").unwrap();
    assert!(matches!(
        db.execute("CREATE TABLE t (v FLOAT)"),
        Err(EngineError::DuplicateTable(_))
    ));
    assert!(matches!(
        db.execute("SELECT nope FROM t"),
        Err(EngineError::UnknownColumn(_))
    ));
    assert!(matches!(
        db.execute("SELECT frob(v) FROM t"),
        Err(EngineError::UnknownFunction(_))
    ));
    assert!(matches!(
        db.execute("DROP TABLE missing"),
        Err(EngineError::UnknownTable(_))
    ));
}

// ---------------------------------------------------------------------------
// n, L, Q computation: all three implementations agree
// ---------------------------------------------------------------------------

fn sample_data(n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut generator = MixtureGenerator::new(MixtureSpec::paper_defaults(d).with_seed(17));
    generator.generate(n)
}

fn assert_nlq_eq(a: &Nlq, b: &Nlq, check_q_upper: bool) {
    assert_eq!(a.d(), b.d());
    assert!(close(a.n(), b.n()), "n: {} vs {}", a.n(), b.n());
    for i in 0..a.d() {
        assert!(close(a.l()[i], b.l()[i]), "L[{i}]");
        for j in 0..a.d() {
            if check_q_upper || j <= i {
                assert!(
                    close(a.q_raw()[(i, j)], b.q_raw()[(i, j)]),
                    "Q[{i}][{j}]: {} vs {}",
                    a.q_raw()[(i, j)],
                    b.q_raw()[(i, j)]
                );
            }
        }
    }
}

#[test]
fn three_nlq_methods_agree_with_reference() {
    let data = sample_data(500, 6);
    let db = Db::new(8);
    db.load_points("X", &data, false).unwrap();
    let cols: Vec<&str> = ["X1", "X2", "X3", "X4", "X5", "X6"].to_vec();

    let reference = Nlq::from_rows(6, MatrixShape::Triangular, &data);
    for method in [NlqMethod::Sql, NlqMethod::UdfList, NlqMethod::UdfString] {
        let got = db
            .compute_nlq_with(method, "X", &cols, MatrixShape::Triangular)
            .unwrap();
        assert_nlq_eq(&got, &reference, false);
    }
}

#[test]
fn nlq_shapes_all_work_via_sql() {
    let data = sample_data(200, 3);
    let db = Db::new(4);
    db.load_points("X", &data, false).unwrap();
    let cols = ["X1", "X2", "X3"];
    for shape in [
        MatrixShape::Diagonal,
        MatrixShape::Triangular,
        MatrixShape::Full,
    ] {
        let got = db
            .compute_nlq_with(NlqMethod::Sql, "X", &cols, shape)
            .unwrap();
        let reference = Nlq::from_rows(3, shape, &data);
        assert_nlq_eq(&got, &reference, true);
    }
}

#[test]
fn udf_nlq_includes_min_max() {
    let data = vec![vec![1.0, -5.0], vec![3.0, 7.0], vec![2.0, 0.0]];
    let db = Db::new(2);
    db.load_points("X", &data, false).unwrap();
    let nlq = db
        .compute_nlq("X", &["X1", "X2"], MatrixShape::Diagonal)
        .unwrap();
    assert_eq!(nlq.min(), &[1.0, -5.0]);
    assert_eq!(nlq.max(), &[3.0, 7.0]);
}

#[test]
fn grouped_nlq_partitions_by_modulo() {
    // The paper's Table 5 workload: partition X on k groups with mod.
    let data = sample_data(300, 2);
    let db = Db::new(4);
    db.load_points("X", &data, false).unwrap();
    let groups = db
        .compute_nlq_grouped(
            "mod_view",
            &["X1", "X2"],
            "g",
            MatrixShape::Diagonal,
            ParamStyle::List,
        )
        .map(|_| ())
        .err(); // view does not exist yet
    assert!(groups.is_some());

    db.execute("CREATE VIEW mod_view AS SELECT i % 4 AS g, X1, X2 FROM X")
        .unwrap();
    let groups = db
        .compute_nlq_grouped(
            "mod_view",
            &["X1", "X2"],
            "g",
            MatrixShape::Diagonal,
            ParamStyle::List,
        )
        .unwrap();
    assert_eq!(groups.len(), 4);
    let total: f64 = groups.iter().map(|(_, s)| s.n()).sum();
    assert_eq!(total, 300.0);

    // Same via the string style.
    let groups_str = db
        .compute_nlq_grouped(
            "mod_view",
            &["X1", "X2"],
            "g",
            MatrixShape::Diagonal,
            ParamStyle::String,
        )
        .unwrap();
    for ((gv_a, sa), (gv_b, sb)) in groups.iter().zip(&groups_str) {
        assert_eq!(gv_a, gv_b);
        assert!(close(sa.n(), sb.n()));
        assert!(close(sa.l()[0], sb.l()[0]));
    }
}

#[test]
fn blocked_nlq_matches_direct() {
    let d = 10;
    let data = sample_data(150, d);
    let db = Db::new(4);
    db.load_points("X", &data, false).unwrap();
    let cols: Vec<String> = sqlgen::x_cols(d);
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let blocked = db.compute_nlq_blocked("X", &col_refs, 4).unwrap();
    let reference = Nlq::from_rows(d, MatrixShape::Full, &data);
    assert_nlq_eq(&blocked, &reference, true);
}

// ---------------------------------------------------------------------------
// Scoring (§3.5)
// ---------------------------------------------------------------------------

#[test]
fn regression_scoring_udf_and_sql_agree() {
    // y = 2 + 3 x1 - x2 exactly.
    let rows: Vec<Vec<f64>> = (0..50)
        .map(|i| {
            let x1 = i as f64;
            let x2 = (i % 7) as f64;
            vec![x1, x2, 2.0 + 3.0 * x1 - x2]
        })
        .collect();
    let db = Db::new(4);
    db.load_points("X", &rows, true).unwrap();

    let nlq = db
        .compute_nlq("X", &["X1", "X2", "Y"], MatrixShape::Triangular)
        .unwrap();
    let model = LinearRegression::fit(&nlq).unwrap();
    db.register_beta("BETA", model.intercept(), model.coefficients())
        .unwrap();

    let cols = sqlgen::x_cols(2);
    let udf_rs = db
        .execute(&sqlgen::score_regression_udf("X", &cols, "BETA"))
        .unwrap();
    let sql_rs = db
        .execute(&sqlgen::score_regression_sql(
            "X",
            &cols,
            model.intercept(),
            model.coefficients(),
        ))
        .unwrap();
    assert_eq!(udf_rs.len(), 50);
    assert_eq!(sql_rs.len(), 50);

    let mut udf_scores: Vec<(i64, f64)> = udf_rs
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_f64().unwrap()))
        .collect();
    udf_scores.sort_by_key(|&(i, _)| i);
    let mut sql_scores: Vec<(i64, f64)> = sql_rs
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_f64().unwrap()))
        .collect();
    sql_scores.sort_by_key(|&(i, _)| i);

    for ((ia, ya), ((ib, yb), truth)) in udf_scores.iter().zip(sql_scores.iter().zip(&rows)) {
        assert_eq!(ia, ib);
        assert!(close(*ya, *yb), "udf {ya} vs sql {yb}");
        assert!(close(*ya, truth[2]), "prediction {ya} vs true {}", truth[2]);
    }
}

#[test]
fn pca_scoring_udf_and_sql_agree() {
    use nlq_models::{Pca, PcaInput};
    let data = sample_data(200, 3);
    let db = Db::new(4);
    db.load_points("X", &data, false).unwrap();
    let cols = sqlgen::x_cols(3);
    let nlq = db
        .compute_nlq("X", &["X1", "X2", "X3"], MatrixShape::Triangular)
        .unwrap();
    let pca = Pca::fit(&nlq, 2, PcaInput::Covariance).unwrap();
    db.register_lambda("LAMBDA", pca.lambda()).unwrap();
    db.register_mu("MU", pca.mu()).unwrap();

    let udf_rs = db
        .execute(&sqlgen::score_pca_udf("X", &cols, 2, "LAMBDA", "MU"))
        .unwrap();
    let sql_rs = db
        .execute(&sqlgen::score_pca_sql("X", &cols, pca.lambda(), pca.mu()))
        .unwrap();
    assert_eq!(udf_rs.len(), 200);
    assert_eq!(sql_rs.len(), 200);

    let sort = |rs: &nlq_engine::ResultSet| {
        let mut v: Vec<(i64, f64, f64)> = rs
            .rows
            .iter()
            .map(|r| {
                (
                    r[0].as_i64().unwrap(),
                    r[1].as_f64().unwrap(),
                    r[2].as_f64().unwrap(),
                )
            })
            .collect();
        v.sort_by_key(|&(i, ..)| i);
        v
    };
    for ((i, a1, a2), (j, b1, b2)) in sort(&udf_rs).into_iter().zip(sort(&sql_rs)) {
        assert_eq!(i, j);
        assert!(close(a1, b1));
        assert!(close(a2, b2));
        // Check against the library's own scoring for row i.
        let expect = pca.score(&data[(i - 1) as usize]);
        assert!(close(a1, expect[0]));
        assert!(close(a2, expect[1]));
    }
}

#[test]
fn cluster_scoring_udf_and_sql_agree() {
    use nlq_models::{KMeans, KMeansConfig};
    let data = sample_data(300, 2);
    let db = Db::new(4);
    db.load_points("X", &data, false).unwrap();
    let cols = sqlgen::x_cols(2);
    let km = KMeans::fit(&data, &KMeansConfig::new(4)).unwrap();
    db.register_centroids("C", km.centroids()).unwrap();

    // UDF path: one statement.
    let udf_rs = db
        .execute(&sqlgen::score_cluster_udf("X", &cols, 4, "C"))
        .unwrap();
    // SQL path: two statements (distances, then argmin), as the paper
    // notes SQL needs two scans.
    db.execute(&sqlgen::score_cluster_sql_distances(
        "DIST",
        "X",
        &cols,
        km.centroids(),
    ))
    .unwrap();
    let sql_rs = db
        .execute(&sqlgen::score_cluster_sql_argmin("DIST", 4))
        .unwrap();

    let sort = |rs: &nlq_engine::ResultSet| {
        let mut v: Vec<(i64, i64)> = rs
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        v.sort_by_key(|&(i, _)| i);
        v
    };
    for ((i, ja), (ib, jb)) in sort(&udf_rs).into_iter().zip(sort(&sql_rs)) {
        assert_eq!(i, ib);
        assert_eq!(ja, jb, "row {i}: UDF cluster {ja} vs SQL cluster {jb}");
        // 1-based J matches the library's 0-based assignment.
        let expect = km.assign(&data[(i - 1) as usize]) as i64 + 1;
        assert_eq!(ja, expect);
    }
}

#[test]
fn case_based_binary_flags() {
    // §3.6: "binary flags are generally derived with the SQL CASE
    // statement ... to convert categorical variables into binary
    // dimensions".
    let db = Db::new(2);
    db.execute("CREATE TABLE cust (i INT, state VARCHAR, spend FLOAT)")
        .unwrap();
    db.execute("INSERT INTO cust VALUES (1, 'TX', 10.0), (2, 'CA', 20.0), (3, 'TX', 30.0)")
        .unwrap();
    let rs = db
        .execute("SELECT sum(CASE WHEN state = 'TX' THEN 1 ELSE 0 END), sum(spend) FROM cust")
        .unwrap();
    assert_eq!(rs.value(0, 0), &Value::Int(2));
    assert_eq!(rs.value(0, 1), &Value::Float(60.0));
}

#[test]
fn save_and_load_table_roundtrip() {
    let db = Db::new(3);
    let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64, (i % 9) as f64]).collect();
    db.load_points("X", &rows, false).unwrap();
    let path = std::env::temp_dir().join(format!("nlq_db_save_{}", std::process::id()));
    db.save_table("X", &path).unwrap();

    let db2 = Db::new(3);
    db2.load_table("X", &path).unwrap();
    let a = db
        .compute_nlq("X", &["X1", "X2"], MatrixShape::Triangular)
        .unwrap();
    let b = db2
        .compute_nlq("X", &["X1", "X2"], MatrixShape::Triangular)
        .unwrap();
    assert_eq!(a.n(), b.n());
    assert_eq!(a.l(), b.l());
    assert_eq!(a.q_raw(), b.q_raw());
    std::fs::remove_file(&path).ok();
}

#[test]
fn register_model_tables_have_single_io_layout() {
    let db = Db::new(2);
    db.register_beta("BETA", 1.0, &Vector::from_vec(vec![2.0, 3.0]))
        .unwrap();
    let rs = db.execute("SELECT b0, b1, b2 FROM BETA").unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(
        rs.rows[0],
        vec![Value::Float(1.0), Value::Float(2.0), Value::Float(3.0)]
    );

    db.register_mu("MU", &Vector::from_vec(vec![5.0, 6.0]))
        .unwrap();
    let rs = db.execute("SELECT X1, X2 FROM MU").unwrap();
    assert_eq!(rs.rows[0], vec![Value::Float(5.0), Value::Float(6.0)]);

    db.register_centroids(
        "C",
        &[
            Vector::from_vec(vec![0.0, 0.0]),
            Vector::from_vec(vec![1.0, 2.0]),
        ],
    )
    .unwrap();
    let rs = db.execute("SELECT j, X1, X2 FROM C WHERE j = 2").unwrap();
    assert_eq!(
        rs.rows[0],
        vec![Value::Int(2), Value::Float(1.0), Value::Float(2.0)]
    );
}
