//! Tests for the two-dimensional statistical builtins (`corr`,
//! `covar_pop`, `variance`, `stddev`, `regr_slope`, `regr_intercept`)
//! — the Teradata SQL aggregates the paper contrasts with its
//! d-dimensional UDF (§5: they "only do it for two dimensions").

use nlq_engine::Db;
use nlq_models::{CorrelationModel, LinearRegression, MatrixShape, Nlq};
use nlq_storage::Value;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
}

/// y = 2 x + 1 exactly, x = 0..9.
fn linear_db() -> (Db, Vec<Vec<f64>>) {
    let rows: Vec<Vec<f64>> = (0..10)
        .map(|i| vec![i as f64, 2.0 * i as f64 + 1.0])
        .collect();
    let db = Db::new(3);
    db.load_points("t", &rows, false).unwrap();
    (db, rows)
}

#[test]
fn variance_and_stddev() {
    let (db, rows) = linear_db();
    let rs = db
        .execute("SELECT var_pop(X1), var_samp(X1), variance(X1), stddev(X1) FROM t")
        .unwrap();
    // x = 0..9: pop var = 8.25, sample var = 55/6.
    assert!(close(rs.f64(0, 0).unwrap(), 8.25));
    assert!(close(rs.f64(0, 1).unwrap(), 55.0 / 6.0));
    assert!(close(rs.f64(0, 2).unwrap(), 55.0 / 6.0));
    assert!(close(rs.f64(0, 3).unwrap(), (55.0_f64 / 6.0).sqrt()));
    // Matches the sufficient-statistics variance.
    let nlq = Nlq::from_rows(2, MatrixShape::Triangular, &rows);
    assert!(close(rs.f64(0, 0).unwrap(), nlq.variances().unwrap()[0]));
}

#[test]
fn corr_matches_the_correlation_model() {
    let (db, rows) = linear_db();
    let rs = db
        .execute("SELECT corr(X1, X2), covar_pop(X1, X2) FROM t")
        .unwrap();
    // Perfect linear relationship: corr = 1.
    assert!(close(rs.f64(0, 0).unwrap(), 1.0));
    let nlq = Nlq::from_rows(2, MatrixShape::Triangular, &rows);
    let model = CorrelationModel::fit(&nlq).unwrap();
    assert!(close(rs.f64(0, 0).unwrap(), model.coefficient(0, 1)));
    let cov = nlq.covariance().unwrap();
    assert!(close(rs.f64(0, 1).unwrap(), cov[(0, 1)]));
}

#[test]
fn regr_slope_and_intercept_match_the_model() {
    let (db, rows) = linear_db();
    // regr_slope(y, x): dependent variable first, per the SQL standard.
    let rs = db
        .execute("SELECT regr_slope(X2, X1), regr_intercept(X2, X1) FROM t")
        .unwrap();
    assert!(close(rs.f64(0, 0).unwrap(), 2.0));
    assert!(close(rs.f64(0, 1).unwrap(), 1.0));
    // And they agree with the d-dimensional machinery at d = 1.
    let model = LinearRegression::fit(&Nlq::from_rows(2, MatrixShape::Triangular, &rows)).unwrap();
    assert!(close(rs.f64(0, 0).unwrap(), model.coefficients()[0]));
    assert!(close(rs.f64(0, 1).unwrap(), model.intercept()));
}

#[test]
fn nulls_are_skipped_pairwise() {
    let db = Db::new(2);
    db.execute("CREATE TABLE t (a FLOAT, b FLOAT)").unwrap();
    db.execute("INSERT INTO t VALUES (1.0, 2.0), (2.0, NULL), (3.0, 6.0), (NULL, 1.0)")
        .unwrap();
    // Only the two complete pairs (1,2) and (3,6) count: corr = 1.
    let rs = db.execute("SELECT corr(a, b) FROM t").unwrap();
    assert!(close(rs.f64(0, 0).unwrap(), 1.0));
    // variance(a) uses three non-NULL values.
    let rs = db.execute("SELECT var_pop(a) FROM t").unwrap();
    assert!(close(rs.f64(0, 0).unwrap(), 2.0 / 3.0));
}

#[test]
fn degenerate_inputs_yield_null() {
    let db = Db::new(2);
    db.execute("CREATE TABLE t (a FLOAT, b FLOAT)").unwrap();
    db.execute("INSERT INTO t VALUES (5.0, 1.0)").unwrap();
    // One row: sample variance and correlation are undefined.
    let rs = db
        .execute("SELECT var_samp(a), stddev(a), corr(a, b), regr_slope(b, a) FROM t")
        .unwrap();
    for c in 0..4 {
        assert_eq!(rs.value(0, c), &Value::Null, "column {c}");
    }
    // Constant column: corr undefined even with many rows.
    db.execute("INSERT INTO t VALUES (5.0, 2.0), (5.0, 3.0)")
        .unwrap();
    let rs = db.execute("SELECT corr(a, b) FROM t").unwrap();
    assert_eq!(rs.value(0, 0), &Value::Null);
}

#[test]
fn works_with_group_by_and_parallel_merge() {
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|i| vec![i as f64, 3.0 * i as f64 - 7.0])
        .collect();
    let db = Db::new(8); // several partial states merged per group
    db.load_points("t", &rows, false).unwrap();
    let rs = db
        .execute("SELECT i % 2, corr(X1, X2), regr_slope(X2, X1) FROM t GROUP BY i % 2")
        .unwrap();
    assert_eq!(rs.len(), 2);
    for r in 0..2 {
        assert!(close(rs.f64(r, 1).unwrap(), 1.0));
        assert!(close(rs.f64(r, 2).unwrap(), 3.0));
    }
}

#[test]
fn two_dimensions_only_is_the_builtin_limit() {
    // The builtins accept exactly their documented arity — the
    // restriction the d-dimensional aggregate UDF exists to lift.
    let (db, _) = linear_db();
    // Too many arguments to corr: the planner accepts the call but the
    // accumulator reads only the first two, so this is equivalent to
    // corr(X1, X2); verify it does not crash and returns the 2-D value.
    let rs = db.execute("SELECT corr(X1, X2) FROM t").unwrap();
    assert!(close(rs.f64(0, 0).unwrap(), 1.0));
}
