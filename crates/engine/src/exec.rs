use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use nlq_linalg::kernels;
use nlq_models::{MatrixShape, Nlq};
use nlq_storage::{
    bitmap_count_ones, bitmap_mask_tail, bitmap_words, parallel_scan, parallel_scan_partitions,
    Column, ColumnBlock, DataType, Row, Schema, Table, Value, BLOCK_ROWS,
};
use nlq_summary::{
    project_nlq, shape_covers, SummaryData, SummaryDef, SummarySnapshot, SummaryStore,
};
use nlq_udf::{check_heap, AggregateState, BatchArg, ScalarBatchArg, ScalarUdf, UdfRegistry};

use crate::ast::{Expr, SelectStmt};
use crate::catalog::{Catalog, CatalogEntry};
use crate::db::{ExecStats, ResultSet};
use crate::expr::{AggCall, AggKind, Binder, BoundExpr, BoundSchema, FastArg, StatAgg};
use crate::predicate::{compile_residual, CompiledPredicates, PredScratch};
use crate::sys::SystemTableProvider;
use crate::{EngineError, Result};

/// Upper bound on materialized cross-join products, protecting against
/// accidental combinatorial blowups (the paper's scoring joins touch
/// only `k`-row dimension tables).
const JOIN_LIMIT: usize = 1_000_000;

/// Execution context shared by all statements of one [`crate::Db`].
pub(crate) struct ExecContext<'a> {
    pub catalog: &'a Catalog,
    /// Registry snapshot taken when the statement began (copy-on-write
    /// registration means a shared `Db` can add UDFs concurrently).
    pub registry: Arc<UdfRegistry>,
    /// Materialized Γ summaries the planner may answer from.
    pub summaries: &'a SummaryStore,
    pub workers: usize,
    /// Whether eligible aggregates may use the block-at-a-time scan.
    pub block_scan: bool,
    /// Cooperative cancellation token (see
    /// [`crate::ExecOptions::cancel`]); checked per row/block in every
    /// scan loop.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Virtual `sys.*` namespace (see
    /// [`crate::sys::SystemTableProvider`]); `None` when no serving
    /// layer registered one.
    pub system: Option<Arc<dyn SystemTableProvider>>,
}

/// Returns [`EngineError::Cancelled`] when the statement's cancel
/// token has flipped. Scan loops call this once per row or block; a
/// relaxed atomic load keeps the check effectively free.
pub(crate) fn check_cancelled(cancel: Option<&AtomicBool>, rows_scanned: u64) -> Result<()> {
    if let Some(c) = cancel {
        if c.load(Ordering::Relaxed) {
            return Err(EngineError::Cancelled { rows_scanned });
        }
    }
    Ok(())
}

/// Folds worker partials, giving any non-cancellation error priority
/// and otherwise collapsing cancelled workers into one
/// [`EngineError::Cancelled`] whose `rows_scanned` sums their
/// best-effort counts.
fn merge_partial_errors<T>(partials: Vec<Result<T>>) -> Result<Vec<T>> {
    let mut out = Vec::with_capacity(partials.len());
    let mut cancelled_rows: Option<u64> = None;
    for p in partials {
        match p {
            Ok(v) => out.push(v),
            Err(EngineError::Cancelled { rows_scanned }) => {
                *cancelled_rows.get_or_insert(0) += rows_scanned;
            }
            Err(e) => return Err(e),
        }
    }
    match cancelled_rows {
        Some(rows_scanned) => Err(EngineError::Cancelled { rows_scanned }),
        None => Ok(out),
    }
}

/// The outcome of planning a SELECT: everything both the executor and
/// EXPLAIN need.
pub(crate) struct PlannedSelect {
    base: Arc<Table>,
    schema: BoundSchema,
    join_product: Vec<Row>,
    residual: Vec<BoundExpr>,
    /// Number of WHERE conjuncts pushed into the join product.
    pushed: usize,
    aggregate_mode: bool,
}

impl ExecContext<'_> {
    /// Executes a SELECT statement to completion.
    pub fn execute_select(&self, stmt: &SelectStmt) -> Result<ResultSet> {
        let plan_started = Instant::now();
        let plan = self.plan_select(stmt)?;
        let plan_nanos = plan_started.elapsed().as_nanos() as u64;
        let mut rs = if plan.aggregate_mode {
            self.execute_aggregate(
                stmt,
                &plan.base,
                &plan.schema,
                &plan.join_product,
                &plan.residual,
            )?
        } else {
            self.execute_scalar(
                stmt,
                &plan.base,
                &plan.schema,
                &plan.join_product,
                &plan.residual,
            )?
        };
        rs.stats.plan_nanos = plan_nanos;
        Ok(rs)
    }

    /// Plans a SELECT: resolves tables, binds and classifies WHERE
    /// conjuncts, and materializes the (filtered) join product.
    fn plan_select(&self, stmt: &SelectStmt) -> Result<PlannedSelect> {
        // Resolve FROM: first table streams, the rest are materialized
        // and cross-joined.
        let mut sources = Vec::with_capacity(stmt.from.len());
        for tref in &stmt.from {
            sources.push((self.resolve_table(&tref.name)?, tref.alias.clone()));
        }

        // Build the full combined schema up front so WHERE conjuncts
        // can be bound and classified before the join product is
        // materialized.
        let mut schema = BoundSchema::new();
        for ((table, alias), tref) in sources.iter().zip(&stmt.from) {
            schema.push_table(alias.as_deref().or(Some(&tref.name)), table.schema());
        }
        let (base, _) = sources.remove(0);
        let base_width = base.schema().len();

        // Split the WHERE clause into conjuncts. Conjuncts touching
        // only joined-table columns (e.g. the scoring pattern's
        // `l3.j = 3`) are pushed into the join-product construction —
        // §3.6's join-elimination in spirit: without this, k aliased
        // dimension tables would materialize a k^k product before
        // filtering.
        let mut join_only: Vec<(BoundExpr, usize)> = Vec::new(); // (predicate, width needed)
        let mut residual: Vec<BoundExpr> = Vec::new();
        if let Some(w) = &stmt.where_clause {
            let mut conjuncts = Vec::new();
            split_conjuncts(w, &mut conjuncts);
            for conj in conjuncts {
                let bound = Binder::scalar(&schema, &self.registry).bind(conj)?;
                let mut cols = Vec::new();
                bound.collect_columns(&mut cols);
                match (cols.iter().min(), cols.iter().max()) {
                    (Some(&mn), Some(&mx)) if mn >= base_width => join_only.push((bound, mx + 1)),
                    (None, _) => join_only.push((bound, 0)), // constant predicate
                    _ => residual.push(bound),
                }
            }
        }

        // Materialize the cross-join product of the remaining tables,
        // applying each join-only predicate at the earliest stage its
        // columns exist.
        let null_prefix: Row = vec![Value::Null; base_width];
        let mut applied = vec![false; join_only.len()];
        let mut join_product: Vec<Row> = vec![Vec::new()];
        let mut width = base_width;
        let filter_stage =
            |product: &mut Vec<Row>, width: usize, applied: &mut Vec<bool>| -> Result<()> {
                for (i, (pred, needed)) in join_only.iter().enumerate() {
                    if applied[i] || *needed > width {
                        continue;
                    }
                    applied[i] = true;
                    let mut kept = Vec::with_capacity(product.len());
                    for suffix in product.drain(..) {
                        let mut probe = null_prefix.clone();
                        probe.extend(suffix.iter().cloned());
                        if matches!(pred.eval(&probe, &[], &[])?, Value::Int(x) if x != 0) {
                            kept.push(suffix);
                        }
                    }
                    *product = kept;
                }
                Ok(())
            };
        filter_stage(&mut join_product, width, &mut applied)?;
        for (table, _) in &sources {
            let rows = table.collect_rows()?;
            if join_product.len().saturating_mul(rows.len()) > JOIN_LIMIT {
                return Err(EngineError::JoinTooLarge {
                    rows: join_product.len() * rows.len(),
                    limit: JOIN_LIMIT,
                });
            }
            let mut next = Vec::with_capacity(join_product.len() * rows.len().max(1));
            for prefix in &join_product {
                for row in &rows {
                    let mut combined = prefix.clone();
                    combined.extend(row.iter().cloned());
                    next.push(combined);
                }
            }
            join_product = next;
            width += table.schema().len();
            filter_stage(&mut join_product, width, &mut applied)?;
        }
        debug_assert!(
            applied.iter().all(|&a| a),
            "all join-only predicates applied"
        );

        let is_agg_name = |n: &str| AggKind::is_aggregate_name(n, &self.registry);
        let aggregate_mode = !stmt.group_by.is_empty()
            || stmt
                .projections
                .iter()
                .any(|p| p.expr.contains_aggregate(&is_agg_name));

        Ok(PlannedSelect {
            base,
            schema,
            join_product,
            residual,
            pushed: join_only.len(),
            aggregate_mode,
        })
    }

    /// Describes the plan for a SELECT without executing its scan —
    /// the `EXPLAIN` statement.
    pub fn explain_select(&self, stmt: &SelectStmt) -> Result<Vec<String>> {
        let plan = self.plan_select(stmt)?;
        let mut lines = Vec::new();
        lines.push(format!(
            "scan {} ({} rows, {} partitions, {} workers)",
            stmt.from[0].name,
            plan.base.row_count(),
            plan.base.partition_count(),
            self.workers
        ));
        if stmt.from.len() > 1 {
            let names: Vec<&str> = stmt.from[1..].iter().map(|t| t.name.as_str()).collect();
            lines.push(format!(
                "cross join [{}] -> {} combination(s) after pushing {} predicate(s)",
                names.join(", "),
                plan.join_product.len(),
                plan.pushed
            ));
        } else if plan.pushed > 0 {
            lines.push(format!("{} constant predicate(s) pushed", plan.pushed));
        }
        if !plan.residual.is_empty() {
            lines.push(format!(
                "filter: {} residual predicate(s) per row",
                plan.residual.len()
            ));
        }
        if plan.aggregate_mode {
            // Re-bind to count aggregate calls and fast paths (the
            // executor does the same binding when it runs).
            let mut agg_calls: Vec<AggCall> = Vec::new();
            for p in &stmt.projections {
                let mut binder = Binder {
                    schema: &plan.schema,
                    registry: &self.registry,
                    group_exprs: &stmt.group_by,
                    aggs: Some(&mut agg_calls),
                };
                binder.bind(&p.expr)?;
            }
            if let Some(h) = &stmt.having {
                let mut binder = Binder {
                    schema: &plan.schema,
                    registry: &self.registry,
                    group_exprs: &stmt.group_by,
                    aggs: Some(&mut agg_calls),
                };
                binder.bind(h)?;
            }
            let fast_args = compute_fast_args(&plan.schema, &agg_calls);
            let fast = fast_args.iter().filter(|f| f.is_some()).count();
            let udfs = agg_calls
                .iter()
                .filter(|c| matches!(c.kind, AggKind::Udf(_)))
                .count();
            lines.push(format!(
                "aggregate: {} call(s) ({fast} fast-path candidate(s), {udfs} UDF state(s)); group by {} key(s)",
                agg_calls.len(),
                stmt.group_by.len()
            ));
            let trivial_join = plan.join_product.len() == 1 && plan.join_product[0].is_empty();
            // Mirror the executor's summary rewrite (without rebuilding
            // anything): report the summary that would answer.
            let summary_line = if stmt.from.len() == 1 && trivial_join && plan.residual.is_empty() {
                self.explain_summary_match(stmt, &plan.schema, &agg_calls)?
            } else {
                None
            };
            // Mirror the executor's block-path eligibility test so the
            // plan shows which scan mode will run.
            let block_plan = if self.block_scan && stmt.group_by.is_empty() && trivial_join {
                plan_block_calls(
                    &plan.schema,
                    plan.base.schema().len(),
                    &agg_calls,
                    &fast_args,
                    &plan.residual,
                )
            } else {
                None
            };
            match (summary_line, block_plan) {
                (Some(line), _) => lines.push(line),
                (None, Some(bp)) => lines.push(block_agg_line(&bp)),
                (None, None) => {
                    // State why the vectorized path is ineligible, most
                    // significant obstacle first.
                    let reason = if !self.block_scan {
                        "block scan disabled".to_owned()
                    } else if !stmt.group_by.is_empty() {
                        "GROUP BY requires row grouping".to_owned()
                    } else if !trivial_join {
                        "cross join".to_owned()
                    } else if plan_block_calls(
                        &plan.schema,
                        plan.base.schema().len(),
                        &agg_calls,
                        &fast_args,
                        &[],
                    )
                    .is_none()
                    {
                        "aggregate arguments are not all float base-table columns".to_owned()
                    } else {
                        format!(
                            "{} residual predicate(s) not block-compilable",
                            plan.residual.len()
                        )
                    };
                    lines.push(format!("scan mode: row-at-a-time ({reason})"));
                }
            }
            if stmt.having.is_some() {
                lines.push("having: post-aggregation filter".into());
            }
        } else {
            lines.push(format!(
                "project: {} expression(s) per row",
                stmt.projections.len()
            ));
            // Mirror the executor's scalar block-path eligibility test
            // (scoring queries decode column blocks instead of rows).
            let mut bound = Vec::new();
            for p in &stmt.projections {
                if p.expr == Expr::Wildcard {
                    for c in 0..plan.schema.len() {
                        bound.push(BoundExpr::ColumnRef(c));
                    }
                } else {
                    bound.push(Binder::scalar(&plan.schema, &self.registry).bind(&p.expr)?);
                }
            }
            let block_plan = if self.block_scan && stmt.order_by.is_empty() {
                plan_scalar_block(
                    &plan.schema,
                    &plan.base,
                    &plan.join_product,
                    &bound,
                    &plan.residual,
                )
            } else {
                Err(String::new())
            };
            match block_plan {
                Ok(bp) => lines.push(block_scalar_line(&bp)),
                Err(why) => {
                    let reason = if !self.block_scan {
                        "block scan disabled".to_owned()
                    } else if !stmt.order_by.is_empty() {
                        "ORDER BY requires row materialization".to_owned()
                    } else {
                        why
                    };
                    lines.push(format!("scan mode: row-at-a-time ({reason})"));
                }
            }
        }
        if !stmt.order_by.is_empty() {
            lines.push(format!("order by: {} key(s)", stmt.order_by.len()));
        }
        if let Some(limit) = stmt.limit {
            lines.push(format!("limit: {limit}"));
        }
        Ok(lines)
    }

    /// Resolves a name to a materialized table, executing views.
    /// Names under `sys.` resolve through the registered
    /// [`SystemTableProvider`], snapshotting live state into an
    /// ordinary table the scan paths treat like any other.
    pub fn resolve_table(&self, name: &str) -> Result<Arc<Table>> {
        let lower = name.to_ascii_lowercase();
        if lower.starts_with(crate::sys::SYS_PREFIX) {
            let provider = self
                .system
                .as_ref()
                .ok_or_else(|| EngineError::UnknownTable(name.to_owned()))?;
            return provider
                .sys_table(&lower)
                .map(Arc::new)
                .ok_or_else(|| EngineError::UnknownTable(name.to_owned()));
        }
        match self.catalog.get(name) {
            Some(CatalogEntry::Table(t)) => Ok(t),
            Some(CatalogEntry::View(query)) => {
                let rs = self.execute_select(&query)?;
                Ok(Arc::new(result_to_table(&rs, self.workers)?))
            }
            None => Err(EngineError::UnknownTable(name.to_owned())),
        }
    }

    fn execute_scalar(
        &self,
        stmt: &SelectStmt,
        base: &Table,
        schema: &BoundSchema,
        join_product: &[Row],
        residual: &[BoundExpr],
    ) -> Result<ResultSet> {
        if stmt.having.is_some() {
            return Err(EngineError::Unsupported(
                "HAVING requires aggregation or GROUP BY".into(),
            ));
        }
        // Expand projections (wildcard becomes every column).
        let mut bound = Vec::new();
        let mut names = Vec::new();
        for (i, p) in stmt.projections.iter().enumerate() {
            if p.expr == Expr::Wildcard {
                for c in 0..schema.len() {
                    bound.push(BoundExpr::ColumnRef(c));
                    names.push(schema.column_name(c).to_owned());
                }
            } else {
                bound.push(Binder::scalar(schema, &self.registry).bind(&p.expr)?);
                names.push(projection_name(p, i));
            }
        }

        // ORDER BY keys: bound against the input schema, or a 1-based
        // output ordinal (`ORDER BY 2`).
        let order_bound: Vec<(OrderEval, bool)> = stmt
            .order_by
            .iter()
            .map(|key| {
                let eval = match &key.expr {
                    Expr::Literal(Value::Int(k)) => {
                        let idx = (*k as usize).checked_sub(1).filter(|i| *i < bound.len());
                        OrderEval::Ordinal(idx.ok_or_else(|| {
                            EngineError::Unsupported(format!("ORDER BY ordinal {k} out of range"))
                        })?)
                    }
                    e => OrderEval::Expr(Binder::scalar(schema, &self.registry).bind(e)?),
                };
                Ok((eval, key.descending))
            })
            .collect::<Result<_>>()?;

        // Vectorized alternative to the row loop: scoring-style
        // projections (scalar UDFs over float base columns plus
        // model-table constants from a single join combination) decode
        // column blocks instead of materializing full rows. Residual
        // predicates ride along as per-block selection bitmaps, and a
        // LIMIT stops each worker early.
        if self.block_scan && stmt.order_by.is_empty() {
            if let Ok(plan) = plan_scalar_block(schema, base, join_product, &bound, residual) {
                let scan_started = Instant::now();
                let rows = self.run_scalar_block(base, &plan, stmt.limit)?;
                let mut stats = ExecStats {
                    block_path: true,
                    ..ExecStats::default()
                };
                stats.scan_nanos = scan_started.elapsed().as_nanos() as u64;
                stats.rows_scanned = rows.1;
                stats.blocks_scanned = rows.2;
                let mut out = rows.0;
                if let Some(limit) = stmt.limit {
                    out.truncate(limit);
                }
                let mut rs = ResultSet::new(names, out);
                rs.stats = stats;
                return Ok(rs);
            }
        }

        let bound_ref = &bound;
        let order_ref = &order_bound;
        let cancel = self.cancel.as_deref();
        let scan_started = Instant::now();
        // Each worker returns its keyed projections plus how many base
        // rows it scanned.
        type KeyedPartial = (Vec<(Row, Row)>, u64);
        let partials: Vec<Result<KeyedPartial>> = parallel_scan(base, self.workers, |iter| {
            let mut out = Vec::new();
            let mut combined_buf: Row = Vec::new();
            let mut scanned_rows = 0u64;
            for (scanned, row) in iter.enumerate() {
                check_cancelled(cancel, scanned as u64)?;
                scanned_rows += 1;
                let left = row?;
                'suffixes: for suffix in join_product {
                    // Borrow the base row directly when there is no join.
                    let combined: &[Value] = if suffix.is_empty() {
                        &left
                    } else {
                        combined_buf.clear();
                        combined_buf.extend(left.iter().cloned());
                        combined_buf.extend(suffix.iter().cloned());
                        &combined_buf
                    };
                    for pred in residual {
                        if !matches!(pred.eval(combined, &[], &[])?, Value::Int(x) if x != 0) {
                            continue 'suffixes;
                        }
                    }
                    let mut projected = Vec::with_capacity(bound_ref.len());
                    for b in bound_ref {
                        projected.push(b.eval(combined, &[], &[])?);
                    }
                    // Evaluate ORDER BY keys against the same row and
                    // carry them alongside the projection.
                    let mut keys = Vec::with_capacity(order_ref.len());
                    for (eval, _) in order_ref {
                        keys.push(match eval {
                            OrderEval::Ordinal(i) => projected[*i].clone(),
                            OrderEval::Expr(e) => e.eval(combined, &[], &[])?,
                        });
                    }
                    out.push((keys, projected));
                }
            }
            Ok((out, scanned_rows))
        });

        let mut keyed_rows = Vec::new();
        let mut rows_scanned = 0u64;
        for (p, scanned) in merge_partial_errors(partials)? {
            keyed_rows.extend(p);
            rows_scanned += scanned;
        }
        let scan_nanos = scan_started.elapsed().as_nanos() as u64;
        let rows = finish_rows(keyed_rows, &stmt.order_by, stmt.limit);
        let mut rs = ResultSet::new(names, rows);
        rs.stats.rows_scanned = rows_scanned;
        rs.stats.scan_nanos = scan_nanos;
        Ok(rs)
    }

    /// Executes a planned block-path scalar projection: decode column
    /// blocks per partition, evaluate each projection per row. Returns
    /// `(rows, rows_scanned, blocks_scanned)`; row order matches the
    /// row path's (partition-major).
    fn run_scalar_block(
        &self,
        base: &Table,
        plan: &ScalarBlockPlan,
        limit: Option<usize>,
    ) -> Result<(Vec<Row>, u64, u64)> {
        let cancel = self.cancel.as_deref();
        let partials: Vec<Result<(Vec<Row>, u64, u64)>> =
            parallel_scan_partitions(base, self.workers, |p| {
                let mut out = Vec::new();
                let mut iter = base.scan_partition_blocks_numeric(p, &plan.cols)?;
                let (mut rows, mut blocks) = (0u64, 0u64);
                let mut sel = Vec::new();
                let mut pred_scratch = PredScratch::default();
                let mut arg_pool: Vec<Vec<Value>> = Vec::new();
                let mut batch_out: Vec<Vec<Value>> = vec![Vec::new(); plan.exprs.len()];
                let mut batch_ok = vec![false; plan.exprs.len()];
                // The final output keeps the first `limit` rows in
                // partition-major order, so no worker ever needs more
                // than `limit` rows of its own.
                let done = |out: &Vec<Row>| limit.is_some_and(|l| out.len() >= l);
                while let Some(block) = iter.next_block() {
                    check_cancelled(cancel, rows)?;
                    let block = block?;
                    rows += block.len() as u64;
                    blocks += 1;
                    let selection: Option<&[u64]> = match &plan.predicate {
                        None => None,
                        Some(pred) => {
                            pred.selection(&block, &mut sel, &mut pred_scratch);
                            Some(sel.as_slice())
                        }
                    };
                    // Columnar projections: a flat UDF call (all args
                    // columns or constants) evaluates once over the
                    // whole block instead of once per row — unless a
                    // small LIMIT makes per-row early exit cheaper
                    // than computing rows nobody will read.
                    let batch_worthwhile = limit.is_none_or(|l| l >= block.len());
                    for (k, e) in plan.exprs.iter().enumerate() {
                        batch_ok[k] = false;
                        if !batch_worthwhile || !plan.batched[k] {
                            continue;
                        }
                        let ScalarBlockExpr::Udf { udf, args } = e else {
                            continue;
                        };
                        let bargs: Vec<ScalarBatchArg> = args
                            .iter()
                            .map(|a| match a {
                                ScalarBlockExpr::Col(s) => {
                                    let col = block.column(*s);
                                    ScalarBatchArg::Col {
                                        values: col.values,
                                        validity: col.validity(),
                                    }
                                }
                                ScalarBlockExpr::Const(v) => ScalarBatchArg::Const(v),
                                ScalarBlockExpr::Udf { .. } => unreachable!("flat_udf"),
                            })
                            .collect();
                        batch_out[k].clear();
                        batch_ok[k] = udf.eval_batch(&bargs, block.len(), &mut batch_out[k])?;
                    }
                    let mut emit = |out: &mut Vec<Row>, i: usize| -> Result<()> {
                        let mut row = Vec::with_capacity(plan.exprs.len());
                        for (k, e) in plan.exprs.iter().enumerate() {
                            row.push(if batch_ok[k] {
                                batch_out[k][i].clone()
                            } else {
                                e.eval(&block, &plan.int_slots, i, &mut arg_pool, 0)?
                            });
                        }
                        out.push(row);
                        Ok(())
                    };
                    match selection {
                        None => {
                            for i in 0..block.len() {
                                emit(&mut out, i)?;
                                if done(&out) {
                                    break;
                                }
                            }
                        }
                        Some(words) => {
                            'words: for (w, &word) in words.iter().enumerate() {
                                let mut m = word;
                                while m != 0 {
                                    let i = (w << 6) | m.trailing_zeros() as usize;
                                    m &= m - 1;
                                    emit(&mut out, i)?;
                                    if done(&out) {
                                        break 'words;
                                    }
                                }
                            }
                        }
                    }
                    if done(&out) {
                        break;
                    }
                }
                Ok((out, rows, blocks))
            });
        let mut all = Vec::new();
        let (mut rows, mut blocks) = (0u64, 0u64);
        for (o, r, b) in merge_partial_errors(partials)? {
            all.extend(o);
            rows += r;
            blocks += b;
        }
        Ok((all, rows, blocks))
    }

    fn execute_aggregate(
        &self,
        stmt: &SelectStmt,
        base: &Table,
        schema: &BoundSchema,
        join_product: &[Row],
        residual: &[BoundExpr],
    ) -> Result<ResultSet> {
        let bindings = self.bind_aggregate(stmt, schema)?;
        let mut stats = ExecStats::default();
        let merged = self.aggregate_partials(
            stmt,
            base,
            schema,
            join_product,
            residual,
            &bindings,
            &mut stats,
        )?;
        finalize_merged(stmt, &bindings, merged, stats)
    }

    /// Binds everything an aggregate SELECT evaluates — GROUP BY keys,
    /// projections, HAVING, ORDER BY — collecting the aggregate calls
    /// they contain. Binding is deterministic, so two engines with the
    /// same catalog and registry produce the same call list (the
    /// property shard gather relies on to line partials up).
    fn bind_aggregate(&self, stmt: &SelectStmt, schema: &BoundSchema) -> Result<AggBindings> {
        // Bind GROUP BY keys (scalar mode).
        let group_bound: Vec<BoundExpr> = stmt
            .group_by
            .iter()
            .map(|g| Binder::scalar(schema, &self.registry).bind(g))
            .collect::<Result<_>>()?;

        // Bind projections in aggregate mode, extracting agg calls.
        let mut agg_calls: Vec<AggCall> = Vec::new();
        let mut proj_bound = Vec::new();
        let mut names = Vec::new();
        for (i, p) in stmt.projections.iter().enumerate() {
            let mut binder = Binder {
                schema,
                registry: &self.registry,
                group_exprs: &stmt.group_by,
                aggs: Some(&mut agg_calls),
            };
            proj_bound.push(binder.bind(&p.expr)?);
            names.push(projection_name(p, i));
        }

        // HAVING and ORDER BY are also bound in aggregate mode so they
        // may introduce their own aggregate calls (e.g.
        // `HAVING count(*) > 5`, `ORDER BY sum(v) DESC`).
        let having_bound = match &stmt.having {
            Some(h) => {
                let mut binder = Binder {
                    schema,
                    registry: &self.registry,
                    group_exprs: &stmt.group_by,
                    aggs: Some(&mut agg_calls),
                };
                Some(binder.bind(h)?)
            }
            None => None,
        };
        let order_bound: Vec<(OrderEval, bool)> = stmt
            .order_by
            .iter()
            .map(|key| {
                let eval = match &key.expr {
                    Expr::Literal(Value::Int(k)) => {
                        let idx = (*k as usize)
                            .checked_sub(1)
                            .filter(|i| *i < proj_bound.len());
                        OrderEval::Ordinal(idx.ok_or_else(|| {
                            EngineError::Unsupported(format!("ORDER BY ordinal {k} out of range"))
                        })?)
                    }
                    e => {
                        let mut binder = Binder {
                            schema,
                            registry: &self.registry,
                            group_exprs: &stmt.group_by,
                            aggs: Some(&mut agg_calls),
                        };
                        OrderEval::Expr(binder.bind(e)?)
                    }
                };
                Ok((eval, key.descending))
            })
            .collect::<Result<_>>()?;

        // Verify every aggregate UDF state fits the heap budget.
        for call in &agg_calls {
            if let AggKind::Udf(udf) = &call.kind {
                let probe = udf.init();
                check_heap(udf.name(), probe.as_ref())?;
            }
        }

        Ok(AggBindings {
            group_bound,
            agg_calls,
            proj_bound,
            names,
            having_bound,
            order_bound,
        })
    }

    /// Phases 1–3 of the aggregation protocol: summary rewrite or
    /// parallel scan, then the per-engine partial merge. Returns the
    /// merged (but unfinalized) per-group accumulator states, so the
    /// caller can either finalize locally ([`finalize_merged`]) or
    /// ship them to a gather step that merges across shards first.
    #[allow(clippy::too_many_arguments)]
    fn aggregate_partials(
        &self,
        stmt: &SelectStmt,
        base: &Table,
        schema: &BoundSchema,
        join_product: &[Row],
        residual: &[BoundExpr],
        bindings: &AggBindings,
        stats: &mut ExecStats,
    ) -> Result<GroupMap> {
        let group_bound = &bindings.group_bound;
        let agg_calls = &bindings.agg_calls;

        // Planner rewrite: answer the whole statement from a
        // materialized Γ summary when one structurally matches — no
        // scan at all, O(groups · d²) work. The summary yields
        // *accumulator* states (not finalized values), so a summary
        // answer merges with other engines' partials like any scan.
        let trivial_join = join_product.len() == 1 && join_product[0].is_empty();
        if stmt.from.len() == 1 && trivial_join && residual.is_empty() {
            let summary_started = Instant::now();
            let answer = self.try_summary_answer(
                &stmt.from[0].name,
                base,
                schema,
                group_bound,
                agg_calls,
                stats,
            )?;
            stats.summary_nanos = summary_started.elapsed().as_nanos() as u64;
            if let Some(groups) = answer {
                return Ok(groups);
            }
        }

        // Recognize fast shapes for simple numeric aggregate terms
        // (the bulk of the paper's generated 1 + d + d² queries).
        let fast_args = compute_fast_args(schema, agg_calls);

        let group_ref = group_bound;
        let calls_ref = agg_calls;
        let fast_ref = &fast_args;
        let cancel = self.cancel.as_deref();

        // Vectorized alternative to the row loop: when the whole
        // statement is a global aggregate over numeric columns of the
        // base table, scan fixed-size column blocks instead of rows.
        // Compilable residual predicates become per-block selection
        // bitmaps rather than forcing the row path.
        let block_plan = if self.block_scan && group_bound.is_empty() && trivial_join {
            plan_block_calls(schema, base.schema().len(), agg_calls, &fast_args, residual)
        } else {
            None
        };

        // Phase 1-2: each worker accumulates per-group partial states
        // over its partition (the UDF protocol's init + row steps).
        let scan_started = Instant::now();
        let partials: Vec<Result<(GroupMap, u64, u64, u64)>> = if let Some(plan) = &block_plan {
            stats.block_path = true;
            parallel_scan_partitions(base, self.workers, |p| {
                let start = Instant::now();
                let mut accums: Vec<AggAccum> = calls_ref.iter().map(AggAccum::init).collect();
                let mut iter = base.scan_partition_blocks_numeric(p, &plan.cols)?;
                let (mut rows, mut blocks) = (0u64, 0u64);
                let mut sel = Vec::new();
                let mut pred_scratch = PredScratch::default();
                let mut active_buf = Vec::new();
                while let Some(block) = iter.next_block() {
                    check_cancelled(cancel, rows)?;
                    let block = block?;
                    rows += block.len() as u64;
                    blocks += 1;
                    let selection: Option<&[u64]> = match &plan.predicate {
                        None => None,
                        Some(pred) => {
                            pred.selection(&block, &mut sel, &mut pred_scratch);
                            Some(sel.as_slice())
                        }
                    };
                    for (accum, call) in accums.iter_mut().zip(&plan.calls) {
                        accum.update_block(&block, call, selection, &mut active_buf)?;
                    }
                }
                let mut groups: GroupMap = HashMap::new();
                if rows > 0 {
                    groups.insert(GroupKey(Vec::new()), accums);
                }
                Ok((groups, rows, blocks, start.elapsed().as_nanos() as u64))
            })
        } else {
            parallel_scan(base, self.workers, |iter| {
                let start = Instant::now();
                let mut groups: GroupMap = HashMap::new();
                let mut arg_buf: Vec<Value> = Vec::new();
                let mut combined_buf: Row = Vec::new();
                let mut rows = 0u64;
                for row in iter {
                    check_cancelled(cancel, rows)?;
                    let left = row?;
                    rows += 1;
                    'suffixes: for suffix in join_product {
                        let combined: &[Value] = if suffix.is_empty() {
                            &left
                        } else {
                            combined_buf.clear();
                            combined_buf.extend(left.iter().cloned());
                            combined_buf.extend(suffix.iter().cloned());
                            &combined_buf
                        };
                        for pred in residual {
                            if !matches!(pred.eval(combined, &[], &[])?, Value::Int(x) if x != 0) {
                                continue 'suffixes;
                            }
                        }
                        let key = GroupKey(
                            group_ref
                                .iter()
                                .map(|g| g.eval(combined, &[], &[]))
                                .collect::<Result<Vec<_>>>()?,
                        );
                        let accums = match groups.get_mut(&key) {
                            Some(a) => a,
                            None => groups
                                .entry(key)
                                .or_insert_with(|| calls_ref.iter().map(AggAccum::init).collect()),
                        };
                        for ((accum, call), fast) in accums.iter_mut().zip(calls_ref).zip(fast_ref)
                        {
                            if let Some(fa) = fast {
                                accum.update_fast(fa.eval_f64(combined));
                                continue;
                            }
                            arg_buf.clear();
                            for a in &call.args {
                                arg_buf.push(a.eval(combined, &[], &[])?);
                            }
                            accum.update(&arg_buf)?;
                        }
                    }
                }
                Ok((groups, rows, 0, start.elapsed().as_nanos() as u64))
            })
        };

        // Phase 3: master merges the partials.
        let merge_start = Instant::now();
        let mut merged: GroupMap = HashMap::new();
        for (groups, rows, blocks, nanos) in merge_partial_errors(partials)? {
            stats.rows_scanned += rows;
            stats.blocks_scanned += blocks;
            stats.accumulate_nanos += nanos;
            for (key, accums) in groups {
                match merged.get_mut(&key) {
                    None => {
                        merged.insert(key, accums);
                    }
                    Some(existing) => {
                        for (e, a) in existing.iter_mut().zip(accums) {
                            e.merge(a)?;
                        }
                    }
                }
            }
        }
        stats.merge_nanos = merge_start.elapsed().as_nanos() as u64;
        stats.scan_nanos = scan_started.elapsed().as_nanos() as u64;
        Ok(merged)
    }

    /// Runs phases 1–3 of an aggregate SELECT and packages the result
    /// as a shippable [`AggPartial`] (the scatter half of a sharded
    /// aggregate).
    pub fn execute_select_partial(&self, stmt: &SelectStmt) -> Result<AggPartial> {
        let plan_started = Instant::now();
        let plan = self.plan_select(stmt)?;
        if !plan.aggregate_mode {
            return Err(EngineError::Unsupported(
                "partial execution requires an aggregate SELECT".into(),
            ));
        }
        let bindings = self.bind_aggregate(stmt, &plan.schema)?;
        let mut stats = ExecStats {
            plan_nanos: plan_started.elapsed().as_nanos() as u64,
            ..ExecStats::default()
        };
        let merged = self.aggregate_partials(
            stmt,
            &plan.base,
            &plan.schema,
            &plan.join_product,
            &plan.residual,
            &bindings,
            &mut stats,
        )?;
        Ok(AggPartial {
            groups: merged.into_iter().collect(),
            stats,
        })
    }

    /// The gather half of a sharded aggregate: merges partials from
    /// [`ExecContext::execute_select_partial`] group-by-group through
    /// the accumulator merge protocol, then finalizes. Statement
    /// counters are summed; `summary_path` survives only when *every*
    /// partial was answered from a summary.
    pub fn finalize_select_partials(
        &self,
        stmt: &SelectStmt,
        partials: Vec<AggPartial>,
    ) -> Result<ResultSet> {
        let plan = self.plan_select(stmt)?;
        if !plan.aggregate_mode {
            return Err(EngineError::Unsupported(
                "partial execution requires an aggregate SELECT".into(),
            ));
        }
        let bindings = self.bind_aggregate(stmt, &plan.schema)?;
        let mut stats = ExecStats::default();
        let mut all_summary = !partials.is_empty();
        let merge_start = Instant::now();
        let mut merged: GroupMap = HashMap::new();
        for partial in partials {
            let s = &partial.stats;
            stats.rows_scanned += s.rows_scanned;
            stats.blocks_scanned += s.blocks_scanned;
            stats.block_path |= s.block_path;
            stats.summary_hits += s.summary_hits;
            stats.summary_misses += s.summary_misses;
            stats.summary_stale_rebuilds += s.summary_stale_rebuilds;
            stats.summary_rebuild_rows += s.summary_rebuild_rows;
            stats.plan_nanos += s.plan_nanos;
            stats.summary_nanos += s.summary_nanos;
            stats.scan_nanos += s.scan_nanos;
            stats.accumulate_nanos += s.accumulate_nanos;
            stats.merge_nanos += s.merge_nanos;
            all_summary &= s.summary_path;
            for (key, accums) in partial.groups {
                match merged.get_mut(&key) {
                    None => {
                        merged.insert(key, accums);
                    }
                    Some(existing) => {
                        for (e, a) in existing.iter_mut().zip(accums) {
                            e.merge(a)?;
                        }
                    }
                }
            }
        }
        stats.summary_path = all_summary;
        stats.merge_nanos += merge_start.elapsed().as_nanos() as u64;
        finalize_merged(stmt, &bindings, merged, stats)
    }

    /// Attempts to answer an aggregate query from a materialized Γ
    /// summary on `table`. A structurally matching stale summary is
    /// rebuilt on the spot (the stale → fresh edge); returns per-group
    /// accumulator states seeded from Γ on a hit (merge-compatible
    /// with scan partials), `None` to fall back to the scan paths.
    fn try_summary_answer(
        &self,
        table: &str,
        base: &Table,
        schema: &BoundSchema,
        group_bound: &[BoundExpr],
        agg_calls: &[AggCall],
        stats: &mut ExecStats,
    ) -> Result<Option<GroupMap>> {
        let candidates = self.summaries.for_table(table);
        if candidates.is_empty() || agg_calls.is_empty() {
            return Ok(None);
        }
        // The only group shape a keyed summary stores: one plain
        // column reference.
        let want_group = match group_bound {
            [] => None,
            [BoundExpr::ColumnRef(i)] => Some(schema.column_name(*i)),
            _ => {
                stats.summary_misses += 1;
                return Ok(None);
            }
        };
        for entry in &candidates {
            let Some(recipes) = plan_summary_recipes(entry.def(), schema, agg_calls, want_group)
            else {
                continue;
            };
            if !entry.is_fresh() {
                match entry.rebuild_with_cancel(base, self.cancel.as_deref()) {
                    // The rebuild scanned the table for real; account
                    // its rows so EXPLAIN ANALYZE shows the work.
                    Ok(rebuild_rows) => {
                        stats.summary_stale_rebuilds += 1;
                        stats.summary_rebuild_rows += rebuild_rows;
                        stats.rows_scanned += rebuild_rows;
                    }
                    // A cancelled rebuild cancels the statement; the
                    // entry stays stale for the next reader.
                    Err(e @ nlq_summary::SummaryError::Cancelled { .. }) => return Err(e.into()),
                    // E.g. the table was replaced with an incompatible
                    // schema; the summary stays stale and unusable.
                    Err(_) => continue,
                }
            }
            let snap = entry.snapshot();
            if !snap.fresh || !null_gate(entry.def(), &recipes, snap.null_rows_skipped) {
                continue;
            }
            let groups = summary_accum_groups(&snap, &recipes, agg_calls)?;
            stats.summary_path = true;
            stats.summary_hits += 1;
            return Ok(Some(groups));
        }
        // Summaries exist for this table but none could answer.
        stats.summary_misses += 1;
        Ok(None)
    }

    /// EXPLAIN's view of the summary rewrite: the `scan mode: summary`
    /// line for the first summary that would answer this statement, or
    /// `None`. Stale candidates are reported (they rebuild on execute)
    /// but never rebuilt here.
    fn explain_summary_match(
        &self,
        stmt: &SelectStmt,
        schema: &BoundSchema,
        agg_calls: &[AggCall],
    ) -> Result<Option<String>> {
        if agg_calls.is_empty() {
            return Ok(None);
        }
        let group_bound: Vec<BoundExpr> = stmt
            .group_by
            .iter()
            .map(|g| Binder::scalar(schema, &self.registry).bind(g))
            .collect::<Result<_>>()?;
        let want_group = match group_bound.as_slice() {
            [] => None,
            [BoundExpr::ColumnRef(i)] => Some(schema.column_name(*i)),
            _ => return Ok(None),
        };
        for entry in self.summaries.for_table(&stmt.from[0].name) {
            let Some(recipes) = plan_summary_recipes(entry.def(), schema, agg_calls, want_group)
            else {
                continue;
            };
            let snap = entry.snapshot();
            if snap.fresh && !null_gate(entry.def(), &recipes, snap.null_rows_skipped) {
                continue;
            }
            let line = if snap.fresh {
                format!("scan mode: summary ({}, fresh)", entry.def().name)
            } else {
                format!(
                    "scan mode: summary ({}, stale; rebuilt on execute)",
                    entry.def().name
                )
            };
            return Ok(Some(line));
        }
        Ok(None)
    }
}

/// Phase 4 of the aggregation protocol, shared by the scan paths and
/// the summary answer path: apply HAVING, evaluate projections and
/// ORDER BY keys per group, sort, and attach the counters.
fn finalize_groups(
    stmt: &SelectStmt,
    proj_bound: &[BoundExpr],
    names: Vec<String>,
    having_bound: &Option<BoundExpr>,
    order_bound: &[(OrderEval, bool)],
    groups: GroupRows,
    mut stats: ExecStats,
) -> Result<ResultSet> {
    let finalize_start = Instant::now();
    let mut keyed_rows = Vec::with_capacity(groups.len());
    for (key, agg_values) in groups {
        if let Some(h) = having_bound {
            if !matches!(h.eval(&[], &agg_values, &key.0)?, Value::Int(x) if x != 0) {
                continue;
            }
        }
        let mut out = Vec::with_capacity(proj_bound.len());
        for b in proj_bound {
            out.push(b.eval(&[], &agg_values, &key.0)?);
        }
        let mut keys = Vec::with_capacity(order_bound.len());
        for (eval, _) in order_bound {
            keys.push(match eval {
                OrderEval::Ordinal(i) => out[*i].clone(),
                OrderEval::Expr(e) => e.eval(&[], &agg_values, &key.0)?,
            });
        }
        keyed_rows.push((keys, out));
    }
    // With no ORDER BY, sort whole rows for deterministic grouped
    // output; otherwise sort by the requested keys.
    if stmt.order_by.is_empty() {
        keyed_rows.sort_by(|(_, a), (_, b)| {
            for (x, y) in a.iter().zip(b) {
                let ord = value_cmp(x, y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let mut rows: Vec<Row> = keyed_rows.into_iter().map(|(_, r)| r).collect();
        if let Some(limit) = stmt.limit {
            rows.truncate(limit);
        }
        stats.finalize_nanos = finalize_start.elapsed().as_nanos() as u64;
        let mut rs = ResultSet::new(names, rows);
        rs.stats = stats;
        return Ok(rs);
    }
    let rows = finish_rows(keyed_rows, &stmt.order_by, stmt.limit);
    stats.finalize_nanos = finalize_start.elapsed().as_nanos() as u64;
    let mut rs = ResultSet::new(names, rows);
    rs.stats = stats;
    Ok(rs)
}

/// How one aggregate call is answered from a summary's maintained Γ.
enum SummaryRecipe {
    /// `nlq_list(d, 'shape', cols...)`: project the state onto the
    /// query's dimensions and re-pack it.
    Nlq {
        dims: Vec<usize>,
        shape: MatrixShape,
    },
    /// `count(*)` / `count(col)`: the state's `n`.
    Count,
    /// `sum(col)`: `L[dim]` (summarized columns are float, so the
    /// integer-sum rule never applies).
    Sum { dim: usize },
    /// `avg(col)`: `L[dim] / n`.
    Avg { dim: usize },
    /// `min(col)`: the maintained per-dimension minimum.
    Min { dim: usize },
    /// `max(col)`: the maintained per-dimension maximum.
    Max { dim: usize },
    /// Statistical builtin: the executor's 2-D formulas fed from L/Q.
    Stat {
        kind: StatAgg,
        a: usize,
        b: Option<usize>,
    },
}

/// Structurally matches every aggregate call of a query against one
/// summary definition, or `None` when the GROUP BY or any call falls
/// outside what this summary's Γ can answer.
fn plan_summary_recipes(
    def: &SummaryDef,
    schema: &BoundSchema,
    agg_calls: &[AggCall],
    want_group: Option<&str>,
) -> Option<Vec<SummaryRecipe>> {
    match (&def.group_by, want_group) {
        (None, None) => {}
        (Some(g), Some(w)) if g.eq_ignore_ascii_case(w) => {}
        _ => return None,
    }
    let dim = |args: &[BoundExpr]| match args {
        [BoundExpr::ColumnRef(i)] => def.dim_of(schema.column_name(*i)),
        _ => None,
    };
    agg_calls
        .iter()
        .map(|call| match &call.kind {
            AggKind::CountStar => Some(SummaryRecipe::Count),
            AggKind::Count => dim(&call.args).map(|_| SummaryRecipe::Count),
            AggKind::Sum => dim(&call.args).map(|dim| SummaryRecipe::Sum { dim }),
            AggKind::Avg => dim(&call.args).map(|dim| SummaryRecipe::Avg { dim }),
            // A `NO MINMAX` summary stores no bounds to answer from.
            AggKind::Min => dim(&call.args)
                .filter(|_| def.minmax)
                .map(|dim| SummaryRecipe::Min { dim }),
            AggKind::Max => dim(&call.args)
                .filter(|_| def.minmax)
                .map(|dim| SummaryRecipe::Max { dim }),
            AggKind::Stat(kind) => match (kind.arity(), call.args.as_slice()) {
                (1, [_]) => dim(&call.args).map(|a| SummaryRecipe::Stat {
                    kind: *kind,
                    a,
                    b: None,
                }),
                (2, [a, b]) => {
                    let a = dim(std::slice::from_ref(a))?;
                    let b = dim(std::slice::from_ref(b))?;
                    // Cross moments need an off-diagonal Q entry.
                    (a == b || def.shape != MatrixShape::Diagonal).then_some(SummaryRecipe::Stat {
                        kind: *kind,
                        a,
                        b: Some(b),
                    })
                }
                _ => None,
            },
            AggKind::Udf(udf) if udf.name() == "nlq_list" => {
                plan_nlq_recipe(def, schema, &call.args)
            }
            AggKind::Udf(_) => None,
        })
        .collect()
}

/// Matches one `nlq_list(d, 'shape', cols...)` call against a summary:
/// every coordinate must be a summarized column and the requested
/// shape must be derivable from the maintained one.
fn plan_nlq_recipe(
    def: &SummaryDef,
    schema: &BoundSchema,
    args: &[BoundExpr],
) -> Option<SummaryRecipe> {
    let [BoundExpr::Literal(Value::Int(d)), BoundExpr::Literal(Value::Str(shape)), cols @ ..] =
        args
    else {
        return None;
    };
    let shape = MatrixShape::parse(shape)?;
    if !shape_covers(def.shape, shape) || cols.len() != *d as usize {
        return None;
    }
    let dims = cols
        .iter()
        .map(|c| match c {
            BoundExpr::ColumnRef(i) => def.dim_of(schema.column_name(*i)),
            _ => None,
        })
        .collect::<Option<Vec<_>>>()?;
    Some(SummaryRecipe::Nlq { dims, shape })
}

/// Whether the summary's statistics cover the query despite skipped
/// NULL rows: always when nothing was skipped; otherwise only full-Γ
/// `nlq` answers whose dimensions cover every summarized column (the
/// row-skip sets then coincide with a direct scan's).
fn null_gate(def: &SummaryDef, recipes: &[SummaryRecipe], skipped: u64) -> bool {
    if skipped == 0 {
        return true;
    }
    recipes.iter().all(|r| match r {
        SummaryRecipe::Nlq { dims, .. } => {
            let mut seen = vec![false; def.d()];
            for &d in dims {
                seen[d] = true;
            }
            seen.iter().all(|&s| s)
        }
        _ => false,
    })
}

/// Evaluates every recipe against each maintained group state,
/// producing accumulator states rather than finalized values: a
/// summary answer is just another partial, so a sharded gather can
/// merge a shard's summary hit with another shard's scan through the
/// same [`AggAccum::merge`] protocol. Finalizing these states yields
/// exactly the values a direct summary answer used to produce.
fn summary_accum_groups(
    snap: &SummarySnapshot,
    recipes: &[SummaryRecipe],
    agg_calls: &[AggCall],
) -> Result<GroupMap> {
    let answer = |g: &Nlq| -> Result<Vec<AggAccum>> {
        recipes
            .iter()
            .zip(agg_calls)
            .map(|(r, c)| summary_accum(g, r, c))
            .collect()
    };
    Ok(match &snap.data {
        SummaryData::Global(g) => {
            let mut m = GroupMap::new();
            m.insert(GroupKey(Vec::new()), answer(g)?);
            m
        }
        SummaryData::Grouped(groups) => groups
            .iter()
            .map(|(k, g)| Ok((GroupKey(vec![k.clone()]), answer(g)?)))
            .collect::<Result<GroupMap>>()?,
    })
}

/// One accumulator state from one Γ state. The variant mirrors what
/// the scan path builds for the same call (so cross-engine merges
/// line up), and an empty Γ (`n = 0`) seeds the same neutral state as
/// [`AggAccum::init`] — finalizing it matches a zero-row scan.
fn summary_accum(g: &Nlq, recipe: &SummaryRecipe, call: &AggCall) -> Result<AggAccum> {
    let n = g.n();
    Ok(match recipe {
        SummaryRecipe::Nlq { dims, shape } => AggAccum::Udf {
            state: nlq_udf::seeded_nlq_state(&project_nlq(g, dims, *shape)?),
        },
        SummaryRecipe::Count => match call.kind {
            AggKind::CountStar => AggAccum::CountStar { n: n as i64 },
            _ => AggAccum::Count { n: n as i64 },
        },
        // Summarized columns are float, so the integer-sum rule never
        // applies; an empty state keeps `int_only` neutral for merges.
        SummaryRecipe::Sum { dim } => AggAccum::Sum {
            acc: g.l()[*dim],
            any: n > 0.0,
            int_only: n == 0.0,
        },
        SummaryRecipe::Avg { dim } => AggAccum::Avg {
            sum: g.l()[*dim],
            n: n as i64,
        },
        SummaryRecipe::Min { dim } => AggAccum::Min {
            best: (n > 0.0).then(|| Value::Float(g.min()[*dim])),
        },
        SummaryRecipe::Max { dim } => AggAccum::Max {
            best: (n > 0.0).then(|| Value::Float(g.max()[*dim])),
        },
        SummaryRecipe::Stat { kind, a, b } => {
            let (l, q) = (g.l(), g.q_full());
            let (sb, sbb, sab) = match b {
                Some(b) => (l[*b], q[(*b, *b)], q[(*a, *b)]),
                None => (0.0, 0.0, 0.0),
            };
            AggAccum::Stat {
                kind: *kind,
                n,
                sa: l[*a],
                sb,
                saa: q[(*a, *a)],
                sbb,
                sab,
            }
        }
    })
}

/// Recognizes fast shapes for simple numeric aggregate terms. Gated on
/// column types so integer-sum semantics and string counting stay on
/// the general path.
fn compute_fast_args(schema: &BoundSchema, agg_calls: &[AggCall]) -> Vec<Option<FastArg>> {
    agg_calls
        .iter()
        .map(|call| {
            if call.args.len() != 1 {
                return None;
            }
            let fa = FastArg::recognize(&call.args[0])?;
            let numeric_float = |i: usize| schema.column_type(i) == DataType::Float;
            let ok = match (&call.kind, &fa) {
                (AggKind::Sum | AggKind::Avg | AggKind::Count, FastArg::Col(i)) => {
                    numeric_float(*i)
                }
                (AggKind::Sum | AggKind::Avg | AggKind::Count, FastArg::ColProduct(a, b)) => {
                    numeric_float(*a) && numeric_float(*b)
                }
                (AggKind::Sum | AggKind::Avg | AggKind::Count, FastArg::Const(_)) => {
                    matches!(&call.args[0], BoundExpr::Literal(Value::Float(_)))
                }
                _ => false,
            };
            ok.then_some(fa)
        })
        .collect()
}

/// How one aggregate-term operand reaches the block path: a projected
/// block column (by slot), the product of two columns, or a constant.
#[derive(Debug, Clone, Copy)]
enum BlockTerm {
    Col(usize),
    Prod(usize, usize),
    Const(f64),
}

/// A block-path execution recipe for one aggregate call.
#[derive(Debug, Clone)]
enum BlockCall {
    /// `count(*)`: the block length.
    CountStar,
    /// `sum`/`avg`/`count` over a fast-path term; the accumulator
    /// variant discriminates which statistic the reduction feeds.
    Fast(BlockTerm),
    /// `min`/`max` over one column.
    Extremum(usize),
    /// Statistical builtin over one or two columns.
    Stat { a: usize, b: Option<usize> },
    /// Aggregate UDF; arguments mapped onto block slots/constants.
    Udf(Vec<BatchArg>),
}

/// The outcome of planning a block-at-a-time aggregate scan: which
/// base-table columns to project, how each call consumes them, and
/// the compiled residual predicate (if any) evaluated into a
/// selection bitmap per block. Predicate-only columns sit after the
/// call columns in `cols`.
struct BlockPlan {
    cols: Vec<usize>,
    calls: Vec<BlockCall>,
    predicate: Option<CompiledPredicates>,
}

/// The EXPLAIN line for an eligible block-path aggregate.
fn block_agg_line(bp: &BlockPlan) -> String {
    match &bp.predicate {
        None => format!(
            "scan mode: block ({BLOCK_ROWS}-row column blocks over {} float column(s))",
            bp.cols.len()
        ),
        Some(p) => format!(
            "scan mode: block ({BLOCK_ROWS}-row column blocks over {} numeric column(s); \
             {} predicate(s) as selection bitmap)",
            bp.cols.len(),
            p.len()
        ),
    }
}

/// The EXPLAIN line for an eligible block-path scalar projection.
fn block_scalar_line(bp: &ScalarBlockPlan) -> String {
    match &bp.predicate {
        None => format!(
            "scan mode: block ({BLOCK_ROWS}-row column blocks over {} numeric column(s))",
            bp.cols.len()
        ),
        Some(p) => format!(
            "scan mode: block ({BLOCK_ROWS}-row column blocks over {} numeric column(s); \
             {} predicate(s) as selection bitmap)",
            bp.cols.len(),
            p.len()
        ),
    }
}

/// Plans the block path for a global aggregate, or returns `None` when
/// any call (or any residual predicate) needs the general
/// row-at-a-time machinery. Eligibility per call: every operand is a
/// float column of the base table (indices below `base_width`), a
/// product of two such columns, or a literal.
fn plan_block_calls(
    schema: &BoundSchema,
    base_width: usize,
    agg_calls: &[AggCall],
    fast_args: &[Option<FastArg>],
    residual: &[BoundExpr],
) -> Option<BlockPlan> {
    let mut cols: Vec<usize> = Vec::new();
    let mut slot_of: HashMap<usize, usize> = HashMap::new();
    let slot = |cols: &mut Vec<usize>, slot_of: &mut HashMap<usize, usize>, i: usize| {
        *slot_of.entry(i).or_insert_with(|| {
            cols.push(i);
            cols.len() - 1
        })
    };
    let float_col = |i: usize| i < base_width && schema.column_type(i) == DataType::Float;

    let mut calls = Vec::with_capacity(agg_calls.len());
    for (call, fast) in agg_calls.iter().zip(fast_args) {
        let planned = match (&call.kind, fast) {
            (AggKind::CountStar, _) => BlockCall::CountStar,
            // Reuse the row fast-path recognition for sum/avg/count,
            // restricted to base-table columns.
            (_, Some(FastArg::Col(i))) if float_col(*i) => {
                BlockCall::Fast(BlockTerm::Col(slot(&mut cols, &mut slot_of, *i)))
            }
            (_, Some(FastArg::ColProduct(a, b))) if float_col(*a) && float_col(*b) => {
                BlockCall::Fast(BlockTerm::Prod(
                    slot(&mut cols, &mut slot_of, *a),
                    slot(&mut cols, &mut slot_of, *b),
                ))
            }
            (_, Some(FastArg::Const(c))) => BlockCall::Fast(BlockTerm::Const(*c)),
            (AggKind::Min | AggKind::Max, None) => match call.args.as_slice() {
                [BoundExpr::ColumnRef(i)] if float_col(*i) => {
                    BlockCall::Extremum(slot(&mut cols, &mut slot_of, *i))
                }
                _ => return None,
            },
            (AggKind::Stat(kind), None) => match (kind.arity(), call.args.as_slice()) {
                (1, [BoundExpr::ColumnRef(a)]) if float_col(*a) => BlockCall::Stat {
                    a: slot(&mut cols, &mut slot_of, *a),
                    b: None,
                },
                (2, [BoundExpr::ColumnRef(a), BoundExpr::ColumnRef(b)])
                    if float_col(*a) && float_col(*b) =>
                {
                    BlockCall::Stat {
                        a: slot(&mut cols, &mut slot_of, *a),
                        b: Some(slot(&mut cols, &mut slot_of, *b)),
                    }
                }
                _ => return None,
            },
            (AggKind::Udf(_), None) => {
                let mut args = Vec::with_capacity(call.args.len());
                for arg in &call.args {
                    args.push(match arg {
                        BoundExpr::Literal(v) => BatchArg::Const(v.clone()),
                        BoundExpr::ColumnRef(i) if float_col(*i) => {
                            BatchArg::Col(slot(&mut cols, &mut slot_of, *i))
                        }
                        _ => return None,
                    });
                }
                BlockCall::Udf(args)
            }
            _ => return None,
        };
        calls.push(planned);
    }
    // Residual predicates must compile to selection bitmaps; their
    // columns (possibly Int — the numeric scan widens them) append
    // after the call columns.
    let predicate = if residual.is_empty() {
        None
    } else {
        Some(compile_residual(
            residual, schema, base_width, None, &mut cols, None,
        )?)
    };
    Some(BlockPlan {
        cols,
        calls,
        predicate,
    })
}

/// One block-compilable scalar projection: a decoded block column (by
/// slot), a per-scan constant (a literal, or a value from the single
/// join combination — the scoring pattern's model coefficients), or a
/// scalar UDF over those (nested calls included: `clusterscore` takes
/// `distance(...)` arguments).
enum ScalarBlockExpr {
    Col(usize),
    Const(Value),
    Udf {
        udf: Arc<dyn ScalarUdf>,
        args: Vec<ScalarBlockExpr>,
    },
}

impl ScalarBlockExpr {
    /// Evaluates against row `i` of a decoded block. `pool` supplies
    /// reusable argument buffers (one per UDF nesting depth) so the
    /// per-row hot path allocates nothing.
    fn eval(
        &self,
        block: &ColumnBlock,
        int_slots: &[bool],
        i: usize,
        pool: &mut Vec<Vec<Value>>,
        depth: usize,
    ) -> Result<Value> {
        Ok(match self {
            ScalarBlockExpr::Const(v) => v.clone(),
            ScalarBlockExpr::Col(s) => block_value(block, *s, int_slots[*s], i),
            ScalarBlockExpr::Udf { udf, args } => {
                if pool.len() <= depth {
                    pool.resize_with(depth + 1, Vec::new);
                }
                let mut buf = std::mem::take(&mut pool[depth]);
                buf.clear();
                for a in args {
                    buf.push(a.eval(block, int_slots, i, pool, depth + 1)?);
                }
                let v = udf.eval(&buf)?;
                pool[depth] = buf;
                v
            }
        })
    }

    /// Whether this is a UDF call over plain columns and constants —
    /// the shape [`ScalarUdf::eval_batch`] accepts whole blocks of.
    fn flat_udf(&self) -> bool {
        matches!(self, ScalarBlockExpr::Udf { args, .. }
        if args.iter().all(|a| {
            matches!(a, ScalarBlockExpr::Col(_) | ScalarBlockExpr::Const(_))
        }))
    }
}

/// The outcome of planning a block-at-a-time scalar projection: which
/// base-table numeric columns to decode (`int_slots` marks the ones to
/// narrow back to `Int` on output), how each output column is computed
/// from them, and the compiled residual predicate (if any) evaluated
/// into a selection bitmap per block.
struct ScalarBlockPlan {
    cols: Vec<usize>,
    int_slots: Vec<bool>,
    exprs: Vec<ScalarBlockExpr>,
    /// Per projection: eligible for the once-per-block
    /// [`ScalarUdf::eval_batch`] columnar path.
    batched: Vec<bool>,
    predicate: Option<CompiledPredicates>,
}

/// Plans the block path for a non-aggregate SELECT; `Err` carries the
/// EXPLAIN fallback reason when the general row machinery is needed.
/// Eligibility: exactly one join combination (so joined-column
/// references are constants), every projection a numeric base column,
/// a constant, or a scalar UDF over those — the paper's scoring
/// queries (`linearregscore`, `clusterscore`, ...) exactly — every
/// projected Int column exactly representable as `f64` (the block
/// scan widens and narrows back), and every residual predicate
/// compilable to a selection bitmap.
fn plan_scalar_block(
    schema: &BoundSchema,
    base: &Table,
    join_product: &[Row],
    bound: &[BoundExpr],
    residual: &[BoundExpr],
) -> std::result::Result<ScalarBlockPlan, String> {
    let base_width = base.schema().len();
    let not_block = || "projections are not all block-computable".to_owned();
    let [suffix] = join_product else {
        return Err(not_block());
    };
    let mut cols: Vec<usize> = Vec::new();
    let mut int_slots: Vec<bool> = Vec::new();
    let mut slot_of: HashMap<usize, usize> = HashMap::new();
    fn compile(
        e: &BoundExpr,
        schema: &BoundSchema,
        base_width: usize,
        suffix: &Row,
        cols: &mut Vec<usize>,
        int_slots: &mut Vec<bool>,
        slot_of: &mut HashMap<usize, usize>,
    ) -> Option<ScalarBlockExpr> {
        match e {
            BoundExpr::Literal(v) => Some(ScalarBlockExpr::Const(v.clone())),
            BoundExpr::ColumnRef(i) if *i < base_width => {
                let ty = schema.column_type(*i);
                (ty == DataType::Float || ty == DataType::Int).then(|| {
                    let slot = *slot_of.entry(*i).or_insert_with(|| {
                        cols.push(*i);
                        int_slots.push(ty == DataType::Int);
                        cols.len() - 1
                    });
                    ScalarBlockExpr::Col(slot)
                })
            }
            BoundExpr::ColumnRef(i) => {
                Some(ScalarBlockExpr::Const(suffix[*i - base_width].clone()))
            }
            BoundExpr::ScalarUdf { udf, args } => {
                let args = args
                    .iter()
                    .map(|a| compile(a, schema, base_width, suffix, cols, int_slots, slot_of))
                    .collect::<Option<Vec<_>>>()?;
                Some(ScalarBlockExpr::Udf {
                    udf: udf.clone(),
                    args,
                })
            }
            _ => None,
        }
    }
    let mut exprs = Vec::with_capacity(bound.len());
    for b in bound {
        exprs.push(
            compile(
                b,
                schema,
                base_width,
                suffix,
                &mut cols,
                &mut int_slots,
                &mut slot_of,
            )
            .ok_or_else(not_block)?,
        );
    }
    // Int columns ride the block path widened to f64 and narrowed back
    // on output; beyond ±2^53 that round trip loses precision, so such
    // columns force the row path (tracked per column from observed
    // values).
    if let Some((&col, _)) = cols
        .iter()
        .zip(&int_slots)
        .find(|&(&c, &is_int)| is_int && !base.int_widening_exact(c))
    {
        return Err(format!(
            "integer column {} exceeds the exact f64 range (±2^53)",
            schema.column_name(col)
        ));
    }
    // Residual predicates must compile to selection bitmaps; their
    // columns append after the projection columns.
    let predicate = if residual.is_empty() {
        None
    } else {
        Some(
            compile_residual(
                residual,
                schema,
                base_width,
                Some(suffix),
                &mut cols,
                Some(&mut int_slots),
            )
            .ok_or_else(|| {
                format!(
                    "{} residual predicate(s) not block-compilable",
                    residual.len()
                )
            })?,
        )
    };
    // With no block column at all there is nothing to decode (and no
    // row count to drive constant projections).
    if cols.is_empty() {
        return Err(not_block());
    }
    let batched = exprs.iter().map(ScalarBlockExpr::flat_udf).collect();
    Ok(ScalarBlockPlan {
        cols,
        int_slots,
        exprs,
        batched,
        predicate,
    })
}

/// A block cell as a [`Value`] (validity-aware; `Int` columns narrow
/// back from their widened block representation — the planner only
/// admits columns whose observed values survive that round trip).
fn block_value(block: &ColumnBlock, slot: usize, is_int: bool, i: usize) -> Value {
    let col = block.column(slot);
    if col.is_null(i) {
        Value::Null
    } else if is_int {
        Value::Int(col.values[i] as i64)
    } else {
        Value::Float(col.values[i])
    }
}

/// Composes the predicate selection with the validity bitmaps of the
/// given column slots into one active-row bitmap. Returns `None` when
/// every row is active (no selection, all columns dense) — the dense
/// kernels apply; otherwise fills `buf` (`bitmap_words(len)` words,
/// bits past the block length zero) and returns it.
fn build_active<'a>(
    block: &ColumnBlock,
    slots: &[usize],
    selection: Option<&[u64]>,
    buf: &'a mut Vec<u64>,
) -> Option<&'a [u64]> {
    let any_null = slots.iter().any(|&s| !block.column(s).is_dense());
    if selection.is_none() && !any_null {
        return None;
    }
    let len = block.len();
    buf.clear();
    match selection {
        Some(sel) => buf.extend_from_slice(sel),
        None => {
            buf.resize(bitmap_words(len), !0u64);
            bitmap_mask_tail(buf, len);
        }
    }
    for &s in slots {
        if let Some(validity) = block.column(s).validity() {
            for (w, v) in buf.iter_mut().zip(validity) {
                *w &= v;
            }
        }
    }
    Some(buf)
}

/// Reduces one term over a block: `(sum of contributing products,
/// number of contributing rows)`. `selection` restricts the
/// contributing rows; NULLs in the term's columns drop out on top.
fn reduce_term(
    block: &ColumnBlock,
    term: &BlockTerm,
    selection: Option<&[u64]>,
    buf: &mut Vec<u64>,
) -> (f64, u64) {
    match term {
        BlockTerm::Const(c) => {
            let n = match selection {
                Some(sel) => bitmap_count_ones(sel),
                None => block.len(),
            };
            (*c * n as f64, n as u64)
        }
        BlockTerm::Col(s) => {
            let col = block.column(*s);
            match build_active(block, &[*s], selection, buf) {
                None => (kernels::sum(col.values), block.len() as u64),
                Some(active) => (
                    kernels::sum_selected(col.values, active),
                    bitmap_count_ones(active) as u64,
                ),
            }
        }
        BlockTerm::Prod(a, b) => {
            let (ca, cb) = (block.column(*a), block.column(*b));
            match build_active(block, &[*a, *b], selection, buf) {
                None => (kernels::dot(ca.values, cb.values), block.len() as u64),
                Some(active) => (
                    kernels::dot_selected(ca.values, cb.values, active),
                    bitmap_count_ones(active) as u64,
                ),
            }
        }
    }
}

/// How one ORDER BY key is computed for a result row.
enum OrderEval {
    /// 1-based output ordinal (already 0-based here).
    Ordinal(usize),
    /// Arbitrary expression over the input row (scalar queries) or
    /// aggregates/group keys (aggregate queries).
    Expr(BoundExpr),
}

/// Total order for sorting: NULLs sort last, mixed types by variant.
fn value_cmp(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.sql_cmp(b).unwrap_or(Ordering::Equal),
    }
}

/// Sorts keyed rows per the ORDER BY spec and applies LIMIT.
fn finish_rows(
    mut keyed: Vec<(Row, Row)>,
    order_by: &[crate::ast::OrderKey],
    limit: Option<usize>,
) -> Vec<Row> {
    if !order_by.is_empty() {
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, key) in order_by.iter().enumerate() {
                let (a, b) = (&ka[i], &kb[i]);
                // NULLs stay last regardless of direction.
                let ord = match (a.is_null(), b.is_null()) {
                    (true, true) => std::cmp::Ordering::Equal,
                    (true, false) => std::cmp::Ordering::Greater,
                    (false, true) => std::cmp::Ordering::Less,
                    (false, false) => {
                        let ord = value_cmp(a, b);
                        if key.descending {
                            ord.reverse()
                        } else {
                            ord
                        }
                    }
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    let mut rows: Vec<Row> = keyed.into_iter().map(|(_, r)| r).collect();
    if let Some(limit) = limit {
        rows.truncate(limit);
    }
    rows
}

/// Flattens a predicate's top-level AND chain into conjuncts.
fn split_conjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary {
        op: crate::ast::BinOp::And,
        lhs,
        rhs,
    } = e
    {
        split_conjuncts(lhs, out);
        split_conjuncts(rhs, out);
    } else {
        out.push(e);
    }
}

/// Derives an output column name for a projection.
fn projection_name(p: &crate::ast::Projection, idx: usize) -> String {
    if let Some(a) = &p.alias {
        return a.clone();
    }
    match &p.expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Call { name, .. } => name.clone(),
        _ => format!("col{}", idx + 1),
    }
}

/// Materializes a result set into a table, inferring column types from
/// the first non-NULL value in each column (all-NULL columns become
/// FLOAT).
pub fn result_to_table(rs: &ResultSet, partitions: usize) -> Result<Table> {
    let mut types = vec![None; rs.columns.len()];
    for row in &rs.rows {
        for (c, v) in row.iter().enumerate() {
            if types[c].is_none() {
                types[c] = match v {
                    Value::Null => None,
                    Value::Int(_) => Some(DataType::Int),
                    Value::Float(_) => Some(DataType::Float),
                    Value::Str(_) => Some(DataType::Str),
                };
            }
        }
        if types.iter().all(Option::is_some) {
            break;
        }
    }
    let schema = Schema::new(
        rs.columns
            .iter()
            .zip(&types)
            .map(|(name, ty)| Column::new(name.clone(), ty.unwrap_or(DataType::Float)))
            .collect(),
    );
    let mut table = Table::new(schema, partitions.max(1));
    for row in &rs.rows {
        table.insert(row.clone())?;
    }
    Ok(table)
}

/// Group key with SQL grouping semantics (NULLs group together).
#[derive(Debug, Clone)]
struct GroupKey(Vec<Value>);

/// Finalized per-group aggregate values, ready for phase 4.
type GroupRows = Vec<(GroupKey, Vec<Value>)>;

/// Per-group accumulator states during phases 1–3.
type GroupMap = HashMap<GroupKey, Vec<AggAccum>>;

/// Everything an aggregate SELECT evaluates, bound once per engine:
/// GROUP BY keys, projections, HAVING, ORDER BY, and the aggregate
/// calls they collectively contain.
struct AggBindings {
    group_bound: Vec<BoundExpr>,
    agg_calls: Vec<AggCall>,
    proj_bound: Vec<BoundExpr>,
    names: Vec<String>,
    having_bound: Option<BoundExpr>,
    order_bound: Vec<(OrderEval, bool)>,
}

/// A merge-ready aggregate partial: the per-group accumulator states
/// one engine produced by running phases 1–3 of an aggregate SELECT
/// over its share of the data (or its local Γ summary). Opaque outside
/// the engine — a sharded gather collects one per shard and feeds them
/// to [`crate::Db::finalize_select_partials`].
pub struct AggPartial {
    groups: Vec<(GroupKey, Vec<AggAccum>)>,
    /// Counters for the engine-local portion of the statement. A
    /// summary-answered partial keeps `rows_scanned` at 0 (plus any
    /// stale-rebuild rows): the whole point of shard-local Γ.
    pub stats: ExecStats,
}

/// Inserts the zero-row global group if needed, finalizes every
/// accumulator (phase 4), and runs the shared
/// projection/HAVING/ORDER BY tail.
fn finalize_merged(
    stmt: &SelectStmt,
    bindings: &AggBindings,
    mut merged: GroupMap,
    stats: ExecStats,
) -> Result<ResultSet> {
    // A global aggregate over zero rows still yields one row.
    if merged.is_empty() && stmt.group_by.is_empty() {
        merged.insert(
            GroupKey(Vec::new()),
            bindings.agg_calls.iter().map(AggAccum::init).collect(),
        );
    }
    let mut groups = Vec::with_capacity(merged.len());
    for (key, accums) in merged {
        let agg_values: Vec<Value> = accums
            .into_iter()
            .map(AggAccum::finalize)
            .collect::<Result<_>>()?;
        groups.push((key, agg_values));
    }
    finalize_groups(
        stmt,
        &bindings.proj_bound,
        bindings.names.clone(),
        &bindings.having_bound,
        &bindings.order_bound,
        groups,
        stats,
    )
}

impl PartialEq for GroupKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a.group_eq(b))
    }
}

impl Eq for GroupKey {}

impl Hash for GroupKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            state.write_u64(v.group_key());
        }
    }
}

/// A single aggregate accumulator (one per aggregate call per group
/// per worker).
enum AggAccum {
    Sum {
        acc: f64,
        any: bool,
        int_only: bool,
    },
    Count {
        n: i64,
    },
    CountStar {
        n: i64,
    },
    Avg {
        sum: f64,
        n: i64,
    },
    Min {
        best: Option<Value>,
    },
    Max {
        best: Option<Value>,
    },
    /// Two-dimensional statistical builtin: the running sums
    /// (n, Σa, Σb, Σa², Σb², Σab) — a 2-D instance of the paper's
    /// n, L, Q.
    Stat {
        kind: StatAgg,
        n: f64,
        sa: f64,
        sb: f64,
        saa: f64,
        sbb: f64,
        sab: f64,
    },
    Udf {
        state: Box<dyn AggregateState>,
    },
}

impl AggAccum {
    fn init(call: &AggCall) -> Self {
        match &call.kind {
            AggKind::Sum => AggAccum::Sum {
                acc: 0.0,
                any: false,
                int_only: true,
            },
            AggKind::Count => AggAccum::Count { n: 0 },
            AggKind::CountStar => AggAccum::CountStar { n: 0 },
            AggKind::Avg => AggAccum::Avg { sum: 0.0, n: 0 },
            AggKind::Min => AggAccum::Min { best: None },
            AggKind::Max => AggAccum::Max { best: None },
            AggKind::Stat(kind) => AggAccum::Stat {
                kind: *kind,
                n: 0.0,
                sa: 0.0,
                sb: 0.0,
                saa: 0.0,
                sbb: 0.0,
                sab: 0.0,
            },
            AggKind::Udf(udf) => AggAccum::Udf { state: udf.init() },
        }
    }

    /// Specialized update for recognized numeric fast-path terms
    /// (`None` means SQL NULL: skipped, except by `count(*)` which
    /// never takes the fast path).
    #[inline]
    fn update_fast(&mut self, v: Option<f64>) {
        match self {
            AggAccum::Sum { acc, any, int_only } => {
                if let Some(x) = v {
                    *acc += x;
                    *any = true;
                    *int_only = false; // fast path is float-typed by construction
                }
            }
            AggAccum::Avg { sum, n } => {
                if let Some(x) = v {
                    *sum += x;
                    *n += 1;
                }
            }
            AggAccum::Count { n } => {
                if v.is_some() {
                    *n += 1;
                }
            }
            _ => unreachable!("fast path only generated for sum/avg/count"),
        }
    }

    /// Folds a whole column block into the accumulator per the planned
    /// [`BlockCall`] — the vectorized counterpart of calling
    /// [`AggAccum::update`]/[`AggAccum::update_fast`] once per row.
    /// `selection` (the compiled `WHERE` bitmap) restricts the
    /// contributing rows; `buf` is reusable active-bitmap scratch.
    fn update_block(
        &mut self,
        block: &ColumnBlock,
        call: &BlockCall,
        selection: Option<&[u64]>,
        buf: &mut Vec<u64>,
    ) -> Result<()> {
        match (self, call) {
            (AggAccum::CountStar { n }, BlockCall::CountStar) => {
                *n += match selection {
                    Some(sel) => bitmap_count_ones(sel) as i64,
                    None => block.len() as i64,
                }
            }
            (AggAccum::Sum { acc, any, int_only }, BlockCall::Fast(term)) => {
                let (s, kept) = reduce_term(block, term, selection, buf);
                if kept > 0 {
                    *acc += s;
                    *any = true;
                    *int_only = false; // fast path is float-typed by construction
                }
            }
            (AggAccum::Avg { sum, n }, BlockCall::Fast(term)) => {
                let (s, kept) = reduce_term(block, term, selection, buf);
                *sum += s;
                *n += kept as i64;
            }
            (AggAccum::Count { n }, BlockCall::Fast(term)) => {
                let (_, kept) = reduce_term(block, term, selection, buf);
                *n += kept as i64;
            }
            (AggAccum::Min { best }, BlockCall::Extremum(s)) => {
                let col = block.column(*s);
                let lo = match build_active(block, &[*s], selection, buf) {
                    None => Some(kernels::min_max(col.values).0),
                    Some(active) => (bitmap_count_ones(active) > 0)
                        .then(|| kernels::min_max_selected(col.values, active).0),
                };
                if let Some(lo) = lo {
                    if best.as_ref().and_then(Value::as_f64).is_none_or(|b| lo < b) {
                        *best = Some(Value::Float(lo));
                    }
                }
            }
            (AggAccum::Max { best }, BlockCall::Extremum(s)) => {
                let col = block.column(*s);
                let hi = match build_active(block, &[*s], selection, buf) {
                    None => Some(kernels::min_max(col.values).1),
                    Some(active) => (bitmap_count_ones(active) > 0)
                        .then(|| kernels::min_max_selected(col.values, active).1),
                };
                if let Some(hi) = hi {
                    if best.as_ref().and_then(Value::as_f64).is_none_or(|b| hi > b) {
                        *best = Some(Value::Float(hi));
                    }
                }
            }
            (AggAccum::Stat { n, sa, saa, .. }, BlockCall::Stat { a, b: None }) => {
                let col = block.column(*a);
                match build_active(block, &[*a], selection, buf) {
                    None => {
                        *n += block.len() as f64;
                        *sa += kernels::sum(col.values);
                        *saa += kernels::sum_sq(col.values);
                    }
                    Some(active) => {
                        *n += bitmap_count_ones(active) as f64;
                        *sa += kernels::sum_selected(col.values, active);
                        *saa += kernels::dot_selected(col.values, col.values, active);
                    }
                }
            }
            (
                AggAccum::Stat {
                    n,
                    sa,
                    sb,
                    saa,
                    sbb,
                    sab,
                    ..
                },
                BlockCall::Stat { a, b: Some(b) },
            ) => {
                let (ca, cb) = (block.column(*a), block.column(*b));
                match build_active(block, &[*a, *b], selection, buf) {
                    None => {
                        *n += block.len() as f64;
                        *sa += kernels::sum(ca.values);
                        *sb += kernels::sum(cb.values);
                        *saa += kernels::sum_sq(ca.values);
                        *sbb += kernels::sum_sq(cb.values);
                        *sab += kernels::dot(ca.values, cb.values);
                    }
                    // A NULL in either argument skips the row for every
                    // running sum, per SQL.
                    Some(active) => {
                        *n += bitmap_count_ones(active) as f64;
                        *sa += kernels::sum_selected(ca.values, active);
                        *sb += kernels::sum_selected(cb.values, active);
                        *saa += kernels::dot_selected(ca.values, ca.values, active);
                        *sbb += kernels::dot_selected(cb.values, cb.values, active);
                        *sab += kernels::dot_selected(ca.values, cb.values, active);
                    }
                }
            }
            (AggAccum::Udf { state }, BlockCall::Udf(args)) => {
                state.accumulate_batch(block, args, selection)?;
            }
            _ => {
                return Err(EngineError::Unsupported(
                    "aggregate accumulator does not match its block plan".into(),
                ))
            }
        }
        Ok(())
    }

    fn update(&mut self, args: &[Value]) -> Result<()> {
        match self {
            AggAccum::Sum { acc, any, int_only } => {
                let v = args.first().unwrap_or(&Value::Null);
                if let Some(x) = v.as_f64() {
                    *acc += x;
                    *any = true;
                    if !matches!(v, Value::Int(_)) {
                        *int_only = false;
                    }
                }
            }
            AggAccum::Count { n } => {
                if !args.first().unwrap_or(&Value::Null).is_null() {
                    *n += 1;
                }
            }
            AggAccum::CountStar { n } => *n += 1,
            AggAccum::Avg { sum, n } => {
                if let Some(x) = args.first().and_then(Value::as_f64) {
                    *sum += x;
                    *n += 1;
                }
            }
            AggAccum::Min { best } => {
                let v = args.first().unwrap_or(&Value::Null);
                if !v.is_null() {
                    let replace = match best {
                        None => true,
                        Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Less),
                    };
                    if replace {
                        *best = Some(v.clone());
                    }
                }
            }
            AggAccum::Max { best } => {
                let v = args.first().unwrap_or(&Value::Null);
                if !v.is_null() {
                    let replace = match best {
                        None => true,
                        Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Greater),
                    };
                    if replace {
                        *best = Some(v.clone());
                    }
                }
            }
            AggAccum::Stat {
                kind,
                n,
                sa,
                sb,
                saa,
                sbb,
                sab,
            } => {
                // Skip the row if any argument is NULL, per SQL.
                let a = args.first().and_then(Value::as_f64);
                if kind.arity() == 1 {
                    if let Some(a) = a {
                        *n += 1.0;
                        *sa += a;
                        *saa += a * a;
                    }
                } else if let (Some(a), Some(b)) = (a, args.get(1).and_then(Value::as_f64)) {
                    *n += 1.0;
                    *sa += a;
                    *sb += b;
                    *saa += a * a;
                    *sbb += b * b;
                    *sab += a * b;
                }
            }
            AggAccum::Udf { state } => state.accumulate(args)?,
        }
        Ok(())
    }

    fn merge(&mut self, other: AggAccum) -> Result<()> {
        match (self, other) {
            (
                AggAccum::Sum { acc, any, int_only },
                AggAccum::Sum {
                    acc: a2,
                    any: n2,
                    int_only: i2,
                },
            ) => {
                *acc += a2;
                *any |= n2;
                *int_only &= i2;
            }
            (AggAccum::Count { n }, AggAccum::Count { n: n2 }) => *n += n2,
            (AggAccum::CountStar { n }, AggAccum::CountStar { n: n2 }) => *n += n2,
            (AggAccum::Avg { sum, n }, AggAccum::Avg { sum: s2, n: n2 }) => {
                *sum += s2;
                *n += n2;
            }
            (AggAccum::Min { best }, AggAccum::Min { best: b2 }) => {
                if let Some(v) = b2 {
                    let replace = match &best {
                        None => true,
                        Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Less),
                    };
                    if replace {
                        *best = Some(v);
                    }
                }
            }
            (AggAccum::Max { best }, AggAccum::Max { best: b2 }) => {
                if let Some(v) = b2 {
                    let replace = match &best {
                        None => true,
                        Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Greater),
                    };
                    if replace {
                        *best = Some(v);
                    }
                }
            }
            (
                AggAccum::Stat {
                    n,
                    sa,
                    sb,
                    saa,
                    sbb,
                    sab,
                    ..
                },
                AggAccum::Stat {
                    n: n2,
                    sa: a2,
                    sb: b2,
                    saa: aa2,
                    sbb: bb2,
                    sab: ab2,
                    ..
                },
            ) => {
                *n += n2;
                *sa += a2;
                *sb += b2;
                *saa += aa2;
                *sbb += bb2;
                *sab += ab2;
            }
            (AggAccum::Udf { state }, AggAccum::Udf { state: other }) => {
                state.merge(other.as_ref())?;
            }
            _ => {
                return Err(EngineError::Unsupported(
                    "mismatched aggregate accumulators in merge".into(),
                ))
            }
        }
        Ok(())
    }

    fn finalize(self) -> Result<Value> {
        Ok(match self {
            AggAccum::Sum { acc, any, int_only } => {
                if !any {
                    Value::Null
                } else if int_only {
                    Value::Int(acc as i64)
                } else {
                    Value::Float(acc)
                }
            }
            AggAccum::Count { n } | AggAccum::CountStar { n } => Value::Int(n),
            AggAccum::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggAccum::Min { best } | AggAccum::Max { best } => best.unwrap_or(Value::Null),
            AggAccum::Stat {
                kind,
                n,
                sa,
                sb,
                saa,
                sbb,
                sab,
            } => {
                let out = match kind {
                    StatAgg::VarPop if n >= 1.0 => Some(saa / n - (sa / n) * (sa / n)),
                    StatAgg::VarSamp if n >= 2.0 => Some((saa - sa * sa / n) / (n - 1.0)),
                    StatAgg::StdDev if n >= 2.0 => {
                        Some(((saa - sa * sa / n) / (n - 1.0)).max(0.0).sqrt())
                    }
                    StatAgg::CovarPop if n >= 1.0 => Some(sab / n - sa * sb / (n * n)),
                    StatAgg::Corr if n >= 2.0 => {
                        // The paper's rho_ab, specialized to d = 2.
                        let da = n * saa - sa * sa;
                        let db = n * sbb - sb * sb;
                        (da > 0.0 && db > 0.0)
                            .then(|| (n * sab - sa * sb) / (da.sqrt() * db.sqrt()))
                    }
                    StatAgg::RegrSlope if n >= 2.0 => {
                        // First argument is the dependent variable y.
                        let dx = n * sbb - sb * sb;
                        (dx > 0.0).then(|| (n * sab - sa * sb) / dx)
                    }
                    StatAgg::RegrIntercept if n >= 2.0 => {
                        let dx = n * sbb - sb * sb;
                        (dx > 0.0).then(|| (sa - (n * sab - sa * sb) / dx * sb) / n)
                    }
                    _ => None,
                };
                out.map_or(Value::Null, Value::Float)
            }
            AggAccum::Udf { state } => state.finalize()?,
        })
    }
}
