//! Feature-serving execution: batch scoring of keyed rows.
//!
//! The paper's scoring pattern (§3.5) is a full-table `CROSS JOIN`
//! between the data set and a one-row model table. A feature store
//! serves the same models point-wise: a request carries N primary
//! keys and a model name, the engine resolves the keyed rows through
//! the storage layer's PK hash index (no scan), assembles them into
//! the columnar argument layout the scoring UDFs already accept, and
//! runs one [`nlq_udf::ScalarUdf::eval_batch`] call per model term.

use std::time::Instant;

use nlq_obs::{Phase, Span};
use nlq_storage::{bitmap_mask_tail, bitmap_words, Row, Table, Value};
use nlq_udf::ScalarBatchArg;

use crate::db::{Db, ExecOptions, ResultSet};
use crate::{EngineError, Result};

/// Hard cap on keys per batch-scoring request: one round trip must
/// stay bounded in memory and frame size.
pub const MAX_SCORE_KEYS: usize = 65_536;

/// A model table's layout, classified for scoring.
enum ModelKind {
    /// One-row `m(b0, b1..bd)` regression coefficients.
    Regression { intercept: f64, beta: Vec<f64> },
    /// `m(j, X1..Xd)` centroids, `j = 1..k`.
    Centroids { centers: Vec<Vec<f64>> },
}

impl ModelKind {
    fn d(&self) -> usize {
        match self {
            ModelKind::Regression { beta, .. } => beta.len(),
            ModelKind::Centroids { centers } => centers.first().map_or(0, Vec::len),
        }
    }

    fn describe(&self) -> String {
        match self {
            ModelKind::Regression { beta, .. } => format!("regression, d={}", beta.len()),
            ModelKind::Centroids { centers } => format!(
                "kmeans, k={}, d={}",
                centers.len(),
                centers.first().map_or(0, Vec::len)
            ),
        }
    }

    fn udf_line(&self) -> String {
        match self {
            ModelKind::Regression { .. } => "scoring udf: linearregscore (batch)".into(),
            ModelKind::Centroids { .. } => "scoring udf: distance x k + clusterscore".into(),
        }
    }
}

/// Classifies a registered model table by the layouts
/// [`Db::register_beta`] and [`Db::register_centroids`] produce.
fn classify_model(name: &str, m: &Table) -> Result<ModelKind> {
    let schema = m.schema();
    let first = schema
        .columns()
        .first()
        .ok_or_else(|| EngineError::Unsupported(format!("model table '{name}' has no columns")))?;
    let rows = m.collect_rows()?;
    if first.name.eq_ignore_ascii_case("b0") {
        if rows.len() != 1 {
            return Err(EngineError::Unsupported(format!(
                "regression model table '{name}' must hold exactly one row, found {}",
                rows.len()
            )));
        }
        let row = &rows[0];
        let coef = |i: usize| {
            row[i].as_f64().ok_or_else(|| {
                EngineError::Unsupported(format!(
                    "model table '{name}' column {} is not numeric",
                    schema.column(i).name
                ))
            })
        };
        let intercept = coef(0)?;
        let beta = (1..schema.len()).map(coef).collect::<Result<_>>()?;
        return Ok(ModelKind::Regression { intercept, beta });
    }
    if first.name.eq_ignore_ascii_case("j") {
        if rows.is_empty() {
            return Err(EngineError::Unsupported(format!(
                "centroid model table '{name}' is empty"
            )));
        }
        let mut indexed: Vec<(i64, Vec<f64>)> = Vec::with_capacity(rows.len());
        for row in &rows {
            let j = row[0].as_i64().ok_or_else(|| {
                EngineError::Unsupported(format!("model table '{name}' has a NULL centroid id"))
            })?;
            let center = (1..schema.len())
                .map(|i| {
                    row[i].as_f64().ok_or_else(|| {
                        EngineError::Unsupported(format!(
                            "model table '{name}' centroid {j} has a NULL coordinate"
                        ))
                    })
                })
                .collect::<Result<_>>()?;
            indexed.push((j, center));
        }
        indexed.sort_by_key(|(j, _)| *j);
        return Ok(ModelKind::Centroids {
            centers: indexed.into_iter().map(|(_, c)| c).collect(),
        });
    }
    Err(EngineError::Unsupported(format!(
        "model table '{name}' is neither a regression table (b0, b1..bd) \
         nor a centroid table (j, X1..Xd)"
    )))
}

/// Resolves the model's feature columns `X1..Xd` in the data table.
fn feature_cols(table: &str, schema: &nlq_storage::Schema, d: usize) -> Result<Vec<usize>> {
    (1..=d)
        .map(|a| {
            schema.index_of(&format!("X{a}")).ok_or_else(|| {
                EngineError::Unsupported(format!(
                    "table '{table}' has no feature column X{a} (model needs X1..X{d})"
                ))
            })
        })
        .collect()
}

/// One feature column of the found-row subset, in the dense layout
/// [`ScalarBatchArg::Col`] borrows.
struct FeatureCol {
    values: Vec<f64>,
    validity: Option<Vec<u64>>,
}

/// Gathers the found rows' feature coordinates column-wise.
fn gather_columns(found: &[(usize, &Row)], feat: &[usize]) -> Vec<FeatureCol> {
    let n = found.len();
    let mut cols: Vec<FeatureCol> = feat
        .iter()
        .map(|_| FeatureCol {
            values: vec![0.0; n],
            validity: None,
        })
        .collect();
    for (ri, (_, row)) in found.iter().enumerate() {
        for (a, &c) in feat.iter().enumerate() {
            match row[c].as_f64() {
                Some(v) => cols[a].values[ri] = v,
                None => {
                    let words = cols[a].validity.get_or_insert_with(|| {
                        let mut w = vec![!0u64; bitmap_words(n)];
                        bitmap_mask_tail(&mut w, n);
                        w
                    });
                    words[ri >> 6] &= !(1u64 << (ri & 63));
                }
            }
        }
    }
    cols
}

/// Evaluates one scalar UDF over the gathered columns, preferring the
/// columnar batch hook with a row-at-a-time fallback.
fn run_scalar(
    udf: &dyn nlq_udf::ScalarUdf,
    cols: &[FeatureCol],
    consts: &[Value],
    rows: usize,
) -> Result<Vec<Value>> {
    let mut args: Vec<ScalarBatchArg<'_>> = Vec::with_capacity(cols.len() + consts.len());
    for c in cols {
        args.push(ScalarBatchArg::Col {
            values: &c.values,
            validity: c.validity.as_deref(),
        });
    }
    args.extend(consts.iter().map(ScalarBatchArg::Const));
    let mut out = Vec::with_capacity(rows);
    if udf.eval_batch(&args, rows, &mut out)? {
        return Ok(out);
    }
    out.clear();
    let mut row_args = Vec::with_capacity(args.len());
    for ri in 0..rows {
        row_args.clear();
        row_args.extend(args.iter().map(|a| match a.at(ri) {
            Some(v) => Value::Float(v),
            None => Value::Null,
        }));
        out.push(udf.eval(&row_args)?);
    }
    Ok(out)
}

/// Scores `keys` against `model` on `table` in one round trip: PK
/// lookups (no scan) feed the scoring UDFs columnar-style. The result
/// has one row per requested key, in request order, with a NULL score
/// for absent keys or NULL-bearing feature vectors. With `explain`
/// set, returns the plan description instead of executing.
pub(crate) fn batch_score(
    db: &Db,
    table: &str,
    model: &str,
    keys: &[i64],
    explain: bool,
    opts: &ExecOptions,
) -> Result<ResultSet> {
    if keys.len() > MAX_SCORE_KEYS {
        return Err(EngineError::Unsupported(format!(
            "batch score request carries {} keys, limit is {MAX_SCORE_KEYS}",
            keys.len()
        )));
    }
    let t = db.table(table)?;
    let Some(pk_col) = t.pk_column() else {
        return Err(EngineError::Unsupported(format!(
            "table '{table}' has no primary-key index (first column must be Int)"
        )));
    };
    let m = db.table(model)?;
    let kind = classify_model(model, &m)?;
    let d = kind.d();
    let feat = feature_cols(table, t.schema(), d)?;
    let key_name = t.schema().column(pk_col).name.clone();

    if explain {
        let lines = vec![
            format!(
                "batch score: {} key(s) through model '{model}' ({})",
                keys.len(),
                kind.describe()
            ),
            format!("point lookup: pk index on {table}({key_name})"),
            kind.udf_line(),
        ];
        return Ok(ResultSet::new(
            vec!["plan".into()],
            lines.into_iter().map(|l| vec![Value::Str(l)]).collect(),
        ));
    }

    if let Some(c) = opts.cancel_flag() {
        if c.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(EngineError::Cancelled { rows_scanned: 0 });
        }
    }

    let lookup_started = Instant::now();
    let fetched = t.lookup_keys(keys)?;
    let found: Vec<(usize, &Row)> = fetched
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
        .collect();
    let n = found.len();
    let cols = gather_columns(&found, &feat);
    let lookup_nanos = lookup_started.elapsed().as_nanos() as u64;

    let score_started = Instant::now();
    let registry = db.registry();
    let scores = match &kind {
        ModelKind::Regression { intercept, beta } => {
            let udf = registry
                .scalar("linearregscore")
                .ok_or_else(|| EngineError::UnknownFunction("linearregscore".into()))?;
            let mut consts: Vec<Value> = Vec::with_capacity(d + 1);
            consts.push(Value::Float(*intercept));
            consts.extend(beta.iter().map(|&b| Value::Float(b)));
            run_scalar(udf.as_ref(), &cols, &consts, n)?
        }
        ModelKind::Centroids { centers } => {
            let dist = registry
                .scalar("distance")
                .ok_or_else(|| EngineError::UnknownFunction("distance".into()))?;
            let cluster = registry
                .scalar("clusterscore")
                .ok_or_else(|| EngineError::UnknownFunction("clusterscore".into()))?;
            let mut dists = Vec::with_capacity(centers.len());
            for center in centers {
                let consts: Vec<Value> = center.iter().map(|&v| Value::Float(v)).collect();
                dists.push(run_scalar(dist.as_ref(), &cols, &consts, n)?);
            }
            let mut scores = Vec::with_capacity(n);
            let mut row_args = Vec::with_capacity(centers.len());
            for ri in 0..n {
                row_args.clear();
                row_args.extend(dists.iter().map(|dv| dv[ri].clone()));
                scores.push(cluster.eval(&row_args)?);
            }
            scores
        }
    };
    let score_nanos = score_started.elapsed().as_nanos() as u64;

    let mut out_rows: Vec<Row> = keys
        .iter()
        .map(|&k| vec![Value::Int(k), Value::Null])
        .collect();
    for ((orig, _), score) in found.iter().zip(scores) {
        out_rows[*orig][1] = score;
    }
    let mut rs = ResultSet::new(vec![key_name, "score".into()], out_rows);
    rs.stats.rows_scanned = n as u64;
    if let Some(trace) = &opts.trace {
        trace.record(Span::new(Phase::PointLookup, lookup_nanos).rows(n as u64));
        trace.record(Span::new(Phase::Finalize, score_nanos));
    }
    Ok(rs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlq_linalg::Vector;

    fn serving_db(n: usize) -> Db {
        let db = Db::new(2);
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        db.load_points("X", &rows, false).unwrap();
        db
    }

    #[test]
    fn regression_batch_score_matches_formula() {
        let db = serving_db(5000);
        db.register_beta("BETA", 1.0, &Vector::from_vec(vec![0.5, -0.25]))
            .unwrap();
        let keys = [1i64, 4999, 17, 123456];
        let rs = db
            .batch_score("X", "BETA", &keys, false, &ExecOptions::default())
            .unwrap();
        assert_eq!(rs.columns, vec!["i".to_string(), "score".to_string()]);
        assert_eq!(rs.len(), keys.len());
        for (r, &k) in keys.iter().enumerate() {
            assert_eq!(rs.value(r, 0), &Value::Int(k));
        }
        // load_points keys rows 1..=n with X1 = i-1, X2 = 2(i-1).
        let expect = |k: i64| 1.0 + 0.5 * (k - 1) as f64 - 0.25 * 2.0 * (k - 1) as f64;
        assert!((rs.f64(0, 1).unwrap() - expect(1)).abs() < 1e-12);
        assert!((rs.f64(1, 1).unwrap() - expect(4999)).abs() < 1e-12);
        assert!((rs.f64(2, 1).unwrap() - expect(17)).abs() < 1e-12);
        assert!(rs.value(3, 1).is_null(), "absent key scores NULL");
        assert_eq!(rs.stats.rows_scanned, 3, "only found keys count");
    }

    #[test]
    fn centroid_batch_score_assigns_nearest() {
        let db = serving_db(100);
        db.register_centroids(
            "C",
            &[
                Vector::from_vec(vec![0.0, 0.0]),
                Vector::from_vec(vec![90.0, 180.0]),
            ],
        )
        .unwrap();
        let rs = db
            .batch_score("X", "C", &[1, 100], false, &ExecOptions::default())
            .unwrap();
        assert_eq!(rs.value(0, 1), &Value::Int(1), "row (0,0) near centroid 1");
        assert_eq!(
            rs.value(1, 1),
            &Value::Int(2),
            "row (99,198) near centroid 2"
        );
    }

    #[test]
    fn explain_reports_pk_point_lookup() {
        let db = serving_db(10);
        db.register_beta("BETA", 0.0, &Vector::from_vec(vec![1.0, 1.0]))
            .unwrap();
        let rs = db
            .batch_score("X", "BETA", &[1, 2, 3], true, &ExecOptions::default())
            .unwrap();
        let plan: Vec<&str> = rs.rows.iter().filter_map(|r| r[0].as_str()).collect();
        assert!(
            plan.iter().any(|l| l.contains("point lookup: pk index")),
            "plan was {plan:?}"
        );
        assert!(plan.iter().any(|l| l.contains("3 key(s)")));
    }

    #[test]
    fn null_features_score_null() {
        let db = Db::new(1);
        db.execute("CREATE TABLE T (i INT, X1 FLOAT)").unwrap();
        db.execute("INSERT INTO T VALUES (1, 2.0), (2, NULL)")
            .unwrap();
        db.register_beta("B", 0.0, &Vector::from_vec(vec![3.0]))
            .unwrap();
        let rs = db
            .batch_score("T", "B", &[1, 2], false, &ExecOptions::default())
            .unwrap();
        assert_eq!(rs.value(0, 1), &Value::Float(6.0));
        assert!(rs.value(1, 1).is_null());
    }

    #[test]
    fn rejects_tables_without_pk_index() {
        let db = Db::new(1);
        db.execute("CREATE TABLE T (x FLOAT)").unwrap();
        db.register_beta("B", 0.0, &Vector::from_vec(vec![1.0]))
            .unwrap();
        let err = db
            .batch_score("T", "B", &[1], false, &ExecOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("primary-key index"), "{err}");
    }
}
