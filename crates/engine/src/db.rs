use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use nlq_linalg::{Matrix, Vector};
use nlq_models::{MatrixShape, Nlq};
use nlq_obs::{render_spans, thread_cpu_nanos, Phase, Span, Trace};
use nlq_storage::{
    replay_wal, CheckpointManifest, Column, DataType, FileIo, Row, Schema, StorageError, Table,
    Value, Wal, WalIo, WalRecord, WalStatsSnapshot,
};
use nlq_summary::{SummaryData, SummaryDef, SummaryStore};
use nlq_udf::pack::{assemble_blocks, unpack_block, unpack_nlq};
use nlq_udf::{ParamStyle, UdfRegistry};

use crate::ast::Statement;
use crate::catalog::{Catalog, CatalogEntry};
use crate::exec::{check_cancelled, result_to_table, ExecContext};
use crate::expr::{Binder, BoundSchema};
use crate::parser::parse;
use crate::sys::SystemTableProvider;
use crate::{sqlgen, EngineError, Result};

/// Which in-DBMS implementation computes the summary matrices (§3.3's
/// alternatives (1) and the UDF of alternative (4)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NlqMethod {
    /// The "long" pure-SQL query with `1 + d + d²` aggregate terms.
    Sql,
    /// The aggregate UDF with list parameter passing.
    UdfList,
    /// The aggregate UDF with string parameter passing.
    UdfString,
}

/// Per-statement execution counters (the instrumentation the paper's
/// Table 4/6 timings would be read from). Scans that never reach the
/// aggregate executor leave them zeroed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table rows read during phase 2.
    pub rows_scanned: u64,
    /// Column blocks decoded (0 on the row-at-a-time path).
    pub blocks_scanned: u64,
    /// Whether the vectorized block path executed the scan.
    pub block_path: bool,
    /// Whether a materialized Γ summary answered the query (no scan).
    pub summary_path: bool,
    /// Queries answered from a fresh (or just-rebuilt) summary.
    pub summary_hits: u64,
    /// Aggregate queries on a summarized table that no summary could
    /// answer (fell back to a scan).
    pub summary_misses: u64,
    /// Stale summaries rebuilt on-demand while answering.
    pub summary_stale_rebuilds: u64,
    /// Base-table rows scanned by on-demand stale-summary rebuilds
    /// (also counted into [`ExecStats::rows_scanned`] — the rebuild is
    /// a real scan, not free work).
    pub summary_rebuild_rows: u64,
    /// Wall-clock time parsing the SQL text.
    pub parse_nanos: u64,
    /// Wall-clock time planning (table resolution, predicate
    /// classification, join-product construction).
    pub plan_nanos: u64,
    /// Wall-clock time probing the Γ summary store, including any
    /// on-demand stale rebuild.
    pub summary_nanos: u64,
    /// Wall-clock time of the row/block scan (workers running in
    /// parallel plus the partial merge).
    pub scan_nanos: u64,
    /// Phase 2 (row/block aggregation) time, summed over workers —
    /// exceeds [`ExecStats::scan_nanos`] when workers overlap.
    pub accumulate_nanos: u64,
    /// Phase 3 (partial-result merge) time on the master.
    pub merge_nanos: u64,
    /// Phase 4 (finalize + HAVING + projection) time on the master.
    pub finalize_nanos: u64,
    /// Wall-clock time a sharded engine spent fanned out — covers the
    /// slowest shard's local execution. Always 0 on a single `Db`.
    pub scatter_nanos: u64,
    /// Wall-clock time a sharded engine spent collecting shard results
    /// and merging Γ/aggregate partials (or concatenating row
    /// streams). Always 0 on a single `Db`.
    pub gather_nanos: u64,
    /// Wall-clock time spent appending write-ahead-log records and
    /// waiting on the commit fsync. Always 0 on a non-durable engine
    /// and for read-only statements.
    pub wal_nanos: u64,
    /// WAL bytes this statement appended (payload records plus its
    /// commit marker). Always 0 on a non-durable engine.
    pub wal_bytes: u64,
    /// WAL fsyncs this statement issued or joined (group commit means
    /// several statements can share one physical fsync; each counts
    /// the sync it waited on).
    pub wal_fsyncs: u64,
    /// CPU nanoseconds the executing thread consumed on this
    /// statement (`CLOCK_THREAD_CPUTIME_ID` sampled at statement
    /// boundaries). On a sharded engine, the gather thread plus every
    /// shard executor's partial, summed.
    pub cpu_nanos: u64,
    /// Whether the statement was cancelled mid-execution. The engine
    /// never returns a [`ResultSet`] for a cancelled statement (it
    /// returns [`EngineError::Cancelled`]); this flag exists so
    /// serving layers can report "last statement was cancelled after
    /// `rows_scanned` rows" through the same stats struct.
    pub cancelled: bool,
}

/// Rows returned by a query.
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
    /// Execution counters for the statement that produced this result.
    pub stats: ExecStats,
}

/// Equality ignores [`ResultSet::stats`]: two runs of the same query
/// are "the same result" regardless of which scan path produced it or
/// how long the phases took.
impl PartialEq for ResultSet {
    fn eq(&self, other: &Self) -> bool {
        self.columns == other.columns && self.rows == other.rows
    }
}

impl ResultSet {
    /// A result with the given columns and rows (counters zeroed).
    pub fn new(columns: Vec<String>, rows: Vec<Row>) -> Self {
        ResultSet {
            columns,
            rows,
            stats: ExecStats::default(),
        }
    }

    /// An empty result (DDL statements).
    pub fn empty() -> Self {
        ResultSet::new(Vec::new(), Vec::new())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> &Value {
        &self.rows[row][col]
    }

    /// Float view of `(row, col)` (`None` for NULL / non-numeric).
    pub fn f64(&self, row: usize, col: usize) -> Option<f64> {
        self.rows[row][col].as_f64()
    }
}

/// Per-statement execution options, overriding the database-wide
/// defaults. This is how a server session applies its own settings
/// (e.g. `SET block_scan off`) to a shared [`Db`] without mutating
/// global state.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Overrides the block-at-a-time scan toggle for this statement
    /// (`None` inherits [`Db::block_scan`]).
    pub block_scan: Option<bool>,
    /// Cooperative cancellation token. Flip it to `true` from any
    /// thread and the statement stops at the next block/row check,
    /// returning [`EngineError::Cancelled`] with partial state
    /// discarded. `None` means the statement cannot be interrupted.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Observability trace for this statement. When present, the
    /// engine records one [`nlq_obs::Span`] per completed phase
    /// (parse, plan, summary-lookup, scan, finalize) into it; serving
    /// layers append their own encode/stream spans to the same trace.
    pub trace: Option<Trace>,
    /// Globally unique query id minted by the serving layer at
    /// admission. Propagated into each shard's partial execution so
    /// scatter spans gather under one trace tree; 0 when the caller
    /// does not track ids.
    pub query_id: u64,
}

impl ExecOptions {
    /// The statement's cancel token as the borrowed form the scan
    /// loops check.
    pub(crate) fn cancel_flag(&self) -> Option<&AtomicBool> {
        self.cancel.as_deref()
    }
}

/// What crash recovery did while opening a durable engine, reported
/// through `STATUS` and the metrics surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Committed WAL payload records re-applied during replay.
    pub replayed_records: u64,
    /// Ingest (`Rows`) envelopes among the replayed records.
    pub replayed_envelopes: u64,
    /// Torn or corrupt bytes physically truncated off the log tail.
    pub truncated_bytes: u64,
    /// Tables restored from the checkpoint snapshot before replay.
    pub checkpoint_tables: u64,
}

/// The durability state of a [`Db`] opened with [`Db::open_durable`].
struct WalState {
    wal: Wal,
    dir: PathBuf,
    /// Read-held across every logged envelope's append → apply → commit
    /// window; write-held by [`Db::checkpoint`] so the snapshot and the
    /// log reset see no half-applied envelopes.
    gate: RwLock<()>,
    /// Live `CREATE VIEW` statement texts by lowercase view name. Views
    /// have no storage to snapshot, so the checkpoint manifest replays
    /// these texts.
    view_ddl: Mutex<Vec<(String, String)>>,
    recovery: RecoveryInfo,
}

/// Name of the log file inside a WAL directory.
const WAL_FILE: &str = "wal.log";

/// An in-memory parallel database: catalog + worker pool + UDF
/// registry. The Rust stand-in for the Teradata server the paper runs
/// on (20 parallel threads by default in the experiments).
///
/// Every piece of mutable state sits behind interior mutability
/// (lock-protected catalog, summary store, and registry; atomic
/// settings), so one `Arc<Db>` can serve any number of concurrent
/// sessions — the serving layer in `nlq-server` builds directly on
/// this. DML statements additionally serialize on a single write lock:
/// table replacement is copy-on-write, and without the lock two
/// concurrent INSERTs into one table could both clone the same
/// generation and lose one batch.
pub struct Db {
    catalog: Catalog,
    registry: RwLock<Arc<UdfRegistry>>,
    summaries: SummaryStore,
    workers: usize,
    block_scan: AtomicBool,
    /// Serializes DML (INSERT/DELETE/UPDATE) read-modify-write cycles.
    dml_lock: Mutex<()>,
    /// Write-ahead log; `None` for a volatile (non-durable) database.
    wal: Option<WalState>,
    /// Virtual `sys.*` namespace registered by the serving layer
    /// (`None` until [`Db::set_system_tables`]).
    system_tables: RwLock<Option<Arc<dyn SystemTableProvider>>>,
}

impl Db {
    /// Creates a database executing scans on `workers` parallel
    /// threads, with all of the paper's UDFs pre-registered.
    pub fn new(workers: usize) -> Self {
        Db {
            catalog: Catalog::new(),
            registry: RwLock::new(Arc::new(UdfRegistry::with_builtins())),
            summaries: SummaryStore::new(),
            workers: workers.max(1),
            block_scan: AtomicBool::new(true),
            dml_lock: Mutex::new(()),
            wal: None,
            system_tables: RwLock::new(None),
        }
    }

    /// Opens a **durable** database rooted at `dir`: every mutating
    /// statement and ingest envelope is written to a write-ahead log
    /// before it is acknowledged (fsynced when `fsync` is true), and
    /// opening the same directory again replays the committed log tail
    /// on top of the latest checkpoint snapshot. See
    /// [`Db::checkpoint`] for log truncation.
    pub fn open_durable(workers: usize, dir: &Path, fsync: bool) -> Result<Db> {
        std::fs::create_dir_all(dir)
            .map_err(|e| StorageError::Io(format!("wal dir {}: {e}", dir.display())))?;
        let io = Arc::new(FileIo::open(&dir.join(WAL_FILE)).map_err(StorageError::from_io)?);
        Db::open_durable_with_io(workers, dir, io, fsync)
    }

    /// [`Db::open_durable`] with an explicit [`WalIo`] for the log
    /// *appends* (fault-injection tests substitute a crashing sink).
    /// Recovery always reads the real file at `dir/wal.log`.
    pub fn open_durable_with_io(
        workers: usize,
        dir: &Path,
        io: Arc<dyn WalIo>,
        fsync: bool,
    ) -> Result<Db> {
        std::fs::create_dir_all(dir)
            .map_err(|e| StorageError::Io(format!("wal dir {}: {e}", dir.display())))?;
        let mut db = Db::new(workers);
        let mut info = RecoveryInfo::default();
        let mut view_ddl: Vec<(String, String)> = Vec::new();
        let mut horizon = 0u64;

        // 1. Restore the checkpoint snapshot, if one exists. The
        //    `.old` fallback covers a crash mid-rotation: the rename
        //    dance in `checkpoint` guarantees at least one complete
        //    directory survives any crash point.
        if let Some((ckdir, manifest)) = load_checkpoint(dir)? {
            for t in &manifest.tables {
                db.load_table(t, &ckdir.join(format!("{t}.tbl")))?;
                info.checkpoint_tables += 1;
            }
            for ddl in &manifest.ddl {
                db.apply_replayed_sql(ddl, &mut view_ddl)?;
            }
            horizon = manifest.horizon;
        }

        // 2. Replay the committed WAL suffix. `replay_wal` already
        //    truncated any torn/corrupt tail and filtered out
        //    envelopes without a commit marker or below the horizon.
        let replay = replay_wal(&dir.join(WAL_FILE), horizon)?;
        info.truncated_bytes = replay.truncated_bytes;
        for rec in &replay.records {
            match rec {
                WalRecord::Sql { text, .. } => db.apply_replayed_sql(text, &mut view_ddl)?,
                WalRecord::Rows { table, rows, .. } => {
                    db.insert_rows(table, rows.clone())?;
                    info.replayed_envelopes += 1;
                }
                WalRecord::Commit { .. } => unreachable!("replay returns payloads only"),
            }
            info.replayed_records += 1;
        }

        let wal = Wal::new(io, fsync, replay.next_eid, replay.valid_bytes);
        wal.stats()
            .replayed
            .store(info.replayed_records, Ordering::Relaxed);
        db.wal = Some(WalState {
            wal,
            dir: dir.to_path_buf(),
            gate: RwLock::new(()),
            view_ddl: Mutex::new(view_ddl),
            recovery: info,
        });
        Ok(db)
    }

    /// Executes one recovered statement text without logging it again,
    /// tracking `CREATE VIEW` texts for the next checkpoint manifest.
    fn apply_replayed_sql(&self, sql: &str, view_ddl: &mut Vec<(String, String)>) -> Result<()> {
        let stmt = parse(sql)?;
        match &stmt {
            Statement::CreateView { name, .. } => {
                view_ddl.push((name.to_ascii_lowercase(), sql.to_string()));
            }
            Statement::Drop { name } => {
                let key = name.to_ascii_lowercase();
                view_ddl.retain(|(n, _)| *n != key);
            }
            _ => {}
        }
        self.execute_stmt_inner(stmt, &ExecOptions::default(), 0)?;
        Ok(())
    }

    /// Number of parallel workers (and table partitions).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enables or disables the block-at-a-time aggregation path
    /// (enabled by default). With it off, every eligible aggregate
    /// query runs row-at-a-time — the switch the row-vs-block
    /// benchmarks and equivalence tests flip. Per-statement overrides
    /// go through [`Db::execute_with`] instead.
    pub fn set_block_scan(&self, enabled: bool) {
        self.block_scan.store(enabled, Ordering::Relaxed);
    }

    /// Whether the block-at-a-time aggregation path is enabled.
    pub fn block_scan(&self) -> bool {
        self.block_scan.load(Ordering::Relaxed)
    }

    /// Applies a mutation to the UDF registry (to add custom UDFs).
    /// Copy-on-write: statements already executing keep the registry
    /// snapshot they started with; new statements see the update.
    pub fn with_registry_mut<R>(&self, f: impl FnOnce(&mut UdfRegistry) -> R) -> R {
        let mut guard = self.registry.write().expect("registry lock");
        let mut next = (**guard).clone();
        let out = f(&mut next);
        *guard = Arc::new(next);
        out
    }

    /// The current UDF registry snapshot.
    pub fn registry(&self) -> Arc<UdfRegistry> {
        self.registry.read().expect("registry lock").clone()
    }

    /// The materialized Γ summary store (inspect registered summaries
    /// and their freshness; DDL goes through [`Db::execute`]).
    pub fn summaries(&self) -> &SummaryStore {
        &self.summaries
    }

    /// Registers the virtual `sys.*` namespace this engine resolves
    /// system-table references through. A serving layer installs one
    /// provider per engine (on a sharded engine: the same provider on
    /// every shard, so any shard can answer a `sys.*` scan).
    pub fn set_system_tables(&self, provider: Arc<dyn SystemTableProvider>) {
        *self.system_tables.write().expect("system tables lock") = Some(provider);
    }

    fn ctx(&self, opts: &ExecOptions) -> ExecContext<'_> {
        ExecContext {
            catalog: &self.catalog,
            registry: self.registry(),
            summaries: &self.summaries,
            workers: self.workers,
            block_scan: opts.block_scan.unwrap_or_else(|| self.block_scan()),
            cancel: opts.cancel.clone(),
            system: self
                .system_tables
                .read()
                .expect("system tables lock")
                .clone(),
        }
    }

    /// Parses and executes one SQL statement with default options.
    pub fn execute(&self, sql: &str) -> Result<ResultSet> {
        self.execute_with(sql, &ExecOptions::default())
    }

    /// Parses and executes one SQL statement with per-statement
    /// execution options (a server session's settings).
    pub fn execute_with(&self, sql: &str, opts: &ExecOptions) -> Result<ResultSet> {
        // A token that flipped before execution began cancels the
        // whole statement up front — nothing has run, nothing mutated.
        if let Some(c) = opts.cancel_flag() {
            if c.load(Ordering::Relaxed) {
                return Err(EngineError::Cancelled { rows_scanned: 0 });
            }
        }
        let cpu_started = thread_cpu_nanos();
        let parse_started = Instant::now();
        let stmt = parse(sql)?;
        let parse_nanos = parse_started.elapsed().as_nanos() as u64;
        let mut rs = if self.wal.is_some() && statement_is_logged(&stmt) {
            self.execute_logged(sql, stmt, opts, parse_nanos)?
        } else {
            self.execute_stmt_inner(stmt, opts, parse_nanos)?
        };
        rs.stats.parse_nanos = parse_nanos;
        rs.stats.cpu_nanos += thread_cpu_nanos().saturating_sub(cpu_started);
        if let Some(trace) = &opts.trace {
            trace.add_cpu_nanos(rs.stats.cpu_nanos);
            trace.add_wal(rs.stats.wal_bytes, rs.stats.wal_fsyncs);
            for span in phase_spans(&rs.stats) {
                trace.record(span);
            }
        }
        Ok(rs)
    }

    /// Executes an already-parsed statement (the entry point for plan
    /// caches and sharded engines, which parse once and execute the
    /// same AST many times). Equivalent to [`Db::execute_with`] except
    /// that no parsing happens, so `parse_nanos` stays 0.
    pub fn execute_statement(&self, stmt: Statement, opts: &ExecOptions) -> Result<ResultSet> {
        if let Some(c) = opts.cancel_flag() {
            if c.load(Ordering::Relaxed) {
                return Err(EngineError::Cancelled { rows_scanned: 0 });
            }
        }
        let cpu_started = thread_cpu_nanos();
        let mut rs = self.execute_stmt_inner(stmt, opts, 0)?;
        rs.stats.cpu_nanos += thread_cpu_nanos().saturating_sub(cpu_started);
        if let Some(trace) = &opts.trace {
            trace.add_cpu_nanos(rs.stats.cpu_nanos);
            trace.add_wal(rs.stats.wal_bytes, rs.stats.wal_fsyncs);
            for span in phase_spans(&rs.stats) {
                trace.record(span);
            }
        }
        Ok(rs)
    }

    /// Runs one mutating statement under WAL protection: the statement
    /// text is appended to the log *before* it is applied, and the
    /// commit marker is appended (and group-fsynced) *after* the apply
    /// succeeded — so returning `Ok` implies the statement survives a
    /// crash, and a statement that failed to apply leaves only an
    /// uncommitted payload record that replay ignores.
    fn execute_logged(
        &self,
        sql: &str,
        stmt: Statement,
        opts: &ExecOptions,
        parse_nanos: u64,
    ) -> Result<ResultSet> {
        let ws = self.wal.as_ref().expect("execute_logged without wal");
        let _gate = ws.gate.read().expect("wal gate");
        let log_started = Instant::now();
        let eid = ws.wal.alloc_eid();
        let payload_bytes = ws.wal.log_sql(eid, sql)?;
        let log_nanos = log_started.elapsed().as_nanos() as u64;
        // Views have no storage to snapshot, so checkpoints carry their
        // defining texts; note the effect before `stmt` moves.
        let view_effect = match &stmt {
            Statement::CreateView { name, .. } => Some((name.to_ascii_lowercase(), true)),
            Statement::Drop { name } => Some((name.to_ascii_lowercase(), false)),
            _ => None,
        };
        let mut rs = self.execute_stmt_inner(stmt, opts, parse_nanos)?;
        let commit_started = Instant::now();
        let marker_bytes = ws.wal.commit(eid)?;
        rs.stats.wal_nanos = log_nanos + commit_started.elapsed().as_nanos() as u64;
        rs.stats.wal_bytes = payload_bytes + marker_bytes;
        rs.stats.wal_fsyncs = u64::from(ws.wal.sync_on_commit());
        if let Some((name, created)) = view_effect {
            let mut views = ws.view_ddl.lock().expect("view ddl lock");
            if created {
                views.push((name, sql.to_string()));
            } else {
                views.retain(|(n, _)| *n != name);
            }
        }
        Ok(rs)
    }

    /// The statement dispatch shared by [`Db::execute_with`] and
    /// [`Db::execute_statement`]. `parse_nanos` is only consulted by
    /// `EXPLAIN ANALYZE` (whose rendering accounts total wall time).
    fn execute_stmt_inner(
        &self,
        stmt: Statement,
        opts: &ExecOptions,
        parse_nanos: u64,
    ) -> Result<ResultSet> {
        let result: Result<ResultSet> = match stmt {
            Statement::Select(stmt) => self.ctx(opts).execute_select(&stmt),
            Statement::Explain(stmt) => {
                let lines = self.ctx(opts).explain_select(&stmt)?;
                Ok(ResultSet::new(
                    vec!["plan".into()],
                    lines.into_iter().map(|l| vec![Value::Str(l)]).collect(),
                ))
            }
            Statement::ExplainAnalyze(stmt) => {
                let exec_started = Instant::now();
                let inner = self.ctx(opts).execute_select(&stmt)?;
                let mut stats = inner.stats;
                stats.parse_nanos = parse_nanos;
                let total_nanos = parse_nanos + exec_started.elapsed().as_nanos() as u64;
                let mut rs = ResultSet::new(
                    vec!["plan".into()],
                    render_analyze(total_nanos, &stats)
                        .into_iter()
                        .map(|l| vec![Value::Str(l)])
                        .collect(),
                );
                rs.stats = stats;
                Ok(rs)
            }
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|c| Column::new(c.name, c.ty))
                        .collect(),
                );
                self.catalog.insert(
                    &name,
                    CatalogEntry::Table(Arc::new(Table::new(schema, self.workers))),
                )?;
                Ok(ResultSet::empty())
            }
            Statement::CreateTableAs { name, query } => {
                if self.catalog.contains(&name) {
                    return Err(EngineError::DuplicateTable(name));
                }
                let rs = self.ctx(opts).execute_select(&query)?;
                let table = result_to_table(&rs, self.workers)?;
                self.catalog
                    .insert(&name, CatalogEntry::Table(Arc::new(table)))?;
                Ok(ResultSet::empty())
            }
            Statement::CreateView { name, query } => {
                self.catalog
                    .insert(&name, CatalogEntry::View(Arc::new(query)))?;
                Ok(ResultSet::empty())
            }
            Statement::Insert { table, rows } => {
                let registry = self.registry();
                let empty_schema = BoundSchema::new();
                let mut values = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut out = Vec::with_capacity(row.len());
                    for expr in row {
                        let bound = Binder::scalar(&empty_schema, &registry).bind(&expr)?;
                        out.push(bound.eval(&[], &[], &[])?);
                    }
                    values.push(out);
                }
                let _dml = self.dml_lock.lock().expect("dml lock");
                self.append_rows(&table, values)?;
                Ok(ResultSet::empty())
            }
            Statement::InsertSelect { table, query } => {
                let rs = self.ctx(opts).execute_select(&query)?;
                let _dml = self.dml_lock.lock().expect("dml lock");
                self.append_rows(&table, rs.rows)?;
                Ok(ResultSet::empty())
            }
            Statement::Drop { name } => {
                self.catalog.remove(&name)?;
                // Summaries die with their base table.
                self.summaries.drop_for_table(&name);
                Ok(ResultSet::empty())
            }
            Statement::CreateSummary {
                name,
                table,
                columns,
                shape,
                minmax,
                group_by,
            } => {
                let t = self.base_table(&table)?;
                let shape = match &shape {
                    None => MatrixShape::Triangular,
                    Some(s) => MatrixShape::parse(s).ok_or_else(|| {
                        EngineError::Unsupported(format!(
                            "unknown summary shape '{s}' (expected diag, triang, or full)"
                        ))
                    })?,
                };
                let def = SummaryDef {
                    name,
                    table: table.to_ascii_lowercase(),
                    columns,
                    shape,
                    minmax,
                    group_by,
                };
                self.summaries.create(def, &t)?;
                Ok(ResultSet::empty())
            }
            Statement::DropSummary { name } => {
                self.summaries.remove(&name)?;
                Ok(ResultSet::empty())
            }
            Statement::Delete { table, predicate } => {
                let registry = self.registry();
                let _dml = self.dml_lock.lock().expect("dml lock");
                let t = self.base_table(&table)?;
                let mut schema = BoundSchema::new();
                schema.push_table(Some(&table), t.schema());
                let pred = predicate
                    .map(|p| Binder::scalar(&schema, &registry).bind(&p))
                    .transpose()?;
                let mut kept = Vec::new();
                let mut deleted = Vec::new();
                for (scanned, row) in t.scan_all().enumerate() {
                    check_cancelled(opts.cancel_flag(), scanned as u64)?;
                    let row = row?;
                    let hit = match &pred {
                        Some(p) => matches!(p.eval(&row, &[], &[])?, Value::Int(x) if x != 0),
                        None => true,
                    };
                    if hit {
                        deleted.push(row);
                    } else {
                        kept.push(row);
                    }
                }
                let mut replacement = Table::new(t.schema().clone(), t.partition_count());
                for row in kept {
                    replacement.insert(row)?;
                }
                self.catalog.replace_table(&table, Arc::new(replacement));
                // Γ is additive, so DELETE is a *subtraction*: summaries
                // that track no min/max absorb the deleted batch exactly
                // (min/max are not invertible from sums — those
                // summaries degrade to stale and rebuild lazily).
                self.summaries
                    .fold_deleted_rows(&table, t.schema(), &deleted);
                Ok(ResultSet::empty())
            }
            Statement::Update {
                table,
                sets,
                predicate,
            } => {
                let registry = self.registry();
                let _dml = self.dml_lock.lock().expect("dml lock");
                let t = self.base_table(&table)?;
                let mut schema = BoundSchema::new();
                schema.push_table(Some(&table), t.schema());
                let pred = predicate
                    .map(|p| Binder::scalar(&schema, &registry).bind(&p))
                    .transpose()?;
                let bound_sets: Vec<(usize, _)> = sets
                    .iter()
                    .map(|(col, e)| {
                        let idx = t
                            .schema()
                            .index_of(col)
                            .ok_or_else(|| EngineError::UnknownColumn(col.clone()))?;
                        Ok((idx, Binder::scalar(&schema, &registry).bind(e)?))
                    })
                    .collect::<Result<_>>()?;
                let mut rows = Vec::new();
                for (scanned, row) in t.scan_all().enumerate() {
                    check_cancelled(opts.cancel_flag(), scanned as u64)?;
                    let mut row = row?;
                    let hit = match &pred {
                        Some(p) => matches!(p.eval(&row, &[], &[])?, Value::Int(x) if x != 0),
                        None => true,
                    };
                    if hit {
                        // All right-hand sides see the pre-update row.
                        let news: Vec<Value> = bound_sets
                            .iter()
                            .map(|(_, e)| e.eval(&row, &[], &[]))
                            .collect::<Result<_>>()?;
                        for ((idx, _), v) in bound_sets.iter().zip(news) {
                            row[*idx] = v;
                        }
                    }
                    rows.push(row);
                }
                self.replace_rows(&table, &t, rows)?;
                Ok(ResultSet::empty())
            }
        };
        result
    }

    /// Whether a SELECT runs in aggregate mode (GROUP BY present or
    /// any projection contains an aggregate call). Aggregate selects
    /// are the ones a sharded engine can gather by merging partial
    /// accumulator states; everything else concatenates rows.
    pub fn select_is_aggregate(&self, stmt: &crate::ast::SelectStmt) -> bool {
        let registry = self.registry();
        let is_agg = |n: &str| crate::expr::AggKind::is_aggregate_name(n, &registry);
        !stmt.group_by.is_empty()
            || stmt
                .projections
                .iter()
                .any(|p| p.expr.contains_aggregate(&is_agg))
    }

    /// Runs phases 1–3 of an aggregate SELECT (scan or summary lookup,
    /// partial merge) and returns the *unfinalized* per-group
    /// accumulator states. A sharded engine calls this on every shard
    /// and combines the partials with
    /// [`Db::finalize_select_partials`] — the paper's AMP dataflow
    /// with the gather step hoisted out of the database.
    pub fn execute_select_partial(
        &self,
        stmt: &crate::ast::SelectStmt,
        opts: &ExecOptions,
    ) -> Result<crate::exec::AggPartial> {
        self.ctx(opts).execute_select_partial(stmt)
    }

    /// Merges aggregate partials from [`Db::execute_select_partial`]
    /// (typically one per shard) and runs phase 4 — finalize, HAVING,
    /// projection, ORDER BY — producing the statement's final result.
    /// The catalog of the `Db` this is called on must resolve the same
    /// schema the partials were produced against.
    pub fn finalize_select_partials(
        &self,
        stmt: &crate::ast::SelectStmt,
        partials: Vec<crate::exec::AggPartial>,
        opts: &ExecOptions,
    ) -> Result<ResultSet> {
        self.ctx(opts).finalize_select_partials(stmt, partials)
    }

    /// Appends pre-evaluated rows to a table under the DML lock (the
    /// row-distribution path of a sharded engine). Fresh summaries on
    /// the table absorb the batch incrementally, like SQL INSERT.
    pub fn insert_rows(&self, table: &str, rows: Vec<Row>) -> Result<()> {
        let _dml = self.dml_lock.lock().expect("dml lock");
        self.append_rows(table, rows)
    }

    /// WAL counters (`None` on a volatile database).
    pub fn wal_stats(&self) -> Option<WalStatsSnapshot> {
        self.wal.as_ref().map(|w| w.wal.stats().snapshot())
    }

    /// Bytes currently in the live WAL file — the auto-checkpoint
    /// trigger input (`None` on a volatile database). Unlike the
    /// monotone [`Db::wal_stats`] byte counter, this resets to 0 when a
    /// checkpoint truncates the log.
    pub fn wal_log_bytes(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.wal.bytes())
    }

    /// What recovery replayed when this database opened (`None` on a
    /// volatile database).
    pub fn recovery_info(&self) -> Option<RecoveryInfo> {
        self.wal.as_ref().map(|w| w.recovery)
    }

    /// Takes a checkpoint: snapshots every base table plus the DDL to
    /// recreate views and summaries into `dir/checkpoint`, then durably
    /// truncates the WAL. Returns `false` (doing nothing) on a volatile
    /// database.
    ///
    /// Crash safety is by rename dance: the snapshot is assembled in
    /// `checkpoint.tmp`, the previous snapshot is renamed to
    /// `checkpoint.old` before the new one is published, and recovery
    /// falls back to `.old` whenever `checkpoint/` is missing or its
    /// manifest does not verify — so at least one complete snapshot
    /// survives any crash point. The WAL reset happens last; if the
    /// process dies before it, replay skips the already-snapshotted
    /// envelopes via the manifest horizon.
    pub fn checkpoint(&self) -> Result<bool> {
        let Some(ws) = &self.wal else {
            return Ok(false);
        };
        let _gate = ws.gate.write().expect("wal gate");
        let horizon = ws.wal.next_eid();
        let tmp = ws.dir.join("checkpoint.tmp");
        let cur = ws.dir.join("checkpoint");
        let old = ws.dir.join("checkpoint.old");
        let ioerr = |what: &str, e: std::io::Error| {
            EngineError::Storage(StorageError::Io(format!("checkpoint {what}: {e}")))
        };
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(&tmp).map_err(|e| ioerr("mkdir", e))?;
        let mut tables = Vec::new();
        for (name, entry) in self.catalog.entries() {
            if let CatalogEntry::Table(t) = entry {
                t.save(&tmp.join(format!("{name}.tbl")))?;
                tables.push(name);
            }
        }
        let mut ddl: Vec<String> = ws
            .view_ddl
            .lock()
            .expect("view ddl lock")
            .iter()
            .map(|(_, sql)| sql.clone())
            .collect();
        ddl.extend(self.summary_ddl());
        let manifest = CheckpointManifest {
            horizon,
            tables,
            ddl,
        };
        let mpath = tmp.join("MANIFEST");
        std::fs::write(&mpath, manifest.encode()).map_err(|e| ioerr("manifest write", e))?;
        std::fs::File::open(&mpath)
            .and_then(|f| f.sync_all())
            .map_err(|e| ioerr("manifest sync", e))?;
        if cur.exists() {
            let _ = std::fs::remove_dir_all(&old);
            std::fs::rename(&cur, &old).map_err(|e| ioerr("rotate", e))?;
        }
        std::fs::rename(&tmp, &cur).map_err(|e| ioerr("publish", e))?;
        let _ = std::fs::remove_dir_all(&old);
        ws.wal.reset()?;
        Ok(true)
    }

    /// The `CREATE SUMMARY` statements that would recreate every live
    /// summary definition (checkpoint manifests carry these; replaying
    /// one re-folds the summary from its base table).
    pub fn summary_ddl(&self) -> Vec<String> {
        self.summaries
            .entries()
            .iter()
            .map(|e| summary_create_ddl(e.def()))
            .collect()
    }

    /// Resolves a name to a base table, rejecting views (DML and
    /// summary DDL need real storage).
    fn base_table(&self, name: &str) -> Result<Arc<Table>> {
        match self.catalog.get(name) {
            Some(CatalogEntry::Table(t)) => Ok(t),
            Some(CatalogEntry::View(_)) => Err(EngineError::Unsupported(format!(
                "'{name}' is a view; a base table is required"
            ))),
            None => Err(EngineError::UnknownTable(name.to_owned())),
        }
    }

    fn append_rows(&self, name: &str, rows: Vec<Row>) -> Result<()> {
        let Some(CatalogEntry::Table(arc)) = self.catalog.get(name) else {
            return Err(EngineError::UnknownTable(name.to_owned()));
        };
        // Copy-on-write: clone the table, append, swap back in.
        let mut table = (*arc).clone();
        for row in &rows {
            table.insert(row.clone())?;
        }
        self.catalog.replace_table(name, Arc::new(table));
        // Incremental maintenance: fold the inserted batch into every
        // fresh summary on this table (Γ additivity — no rescan).
        self.summaries.fold_rows(name, arc.schema(), &rows);
        Ok(())
    }

    /// Replaces a table's contents wholesale (UPDATE). The assignments
    /// may have touched arbitrary rows and columns, so every summary on
    /// the table degrades to stale and rebuilds on its next read.
    /// (DELETE has its own path: the removed batch can be *subtracted*
    /// from summaries that track no min/max.)
    fn replace_rows(&self, name: &str, old: &Table, rows: Vec<Row>) -> Result<()> {
        let mut table = Table::new(old.schema().clone(), old.partition_count());
        for row in rows {
            table.insert(row)?;
        }
        self.catalog.replace_table(name, Arc::new(table));
        self.summaries.mark_stale_for_table(name);
        Ok(())
    }

    /// Registers a pre-built table (the bulk-load path for large data
    /// sets, bypassing SQL INSERT overhead).
    pub fn register_table(&self, name: &str, table: Table) -> Result<()> {
        self.catalog
            .insert(name, CatalogEntry::Table(Arc::new(table)))
    }

    /// Registers or replaces a pre-built table. Any summaries on the
    /// name degrade to stale: the new contents are arbitrary.
    pub fn register_or_replace_table(&self, name: &str, table: Table) {
        self.catalog
            .insert_or_replace(name, CatalogEntry::Table(Arc::new(table)));
        self.summaries.mark_stale_for_table(name);
    }

    /// Fetches a table (views are materialized by execution).
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.ctx(&ExecOptions::default()).resolve_table(name)
    }

    /// Drops a table or view if it exists (with its summaries).
    pub fn drop_if_exists(&self, name: &str) {
        if self.catalog.remove(name).is_ok() {
            self.summaries.drop_for_table(name);
        }
    }

    /// Persists a table to disk (see [`nlq_storage::DiskTable`]); the
    /// in-memory copy stays registered.
    pub fn save_table(&self, name: &str, path: &std::path::Path) -> Result<()> {
        let table = self.table(name)?;
        table.save(path)?;
        Ok(())
    }

    /// Loads a previously saved table from disk and registers it under
    /// `name` (replacing any existing entry).
    pub fn load_table(&self, name: &str, path: &std::path::Path) -> Result<()> {
        let disk = nlq_storage::DiskTable::open(path)?;
        self.register_or_replace_table(name, disk.to_table()?);
        Ok(())
    }

    /// Bulk-loads a point matrix as the paper's table
    /// `X(i, X1..Xd[, Y])`: row ids are `1..=n`; when `with_y` is set
    /// the last column of each row is stored as `Y`.
    pub fn load_points(&self, name: &str, rows: &[Vec<f64>], with_y: bool) -> Result<()> {
        let ncols = rows.first().map_or(0, Vec::len);
        let d = if with_y {
            ncols.saturating_sub(1)
        } else {
            ncols
        };
        let schema = Schema::points(d, with_y);
        let mut table = Table::new(schema, self.workers);
        for (i, r) in rows.iter().enumerate() {
            let mut row: Row = Vec::with_capacity(r.len() + 1);
            row.push(Value::Int(i as i64 + 1));
            row.extend(r.iter().map(|&v| Value::Float(v)));
            table.insert(row)?;
        }
        self.register_table(name, table)
    }

    // -----------------------------------------------------------------
    // Summary matrices (§3.4)
    // -----------------------------------------------------------------

    /// Computes `n, L, Q` over the given columns with the aggregate
    /// UDF (list style) — the paper's fastest in-DBMS path.
    pub fn compute_nlq(&self, table: &str, cols: &[&str], shape: MatrixShape) -> Result<Nlq> {
        self.compute_nlq_with(NlqMethod::UdfList, table, cols, shape)
    }

    /// Computes `n, L, Q` with an explicit implementation choice.
    pub fn compute_nlq_with(
        &self,
        method: NlqMethod,
        table: &str,
        cols: &[&str],
        shape: MatrixShape,
    ) -> Result<Nlq> {
        let cols: Vec<String> = cols.iter().map(|c| (*c).to_owned()).collect();
        match method {
            NlqMethod::Sql => {
                let sql = sqlgen::nlq_sql_query(table, &cols, shape);
                let rs = self.execute(&sql)?;
                parse_wide_nlq(&rs, cols.len(), shape)
            }
            NlqMethod::UdfList | NlqMethod::UdfString => {
                let style = if method == NlqMethod::UdfList {
                    ParamStyle::List
                } else {
                    ParamStyle::String
                };
                let sql = sqlgen::nlq_udf_query(table, &cols, shape, style);
                let rs = self.execute(&sql)?;
                let packed = rs.value(0, 0).as_str().ok_or_else(|| {
                    EngineError::Unsupported(
                        "aggregate UDF returned no result (empty table?)".into(),
                    )
                })?;
                Ok(unpack_nlq(packed)?)
            }
        }
    }

    /// Computes one `n, L, Q` set per group (Table 5's workload),
    /// returning `(group value, statistics)` pairs.
    pub fn compute_nlq_grouped(
        &self,
        table: &str,
        cols: &[&str],
        group_col: &str,
        shape: MatrixShape,
        style: ParamStyle,
    ) -> Result<Vec<(Value, Nlq)>> {
        let cols: Vec<String> = cols.iter().map(|c| (*c).to_owned()).collect();
        let sql = sqlgen::nlq_grouped_query(table, &cols, group_col, shape, style);
        let rs = self.execute(&sql)?;
        let mut out = Vec::with_capacity(rs.len());
        for r in 0..rs.len() {
            let packed = rs.value(r, 1).as_str().ok_or_else(|| {
                EngineError::Unsupported("grouped aggregate UDF returned NULL".into())
            })?;
            out.push((rs.value(r, 0).clone(), unpack_nlq(packed)?));
        }
        Ok(out)
    }

    /// Computes `n, L, Q` for `d > MAX_D` by block-partitioned UDF
    /// calls (Table 6): submits all `ceil(d/block)²` calls in a single
    /// statement (one synchronized scan, each call packing only the
    /// coordinate segments it needs) and reassembles the full
    /// statistics client-side.
    pub fn compute_nlq_blocked(&self, table: &str, cols: &[&str], block: usize) -> Result<Nlq> {
        let cols: Vec<String> = cols.iter().map(|c| (*c).to_owned()).collect();
        let d = cols.len();
        let sql = sqlgen::nlq_block_query(table, &cols, block);
        let rs = self.execute(&sql)?;
        if rs.is_empty() {
            return Err(EngineError::Unsupported(
                "blocked UDF query returned no rows".into(),
            ));
        }
        let mut blocks = Vec::with_capacity(rs.rows[0].len());
        for c in 0..rs.rows[0].len() {
            let packed = rs.value(0, c).as_str().ok_or_else(|| {
                EngineError::Unsupported("blocked UDF returned NULL (empty table?)".into())
            })?;
            blocks.push(unpack_block(packed)?);
        }
        Ok(assemble_blocks(d, &blocks)?)
    }

    // -----------------------------------------------------------------
    // Model tables (§3.5: models are stored in the DBMS as tables)
    // -----------------------------------------------------------------

    /// Stores a regression model as the one-row table
    /// `name(b0, b1..bd)` — "this table layout allows retrieving all
    /// coefficients in a single I/O".
    pub fn register_beta(&self, name: &str, intercept: f64, beta: &Vector) -> Result<()> {
        let mut columns = vec![Column::new("b0", DataType::Float)];
        for a in 1..=beta.len() {
            columns.push(Column::new(format!("b{a}"), DataType::Float));
        }
        let mut table = Table::new(Schema::new(columns), 1);
        let mut row: Row = vec![Value::Float(intercept)];
        row.extend(beta.as_slice().iter().map(|&v| Value::Float(v)));
        table.insert(row)?;
        self.drop_if_exists(name);
        self.register_table(name, table)
    }

    /// Stores a d × k loading matrix as `name(j, X1..Xd)` with one row
    /// per component `j = 1..k`.
    pub fn register_lambda(&self, name: &str, lambda: &Matrix) -> Result<()> {
        let d = lambda.rows();
        let mut columns = vec![Column::new("j", DataType::Int)];
        for a in 1..=d {
            columns.push(Column::new(format!("X{a}"), DataType::Float));
        }
        let mut table = Table::new(Schema::new(columns), 1);
        for j in 0..lambda.cols() {
            let mut row: Row = vec![Value::Int(j as i64 + 1)];
            row.extend((0..d).map(|a| Value::Float(lambda[(a, j)])));
            table.insert(row)?;
        }
        self.drop_if_exists(name);
        self.register_table(name, table)
    }

    /// Stores a mean vector as the one-row table `name(X1..Xd)`.
    pub fn register_mu(&self, name: &str, mu: &Vector) -> Result<()> {
        let columns = (1..=mu.len())
            .map(|a| Column::new(format!("X{a}"), DataType::Float))
            .collect();
        let mut table = Table::new(Schema::new(columns), 1);
        table.insert(mu.as_slice().iter().map(|&v| Value::Float(v)).collect())?;
        self.drop_if_exists(name);
        self.register_table(name, table)
    }

    /// Scores a batch of primary keys against a registered model table
    /// in one call: keyed rows resolve through the storage PK hash
    /// index (no scan) and run through the scalar scoring UDFs
    /// columnar-style. See [`crate::serve`] for the exact semantics.
    pub fn batch_score(
        &self,
        table: &str,
        model: &str,
        keys: &[i64],
        explain: bool,
        opts: &ExecOptions,
    ) -> Result<ResultSet> {
        crate::serve::batch_score(self, table, model, keys, explain, opts)
    }

    /// Stores cluster centroids as `name(j, X1..Xd)`, `j = 1..k`.
    pub fn register_centroids(&self, name: &str, centroids: &[Vector]) -> Result<()> {
        let d = centroids.first().map_or(0, Vector::len);
        let mut columns = vec![Column::new("j", DataType::Int)];
        for a in 1..=d {
            columns.push(Column::new(format!("X{a}"), DataType::Float));
        }
        let mut table = Table::new(Schema::new(columns), 1);
        for (j, c) in centroids.iter().enumerate() {
            let mut row: Row = vec![Value::Int(j as i64 + 1)];
            row.extend(c.as_slice().iter().map(|&v| Value::Float(v)));
            table.insert(row)?;
        }
        self.drop_if_exists(name);
        self.register_table(name, table)
    }
}

/// Whether a statement mutates durable state and therefore must be
/// WAL-logged on a durable engine (reads — SELECT and the EXPLAIN
/// family — are not). Public so coordinating layers (the sharded
/// engine) apply the same logging policy.
pub fn statement_is_logged(stmt: &Statement) -> bool {
    !matches!(
        stmt,
        Statement::Select(_) | Statement::Explain(_) | Statement::ExplainAnalyze(_)
    )
}

/// Finds the newest complete checkpoint under `dir`: `checkpoint/` if
/// its manifest verifies, else `checkpoint.old/` (a crash mid-rotation
/// can leave either as the only complete snapshot), else `None`.
/// Public so the sharded engine can drive the same rotation protocol
/// over its own (multi-shard) snapshot layout.
pub fn load_checkpoint(dir: &Path) -> Result<Option<(PathBuf, CheckpointManifest)>> {
    for name in ["checkpoint", "checkpoint.old"] {
        let ckdir = dir.join(name);
        let data = match std::fs::read(ckdir.join("MANIFEST")) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => {
                return Err(EngineError::Storage(StorageError::Io(format!(
                    "checkpoint manifest read: {e}"
                ))))
            }
        };
        // An unverifiable manifest marks an incomplete snapshot; the
        // fallback (if any) is the authoritative one.
        if let Ok(m) = CheckpointManifest::decode(&data) {
            return Ok(Some((ckdir, m)));
        }
    }
    Ok(None)
}

/// Regenerates the `CREATE SUMMARY` statement for a live definition
/// (checkpoint manifests re-execute these after loading the snapshot,
/// re-folding each summary from its base table).
fn summary_create_ddl(def: &SummaryDef) -> String {
    let mut s = format!(
        "CREATE SUMMARY {} ON {} ({})",
        def.name,
        def.table,
        def.columns.join(", ")
    );
    s.push_str(match def.shape {
        MatrixShape::Diagonal => " SHAPE diag",
        MatrixShape::Triangular => " SHAPE triang",
        MatrixShape::Full => " SHAPE full",
    });
    if !def.minmax {
        s.push_str(" NO MINMAX");
    }
    if let Some(g) = &def.group_by {
        s.push_str(&format!(" GROUP BY {g}"));
    }
    s
}

/// Parses the wide one-row result of the pure-SQL `n, L, Q` query into
/// statistics (column order: `n`, `L1..Ld`, then the `d²` Q positions
/// row-major with NULL placeholders for entries the shape skips).
fn parse_wide_nlq(rs: &ResultSet, d: usize, shape: MatrixShape) -> Result<Nlq> {
    let expect = 1 + d + d * d;
    if rs.len() != 1 || rs.rows[0].len() != expect {
        return Err(EngineError::Unsupported(format!(
            "wide nLQ result has wrong shape: {} rows x {} cols, expected 1 x {expect}",
            rs.len(),
            rs.rows.first().map_or(0, Vec::len)
        )));
    }
    let row = &rs.rows[0];
    let n = row[0].as_f64().unwrap_or(0.0);
    let l = Vector::from_vec((0..d).map(|a| row[1 + a].as_f64().unwrap_or(0.0)).collect());
    let mut q = Matrix::zeros(d, d);
    for a in 0..d {
        for b in 0..d {
            if let Some(v) = row[1 + d + a * d + b].as_f64() {
                q[(a, b)] = v;
            }
        }
    }
    // The SQL path does not compute min/max (the UDF does).
    Ok(Nlq::from_parts(
        shape,
        n,
        l,
        q,
        vec![f64::NEG_INFINITY; d],
        vec![f64::INFINITY; d],
    )?)
}

/// The engine-side phase spans one statement's stats describe. Parse
/// is always present (except on a plan-cache hit, when no parse ran);
/// downstream phases appear once they did work.
///
/// Sharded statements (`scatter_nanos`/`gather_nanos` nonzero) render
/// as parse → scatter → gather: the shard-local phase times summed
/// into the stats overlap in wall time, so listing them next to the
/// scatter span that already covers them would double-count.
pub fn phase_spans(stats: &ExecStats) -> Vec<Span> {
    if stats.scatter_nanos > 0 || stats.gather_nanos > 0 {
        let mut spans = Vec::with_capacity(3);
        if stats.parse_nanos > 0 {
            spans.push(Span::new(Phase::Parse, stats.parse_nanos));
        }
        spans.push(
            Span::new(Phase::Scatter, stats.scatter_nanos)
                .rows(stats.rows_scanned)
                .blocks(stats.blocks_scanned),
        );
        spans.push(Span::new(Phase::Gather, stats.gather_nanos));
        if stats.wal_nanos > 0 {
            spans.push(Span::new(Phase::Wal, stats.wal_nanos).bytes(stats.wal_bytes));
        }
        return spans;
    }
    let mut spans = vec![Span::new(Phase::Parse, stats.parse_nanos)];
    if stats.plan_nanos > 0 {
        spans.push(Span::new(Phase::Plan, stats.plan_nanos));
    }
    if stats.summary_nanos > 0 || stats.summary_path {
        spans.push(
            Span::new(Phase::SummaryLookup, stats.summary_nanos).rows(stats.summary_rebuild_rows),
        );
    }
    // Rows scanned by a stale-summary rebuild belong to the
    // summary-lookup span above, not to a (never-run) scan phase.
    if stats.scan_nanos > 0 || stats.rows_scanned > stats.summary_rebuild_rows {
        spans.push(
            Span::new(Phase::Scan, stats.scan_nanos)
                .rows(stats.rows_scanned)
                .blocks(stats.blocks_scanned),
        );
    }
    if stats.finalize_nanos > 0 {
        spans.push(Span::new(Phase::Finalize, stats.finalize_nanos));
    }
    if stats.wal_nanos > 0 {
        spans.push(Span::new(Phase::Wal, stats.wal_nanos).bytes(stats.wal_bytes));
    }
    spans
}

/// The scan-mode / rows-scanned / summary verdict lines that follow
/// the span list in `EXPLAIN ANALYZE` output (shared with sharded
/// engines, which append their own scatter/gather verdicts).
pub fn explain_analyze_footer(stats: &ExecStats) -> Vec<String> {
    let mut lines = Vec::new();
    let mode = if stats.summary_path {
        if stats.summary_stale_rebuilds > 0 {
            "summary (stale; rebuilt by scanning the base table, then answered from Γ)".to_owned()
        } else {
            "summary (answered from materialized Γ, no scan)".to_owned()
        }
    } else if stats.block_path {
        format!("block ({} column blocks decoded)", stats.blocks_scanned)
    } else {
        "row-at-a-time".to_owned()
    };
    lines.push(format!("scan mode: {mode}"));
    lines.push(format!("rows scanned: {}", stats.rows_scanned));
    if stats.summary_hits + stats.summary_misses + stats.summary_stale_rebuilds > 0 {
        lines.push(format!(
            "summary: {} hit(s), {} miss(es), {} stale rebuild(s)",
            stats.summary_hits, stats.summary_misses, stats.summary_stale_rebuilds
        ));
    }
    lines
}

/// The `EXPLAIN ANALYZE` rendering: the span list (wall times summing
/// exactly to `total_nanos` via the trailing `other` line) followed by
/// the scan-mode and summary verdicts for the executed statement.
fn render_analyze(total_nanos: u64, stats: &ExecStats) -> Vec<String> {
    let mut lines = render_spans(total_nanos, &phase_spans(stats));
    lines.extend(explain_analyze_footer(stats));
    lines
}

/// Snapshot of one shard's cumulative activity, as reported through
/// [`SqlEngine::shard_metrics`] into METRICS and the Prometheus
/// export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMetricsSnapshot {
    /// Shard index, `0..shards`.
    pub shard: usize,
    /// Statements (or statement fragments) this shard has executed.
    pub queries: u64,
    /// Base-table rows this shard has scanned.
    pub rows_scanned: u64,
    /// Jobs currently queued on (or running in) the shard's executor.
    pub queue_depth: u64,
    /// Cumulative wall time the shard's executor spent running jobs.
    pub busy_nanos: u64,
}

/// Counters of a SQL-text-keyed prepared-plan cache
/// ([`SqlEngine::plan_cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Statements answered from a cached parse (no parse ran).
    pub hits: u64,
    /// Statements that had to parse (and populated the cache).
    pub misses: u64,
    /// Plans currently cached.
    pub entries: u64,
}

/// Point-in-time refresh signal for one registered Γ summary, as a
/// refresh daemon polls it through
/// [`SqlEngine::summary_refresh_states`]: the monotone counters say
/// *whether* the maintained state moved, the definition fields say
/// whether a closed-form model refresh is even possible.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRefreshState {
    /// Summary name (lowercase).
    pub name: String,
    /// Base table name (lowercase).
    pub table: String,
    /// Summarized float columns, in declaration order (a refresh
    /// daemon projects these to warm-start iterative models).
    pub columns: Vec<String>,
    /// Monotonic change counter (folds, subtractions, stale edges,
    /// rebuilds). On a sharded engine, the sum across shards.
    pub version: u64,
    /// Cumulative rows folded in or subtracted out. On a sharded
    /// engine, the sum across shards.
    pub rows_folded: u64,
    /// Whether the maintained state is fresh (on a sharded engine:
    /// fresh on every shard).
    pub fresh: bool,
    /// Dimensionality of the summarized statistics.
    pub d: usize,
    /// Shape of the maintained `Q` matrix (a Diagonal state cannot
    /// drive correlated model refreshes).
    pub shape: MatrixShape,
    /// Whether the summary is grouped (grouped states cannot feed a
    /// single global model refresh).
    pub grouped: bool,
}

/// The SQL execution surface a serving layer needs: one entry point
/// plus the feature-serving loop (streamed ingest, batch scoring,
/// model publication) and observability hooks. Implemented by [`Db`]
/// (a single engine) and by sharded engines that scatter statements
/// across many `Db` instances — the server holds an
/// `Arc<dyn SqlEngine>` and cannot tell the difference.
pub trait SqlEngine: Send + Sync {
    /// Parses and executes one SQL statement with per-statement
    /// execution options.
    fn execute_with(&self, sql: &str, opts: &ExecOptions) -> Result<ResultSet>;

    /// Number of independent shards behind this engine (1 when
    /// unsharded).
    fn shard_count(&self) -> usize {
        1
    }

    /// Per-shard activity counters (empty when unsharded).
    fn shard_metrics(&self) -> Vec<ShardMetricsSnapshot> {
        Vec::new()
    }

    /// Prepared-plan cache counters (`None` when the engine keeps no
    /// cache).
    fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        None
    }

    /// Appends pre-evaluated rows to a table (the streamed-ingest
    /// commit). The batch is atomic from the reader's point of view:
    /// the table generation swaps once, after every row validated.
    /// Fresh Γ summaries on the table fold the delta in incrementally.
    /// Returns the number of rows accepted.
    fn ingest_rows(&self, table: &str, rows: Vec<Row>) -> Result<u64>;

    /// The schema of a base table (ingest headers validate against it
    /// before any chunk is accepted).
    fn table_schema(&self, name: &str) -> Result<Schema>;

    /// Scores `keys` against the registered model table `model` in one
    /// call, via PK point lookups and the scalar scoring UDFs. One
    /// output row per key, in request order; NULL score for absent
    /// keys. With `explain`, returns the plan instead of executing.
    fn batch_score(
        &self,
        table: &str,
        model: &str,
        keys: &[i64],
        explain: bool,
        opts: &ExecOptions,
    ) -> Result<ResultSet>;

    /// Refresh signals for every registered summary, name-sorted.
    fn summary_refresh_states(&self) -> Vec<SummaryRefreshState>;

    /// The maintained global Γ state of one summary, rebuilding it
    /// first if stale. Errors for grouped summaries (no single global
    /// state exists). On a sharded engine, the merge of every shard's
    /// state — exact by Γ additivity.
    fn summary_gamma(&self, name: &str) -> Result<Nlq>;

    /// Publishes (or replaces) a regression model as the one-row table
    /// `name(b0, b1..bd)` — on a sharded engine, replicated
    /// everywhere, like any model table.
    fn publish_beta(&self, name: &str, intercept: f64, beta: &Vector) -> Result<()>;

    /// Publishes (or replaces) cluster centroids as `name(j, X1..Xd)`.
    fn publish_centroids(&self, name: &str, centroids: &[Vector]) -> Result<()>;

    /// Publishes (or replaces) a d × k PCA loading matrix as
    /// `name(j, X1..Xd)` with one row per component.
    fn publish_lambda(&self, _name: &str, _lambda: &Matrix) -> Result<()> {
        Err(EngineError::Unsupported(
            "engine does not support publishing PCA loadings".into(),
        ))
    }

    /// WAL counters (`None` when the engine keeps no write-ahead log).
    /// On a sharded engine, the sum across per-shard logs.
    fn wal_stats(&self) -> Option<WalStatsSnapshot> {
        None
    }

    /// Bytes currently in the live WAL file(s) — resets to 0 at each
    /// checkpoint, making it the auto-checkpoint trigger input (`None`
    /// when the engine keeps no log).
    fn wal_log_bytes(&self) -> Option<u64> {
        None
    }

    /// Snapshots tables + DDL and durably truncates the log(s); `false`
    /// (a no-op) on a volatile engine.
    fn checkpoint(&self) -> Result<bool> {
        Ok(false)
    }

    /// What crash recovery replayed when the engine opened (`None` on
    /// a volatile engine; zeroes for a clean durable start).
    fn recovery_info(&self) -> Option<RecoveryInfo> {
        None
    }

    /// Registers the virtual `sys.*` namespace every `sys.`-prefixed
    /// table reference resolves through (default: ignored, for engines
    /// without a catalog hook). Sharded engines install the provider
    /// on every shard so any routing choice can answer a `sys.*` scan.
    fn set_system_tables(&self, _provider: Arc<dyn SystemTableProvider>) {}
}

impl SqlEngine for Db {
    fn execute_with(&self, sql: &str, opts: &ExecOptions) -> Result<ResultSet> {
        Db::execute_with(self, sql, opts)
    }

    fn ingest_rows(&self, table: &str, rows: Vec<Row>) -> Result<u64> {
        let n = rows.len() as u64;
        if let Some(ws) = &self.wal {
            // One WAL envelope per ingest batch: log the rows, apply,
            // then commit — the Done ack the server sends after this
            // returns implies the whole envelope is durable.
            let _gate = ws.gate.read().expect("wal gate");
            let eid = ws.wal.alloc_eid();
            ws.wal.log_rows(eid, table, &rows)?;
            self.insert_rows(table, rows)?;
            ws.wal.commit(eid)?;
        } else {
            self.insert_rows(table, rows)?;
        }
        Ok(n)
    }

    fn table_schema(&self, name: &str) -> Result<Schema> {
        Ok(self.base_table(name)?.schema().clone())
    }

    fn batch_score(
        &self,
        table: &str,
        model: &str,
        keys: &[i64],
        explain: bool,
        opts: &ExecOptions,
    ) -> Result<ResultSet> {
        Db::batch_score(self, table, model, keys, explain, opts)
    }

    fn summary_refresh_states(&self) -> Vec<SummaryRefreshState> {
        self.summaries
            .entries()
            .iter()
            .map(|e| SummaryRefreshState {
                name: e.def().name.clone(),
                table: e.def().table.clone(),
                columns: e.def().columns.clone(),
                version: e.version(),
                rows_folded: e.rows_folded(),
                fresh: e.is_fresh(),
                d: e.def().d(),
                shape: e.def().shape,
                grouped: e.def().group_by.is_some(),
            })
            .collect()
    }

    fn summary_gamma(&self, name: &str) -> Result<Nlq> {
        let entry = self
            .summaries
            .get(name)
            .ok_or_else(|| EngineError::Summary(format!("unknown summary '{name}'")))?;
        if !entry.is_fresh() {
            let t = self.base_table(&entry.def().table)?;
            entry.rebuild(&t)?;
        }
        match entry.snapshot().data {
            SummaryData::Global(nlq) => Ok(nlq),
            SummaryData::Grouped(_) => Err(EngineError::Unsupported(format!(
                "summary '{name}' is grouped; model refresh needs a global state"
            ))),
        }
    }

    fn publish_beta(&self, name: &str, intercept: f64, beta: &Vector) -> Result<()> {
        self.register_beta(name, intercept, beta)
    }

    fn publish_centroids(&self, name: &str, centroids: &[Vector]) -> Result<()> {
        self.register_centroids(name, centroids)
    }

    fn publish_lambda(&self, name: &str, lambda: &Matrix) -> Result<()> {
        self.register_lambda(name, lambda)
    }

    fn wal_stats(&self) -> Option<WalStatsSnapshot> {
        Db::wal_stats(self)
    }

    fn wal_log_bytes(&self) -> Option<u64> {
        Db::wal_log_bytes(self)
    }

    fn checkpoint(&self) -> Result<bool> {
        Db::checkpoint(self)
    }

    fn recovery_info(&self) -> Option<RecoveryInfo> {
        Db::recovery_info(self)
    }

    fn set_system_tables(&self, provider: Arc<dyn SystemTableProvider>) {
        Db::set_system_tables(self, provider)
    }
}
