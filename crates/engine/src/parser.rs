use nlq_storage::{DataType, Value};

use crate::ast::{BinOp, ColumnDef, Expr, Projection, SelectStmt, Statement, TableRef};
use crate::token::{tokenize, Token, TokenKind};
use crate::{EngineError, Result};

/// Parses one SQL statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, idx: 0 };
    let stmt = p.statement()?;
    p.eat_if(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.idx].kind
    }

    fn pos(&self) -> usize {
        self.tokens[self.idx].pos
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.idx].kind.clone();
        if self.idx < self.tokens.len() - 1 {
            self.idx += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(EngineError::Parse {
            message: message.into(),
            position: self.pos(),
        })
    }

    /// Consumes the next token if it equals `kind`.
    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat_if(kind) {
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            self.err(format!("unexpected trailing tokens: {:?}", self.peek()))
        }
    }

    /// Checks whether the next token is the keyword `kw`
    /// (case-insensitive), without consuming it.
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Consumes the next token if it is the keyword `kw`.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s),
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("EXPLAIN") {
            if self.eat_kw("ANALYZE") {
                return Ok(Statement::ExplainAnalyze(self.select()?));
            }
            return Ok(Statement::Explain(self.select()?));
        }
        if self.peek_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                let name = self.ident("table name")?;
                if self.eat_kw("AS") {
                    let query = self.select()?;
                    return Ok(Statement::CreateTableAs { name, query });
                }
                self.expect(&TokenKind::LParen, "(")?;
                let mut columns = Vec::new();
                loop {
                    let col = self.ident("column name")?;
                    let ty_name = self.ident("column type")?;
                    let ty = match ty_name.to_ascii_uppercase().as_str() {
                        "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => DataType::Int,
                        "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" => DataType::Float,
                        "VARCHAR" | "CHAR" | "TEXT" | "STRING" | "CLOB" => {
                            // Optional length, e.g. VARCHAR(64000).
                            if self.eat_if(&TokenKind::LParen) {
                                match self.advance() {
                                    TokenKind::Number(_) => {}
                                    other => {
                                        return self
                                            .err(format!("expected length, found {other:?}"))
                                    }
                                }
                                self.expect(&TokenKind::RParen, ")")?;
                            }
                            DataType::Str
                        }
                        other => return self.err(format!("unknown type {other}")),
                    };
                    columns.push(ColumnDef { name: col, ty });
                    if !self.eat_if(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen, ")")?;
                return Ok(Statement::CreateTable { name, columns });
            }
            if self.eat_kw("VIEW") {
                let name = self.ident("view name")?;
                self.expect_kw("AS")?;
                let query = self.select()?;
                return Ok(Statement::CreateView { name, query });
            }
            if self.eat_kw("SUMMARY") {
                return self.create_summary();
            }
            return self.err("expected TABLE, VIEW, or SUMMARY after CREATE");
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.ident("table name")?;
            if self.eat_kw("VALUES") {
                let mut rows = Vec::new();
                loop {
                    self.expect(&TokenKind::LParen, "(")?;
                    let mut row = Vec::new();
                    loop {
                        row.push(self.expr()?);
                        if !self.eat_if(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen, ")")?;
                    rows.push(row);
                    if !self.eat_if(&TokenKind::Comma) {
                        break;
                    }
                }
                return Ok(Statement::Insert { table, rows });
            }
            if self.peek_kw("SELECT") {
                let query = self.select()?;
                return Ok(Statement::InsertSelect { table, query });
            }
            return self.err("expected VALUES or SELECT after INSERT INTO t");
        }
        if self.eat_kw("DROP") {
            // DROP TABLE t / DROP VIEW v / DROP SUMMARY s.
            if self.eat_kw("SUMMARY") {
                let name = self.ident("summary name")?;
                return Ok(Statement::DropSummary { name });
            }
            if !(self.eat_kw("TABLE") || self.eat_kw("VIEW")) {
                return self.err("expected TABLE, VIEW, or SUMMARY after DROP");
            }
            let name = self.ident("object name")?;
            return Ok(Statement::Drop { name });
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident("table name")?;
            let predicate = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, predicate });
        }
        if self.eat_kw("UPDATE") {
            let table = self.ident("table name")?;
            self.expect_kw("SET")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident("column name")?;
                self.expect(&TokenKind::Eq, "=")?;
                sets.push((col, self.expr()?));
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
            let predicate = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                sets,
                predicate,
            });
        }
        self.err(format!("unrecognized statement start: {:?}", self.peek()))
    }

    /// `CREATE SUMMARY` tail: `s ON t (c1, ...) [SHAPE name]
    /// [NO MINMAX] [GROUP BY g]` (the `SUMMARY` keyword is already
    /// consumed).
    fn create_summary(&mut self) -> Result<Statement> {
        let name = self.ident("summary name")?;
        self.expect_kw("ON")?;
        let table = self.ident("table name")?;
        self.expect(&TokenKind::LParen, "(")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident("column name")?);
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen, ")")?;
        let shape = if self.eat_kw("SHAPE") {
            Some(self.ident("shape name ('diag', 'triang', or 'full')")?)
        } else {
            None
        };
        let minmax = if self.eat_kw("NO") {
            self.expect_kw("MINMAX")?;
            false
        } else {
            true
        };
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            Some(self.ident("group column")?)
        } else {
            None
        };
        Ok(Statement::CreateSummary {
            name,
            table,
            columns,
            shape,
            minmax,
            group_by,
        })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut projections = Vec::new();
        loop {
            if self.eat_if(&TokenKind::Star) {
                projections.push(Projection {
                    expr: Expr::Wildcard,
                    alias: None,
                });
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident("alias")?)
                } else {
                    None
                };
                projections.push(Projection { expr, alias });
            }
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = vec![self.table_ref()?];
        while self.peek_kw("CROSS") {
            self.advance();
            self.expect_kw("JOIN")?;
            from.push(self.table_ref()?);
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let descending = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(crate::ast::OrderKey { expr, descending });
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.advance() {
                TokenKind::Number(n) => {
                    Some(n.parse::<usize>().map_err(|_| EngineError::Parse {
                        message: format!("bad LIMIT value {n:?}"),
                        position: self.pos(),
                    })?)
                }
                other => return self.err(format!("expected LIMIT count, found {other:?}")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            projections,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut name = self.ident("table name")?;
        // Qualified names (`sys.queries`): fold the dotted parts into
        // one catalog key — the system-catalog namespace resolves as a
        // whole, not as schema + table.
        while self.eat_if(&TokenKind::Dot) {
            name.push('.');
            name.push_str(&self.ident("table name")?);
        }
        // Optional alias: `X AS A` or `X A` (but not a keyword).
        let alias = if self.eat_kw("AS") {
            Some(self.ident("alias")?)
        } else if let TokenKind::Ident(s) = self.peek() {
            const KEYWORDS: &[&str] = &[
                "CROSS", "WHERE", "GROUP", "ORDER", "JOIN", "HAVING", "LIMIT",
            ];
            if KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                None
            } else {
                Some(self.ident("alias")?)
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    // Expression grammar, lowest precedence first.
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        // IS [NOT] NULL postfix.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::NotEq => BinOp::NotEq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::LtEq => BinOp::LtEq,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::GtEq => BinOp::GtEq,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat_if(&TokenKind::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        if self.eat_if(&TokenKind::Plus) {
            return self.unary_expr();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.advance() {
            TokenKind::Number(n) => {
                // Integers without '.'/'e' become Int, the rest Float.
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    n.parse::<f64>()
                        .map(|v| Expr::Literal(Value::Float(v)))
                        .or_else(|_| self.err(format!("bad number {n:?}")))
                } else {
                    n.parse::<i64>()
                        .map(|v| Expr::Literal(Value::Int(v)))
                        .or_else(|_| self.err(format!("bad number {n:?}")))
                }
            }
            TokenKind::StringLit(s) => Ok(Expr::Literal(Value::Str(s))),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, ")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("CASE") {
                    return self.case_expr();
                }
                if self.eat_if(&TokenKind::LParen) {
                    // Function call; count(*) takes a wildcard.
                    let mut args = Vec::new();
                    if !self.eat_if(&TokenKind::RParen) {
                        loop {
                            if self.eat_if(&TokenKind::Star) {
                                args.push(Expr::Wildcard);
                            } else {
                                args.push(self.expr()?);
                            }
                            if !self.eat_if(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen, ")")?;
                    }
                    return Ok(Expr::Call { name, args });
                }
                if self.eat_if(&TokenKind::Dot) {
                    let col = self.ident("column name")?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => self.err(format!("unexpected token {other:?} in expression")),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.expr()?;
            self.expect_kw("THEN")?;
            let val = self.expr()?;
            branches.push((cond, val));
        }
        if branches.is_empty() {
            return self.err("CASE requires at least one WHEN branch");
        }
        let else_expr = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            branches,
            else_expr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT X1, X2 FROM X");
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.from[0].name, "X");
        assert!(s.where_clause.is_none());
        assert!(s.group_by.is_empty());
    }

    #[test]
    fn select_with_arithmetic_and_alias() {
        let s = sel("SELECT sum(X1*X1) AS q11, 1 + 2 * 3 FROM X");
        assert_eq!(s.projections[0].alias.as_deref(), Some("q11"));
        // Precedence: 1 + (2*3).
        match &s.projections[1].expr {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("bad precedence: {other:?}"),
        }
    }

    #[test]
    fn cross_join_with_aliases() {
        let s = sel("SELECT a.X1, b.X1 FROM X AS a CROSS JOIN LAMBDA b CROSS JOIN MU");
        assert_eq!(s.from.len(), 3);
        assert_eq!(s.from[0].alias.as_deref(), Some("a"));
        assert_eq!(s.from[1].alias.as_deref(), Some("b"));
        assert_eq!(s.from[2].alias, None);
        assert!(matches!(
            &s.projections[0].expr,
            Expr::Column { table: Some(t), .. } if t == "a"
        ));
    }

    #[test]
    fn where_and_group_by() {
        let s = sel("SELECT j, sum(X1) FROM X WHERE X1 > 0 AND j <> 3 GROUP BY j");
        assert!(s.where_clause.is_some());
        assert_eq!(s.group_by.len(), 1);
    }

    #[test]
    fn case_expression() {
        let s = sel("SELECT CASE WHEN X1 > 0 THEN 1 ELSE 0 END FROM X");
        match &s.projections[0].expr {
            Expr::Case {
                branches,
                else_expr,
            } => {
                assert_eq!(branches.len(), 1);
                assert!(else_expr.is_some());
            }
            other => panic!("expected CASE, got {other:?}"),
        }
    }

    #[test]
    fn count_star_and_null() {
        let s = sel("SELECT count(*), NULL FROM X");
        assert!(matches!(
            &s.projections[0].expr,
            Expr::Call { name, args } if name == "count" && args == &[Expr::Wildcard]
        ));
        assert_eq!(s.projections[1].expr, Expr::Literal(Value::Null));
    }

    #[test]
    fn is_null_predicates() {
        let s = sel("SELECT X1 FROM X WHERE X1 IS NOT NULL");
        assert!(matches!(
            s.where_clause.unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn create_table_and_types() {
        match parse("CREATE TABLE T (i INT, v FLOAT, s VARCHAR(100))").unwrap() {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "T");
                assert_eq!(columns[0].ty, DataType::Int);
                assert_eq!(columns[1].ty, DataType::Float);
                assert_eq!(columns[2].ty, DataType::Str);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_table_as_and_view() {
        assert!(matches!(
            parse("CREATE TABLE T2 AS SELECT X1 FROM X").unwrap(),
            Statement::CreateTableAs { .. }
        ));
        assert!(matches!(
            parse("CREATE VIEW V AS SELECT X1 FROM X").unwrap(),
            Statement::CreateView { .. }
        ));
    }

    #[test]
    fn insert_values_and_select() {
        match parse("INSERT INTO T VALUES (1, 2.5, 'a'), (2, NULL, 'b')").unwrap() {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "T");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], Expr::Literal(Value::Null));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse("INSERT INTO T SELECT X1, X2, 'x' FROM X").unwrap(),
            Statement::InsertSelect { .. }
        ));
    }

    #[test]
    fn drop_statement() {
        assert_eq!(
            parse("DROP TABLE T").unwrap(),
            Statement::Drop { name: "T".into() }
        );
        assert_eq!(
            parse("DROP VIEW V;").unwrap(),
            Statement::Drop { name: "V".into() }
        );
    }

    #[test]
    fn negative_numbers_and_unary() {
        let s = sel("SELECT -X1, -(1 + 2), +3 FROM X");
        assert!(matches!(&s.projections[0].expr, Expr::Neg(_)));
        assert_eq!(s.projections[2].expr, Expr::Literal(Value::Int(3)));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELECT FROM X").is_err());
        assert!(parse("SELECT 1").is_err()); // missing FROM
        assert!(parse("CREATE NONSENSE T").is_err());
        assert!(parse("SELECT 1 FROM X trailing garbage ,").is_err());
    }

    #[test]
    fn long_generated_query_parses() {
        // A miniature of the paper's 1 + d + d^2 term query.
        let d = 8;
        let mut terms = vec!["sum(1.0)".to_owned()];
        for a in 1..=d {
            terms.push(format!("sum(X{a})"));
        }
        for a in 1..=d {
            for b in 1..=a {
                terms.push(format!("sum(X{a}*X{b})"));
            }
        }
        let sql = format!("SELECT {} FROM X", terms.join(", "));
        let s = sel(&sql);
        assert_eq!(s.projections.len(), 1 + d + d * (d + 1) / 2);
    }
}
