//! Block-at-a-time predicate evaluation with SQL three-valued logic.
//!
//! The row path folds `WHERE` conjuncts through [`BoundExpr::eval`],
//! which implements SQL's three-valued logic: a comparison against
//! NULL is *unknown*, `NOT unknown` is unknown, and `unknown OR true`
//! is true. The block path must reproduce those semantics exactly, so
//! a compiled predicate evaluates to a **pair** of bitmaps per block —
//! `is_true` and `is_false` words — rather than a single boolean mask
//! that would fold unknown into false and break under `NOT`/`OR`.
//! A row whose bit is set in neither map is unknown.
//!
//! Kleene connectives over the word pairs:
//!
//! ```text
//! NOT:  t' = f            f' = t
//! AND:  t' = ta & tb      f' = fa | fb
//! OR:   t' = ta | tb      f' = fa & fb
//! ```
//!
//! The final selection for a conjunction of predicates is the AND of
//! their `is_true` words — exactly the rows the row path keeps.
//! All bitmaps follow the storage convention: LSB-ordered, bits at or
//! beyond the block length always zero.

use nlq_storage::{bitmap_mask_tail, bitmap_words, ColumnBlock, DataType, Row, Value};

use crate::ast::BinOp;
use crate::expr::{BoundExpr, BoundSchema};

/// One side of a compiled comparison.
#[derive(Debug, Clone, Copy)]
enum Operand {
    /// A projected block column (by slot).
    Slot(usize),
    /// A numeric constant, pre-widened to `f64` (matching the row
    /// path, which compares all numerics through [`Value::as_f64`]).
    Num(f64),
    /// A NULL constant: every comparison against it is unknown.
    Null,
}

/// A compiled predicate node, evaluated per block into Kleene
/// (`is_true`, `is_false`) word pairs.
#[derive(Debug)]
enum Node {
    /// `lhs <op> rhs` for a comparison operator.
    Cmp {
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// `col IS [NOT] NULL` — two-valued (never unknown).
    IsNull {
        slot: usize,
        negated: bool,
    },
    Not(Box<Node>),
    And(Box<Node>, Box<Node>),
    Or(Box<Node>, Box<Node>),
}

/// Reusable per-worker scratch for nested predicate evaluation.
#[derive(Default)]
pub(crate) struct PredScratch {
    pool: Vec<(Vec<u64>, Vec<u64>)>,
}

/// A conjunction of compiled predicates plus the evaluation entry
/// point producing a selection bitmap per block.
pub(crate) struct CompiledPredicates {
    preds: Vec<Node>,
}

impl CompiledPredicates {
    /// Number of compiled conjuncts (for EXPLAIN).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Evaluates the conjunction over a block, leaving the selection
    /// (`is_true` of the AND) in `sel`: `bitmap_words(block.len())`
    /// words, bits beyond the block length zero.
    pub fn selection(&self, block: &ColumnBlock, sel: &mut Vec<u64>, scratch: &mut PredScratch) {
        let len = block.len();
        let words = bitmap_words(len);
        sel.clear();
        sel.resize(words, !0u64);
        bitmap_mask_tail(sel, len);
        let (mut t, mut f) = scratch.pool.pop().unwrap_or_default();
        for pred in &self.preds {
            pred.eval(block, &mut t, &mut f, scratch);
            for (s, tw) in sel.iter_mut().zip(&t) {
                *s &= tw;
            }
            if sel.iter().all(|&w| w == 0) {
                break;
            }
        }
        scratch.pool.push((t, f));
    }
}

impl Node {
    /// Evaluates this node over a block into (`is_true`, `is_false`).
    fn eval(&self, block: &ColumnBlock, t: &mut Vec<u64>, f: &mut Vec<u64>, sc: &mut PredScratch) {
        let len = block.len();
        let words = bitmap_words(len);
        match self {
            Node::Cmp { op, lhs, rhs } => {
                t.clear();
                t.resize(words, 0);
                f.clear();
                f.resize(words, 0);
                if matches!(lhs, Operand::Null) || matches!(rhs, Operand::Null) {
                    return; // unknown everywhere
                }
                cmp_eval(*op, *lhs, *rhs, block, t, f);
            }
            Node::IsNull { slot, negated } => {
                // IS NULL is two-valued: true or false, never unknown.
                t.clear();
                t.resize(words, 0);
                f.clear();
                f.resize(words, !0u64);
                bitmap_mask_tail(f, len);
                if let Some(validity) = block.column(*slot).validity() {
                    for ((tw, fw), vw) in t.iter_mut().zip(f.iter_mut()).zip(validity) {
                        *tw = *fw & !vw;
                        *fw &= vw;
                    }
                }
                if *negated {
                    std::mem::swap(t, f);
                }
            }
            Node::Not(inner) => {
                inner.eval(block, t, f, sc);
                std::mem::swap(t, f);
            }
            Node::And(a, b) | Node::Or(a, b) => {
                a.eval(block, t, f, sc);
                let (mut tb, mut fb) = sc.pool.pop().unwrap_or_default();
                b.eval(block, &mut tb, &mut fb, sc);
                let and = matches!(self, Node::And(..));
                for ((tw, fw), (tbw, fbw)) in t.iter_mut().zip(f.iter_mut()).zip(tb.iter().zip(&fb))
                {
                    if and {
                        *tw &= tbw;
                        *fw |= fbw;
                    } else {
                        *tw |= tbw;
                        *fw &= fbw;
                    }
                }
                sc.pool.push((tb, fb));
            }
        }
    }
}

/// Per-row comparison matching [`Value::sql_cmp`] on numeric operands:
/// NULL on either side is unknown, and so is a NaN comparison
/// (`partial_cmp` returns `None`, as `sql_cmp` does).
fn cmp_eval(
    op: BinOp,
    lhs: Operand,
    rhs: Operand,
    block: &ColumnBlock,
    t: &mut [u64],
    f: &mut [u64],
) {
    let fetch = |operand: Operand, i: usize| -> Option<f64> {
        match operand {
            Operand::Num(c) => Some(c),
            Operand::Slot(s) => {
                let col = block.column(s);
                (!col.is_null(i)).then(|| col.values[i])
            }
            Operand::Null => None,
        }
    };
    for i in 0..block.len() {
        let (Some(a), Some(b)) = (fetch(lhs, i), fetch(rhs, i)) else {
            continue;
        };
        let Some(ord) = a.partial_cmp(&b) else {
            continue;
        };
        let hit = match op {
            BinOp::Eq => ord == std::cmp::Ordering::Equal,
            BinOp::NotEq => ord != std::cmp::Ordering::Equal,
            BinOp::Lt => ord == std::cmp::Ordering::Less,
            BinOp::LtEq => ord != std::cmp::Ordering::Greater,
            BinOp::Gt => ord == std::cmp::Ordering::Greater,
            BinOp::GtEq => ord != std::cmp::Ordering::Less,
            _ => unreachable!("only comparison operators are compiled"),
        };
        let (word, bit) = (i >> 6, 1u64 << (i & 63));
        if hit {
            t[word] |= bit;
        } else {
            f[word] |= bit;
        }
    }
}

/// Compiles residual `WHERE` conjuncts into block predicates, or
/// `None` when any conjunct falls outside the compilable subset
/// (numeric comparisons, `IS [NOT] NULL` on numeric base columns, and
/// `NOT`/`AND`/`OR` over those). Referenced base columns are appended
/// to `cols` as projection slots (deduplicated); when `int_slots` is
/// given it stays index-aligned with `cols`. `suffix` supplies values
/// for joined-table column references (the scalar scoring pattern's
/// single join combination); with `None` such references are
/// uncompilable.
pub(crate) fn compile_residual(
    residual: &[BoundExpr],
    schema: &BoundSchema,
    base_width: usize,
    suffix: Option<&Row>,
    cols: &mut Vec<usize>,
    mut int_slots: Option<&mut Vec<bool>>,
) -> Option<CompiledPredicates> {
    let mut preds = Vec::with_capacity(residual.len());
    for pred in residual {
        preds.push(compile_node(
            pred,
            schema,
            base_width,
            suffix,
            cols,
            &mut int_slots,
        )?);
    }
    Some(CompiledPredicates { preds })
}

/// Allocates (or reuses) the projection slot for a numeric base
/// column.
fn slot_for(
    col: usize,
    schema: &BoundSchema,
    cols: &mut Vec<usize>,
    int_slots: &mut Option<&mut Vec<bool>>,
) -> Option<usize> {
    let ty = schema.column_type(col);
    if ty != DataType::Float && ty != DataType::Int {
        return None;
    }
    if let Some(slot) = cols.iter().position(|&c| c == col) {
        return Some(slot);
    }
    cols.push(col);
    if let Some(ints) = int_slots {
        ints.push(ty == DataType::Int);
    }
    Some(cols.len() - 1)
}

/// Compiles one operand: a numeric base column, a numeric or NULL
/// literal (optionally negated), or a joined-table constant.
fn compile_operand(
    e: &BoundExpr,
    schema: &BoundSchema,
    base_width: usize,
    suffix: Option<&Row>,
    cols: &mut Vec<usize>,
    int_slots: &mut Option<&mut Vec<bool>>,
) -> Option<Operand> {
    let from_value = |v: &Value| match v {
        Value::Null => Some(Operand::Null),
        other => other.as_f64().map(Operand::Num),
    };
    match e {
        BoundExpr::Literal(v) => from_value(v),
        BoundExpr::Neg(inner) => {
            match compile_operand(inner, schema, base_width, suffix, cols, int_slots)? {
                Operand::Num(c) => Some(Operand::Num(-c)),
                Operand::Null => Some(Operand::Null),
                Operand::Slot(_) => None,
            }
        }
        BoundExpr::ColumnRef(i) if *i < base_width => {
            slot_for(*i, schema, cols, int_slots).map(Operand::Slot)
        }
        BoundExpr::ColumnRef(i) => from_value(suffix?.get(*i - base_width)?),
        _ => None,
    }
}

/// Compiles one predicate node.
fn compile_node(
    e: &BoundExpr,
    schema: &BoundSchema,
    base_width: usize,
    suffix: Option<&Row>,
    cols: &mut Vec<usize>,
    int_slots: &mut Option<&mut Vec<bool>>,
) -> Option<Node> {
    match e {
        BoundExpr::Not(inner) => Some(Node::Not(Box::new(compile_node(
            inner, schema, base_width, suffix, cols, int_slots,
        )?))),
        BoundExpr::IsNull { expr, negated } => match expr.as_ref() {
            BoundExpr::ColumnRef(i) if *i < base_width => Some(Node::IsNull {
                slot: slot_for(*i, schema, cols, int_slots)?,
                negated: *negated,
            }),
            _ => None,
        },
        BoundExpr::Binary { op, lhs, rhs } => match op {
            BinOp::And | BinOp::Or => {
                let a = compile_node(lhs, schema, base_width, suffix, cols, int_slots)?;
                let b = compile_node(rhs, schema, base_width, suffix, cols, int_slots)?;
                Some(if matches!(op, BinOp::And) {
                    Node::And(Box::new(a), Box::new(b))
                } else {
                    Node::Or(Box::new(a), Box::new(b))
                })
            }
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                let a = compile_operand(lhs, schema, base_width, suffix, cols, int_slots)?;
                let b = compile_operand(rhs, schema, base_width, suffix, cols, int_slots)?;
                Some(Node::Cmp {
                    op: *op,
                    lhs: a,
                    rhs: b,
                })
            }
            _ => None,
        },
        _ => None,
    }
}
