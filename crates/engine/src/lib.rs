#![warn(missing_docs)]

//! A SQL-subset query engine over partitioned parallel storage.
//!
//! This crate stands in for the Teradata SQL engine the paper runs
//! against. It deliberately reproduces the two cost characteristics
//! the paper's evaluation hinges on:
//!
//! * **Long statements are parsed**: the paper's pure-SQL path
//!   computes `n, L, Q` with a single query of `1 + d + d²` aggregate
//!   terms, and Figure 1 shows its "overhead for parsing and
//!   evaluating long SELECT statements". Our engine parses SQL text
//!   for real, so that overhead exists for real.
//! * **SQL arithmetic is interpreted at run-time, whereas UDF
//!   arithmetic is compiled** (§3.5). Expressions here run through an
//!   AST-walking interpreter per row; UDF bodies are compiled Rust.
//!
//! Supported SQL: `SELECT` expression lists with arithmetic, `CASE`,
//! scalar functions and UDFs; aggregates (`sum/count/avg/min/max`, the
//! two-dimensional statistical builtins `corr/covar_pop/variance/
//! stddev/regr_slope/regr_intercept` the paper contrasts with, and
//! aggregate UDFs) with `GROUP BY`, `HAVING`, `ORDER BY`, and `LIMIT`;
//! `WHERE` with join-time predicate pushdown; `CROSS JOIN` with
//! aliasing (the paper's scoring pattern); `EXPLAIN`; `CREATE TABLE`,
//! `CREATE TABLE AS`, `CREATE VIEW`, `INSERT INTO ... VALUES`,
//! `INSERT INTO ... SELECT`, and `DROP`.
//!
//! The [`Db`] facade owns the catalog, worker pool, and UDF registry,
//! and provides the high-level operations of the paper: computing
//! summary matrices via SQL or via the aggregate UDF ([`Db::compute_nlq`],
//! `compute_nlq_with`, blocked and grouped variants) and scoring
//! data sets with scalar UDFs or generated SQL ([`sqlgen`]).

mod ast;
mod catalog;
mod db;
mod error;
mod exec;
mod expr;
mod parser;
mod predicate;
pub mod serve;
pub mod sqlgen;
pub mod sys;
mod token;

pub use ast::{Expr, OrderKey, Projection, SelectStmt, Statement, TableRef};
pub use db::{
    explain_analyze_footer, load_checkpoint, phase_spans, statement_is_logged, Db, ExecOptions,
    ExecStats, NlqMethod, PlanCacheStats, RecoveryInfo, ResultSet, ShardMetricsSnapshot, SqlEngine,
    SummaryRefreshState,
};
pub use error::EngineError;
pub use exec::{result_to_table, AggPartial};
pub use parser::parse;
pub use serve::MAX_SCORE_KEYS;
pub use sys::{SystemTableProvider, SYS_PREFIX};

/// Convenience result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
