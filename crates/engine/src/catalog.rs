use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use nlq_storage::Table;

use crate::ast::SelectStmt;
use crate::{EngineError, Result};

/// A named object in the database.
#[derive(Clone)]
pub(crate) enum CatalogEntry {
    /// A materialized table.
    Table(Arc<Table>),
    /// A view: the defining query, executed on access (§3.6's
    /// "dynamically computed on-demand" alternative).
    View(Arc<SelectStmt>),
}

/// The table/view catalog. Names are case-insensitive.
#[derive(Default)]
pub(crate) struct Catalog {
    map: RwLock<HashMap<String, CatalogEntry>>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    pub fn get(&self, name: &str) -> Option<CatalogEntry> {
        self.map
            .read()
            .expect("catalog lock")
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    pub fn contains(&self, name: &str) -> bool {
        self.map
            .read()
            .expect("catalog lock")
            .contains_key(&name.to_ascii_lowercase())
    }

    /// Registers a new entry; errors if the name is taken.
    pub fn insert(&self, name: &str, entry: CatalogEntry) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut map = self.map.write().expect("catalog lock");
        if map.contains_key(&key) {
            return Err(EngineError::DuplicateTable(name.to_owned()));
        }
        map.insert(key, entry);
        Ok(())
    }

    /// Registers or replaces an entry.
    pub fn insert_or_replace(&self, name: &str, entry: CatalogEntry) {
        self.map
            .write()
            .expect("catalog lock")
            .insert(name.to_ascii_lowercase(), entry);
    }

    /// Removes an entry; errors if absent.
    pub fn remove(&self, name: &str) -> Result<()> {
        if self
            .map
            .write()
            .expect("catalog lock")
            .remove(&name.to_ascii_lowercase())
            .is_none()
        {
            return Err(EngineError::UnknownTable(name.to_owned()));
        }
        Ok(())
    }

    /// Every entry, name-sorted (checkpoint snapshots iterate this for
    /// a deterministic manifest).
    pub fn entries(&self) -> Vec<(String, CatalogEntry)> {
        let map = self.map.read().expect("catalog lock");
        let mut out: Vec<(String, CatalogEntry)> =
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Replaces a table in place (used by INSERT).
    pub fn replace_table(&self, name: &str, table: Arc<Table>) {
        self.map
            .write()
            .expect("catalog lock")
            .insert(name.to_ascii_lowercase(), CatalogEntry::Table(table));
    }
}
