use crate::{EngineError, Result};

/// A lexical token with its byte position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TokenKind {
    /// Identifier or keyword (uppercased for keyword matching happens
    /// in the parser; original case preserved here).
    Ident(String),
    /// Numeric literal (integer or float).
    Number(String),
    /// Single-quoted string literal (quotes stripped, '' unescaped).
    StringLit(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
    Eof,
}

/// Tokenizes SQL text.
///
/// This is a real lexer doing real per-character work, which is what
/// makes the paper's "long SELECT statement" parsing overhead show up
/// authentically in the SQL-vs-UDF benchmarks.
pub(crate) fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    pos,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    pos,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    pos,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    pos,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    pos,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    pos,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    pos,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    pos,
                });
                i += 1;
            }
            '%' => {
                tokens.push(Token {
                    kind: TokenKind::Percent,
                    pos,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    pos,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    pos,
                });
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::LtEq,
                        pos,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        pos,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        pos,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::GtEq,
                        pos,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        pos,
                    });
                    i += 1;
                }
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token {
                    kind: TokenKind::NotEq,
                    pos,
                });
                i += 2;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(EngineError::Parse {
                            message: "unterminated string literal".into(),
                            position: pos,
                        });
                    }
                    if bytes[i] == b'\'' {
                        // '' escapes a quote.
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::StringLit(s),
                    pos,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                // Exponent part.
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number(sql[start..i].to_owned()),
                    pos,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(sql[start..i].to_owned()),
                    pos,
                });
            }
            other => {
                return Err(EngineError::Parse {
                    message: format!("unexpected character {other:?}"),
                    position: pos,
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        pos: bytes.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select_tokens() {
        let k = kinds("SELECT sum(X1) FROM X;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("sum".into()),
                TokenKind::LParen,
                TokenKind::Ident("X1".into()),
                TokenKind::RParen,
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("X".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_operators() {
        let k = kinds("1 + 2.5 * 3e2 / 4 % 5 - 1.5e-3");
        assert!(matches!(&k[0], TokenKind::Number(n) if n == "1"));
        assert!(matches!(&k[2], TokenKind::Number(n) if n == "2.5"));
        assert!(matches!(&k[4], TokenKind::Number(n) if n == "3e2"));
        assert!(matches!(&k[10], TokenKind::Number(n) if n == "1.5e-3"));
    }

    #[test]
    fn string_literals_with_escapes() {
        let k = kinds("'hello' 'it''s'");
        assert_eq!(k[0], TokenKind::StringLit("hello".into()));
        assert_eq!(k[1], TokenKind::StringLit("it's".into()));
    }

    #[test]
    fn comparison_operators() {
        let k = kinds("= <> != < <= > >=");
        assert_eq!(
            k[..7],
            [
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("SELECT 1 -- trailing comment\n, 2");
        assert_eq!(k.len(), 5); // SELECT 1 , 2 EOF
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(
            tokenize("SELECT 'oops"),
            Err(EngineError::Parse { .. })
        ));
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(matches!(
            tokenize("SELECT @"),
            Err(EngineError::Parse { .. })
        ));
    }
}
