use std::cmp::Ordering;
use std::sync::Arc;

use nlq_storage::{DataType, Value};
use nlq_udf::{AggregateUdf, ScalarUdf, UdfRegistry};

use crate::ast::{BinOp, Expr};
use crate::{EngineError, Result};

/// The combined (possibly join-product) schema expressions are bound
/// against: one entry per output column, with the optional table alias
/// it came from.
#[derive(Debug, Clone, Default)]
pub(crate) struct BoundSchema {
    /// `(alias_lower, name_lower, type)` per column.
    entries: Vec<(Option<String>, String, DataType)>,
}

impl BoundSchema {
    pub fn new() -> Self {
        BoundSchema::default()
    }

    /// Appends one table's columns under an optional alias.
    pub fn push_table(&mut self, alias: Option<&str>, schema: &nlq_storage::Schema) {
        let alias = alias.map(str::to_ascii_lowercase);
        for col in schema.columns() {
            self.entries
                .push((alias.clone(), col.name.to_ascii_lowercase(), col.ty));
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Resolves a column reference to its index; ambiguous bare names
    /// and unknown names are errors.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let name_l = name.to_ascii_lowercase();
        let table_l = table.map(str::to_ascii_lowercase);
        let mut found = None;
        for (i, (alias, col, _)) in self.entries.iter().enumerate() {
            let table_matches = match &table_l {
                Some(t) => alias.as_deref() == Some(t.as_str()),
                None => true,
            };
            if table_matches && *col == name_l {
                if found.is_some() {
                    return Err(EngineError::UnknownColumn(format!(
                        "{name} is ambiguous; qualify it with a table alias"
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            EngineError::UnknownColumn(match table {
                Some(t) => format!("{t}.{name}"),
                None => name.to_owned(),
            })
        })
    }

    /// Column name at an index (lower case, unqualified).
    pub fn column_name(&self, idx: usize) -> &str {
        &self.entries[idx].1
    }

    /// Column type at an index.
    pub fn column_type(&self, idx: usize) -> DataType {
        self.entries[idx].2
    }
}

/// Builtin scalar functions evaluated by the engine itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScalarFunc {
    Sqrt,
    Abs,
    Power,
    Ln,
    Exp,
    Floor,
    Ceil,
    Least,
    Greatest,
    Mod,
    /// `pack(v1, ..., vd)`: formats all arguments into one
    /// comma-separated string — the client-side half of the paper's
    /// string parameter-passing style (per-row float→text cost).
    Pack,
}

impl ScalarFunc {
    fn parse(name: &str) -> Option<Self> {
        Some(match name.to_ascii_lowercase().as_str() {
            "sqrt" => ScalarFunc::Sqrt,
            "abs" => ScalarFunc::Abs,
            "power" | "pow" => ScalarFunc::Power,
            "ln" | "log" => ScalarFunc::Ln,
            "exp" => ScalarFunc::Exp,
            "floor" => ScalarFunc::Floor,
            "ceil" | "ceiling" => ScalarFunc::Ceil,
            "least" => ScalarFunc::Least,
            "greatest" => ScalarFunc::Greatest,
            "mod" => ScalarFunc::Mod,
            "pack" => ScalarFunc::Pack,
            _ => return None,
        })
    }
}

/// The two-dimensional statistical builtins Teradata SQL ships (§5 of
/// the paper: "provides advanced aggregate functions to compute linear
/// regression and correlation, but it only does it for two
/// dimensions" — the limitation the d-dimensional UDF removes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StatAgg {
    /// `var_pop(x)`: population variance.
    VarPop,
    /// `var_samp(x)` / `variance(x)`: sample variance.
    VarSamp,
    /// `stddev(x)` / `stddev_samp(x)`: sample standard deviation.
    StdDev,
    /// `covar_pop(x, y)`: population covariance.
    CovarPop,
    /// `corr(x, y)`: Pearson correlation coefficient.
    Corr,
    /// `regr_slope(y, x)`: OLS slope of y on x.
    RegrSlope,
    /// `regr_intercept(y, x)`: OLS intercept of y on x.
    RegrIntercept,
}

impl StatAgg {
    fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "var_pop" => StatAgg::VarPop,
            "var_samp" | "variance" => StatAgg::VarSamp,
            "stddev" | "stddev_samp" => StatAgg::StdDev,
            "covar_pop" => StatAgg::CovarPop,
            "corr" => StatAgg::Corr,
            "regr_slope" => StatAgg::RegrSlope,
            "regr_intercept" => StatAgg::RegrIntercept,
            _ => return None,
        })
    }

    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            StatAgg::VarPop | StatAgg::VarSamp | StatAgg::StdDev => 1,
            _ => 2,
        }
    }
}

/// Builtin aggregate kinds (plus registered aggregate UDFs).
#[derive(Clone)]
pub(crate) enum AggKind {
    Sum,
    Count,
    CountStar,
    Avg,
    Min,
    Max,
    /// Two-dimensional statistical builtin.
    Stat(StatAgg),
    Udf(Arc<dyn AggregateUdf>),
}

const STAT_NAMES: &[&str] = &[
    "var_pop",
    "var_samp",
    "variance",
    "stddev",
    "stddev_samp",
    "covar_pop",
    "corr",
    "regr_slope",
    "regr_intercept",
];

impl AggKind {
    fn parse(name: &str, registry: &UdfRegistry) -> Option<Self> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "sum" => Some(AggKind::Sum),
            "count" => Some(AggKind::Count), // CountStar decided by args
            "avg" => Some(AggKind::Avg),
            "min" => Some(AggKind::Min),
            "max" => Some(AggKind::Max),
            other => match StatAgg::parse(other) {
                Some(stat) => Some(AggKind::Stat(stat)),
                None => registry.aggregate(name).cloned().map(AggKind::Udf),
            },
        }
    }

    /// Whether `name` names any aggregate (builtin or UDF).
    pub fn is_aggregate_name(name: &str, registry: &UdfRegistry) -> bool {
        let lower = name.to_ascii_lowercase();
        matches!(lower.as_str(), "sum" | "count" | "avg" | "min" | "max")
            || STAT_NAMES.contains(&lower.as_str())
            || registry.aggregate(name).is_some()
    }
}

/// One aggregate call site extracted from the projection list.
pub(crate) struct AggCall {
    pub kind: AggKind,
    /// Per-row argument expressions (empty for `count(*)`).
    pub args: Vec<BoundExpr>,
}

/// Pre-recognized shapes of single-argument aggregate inputs, letting
/// the executor skip full interpretation for the overwhelmingly common
/// terms of the paper's generated queries (`sum(Xa)`, `sum(Xa*Xb)`,
/// `sum(1.0)`). Real engines compile simple aggregation pipelines the
/// same way; the general interpreter remains the fallback.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FastArg {
    /// Argument is a bare column.
    Col(usize),
    /// Argument is a product of two columns.
    ColProduct(usize, usize),
    /// Argument is a constant.
    Const(f64),
}

impl FastArg {
    /// Recognizes a fast shape, if any.
    pub fn recognize(e: &BoundExpr) -> Option<FastArg> {
        match e {
            BoundExpr::ColumnRef(i) => Some(FastArg::Col(*i)),
            BoundExpr::Literal(v) => v.as_f64().map(FastArg::Const),
            BoundExpr::Binary {
                op: BinOp::Mul,
                lhs,
                rhs,
            } => match (lhs.as_ref(), rhs.as_ref()) {
                (BoundExpr::ColumnRef(a), BoundExpr::ColumnRef(b)) => {
                    Some(FastArg::ColProduct(*a, *b))
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// Evaluates the fast shape to a float (`None` = SQL NULL or
    /// non-numeric, which the caller treats as a skipped value).
    #[inline]
    pub fn eval_f64(&self, row: &[Value]) -> Option<f64> {
        match self {
            FastArg::Col(i) => row[*i].as_f64(),
            FastArg::ColProduct(a, b) => Some(row[*a].as_f64()? * row[*b].as_f64()?),
            FastArg::Const(c) => Some(*c),
        }
    }
}

/// An expression bound to column indexes, ready for per-row
/// interpretation. This *is* the paper's "SQL arithmetic expressions
/// are interpreted at run-time": every row walks this tree.
pub(crate) enum BoundExpr {
    Literal(Value),
    ColumnRef(usize),
    Neg(Box<BoundExpr>),
    Not(Box<BoundExpr>),
    Binary {
        op: BinOp,
        lhs: Box<BoundExpr>,
        rhs: Box<BoundExpr>,
    },
    Func {
        func: ScalarFunc,
        args: Vec<BoundExpr>,
    },
    ScalarUdf {
        udf: Arc<dyn ScalarUdf>,
        args: Vec<BoundExpr>,
    },
    Case {
        branches: Vec<(BoundExpr, BoundExpr)>,
        else_expr: Option<Box<BoundExpr>>,
    },
    IsNull {
        expr: Box<BoundExpr>,
        negated: bool,
    },
    /// Value of the i-th extracted aggregate (aggregate queries only,
    /// evaluated after accumulation).
    AggRef(usize),
    /// Value of the i-th GROUP BY expression for the current group.
    GroupRef(usize),
}

/// Binds AST expressions against a schema, optionally extracting
/// aggregate calls (aggregate-query mode).
pub(crate) struct Binder<'a> {
    pub schema: &'a BoundSchema,
    pub registry: &'a UdfRegistry,
    /// Group-by expressions (AST form) for matching projections.
    pub group_exprs: &'a [Expr],
    /// Extracted aggregate calls; `None` disables aggregate mode.
    pub aggs: Option<&'a mut Vec<AggCall>>,
}

impl<'a> Binder<'a> {
    /// Binds in scalar mode (aggregates are an error).
    pub fn scalar(schema: &'a BoundSchema, registry: &'a UdfRegistry) -> Self {
        Binder {
            schema,
            registry,
            group_exprs: &[],
            aggs: None,
        }
    }

    pub fn bind(&mut self, expr: &Expr) -> Result<BoundExpr> {
        // In aggregate mode, a projection subtree that syntactically
        // matches a GROUP BY expression binds to the group key.
        if self.aggs.is_some() {
            for (i, g) in self.group_exprs.iter().enumerate() {
                if g == expr {
                    return Ok(BoundExpr::GroupRef(i));
                }
            }
        }
        match expr {
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::Column { table, name } => {
                let idx = self.schema.resolve(table.as_deref(), name)?;
                if self.aggs.is_some() {
                    return Err(EngineError::Unsupported(format!(
                        "column {name} must appear in GROUP BY or inside an aggregate"
                    )));
                }
                Ok(BoundExpr::ColumnRef(idx))
            }
            Expr::Wildcard => Err(EngineError::Unsupported(
                "* is only valid as a whole projection or in count(*)".into(),
            )),
            Expr::Neg(e) => Ok(BoundExpr::Neg(Box::new(self.bind(e)?))),
            Expr::Not(e) => Ok(BoundExpr::Not(Box::new(self.bind(e)?))),
            Expr::Binary { op, lhs, rhs } => Ok(BoundExpr::Binary {
                op: *op,
                lhs: Box::new(self.bind(lhs)?),
                rhs: Box::new(self.bind(rhs)?),
            }),
            Expr::Call { name, args } => self.bind_call(name, args),
            Expr::Case {
                branches,
                else_expr,
            } => {
                let branches = branches
                    .iter()
                    .map(|(c, v)| Ok((self.bind(c)?, self.bind(v)?)))
                    .collect::<Result<Vec<_>>>()?;
                let else_expr = match else_expr {
                    Some(e) => Some(Box::new(self.bind(e)?)),
                    None => None,
                };
                Ok(BoundExpr::Case {
                    branches,
                    else_expr,
                })
            }
            Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                expr: Box::new(self.bind(expr)?),
                negated: *negated,
            }),
        }
    }

    fn bind_call(&mut self, name: &str, args: &[Expr]) -> Result<BoundExpr> {
        // Aggregate?
        if AggKind::is_aggregate_name(name, self.registry) {
            let Some(aggs) = self.aggs.as_deref_mut() else {
                return Err(EngineError::Unsupported(format!(
                    "aggregate {name} is not allowed here"
                )));
            };
            let mut kind = AggKind::parse(name, self.registry)
                .ok_or_else(|| EngineError::UnknownFunction(name.to_owned()))?;
            // count(*) special case.
            let bound_args =
                if matches!(kind, AggKind::Count) && args.len() == 1 && args[0] == Expr::Wildcard {
                    kind = AggKind::CountStar;
                    Vec::new()
                } else {
                    // Aggregate arguments are per-row scalar expressions;
                    // nested aggregates are invalid.
                    let mut inner = Binder {
                        schema: self.schema,
                        registry: self.registry,
                        group_exprs: &[],
                        aggs: None,
                    };
                    args.iter()
                        .map(|a| inner.bind(a))
                        .collect::<Result<Vec<_>>>()?
                };
            let idx = aggs.len();
            aggs.push(AggCall {
                kind,
                args: bound_args,
            });
            return Ok(BoundExpr::AggRef(idx));
        }
        // Scalar UDF?
        if let Some(udf) = self.registry.scalar(name) {
            let args = args
                .iter()
                .map(|a| self.bind(a))
                .collect::<Result<Vec<_>>>()?;
            return Ok(BoundExpr::ScalarUdf {
                udf: Arc::clone(udf),
                args,
            });
        }
        // Builtin scalar function?
        if let Some(func) = ScalarFunc::parse(name) {
            let args = args
                .iter()
                .map(|a| self.bind(a))
                .collect::<Result<Vec<_>>>()?;
            return Ok(BoundExpr::Func { func, args });
        }
        Err(EngineError::UnknownFunction(name.to_owned()))
    }
}

/// SQL three-valued truthiness: numbers are true iff nonzero; NULL is
/// unknown.
fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(*i != 0),
        Value::Float(f) => Some(*f != 0.0),
        Value::Str(_) => None,
    }
}

impl BoundExpr {
    /// Collects every column index referenced by this expression
    /// (used by the executor to classify WHERE conjuncts for join
    /// pushdown).
    pub fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            BoundExpr::Literal(_) | BoundExpr::AggRef(_) | BoundExpr::GroupRef(_) => {}
            BoundExpr::ColumnRef(i) => out.push(*i),
            BoundExpr::Neg(e) | BoundExpr::Not(e) => e.collect_columns(out),
            BoundExpr::Binary { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            BoundExpr::Func { args, .. } | BoundExpr::ScalarUdf { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            BoundExpr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    c.collect_columns(out);
                    v.collect_columns(out);
                }
                if let Some(e) = else_expr {
                    e.collect_columns(out);
                }
            }
            BoundExpr::IsNull { expr, .. } => expr.collect_columns(out),
        }
    }

    /// Evaluates against one (joined) row; `aggs` and `group` supply
    /// aggregate results and group-key values in aggregate queries.
    pub fn eval(&self, row: &[Value], aggs: &[Value], group: &[Value]) -> Result<Value> {
        match self {
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::ColumnRef(i) => Ok(row[*i].clone()),
            BoundExpr::AggRef(i) => Ok(aggs[*i].clone()),
            BoundExpr::GroupRef(i) => Ok(group[*i].clone()),
            BoundExpr::Neg(e) => match e.eval(row, aggs, group)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                Value::Str(_) => Err(EngineError::Type("cannot negate a string".into())),
            },
            BoundExpr::Not(e) => Ok(match truth(&e.eval(row, aggs, group)?) {
                None => Value::Null,
                Some(b) => Value::Int(i64::from(!b)),
            }),
            BoundExpr::Binary { op, lhs, rhs } => eval_binary(
                *op,
                lhs.eval(row, aggs, group)?,
                rhs.eval(row, aggs, group)?,
            ),
            BoundExpr::Func { func, args } => {
                let vals = args
                    .iter()
                    .map(|a| a.eval(row, aggs, group))
                    .collect::<Result<Vec<_>>>()?;
                eval_func(*func, &vals)
            }
            BoundExpr::ScalarUdf { udf, args } => {
                let vals = args
                    .iter()
                    .map(|a| a.eval(row, aggs, group))
                    .collect::<Result<Vec<_>>>()?;
                Ok(udf.eval(&vals)?)
            }
            BoundExpr::Case {
                branches,
                else_expr,
            } => {
                for (cond, val) in branches {
                    if truth(&cond.eval(row, aggs, group)?) == Some(true) {
                        return val.eval(row, aggs, group);
                    }
                }
                match else_expr {
                    Some(e) => e.eval(row, aggs, group),
                    None => Ok(Value::Null),
                }
            }
            BoundExpr::IsNull { expr, negated } => {
                let is_null = expr.eval(row, aggs, group)?.is_null();
                Ok(Value::Int(i64::from(is_null != *negated)))
            }
        }
    }
}

fn eval_binary(op: BinOp, lhs: Value, rhs: Value) -> Result<Value> {
    use BinOp::*;
    match op {
        And => {
            // Three-valued AND: false dominates NULL.
            return Ok(match (truth(&lhs), truth(&rhs)) {
                (Some(false), _) | (_, Some(false)) => Value::Int(0),
                (Some(true), Some(true)) => Value::Int(1),
                _ => Value::Null,
            });
        }
        Or => {
            return Ok(match (truth(&lhs), truth(&rhs)) {
                (Some(true), _) | (_, Some(true)) => Value::Int(1),
                (Some(false), Some(false)) => Value::Int(0),
                _ => Value::Null,
            });
        }
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let Some(ord) = lhs.sql_cmp(&rhs) else {
                return Ok(Value::Null);
            };
            let b = match op {
                Eq => ord == Ordering::Equal,
                NotEq => ord != Ordering::Equal,
                Lt => ord == Ordering::Less,
                LtEq => ord != Ordering::Greater,
                Gt => ord == Ordering::Greater,
                GtEq => ord != Ordering::Less,
                _ => unreachable!(),
            };
            return Ok(Value::Int(i64::from(b)));
        }
        _ => {}
    }
    // Arithmetic: NULL propagates; Int op Int stays Int (except /).
    if lhs.is_null() || rhs.is_null() {
        return Ok(Value::Null);
    }
    match (&lhs, &rhs) {
        (Value::Int(a), Value::Int(b)) => match op {
            BinOp::Add => Ok(Value::Int(a.wrapping_add(*b))),
            BinOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            BinOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            BinOp::Div => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Float(*a as f64 / *b as f64))
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(a.rem_euclid(*b)))
                }
            }
            _ => unreachable!("logical ops handled above"),
        },
        _ => {
            let (Some(a), Some(b)) = (lhs.as_f64(), rhs.as_f64()) else {
                return Err(EngineError::Type(format!(
                    "cannot apply arithmetic to {lhs:?} and {rhs:?}"
                )));
            };
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a.rem_euclid(b)
                }
                _ => unreachable!("logical ops handled above"),
            };
            Ok(Value::Float(v))
        }
    }
}

fn eval_func(func: ScalarFunc, vals: &[Value]) -> Result<Value> {
    let arity_err = |expected: &str| {
        Err(EngineError::Type(format!(
            "{func:?} expects {expected} arguments, got {}",
            vals.len()
        )))
    };
    let unary = |f: fn(f64) -> f64| -> Result<Value> {
        match vals {
            [v] => match v.as_f64() {
                Some(x) => Ok(Value::Float(f(x))),
                None if v.is_null() => Ok(Value::Null),
                None => Err(EngineError::Type("expected a numeric argument".into())),
            },
            _ => Err(EngineError::Type("expected exactly 1 argument".into())),
        }
    };
    match func {
        ScalarFunc::Sqrt => unary(f64::sqrt),
        ScalarFunc::Abs => match vals {
            [Value::Int(i)] => Ok(Value::Int(i.abs())),
            _ => unary(f64::abs),
        },
        ScalarFunc::Ln => unary(f64::ln),
        ScalarFunc::Exp => unary(f64::exp),
        ScalarFunc::Floor => unary(f64::floor),
        ScalarFunc::Ceil => unary(f64::ceil),
        ScalarFunc::Power => match vals {
            [a, b] => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Ok(Value::Float(x.powf(y))),
                _ if a.is_null() || b.is_null() => Ok(Value::Null),
                _ => Err(EngineError::Type("power expects numeric arguments".into())),
            },
            _ => arity_err("2"),
        },
        ScalarFunc::Mod => match vals {
            [a, b] => eval_binary(BinOp::Mod, a.clone(), b.clone()),
            _ => arity_err("2"),
        },
        ScalarFunc::Least | ScalarFunc::Greatest => {
            if vals.is_empty() {
                return arity_err(">= 1");
            }
            let mut best: Option<&Value> = None;
            for v in vals {
                if v.is_null() {
                    return Ok(Value::Null);
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = v.sql_cmp(b).ok_or_else(|| {
                            EngineError::Type("least/greatest on mixed types".into())
                        })?;
                        let take = if func == ScalarFunc::Least {
                            ord == Ordering::Less
                        } else {
                            ord == Ordering::Greater
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.expect("nonempty").clone())
        }
        ScalarFunc::Pack => {
            // Per-row float -> text formatting, the string-style cost.
            let mut floats = Vec::with_capacity(vals.len());
            for v in vals {
                match v.as_f64() {
                    Some(x) => floats.push(x),
                    None if v.is_null() => return Ok(Value::Null),
                    None => return Err(EngineError::Type("pack expects numeric arguments".into())),
                }
            }
            Ok(Value::Str(nlq_udf::pack::pack_vector(&floats)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlq_storage::{Column, Schema};

    fn schema() -> BoundSchema {
        let mut s = BoundSchema::new();
        s.push_table(
            Some("a"),
            &Schema::new(vec![
                Column::new("x", DataType::Float),
                Column::new("y", DataType::Int),
            ]),
        );
        s.push_table(
            Some("b"),
            &Schema::new(vec![Column::new("x", DataType::Float)]),
        );
        s
    }

    fn bind_scalar(expr: &Expr) -> Result<BoundExpr> {
        let schema = schema();
        let registry = UdfRegistry::with_builtins();
        // Leak-free: bind within this call.
        let mut binder = Binder::scalar(&schema, &registry);
        binder.bind(expr)
    }

    fn eval(expr: &Expr, row: &[Value]) -> Value {
        bind_scalar(expr).unwrap().eval(row, &[], &[]).unwrap()
    }

    #[test]
    fn resolve_qualified_and_ambiguous() {
        let s = schema();
        assert_eq!(s.resolve(Some("a"), "x").unwrap(), 0);
        assert_eq!(s.resolve(Some("b"), "X").unwrap(), 2);
        assert_eq!(s.resolve(None, "y").unwrap(), 1);
        assert!(matches!(
            s.resolve(None, "x"),
            Err(EngineError::UnknownColumn(_))
        ));
        assert!(matches!(
            s.resolve(None, "zz"),
            Err(EngineError::UnknownColumn(_))
        ));
    }

    #[test]
    fn arithmetic_typing() {
        let row = vec![Value::Float(2.5), Value::Int(3), Value::Float(0.0)];
        let e = crate::parse("SELECT y * 2 + 1 FROM t").ok(); // not used; build by hand
        drop(e);
        let expr = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::col("y")),
            rhs: Box::new(Expr::Literal(Value::Int(2))),
        };
        assert_eq!(eval(&expr, &row), Value::Int(6));

        let expr = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::Literal(Value::Int(7))),
            rhs: Box::new(Expr::Literal(Value::Int(2))),
        };
        assert_eq!(eval(&expr, &row), Value::Float(3.5));
    }

    #[test]
    fn null_propagation_and_division_by_zero() {
        let row = vec![Value::Null, Value::Int(3), Value::Float(1.0)];
        let expr = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Column {
                table: Some("a".into()),
                name: "x".into(),
            }),
            rhs: Box::new(Expr::Literal(Value::Int(1))),
        };
        assert_eq!(eval(&expr, &row), Value::Null);

        let expr = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::Literal(Value::Int(1))),
            rhs: Box::new(Expr::Literal(Value::Int(0))),
        };
        assert_eq!(eval(&expr, &row), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        let row = vec![Value::Null, Value::Int(1), Value::Float(1.0)];
        let null = Expr::Column {
            table: Some("a".into()),
            name: "x".into(),
        };
        let true_ = Expr::Literal(Value::Int(1));
        let false_ = Expr::Literal(Value::Int(0));
        let and = |l: &Expr, r: &Expr| Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(l.clone()),
            rhs: Box::new(r.clone()),
        };
        let or = |l: &Expr, r: &Expr| Expr::Binary {
            op: BinOp::Or,
            lhs: Box::new(l.clone()),
            rhs: Box::new(r.clone()),
        };
        assert_eq!(eval(&and(&false_, &null), &row), Value::Int(0));
        assert_eq!(eval(&and(&true_, &null), &row), Value::Null);
        assert_eq!(eval(&or(&true_, &null), &row), Value::Int(1));
        assert_eq!(eval(&or(&false_, &null), &row), Value::Null);
        assert_eq!(eval(&Expr::Not(Box::new(null)), &row), Value::Null);
    }

    #[test]
    fn comparisons_and_is_null() {
        let row = vec![Value::Float(2.0), Value::Int(3), Value::Float(9.0)];
        let cmp = Expr::Binary {
            op: BinOp::LtEq,
            lhs: Box::new(Expr::Column {
                table: Some("a".into()),
                name: "x".into(),
            }),
            rhs: Box::new(Expr::col("y")),
        };
        assert_eq!(eval(&cmp, &row), Value::Int(1));

        let isnull = Expr::IsNull {
            expr: Box::new(Expr::col("y")),
            negated: false,
        };
        assert_eq!(eval(&isnull, &row), Value::Int(0));
        let isnotnull = Expr::IsNull {
            expr: Box::new(Expr::col("y")),
            negated: true,
        };
        assert_eq!(eval(&isnotnull, &row), Value::Int(1));
    }

    #[test]
    fn case_expression_evaluation() {
        let row = vec![Value::Float(-1.0), Value::Int(0), Value::Float(0.0)];
        let case = Expr::Case {
            branches: vec![(
                Expr::Binary {
                    op: BinOp::Lt,
                    lhs: Box::new(Expr::Column {
                        table: Some("a".into()),
                        name: "x".into(),
                    }),
                    rhs: Box::new(Expr::Literal(Value::Int(0))),
                },
                Expr::Literal(Value::from("neg")),
            )],
            else_expr: Some(Box::new(Expr::Literal(Value::from("nonneg")))),
        };
        assert_eq!(eval(&case, &row), Value::from("neg"));
    }

    #[test]
    fn builtin_functions() {
        let row = vec![Value::Float(9.0), Value::Int(-5), Value::Float(0.0)];
        let call = |name: &str, args: Vec<Expr>| Expr::Call {
            name: name.into(),
            args,
        };
        assert_eq!(
            eval(
                &call(
                    "sqrt",
                    vec![Expr::Column {
                        table: Some("a".into()),
                        name: "x".into()
                    }]
                ),
                &row
            ),
            Value::Float(3.0)
        );
        assert_eq!(
            eval(&call("abs", vec![Expr::col("y")]), &row),
            Value::Int(5)
        );
        assert_eq!(
            eval(
                &call(
                    "least",
                    vec![
                        Expr::Literal(Value::Int(3)),
                        Expr::Literal(Value::Float(1.5))
                    ]
                ),
                &row
            ),
            Value::Float(1.5)
        );
    }

    #[test]
    fn pack_formats_floats() {
        let row = vec![Value::Float(1.5), Value::Int(2), Value::Float(0.0)];
        let expr = Expr::Call {
            name: "pack".into(),
            args: vec![
                Expr::Column {
                    table: Some("a".into()),
                    name: "x".into(),
                },
                Expr::col("y"),
            ],
        };
        assert_eq!(eval(&expr, &row), Value::from("1.5,2"));
    }

    #[test]
    fn scalar_udf_dispatch() {
        let row = vec![Value::Float(0.0), Value::Int(0), Value::Float(0.0)];
        let expr = Expr::Call {
            name: "clusterscore".into(),
            args: vec![
                Expr::Literal(Value::Float(4.0)),
                Expr::Literal(Value::Float(1.0)),
            ],
        };
        assert_eq!(eval(&expr, &row), Value::Int(2));
    }

    #[test]
    fn aggregates_rejected_in_scalar_mode() {
        let expr = Expr::Call {
            name: "sum".into(),
            args: vec![Expr::col("y")],
        };
        assert!(matches!(
            bind_scalar(&expr),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn unknown_function_is_reported() {
        let expr = Expr::Call {
            name: "frobnicate".into(),
            args: vec![],
        };
        assert!(matches!(
            bind_scalar(&expr),
            Err(EngineError::UnknownFunction(_))
        ));
    }
}
