use std::fmt;

/// Errors produced by SQL parsing, planning, and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Lexical or syntactic error in the SQL text.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset into the SQL text.
        position: usize,
    },
    /// A referenced table or view does not exist.
    UnknownTable(String),
    /// A table or view with this name already exists.
    DuplicateTable(String),
    /// A referenced column does not exist (or is ambiguous).
    UnknownColumn(String),
    /// A referenced function does not exist.
    UnknownFunction(String),
    /// The statement is valid SQL but not supported or not
    /// semantically valid here (e.g. aggregates nested in aggregates).
    Unsupported(String),
    /// Type error during expression evaluation.
    Type(String),
    /// Underlying storage error.
    Storage(nlq_storage::StorageError),
    /// UDF execution error.
    Udf(nlq_udf::UdfError),
    /// Model construction error (from the high-level helpers).
    Model(nlq_models::ModelError),
    /// Γ summary store error (rendered message).
    Summary(String),
    /// A cross join would materialize too many rows.
    JoinTooLarge {
        /// Rows the join product would contain.
        rows: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The statement was cooperatively cancelled mid-execution (the
    /// [`crate::ExecOptions`] cancel token flipped). Partial state is
    /// discarded; `rows_scanned` counts base-table rows read before
    /// the workers noticed the flip (best effort).
    Cancelled {
        /// Rows scanned before the cancellation took effect.
        rows_scanned: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse { message, position } => {
                write!(f, "SQL parse error at byte {position}: {message}")
            }
            EngineError::UnknownTable(name) => write!(f, "unknown table or view: {name}"),
            EngineError::DuplicateTable(name) => {
                write!(f, "table or view already exists: {name}")
            }
            EngineError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            EngineError::UnknownFunction(name) => write!(f, "unknown function: {name}"),
            EngineError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            EngineError::Type(msg) => write!(f, "type error: {msg}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Udf(e) => write!(f, "UDF error: {e}"),
            EngineError::Model(e) => write!(f, "model error: {e}"),
            EngineError::Summary(msg) => write!(f, "summary error: {msg}"),
            EngineError::JoinTooLarge { rows, limit } => {
                write!(f, "cross join materializes {rows} rows, limit is {limit}")
            }
            EngineError::Cancelled { rows_scanned } => {
                write!(f, "query cancelled after {rows_scanned} rows")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<nlq_storage::StorageError> for EngineError {
    fn from(e: nlq_storage::StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<nlq_udf::UdfError> for EngineError {
    fn from(e: nlq_udf::UdfError) -> Self {
        EngineError::Udf(e)
    }
}

impl From<nlq_models::ModelError> for EngineError {
    fn from(e: nlq_models::ModelError) -> Self {
        EngineError::Model(e)
    }
}

impl From<nlq_summary::SummaryError> for EngineError {
    fn from(e: nlq_summary::SummaryError) -> Self {
        match e {
            // A cancelled rebuild is the statement's own cancellation,
            // not a summary failure.
            nlq_summary::SummaryError::Cancelled { rows_scanned } => {
                EngineError::Cancelled { rows_scanned }
            }
            other => EngineError::Summary(other.to_string()),
        }
    }
}
