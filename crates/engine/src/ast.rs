use nlq_storage::DataType;

/// A SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric or string literal (NULL included).
    Literal(nlq_storage::Value),
    /// Column reference, optionally qualified by a table alias.
    Column {
        /// Optional table alias qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// `*` (only valid as a whole projection or inside `count(*)`).
    Wildcard,
    /// Unary negation.
    Neg(Box<Expr>),
    /// `NOT expr`.
    Not(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Function call: builtin scalar/aggregate or registered UDF.
    Call {
        /// Function name (resolved case-insensitively).
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `CASE WHEN c1 THEN v1 [WHEN ...] [ELSE e] END`.
    Case {
        /// `(condition, value)` pairs, evaluated in order.
        branches: Vec<(Expr, Expr)>,
        /// The `ELSE` expression (`NULL` when absent).
        else_expr: Option<Box<Expr>>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Operand under test.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

/// One projection in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// The projected expression.
    pub expr: Expr,
    /// Optional `AS` alias for the output column.
    pub alias: Option<String>,
}

/// A table reference in FROM, with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table or view name.
    pub name: String,
    /// Optional alias used to qualify column references.
    pub alias: Option<String>,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort key expression (or 1-based output ordinal literal).
    pub expr: Expr,
    /// True for `DESC`.
    pub descending: bool,
}

/// A SELECT statement (the only query form; joins are CROSS JOINs, as
/// in the paper's scoring queries).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// The SELECT list.
    pub projections: Vec<Projection>,
    /// First table streams; the rest are cross-joined (materialized).
    pub from: Vec<TableRef>,
    /// Optional WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY key expressions.
    pub group_by: Vec<Expr>,
    /// Post-aggregation filter (`HAVING`); only valid with aggregation.
    pub having: Option<Expr>,
    /// ORDER BY keys, applied after projection.
    pub order_by: Vec<OrderKey>,
    /// Maximum number of output rows.
    pub limit: Option<usize>,
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query.
    Select(SelectStmt),
    /// `EXPLAIN SELECT ...`: describe the plan without executing it.
    Explain(SelectStmt),
    /// `EXPLAIN ANALYZE SELECT ...`: execute the statement and render
    /// its phase spans (wall times, rows scanned, scan mode, summary
    /// hit/miss) instead of its rows.
    ExplainAnalyze(SelectStmt),
    /// `CREATE TABLE name (col TYPE, ...)`.
    CreateTable {
        /// New table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `CREATE TABLE name AS SELECT ...`.
    CreateTableAs {
        /// New table name.
        name: String,
        /// Defining query, materialized once.
        query: SelectStmt,
    },
    /// `CREATE VIEW name AS SELECT ...`.
    CreateView {
        /// New view name.
        name: String,
        /// Defining query, executed on access.
        query: SelectStmt,
    },
    /// `INSERT INTO table VALUES (...), ...`.
    Insert {
        /// Target table.
        table: String,
        /// Literal rows (constant expressions).
        rows: Vec<Vec<Expr>>,
    },
    /// `INSERT INTO table SELECT ...`.
    InsertSelect {
        /// Target table.
        table: String,
        /// Source query.
        query: SelectStmt,
    },
    /// `DROP TABLE name` / `DROP VIEW name`.
    Drop {
        /// Object to remove.
        name: String,
    },
    /// `CREATE SUMMARY s ON t (X1, ...) [SHAPE diag|triang|full]
    /// [NO MINMAX] [GROUP BY g]`: register a materialized Γ summary.
    CreateSummary {
        /// Summary name.
        name: String,
        /// Base table.
        table: String,
        /// Summarized float columns.
        columns: Vec<String>,
        /// Optional shape name (`diag`/`triang`/`full`; default
        /// triangular).
        shape: Option<String>,
        /// Whether the summary answers min/max (`false` after
        /// `NO MINMAX`). Forgoing min/max makes DELETE exactly
        /// subtractable, so such summaries never go stale under it.
        minmax: bool,
        /// Optional single GROUP BY key column.
        group_by: Option<String>,
    },
    /// `DROP SUMMARY s`.
    DropSummary {
        /// Summary to remove.
        name: String,
    },
    /// `DELETE FROM t [WHERE predicate]`.
    Delete {
        /// Target table.
        table: String,
        /// Rows matching the predicate are removed (all rows when
        /// absent).
        predicate: Option<Expr>,
    },
    /// `UPDATE t SET col = expr, ... [WHERE predicate]`.
    Update {
        /// Target table.
        table: String,
        /// Column assignments, applied left to right.
        sets: Vec<(String, Expr)>,
        /// Rows matching the predicate are updated (all rows when
        /// absent).
        predicate: Option<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Whether this expression contains any function call for which
    /// `is_aggregate` returns true (used by the planner to classify
    /// projections).
    pub fn contains_aggregate(&self, is_aggregate: &dyn Fn(&str) -> bool) -> bool {
        match self {
            Expr::Literal(_) | Expr::Column { .. } | Expr::Wildcard => false,
            Expr::Neg(e) | Expr::Not(e) => e.contains_aggregate(is_aggregate),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.contains_aggregate(is_aggregate) || rhs.contains_aggregate(is_aggregate)
            }
            Expr::Call { name, args } => {
                is_aggregate(name) || args.iter().any(|a| a.contains_aggregate(is_aggregate))
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                branches.iter().any(|(c, v)| {
                    c.contains_aggregate(is_aggregate) || v.contains_aggregate(is_aggregate)
                }) || else_expr
                    .as_ref()
                    .is_some_and(|e| e.contains_aggregate(is_aggregate))
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(is_aggregate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlq_storage::Value;

    #[test]
    fn contains_aggregate_walks_the_tree() {
        let is_agg = |n: &str| n.eq_ignore_ascii_case("sum");
        let plain = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::col("x")),
            rhs: Box::new(Expr::Literal(Value::Int(1))),
        };
        assert!(!plain.contains_aggregate(&is_agg));

        let agg = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::Call {
                name: "sum".into(),
                args: vec![Expr::col("x")],
            }),
            rhs: Box::new(Expr::Literal(Value::Int(2))),
        };
        assert!(agg.contains_aggregate(&is_agg));

        let nested_case = Expr::Case {
            branches: vec![(
                Expr::col("c"),
                Expr::Call {
                    name: "sum".into(),
                    args: vec![Expr::col("x")],
                },
            )],
            else_expr: None,
        };
        assert!(nested_case.contains_aggregate(&is_agg));
    }
}
