//! SQL code generation — the role played by the TWM client tool.
//!
//! The paper's client (Teradata Warehouse Miner) "automatically
//! generates SQL code based on user-specified parameters" (§1). This
//! module generates every statement family the paper uses:
//!
//! * the "long" pure-SQL summary query with `1 + d + d²` terms (§3.4),
//! * the aggregate-UDF calls in both parameter styles,
//! * GROUP BY variants producing per-group sub-models (Table 5),
//! * block-partitioned calls for `d > MAX_D` (Table 6),
//! * scoring queries for regression, PCA and clustering — both the
//!   scalar-UDF form and the pure-SQL arithmetic-expression form the
//!   paper compares against in Table 4.

use nlq_linalg::{Matrix, Vector};
use nlq_models::MatrixShape;
use nlq_udf::ParamStyle;

/// The single-scan pure-SQL query computing `n, L, Q` (§3.4): one
/// statement with `1 + d + d²` terms; entries of `Q` above the
/// diagonal (triangular) or off the diagonal (diagonal shape) are
/// `null` placeholders, exactly as the paper writes it.
pub fn nlq_sql_query(table: &str, cols: &[String], shape: MatrixShape) -> String {
    let d = cols.len();
    // Preallocate: each Q term is ~ "sum(Xaa*Xbb)," with long names.
    let mut sql = String::with_capacity(32 * (1 + d + d * d));
    sql.push_str("SELECT\n  sum(1.0)");
    for c in cols {
        sql.push_str(&format!("\n ,sum({c})"));
    }
    for (a, ca) in cols.iter().enumerate() {
        sql.push('\n');
        for (b, cb) in cols.iter().enumerate() {
            let wanted = match shape {
                MatrixShape::Diagonal => a == b,
                MatrixShape::Triangular => b <= a,
                MatrixShape::Full => true,
            };
            if wanted {
                sql.push_str(&format!(" ,sum({ca}*{cb})"));
            } else {
                sql.push_str(" ,null");
            }
        }
    }
    sql.push_str(&format!("\nFROM {table}"));
    sql
}

/// The naive pure-SQL alternative §3.4 dismisses: one `SELECT` per
/// matrix entry ("a first straightforward approach is to get one
/// matrix entry per SELECT statement"), i.e. `1 + d + d(d+1)/2`
/// separate statements for triangular statistics. Used by the
/// harness's statement-granularity ablation.
pub fn nlq_per_entry_queries(table: &str, cols: &[String], shape: MatrixShape) -> Vec<String> {
    let mut out = vec![format!("SELECT sum(1.0) FROM {table}")];
    for c in cols {
        out.push(format!("SELECT sum({c}) FROM {table}"));
    }
    for (a, ca) in cols.iter().enumerate() {
        for (b, cb) in cols.iter().enumerate() {
            let wanted = match shape {
                MatrixShape::Diagonal => a == b,
                MatrixShape::Triangular => b <= a,
                MatrixShape::Full => true,
            };
            if wanted {
                out.push(format!("SELECT sum({ca}*{cb}) FROM {table}"));
            }
        }
    }
    out
}

/// The aggregate-UDF query computing `n, L, Q` in one scan (§3.4).
pub fn nlq_udf_query(
    table: &str,
    cols: &[String],
    shape: MatrixShape,
    style: ParamStyle,
) -> String {
    let d = cols.len();
    match style {
        ParamStyle::List => format!(
            "SELECT nlq_list({d}, '{}', {}) FROM {table}",
            shape.name(),
            cols.join(", ")
        ),
        ParamStyle::String => format!(
            "SELECT nlq_str('{}', pack({})) FROM {table}",
            shape.name(),
            cols.join(", ")
        ),
    }
}

/// GROUP BY variant: one set of summary matrices per group (Table 5 —
/// "to recompute centroids and radiuses in a clustering problem or to
/// get several sub-models from the same data set").
pub fn nlq_grouped_query(
    table: &str,
    cols: &[String],
    group_col: &str,
    shape: MatrixShape,
    style: ParamStyle,
) -> String {
    let d = cols.len();
    let call = match style {
        ParamStyle::List => format!("nlq_list({d}, '{}', {})", shape.name(), cols.join(", ")),
        ParamStyle::String => {
            format!("nlq_str('{}', pack({}))", shape.name(), cols.join(", "))
        }
    };
    format!("SELECT {group_col}, {call} FROM {table} GROUP BY {group_col}")
}

/// Block-partitioned calls for `d > MAX_D` (Table 6): all block calls
/// in one statement, sharing a single synchronized table scan. Each
/// call receives only the two packed coordinate segments its block
/// needs, so per-call work is independent of `d` and total time is
/// proportional to the call count, matching the paper's measurements.
pub fn nlq_block_query(table: &str, cols: &[String], block: usize) -> String {
    let d = cols.len();
    let seg = |lo: usize, hi: usize| format!("pack({})", cols[lo..hi].join(", "));
    let mut calls = Vec::new();
    let mut a0 = 0;
    while a0 < d {
        let a1 = (a0 + block).min(d);
        let mut b0 = 0;
        while b0 < d {
            let b1 = (b0 + block).min(d);
            calls.push(format!(
                "nlq_block({d}, {a0}, {a1}, {b0}, {b1}, {}, {})",
                seg(a0, a1),
                seg(b0, b1)
            ));
            b0 = b1;
        }
        a0 = a1;
    }
    format!("SELECT {} FROM {table}", calls.join(", "))
}

/// Number of block calls [`nlq_block_query`] generates.
pub fn block_call_count(d: usize, block: usize) -> usize {
    let per_side = d.div_ceil(block);
    per_side * per_side
}

// ---------------------------------------------------------------------------
// Scoring (§3.5)
// ---------------------------------------------------------------------------

/// UDF scoring for linear regression: cross join with the one-row
/// coefficient table `BETA(b0, b1..bd)` and call `linearregscore`.
pub fn score_regression_udf(table: &str, cols: &[String], beta_table: &str) -> String {
    let d = cols.len();
    let xs: Vec<String> = cols.iter().map(|c| format!("x.{c}")).collect();
    let bs: Vec<String> = (1..=d).map(|a| format!("b.b{a}")).collect();
    format!(
        "SELECT x.i, linearregscore({}, b.b0, {}) FROM {table} x CROSS JOIN {beta_table} b",
        xs.join(", "),
        bs.join(", ")
    )
}

/// Pure-SQL scoring for linear regression: the generated arithmetic
/// expression with coefficients inlined ("SQL queries require a
/// program to automatically generate SQL code given the model").
pub fn score_regression_sql(table: &str, cols: &[String], intercept: f64, beta: &Vector) -> String {
    let mut expr = format!("{intercept}");
    for (c, b) in cols.iter().zip(beta.as_slice()) {
        expr.push_str(&format!(" + {b}*{c}"));
    }
    format!("SELECT i, {expr} FROM {table}")
}

/// UDF scoring for PCA / factor analysis: cross join with `MU` and
/// with `LAMBDA` aliased `k` times (each alias pinned to one component
/// by the WHERE clause), calling `fascore` once per component.
pub fn score_pca_udf(
    table: &str,
    cols: &[String],
    k: usize,
    lambda_table: &str,
    mu_table: &str,
) -> String {
    let xs: Vec<String> = cols.iter().map(|c| format!("x.{c}")).collect();
    let mus: Vec<String> = cols.iter().map(|c| format!("m.{c}")).collect();
    let mut projections = vec!["x.i".to_owned()];
    let mut joins = format!("{table} x CROSS JOIN {mu_table} m");
    let mut filters = Vec::new();
    for j in 1..=k {
        let lams: Vec<String> = cols.iter().map(|c| format!("l{j}.{c}")).collect();
        projections.push(format!(
            "fascore({}, {}, {})",
            xs.join(", "),
            mus.join(", "),
            lams.join(", ")
        ));
        joins.push_str(&format!(" CROSS JOIN {lambda_table} l{j}"));
        filters.push(format!("l{j}.j = {j}"));
    }
    format!(
        "SELECT {} FROM {joins} WHERE {}",
        projections.join(", "),
        filters.join(" AND ")
    )
}

/// Pure-SQL scoring for PCA: `k` arithmetic projections with the
/// loading matrix and mean inlined as constants.
pub fn score_pca_sql(table: &str, cols: &[String], lambda: &Matrix, mu: &Vector) -> String {
    let k = lambda.cols();
    let mut projections = vec!["i".to_owned()];
    for j in 0..k {
        let mut terms = Vec::with_capacity(cols.len());
        for (a, c) in cols.iter().enumerate() {
            terms.push(format!("{}*({c} - {})", lambda[(a, j)], mu[a]));
        }
        projections.push(terms.join(" + "));
    }
    format!("SELECT {} FROM {table}", projections.join(", "))
}

/// UDF scoring for clustering: cross join with the centroid table `C`
/// aliased `k` times, compute `k` `distance(...)` values, and feed
/// them to `clusterscore` (§3.5: "the k distances are passed as
/// parameters to the scoring UDF").
pub fn score_cluster_udf(table: &str, cols: &[String], k: usize, c_table: &str) -> String {
    let xs: Vec<String> = cols.iter().map(|c| format!("x.{c}")).collect();
    let mut joins = format!("{table} x");
    let mut filters = Vec::new();
    let mut distances = Vec::with_capacity(k);
    for j in 1..=k {
        let cs: Vec<String> = cols.iter().map(|c| format!("c{j}.{c}")).collect();
        distances.push(format!("distance({}, {})", xs.join(", "), cs.join(", ")));
        joins.push_str(&format!(" CROSS JOIN {c_table} c{j}"));
        filters.push(format!("c{j}.j = {j}"));
    }
    format!(
        "SELECT x.i, clusterscore({}) FROM {joins} WHERE {}",
        distances.join(", "),
        filters.join(" AND ")
    )
}

/// Pure-SQL clustering scoring, stage 1 of 2: materialize the `k`
/// squared distances per point (the paper notes SQL "requires two
/// scans on a pivoted version of X").
pub fn score_cluster_sql_distances(
    target: &str,
    table: &str,
    cols: &[String],
    centroids: &[Vector],
) -> String {
    let mut projections = vec!["i".to_owned()];
    for (j, c) in centroids.iter().enumerate() {
        let mut terms = Vec::with_capacity(cols.len());
        for (a, col) in cols.iter().enumerate() {
            terms.push(format!("({col} - {v})*({col} - {v})", v = c[a]));
        }
        projections.push(format!("{} AS d{}", terms.join(" + "), j + 1));
    }
    format!(
        "CREATE TABLE {target} AS SELECT {} FROM {table}",
        projections.join(", ")
    )
}

/// Pure-SQL clustering scoring, stage 2 of 2: pick the nearest
/// centroid with a CASE over pairwise comparisons.
pub fn score_cluster_sql_argmin(distance_table: &str, k: usize) -> String {
    let mut cases = Vec::with_capacity(k);
    for j in 1..=k {
        let conds: Vec<String> = (1..=k)
            .filter(|&m| m != j)
            .map(|m| format!("d{j} <= d{m}"))
            .collect();
        if conds.is_empty() {
            cases.push(format!("WHEN 1 = 1 THEN {j}"));
        } else {
            cases.push(format!("WHEN {} THEN {j}", conds.join(" AND ")));
        }
    }
    format!(
        "SELECT i, CASE {} ELSE {k} END FROM {distance_table}",
        cases.join(" ")
    )
}

/// Column names `X1..Xd` used by the paper's point tables.
pub fn x_cols(d: usize) -> Vec<String> {
    (1..=d).map(|a| format!("X{a}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_query_has_1_plus_d_plus_d_squared_terms() {
        let cols = x_cols(4);
        let sql = nlq_sql_query("X", &cols, MatrixShape::Triangular);
        // 1 + d sums + d^2 positions (sums or nulls).
        let sums = sql.matches("sum(").count();
        let nulls = sql.matches("null").count();
        assert_eq!(sums, 1 + 4 + 4 * 5 / 2);
        assert_eq!(nulls, 16 - 10);
        assert!(sql.starts_with("SELECT"));
        assert!(sql.ends_with("FROM X"));
    }

    #[test]
    fn diagonal_sql_query_nulls_off_diagonal() {
        let sql = nlq_sql_query("X", &x_cols(3), MatrixShape::Diagonal);
        assert_eq!(sql.matches("sum(").count(), 1 + 3 + 3);
        assert_eq!(sql.matches("null").count(), 6);
    }

    #[test]
    fn per_entry_queries_have_expected_count() {
        let cols = x_cols(4);
        assert_eq!(
            nlq_per_entry_queries("X", &cols, MatrixShape::Triangular).len(),
            1 + 4 + 10
        );
        assert_eq!(
            nlq_per_entry_queries("X", &cols, MatrixShape::Diagonal).len(),
            1 + 4 + 4
        );
        let qs = nlq_per_entry_queries("X", &cols, MatrixShape::Full);
        assert_eq!(qs.len(), 1 + 4 + 16);
        assert!(qs.iter().all(|q| q.starts_with("SELECT sum(")));
    }

    #[test]
    fn udf_queries_have_expected_shape() {
        let cols = x_cols(3);
        assert_eq!(
            nlq_udf_query("X", &cols, MatrixShape::Triangular, ParamStyle::List),
            "SELECT nlq_list(3, 'triang', X1, X2, X3) FROM X"
        );
        assert_eq!(
            nlq_udf_query("X", &cols, MatrixShape::Diagonal, ParamStyle::String),
            "SELECT nlq_str('diag', pack(X1, X2, X3)) FROM X"
        );
    }

    #[test]
    fn grouped_query_includes_group_by() {
        let sql = nlq_grouped_query(
            "X",
            &x_cols(2),
            "j",
            MatrixShape::Diagonal,
            ParamStyle::List,
        );
        assert!(sql.contains("GROUP BY j"));
        assert!(sql.starts_with("SELECT j, nlq_list(2"));
    }

    #[test]
    fn block_query_counts() {
        assert_eq!(block_call_count(1024, 64), 256);
        assert_eq!(block_call_count(128, 64), 4);
        assert_eq!(block_call_count(100, 64), 4); // ragged blocks
        let sql = nlq_block_query("X", &x_cols(4), 2);
        assert_eq!(sql.matches("nlq_block(").count(), 4);
        assert!(sql.contains("nlq_block(4, 2, 4, 0, 2, pack(X3, X4), pack(X1, X2))"));
    }

    #[test]
    fn regression_scoring_queries() {
        let cols = x_cols(2);
        let udf = score_regression_udf("X", &cols, "BETA");
        assert!(udf.contains("linearregscore(x.X1, x.X2, b.b0, b.b1, b.b2)"));
        assert!(udf.contains("CROSS JOIN BETA b"));

        let sql = score_regression_sql("X", &cols, 1.5, &Vector::from_vec(vec![2.0, -3.0]));
        assert_eq!(sql, "SELECT i, 1.5 + 2*X1 + -3*X2 FROM X");
    }

    #[test]
    fn pca_scoring_queries() {
        let cols = x_cols(2);
        let udf = score_pca_udf("X", &cols, 2, "LAMBDA", "MU");
        assert_eq!(udf.matches("fascore(").count(), 2);
        assert_eq!(udf.matches("CROSS JOIN LAMBDA").count(), 2);
        assert!(udf.contains("l1.j = 1 AND l2.j = 2"));

        let lambda = Matrix::from_nested(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let mu = Vector::from_vec(vec![5.0, 6.0]);
        let sql = score_pca_sql("X", &cols, &lambda, &mu);
        assert!(sql.contains("1*(X1 - 5) + 0*(X2 - 6)"));
    }

    #[test]
    fn cluster_scoring_queries() {
        let cols = x_cols(2);
        let udf = score_cluster_udf("X", &cols, 3, "C");
        assert_eq!(udf.matches("distance(").count(), 3);
        assert!(udf.contains("clusterscore("));
        assert!(udf.contains("c3.j = 3"));

        let centroids = vec![
            Vector::from_vec(vec![0.0, 0.0]),
            Vector::from_vec(vec![1.0, 1.0]),
        ];
        let stage1 = score_cluster_sql_distances("DIST", "X", &cols, &centroids);
        assert!(stage1.starts_with("CREATE TABLE DIST AS SELECT"));
        assert!(stage1.contains("AS d2"));

        let stage2 = score_cluster_sql_argmin("DIST", 2);
        assert!(stage2.contains("WHEN d1 <= d2 THEN 1"));
        assert!(stage2.contains("ELSE 2 END"));
    }
}
