//! The system-catalog hook: a serving layer registers a
//! [`SystemTableProvider`] on its engine and every `sys.*` table
//! reference resolves through it instead of the user catalog.
//!
//! A provider snapshots live state (trace rings, sessions, shard
//! counters, WAL stats, refresh progress) into an ordinary
//! [`nlq_storage::Table`] at resolution time, so the existing block
//! scan, predicate bitmaps, Γ aggregates, and scoring UDFs all work
//! unchanged over telemetry. Each statement sees one consistent
//! snapshot — taken once when its `FROM sys.x` resolves — and never
//! blocks the writers feeding the underlying state.

use nlq_storage::Table;

/// Prefix distinguishing system-catalog names from user tables.
pub const SYS_PREFIX: &str = "sys.";

/// A read-only virtual-table namespace served by the hosting layer.
///
/// Resolution happens per statement: [`sys_table`] returns a fresh
/// snapshot table (cheap — bounded by ring capacity / session count),
/// or `None` for an unknown name, which surfaces as the usual
/// unknown-table error.
///
/// [`sys_table`]: SystemTableProvider::sys_table
pub trait SystemTableProvider: Send + Sync {
    /// The full dotted names served (e.g. `sys.queries`), for
    /// diagnostics and docs.
    fn table_names(&self) -> Vec<&'static str>;

    /// Snapshots one system table by its full lowercase dotted name.
    fn sys_table(&self, name: &str) -> Option<Table>;
}
