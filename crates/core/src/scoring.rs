//! Scoring (model application) primitives (§3.5).
//!
//! These are the pure computations behind the paper's scalar scoring
//! UDFs; the `nlq-udf` crate wraps each one in the UDF calling
//! convention:
//!
//! * `linearregscore(X1..Xd, β1..βd)` → [`linear_reg_score`]
//! * `fascore(X1..Xd, μ1..μd, Λ1j..Λdj)` → [`fa_score`]
//! * `distance(X1..Xd, C1j..Cdj)` → [`squared_distance`]
//! * `clusterscore(d1..dk)` → [`nearest_centroid`]

use nlq_linalg::Matrix;

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Linear regression score `ŷ = β₀ + βᵀ x`.
///
/// The paper's `linearregscore` UDF folds the intercept into the
/// augmented vector; here it is explicit.
#[inline]
pub fn linear_reg_score(x: &[f64], intercept: f64, beta: &[f64]) -> f64 {
    intercept + dot(x, beta)
}

/// PCA / factor analysis score: the `j`-th coordinate of the reduced
/// vector, `x'_j = Λ_jᵀ (x − μ)`.
///
/// `lambda_j` is one component (one column of `Λ`), so one UDF call
/// produces one output coordinate — UDFs cannot return vectors, which
/// is why the paper calls `fascore` k times per row.
#[inline]
pub fn fa_score(x: &[f64], mu: &[f64], lambda_j: &[f64]) -> f64 {
    assert_eq!(x.len(), mu.len(), "mu length mismatch");
    assert_eq!(x.len(), lambda_j.len(), "lambda length mismatch");
    let mut s = 0.0;
    for i in 0..x.len() {
        s += lambda_j[i] * (x[i] - mu[i]);
    }
    s
}

/// Full dimensionality reduction `x' = Λᵀ (x − μ)` for a d × k `Λ`.
///
/// Convenience wrapper equal to calling [`fa_score`] for each of the
/// `k` columns.
pub fn reduce(x: &[f64], mu: &[f64], lambda: &Matrix) -> Vec<f64> {
    assert_eq!(lambda.rows(), x.len(), "lambda must be d x k");
    (0..lambda.cols())
        .map(|j| {
            let col: Vec<f64> = lambda.col(j);
            fa_score(x, mu, &col)
        })
        .collect()
}

/// Squared Euclidean distance `(x − c)ᵀ (x − c)` — the paper's
/// `distance` UDF used by K-means scoring.
#[inline]
pub fn squared_distance(x: &[f64], c: &[f64]) -> f64 {
    assert_eq!(x.len(), c.len(), "distance length mismatch");
    let mut s = 0.0;
    for i in 0..x.len() {
        let diff = x[i] - c[i];
        s += diff * diff;
    }
    s
}

/// Index of the smallest distance — the paper's `clusterscore` UDF:
/// "J s.t. d_J ≤ d_j for j = 1..k". Ties resolve to the lowest index;
/// returns 0-based `J`.
///
/// # Panics
/// Panics if `distances` is empty.
#[inline]
pub fn nearest_centroid(distances: &[f64]) -> usize {
    assert!(
        !distances.is_empty(),
        "clusterscore needs at least one distance"
    );
    let mut best = 0;
    for (j, &d) in distances.iter().enumerate().skip(1) {
        if d < distances[best] {
            best = j;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_linear_score() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(linear_reg_score(&[1.0, 2.0], 0.5, &[3.0, 4.0]), 11.5);
    }

    #[test]
    fn fa_score_centers_then_projects() {
        let x = [3.0, 4.0];
        let mu = [1.0, 1.0];
        let lam = [0.5, 0.25];
        // (2, 3) . (0.5, 0.25) = 1 + 0.75
        assert_eq!(fa_score(&x, &mu, &lam), 1.75);
    }

    #[test]
    fn reduce_matches_per_component_scores() {
        let lambda = Matrix::from_nested(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let x = [1.0, 2.0, 3.0];
        let mu = [0.0, 0.0, 0.0];
        let r = reduce(&x, &mu, &lambda);
        assert_eq!(r, vec![4.0, 5.0]);
        assert_eq!(r[0], fa_score(&x, &mu, &[1.0, 0.0, 1.0]));
    }

    #[test]
    fn squared_distance_basics() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(squared_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn nearest_centroid_picks_minimum_and_breaks_ties_low() {
        assert_eq!(nearest_centroid(&[5.0, 1.0, 3.0]), 1);
        assert_eq!(nearest_centroid(&[2.0, 2.0]), 0);
        assert_eq!(nearest_centroid(&[7.5]), 0);
    }

    #[test]
    #[should_panic(expected = "at least one distance")]
    fn nearest_centroid_empty_panics() {
        let _ = nearest_centroid(&[]);
    }
}
