use nlq_linalg::{jacobi_eigen, Matrix, Vector};

use crate::{MatrixShape, ModelError, Nlq, Result};

/// Which derived matrix PCA diagonalizes (§3.1).
///
/// "The correlation matrix leaves dimensions in the same scale,
/// whereas the covariance matrix maintains dimensions in their
/// original scale."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcaInput {
    /// Diagonalize the Pearson correlation matrix (scale-free).
    Correlation,
    /// Diagonalize the covariance matrix (original scale).
    Covariance,
}

/// Principal component analysis from sufficient statistics.
///
/// The output is the paper's d × k dimensionality-reduction matrix
/// `Λ` with orthonormal columns (`Λᵀ Λ = I_k`), the component
/// variances (eigenvalues), and the mean `μ` used to center points
/// during scoring: `x' = Λᵀ (x − μ)`.
#[derive(Debug, Clone)]
pub struct Pca {
    lambda: Matrix,
    eigenvalues: Vec<f64>,
    /// Sum of all d eigenvalues, for explained-variance ratios.
    total_variance: f64,
    mu: Vector,
    input: PcaInput,
}

impl Pca {
    /// Fits PCA with `k` components from triangular or full
    /// statistics.
    ///
    /// `k` must satisfy `1 <= k <= d`. The correlation input requires
    /// every dimension to have nonzero variance.
    pub fn fit(nlq: &Nlq, k: usize, input: PcaInput) -> Result<Self> {
        if nlq.shape() == MatrixShape::Diagonal {
            return Err(ModelError::InvalidConfig(
                "PCA needs cross-products; use triangular or full statistics".into(),
            ));
        }
        let d = nlq.d();
        if k == 0 || k > d {
            return Err(ModelError::InvalidConfig(format!(
                "component count k={k} must be in 1..={d}"
            )));
        }
        let target = match input {
            PcaInput::Correlation => nlq.correlation()?,
            PcaInput::Covariance => nlq.covariance()?,
        };
        let eig = jacobi_eigen(&target, 1e-12)?;
        let lambda = Matrix::from_fn(d, k, |r, c| eig.vectors[(r, c)]);
        let total_variance: f64 = eig.values.iter().sum();
        Ok(Pca {
            lambda,
            eigenvalues: eig.values[..k].to_vec(),
            total_variance,
            mu: nlq.mean()?,
            input,
        })
    }

    /// Original dimensionality `d`.
    pub fn d(&self) -> usize {
        self.lambda.rows()
    }

    /// Number of retained components `k`.
    pub fn k(&self) -> usize {
        self.lambda.cols()
    }

    /// The d × k loading matrix `Λ` (orthonormal columns, stored in
    /// the DBMS as table `LAMBDA(j, X1..Xd)`).
    pub fn lambda(&self) -> &Matrix {
        &self.lambda
    }

    /// The mean vector `μ` (stored as table `MU(X1..Xd)`).
    pub fn mu(&self) -> &Vector {
        &self.mu
    }

    /// Eigenvalues (component variances) of the retained components,
    /// descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Which matrix was diagonalized.
    pub fn input(&self) -> PcaInput {
        self.input
    }

    /// Fraction of total variance captured by each retained component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        if self.total_variance <= 0.0 {
            return vec![0.0; self.k()];
        }
        self.eigenvalues
            .iter()
            .map(|v| (v / self.total_variance).max(0.0))
            .collect()
    }

    /// Scores one point: `x' = Λᵀ (x − μ)` — `k` calls of the paper's
    /// `fascore` UDF.
    ///
    /// # Panics
    /// Panics if `x.len() != d`.
    pub fn score(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.d(), "point dimensionality mismatch");
        crate::scoring::reduce(x, self.mu.as_slice(), &self.lambda)
    }

    /// Maps a reduced vector back to the original space:
    /// `x̂ = Λ x' + μ`. Together with [`Pca::score`] this gives the
    /// rank-k reconstruction of a point.
    pub fn reconstruct(&self, reduced: &[f64]) -> Vec<f64> {
        assert_eq!(reduced.len(), self.k(), "reduced dimensionality mismatch");
        let mut out = self.mu.clone().into_vec();
        for (j, &rj) in reduced.iter().enumerate() {
            for (r, o) in out.iter_mut().enumerate() {
                *o += self.lambda[(r, j)] * rj;
            }
        }
        out
    }

    /// Squared reconstruction error of a point under the rank-k model.
    pub fn reconstruction_error(&self, x: &[f64]) -> f64 {
        let rec = self.reconstruct(&self.score(x));
        crate::scoring::squared_distance(x, &rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data lying (almost) on the line x2 = 2 x1, x3 independent noise
    /// with tiny variance.
    fn line_rows() -> Vec<Vec<f64>> {
        (0..60)
            .map(|i| {
                let t = i as f64 / 3.0;
                let jitter = ((i * 31) % 7) as f64 * 1e-3;
                vec![t, 2.0 * t + jitter, 0.01 * ((i % 5) as f64)]
            })
            .collect()
    }

    fn stats(rows: &[Vec<f64>]) -> Nlq {
        Nlq::from_rows(rows[0].len(), MatrixShape::Triangular, rows)
    }

    #[test]
    fn first_component_captures_dominant_direction() {
        let pca = Pca::fit(&stats(&line_rows()), 1, PcaInput::Covariance).unwrap();
        let ratios = pca.explained_variance_ratio();
        assert!(ratios[0] > 0.999, "explained = {ratios:?}");
        // The dominant direction is (1, 2, 0)/sqrt(5).
        let lam = pca.lambda();
        let ratio = lam[(1, 0)] / lam[(0, 0)];
        assert!((ratio - 2.0).abs() < 1e-2, "direction ratio = {ratio}");
        assert!(lam[(2, 0)].abs() < 0.05);
    }

    #[test]
    fn lambda_columns_are_orthonormal() {
        let pca = Pca::fit(&stats(&line_rows()), 3, PcaInput::Correlation).unwrap();
        let gram = pca.lambda().transpose().matmul(pca.lambda()).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((gram[(r, c)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn correlation_input_total_variance_is_d() {
        let pca = Pca::fit(&stats(&line_rows()), 2, PcaInput::Correlation).unwrap();
        // Correlation matrix has trace d; eigenvalues sum to d = 3.
        let sum: f64 = pca.explained_variance_ratio().iter().sum::<f64>() * 3.0;
        let eig_sum: f64 = pca.eigenvalues().iter().sum();
        assert!((sum - eig_sum).abs() < 1e-9);
    }

    #[test]
    fn score_then_reconstruct_on_dominant_subspace() {
        let rows = line_rows();
        let pca = Pca::fit(&stats(&rows), 2, PcaInput::Covariance).unwrap();
        // Rank-2 model of near-rank-2 data: reconstruction nearly exact.
        for r in rows.iter().take(10) {
            assert!(
                pca.reconstruction_error(r) < 1e-3,
                "err = {}",
                pca.reconstruction_error(r)
            );
        }
    }

    #[test]
    fn full_rank_reconstruction_is_exact() {
        let rows = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![4.0, 1.0],
            vec![7.0, 2.0],
        ];
        let pca = Pca::fit(&stats(&rows), 2, PcaInput::Covariance).unwrap();
        for r in &rows {
            assert!(pca.reconstruction_error(r) < 1e-18);
        }
    }

    #[test]
    fn score_centers_at_mean() {
        let rows = line_rows();
        let pca = Pca::fit(&stats(&rows), 2, PcaInput::Covariance).unwrap();
        let mu: Vec<f64> = pca.mu().as_slice().to_vec();
        let s = pca.score(&mu);
        assert!(s.iter().all(|v| v.abs() < 1e-12), "score(mu) = {s:?}");
    }

    #[test]
    fn invalid_k_rejected() {
        let s = stats(&line_rows());
        assert!(matches!(
            Pca::fit(&s, 0, PcaInput::Covariance),
            Err(ModelError::InvalidConfig(_))
        ));
        assert!(matches!(
            Pca::fit(&s, 4, PcaInput::Covariance),
            Err(ModelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn diagonal_statistics_rejected() {
        let rows = line_rows();
        let s = Nlq::from_rows(3, MatrixShape::Diagonal, &rows);
        assert!(matches!(
            Pca::fit(&s, 1, PcaInput::Covariance),
            Err(ModelError::InvalidConfig(_))
        ));
    }
}
