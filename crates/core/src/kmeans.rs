use nlq_linalg::Vector;

use crate::scoring::{nearest_centroid, squared_distance};
use crate::{MatrixShape, ModelError, Nlq, Result};

/// Configuration for K-means clustering.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum full iterations (scans of the data).
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement.
    pub tol: f64,
    /// Seed for the deterministic k-means++-style initialization.
    pub seed: u64,
}

impl KMeansConfig {
    /// Reasonable defaults for `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iters: 50,
            tol: 1e-6,
            seed: 0x5eed_0003,
        }
    }
}

/// The per-cluster outputs of K-means, exactly as the paper stores
/// them in the DBMS (§3.5): centroids `C(j, X1..Xd)`, per-dimension
/// variances ("radii") `R(j, X1..Xd)`, and weights `W(W1..Wk)`.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Vec<Vector>,
    radii: Vec<Vector>,
    weights: Vec<f64>,
    /// Per-cluster point counts `N_j` from the final assignment.
    counts: Vec<f64>,
    iterations: usize,
    converged: bool,
    /// Total within-cluster sum of squared distances at the end.
    sse: f64,
}

/// Derives centroid/radius/weight from one cluster's diagonal
/// statistics (the paper's `C_j = L_j/N_j`, `R_j = Q_j/N_j − L_j Lᵀ_j/N_j²`,
/// `W_j = N_j / n`).
fn cluster_outputs(stats: &Nlq, total_n: f64) -> (Vector, Vector, f64) {
    let nj = stats.n();
    let d = stats.d();
    if nj <= 0.0 {
        return (Vector::zeros(d), Vector::zeros(d), 0.0);
    }
    let c = stats.l().scale(1.0 / nj);
    let mut r = Vector::zeros(d);
    for a in 0..d {
        r[a] = (stats.q_raw()[(a, a)] / nj - c[a] * c[a]).max(0.0);
    }
    (c, r, nj / total_n)
}

/// Deterministic splitmix-style PRNG for initialization (keeps this
/// crate free of the `rand` dependency).
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// k-means++ style initialization: first centroid uniform, subsequent
/// centroids sampled proportionally to squared distance from the
/// nearest chosen centroid.
fn init_centroids(data: &[Vec<f64>], k: usize, seed: u64) -> Vec<Vector> {
    let mut rng = SplitMix(seed);
    let mut centroids: Vec<Vector> = Vec::with_capacity(k);
    let first = (rng.next_u64() as usize) % data.len();
    centroids.push(Vector::from_slice(&data[first]));
    let mut dist2: Vec<f64> = data
        .iter()
        .map(|x| squared_distance(x, centroids[0].as_slice()))
        .collect();
    while centroids.len() < k {
        let total: f64 = dist2.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with chosen centroids; fall back to
            // uniform choice.
            (rng.next_u64() as usize) % data.len()
        } else {
            let mut target = rng.next_f64() * total;
            let mut idx = data.len() - 1;
            for (i, &w) in dist2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        let c = Vector::from_slice(&data[chosen]);
        for (i, x) in data.iter().enumerate() {
            let d2 = squared_distance(x, c.as_slice());
            if d2 < dist2[i] {
                dist2[i] = d2;
            }
        }
        centroids.push(c);
    }
    centroids
}

impl KMeans {
    /// Runs standard (Lloyd) K-means: one scan of `X` per iteration
    /// (§3.1: "the standard version of K-means requires scanning X
    /// once per iteration").
    pub fn fit(data: &[Vec<f64>], config: &KMeansConfig) -> Result<Self> {
        let k = config.k;
        if k == 0 {
            return Err(ModelError::InvalidConfig("k must be positive".into()));
        }
        if data.len() < k {
            return Err(ModelError::NotEnoughData {
                needed: k,
                got: data.len(),
            });
        }
        let centroids = init_centroids(data, k, config.seed);
        Self::lloyd(data, centroids, config)
    }

    /// Warm-started (Lloyd) K-means: skips the seeded initialization
    /// and iterates from the caller-provided `seeds` — typically the
    /// centroids of a previous fit, so a model can be refreshed after
    /// the underlying Γ summaries change without re-deriving an
    /// initialization from scratch.
    ///
    /// `seeds.len()` overrides `config.k`; every seed must match the
    /// dimensionality of `data`.
    pub fn fit_seeded(data: &[Vec<f64>], seeds: &[Vector], config: &KMeansConfig) -> Result<Self> {
        let k = seeds.len();
        if k == 0 {
            return Err(ModelError::InvalidConfig(
                "at least one seed centroid is required".into(),
            ));
        }
        if data.len() < k {
            return Err(ModelError::NotEnoughData {
                needed: k,
                got: data.len(),
            });
        }
        let d = data[0].len();
        if seeds.iter().any(|s| s.len() != d) {
            return Err(ModelError::InvalidConfig(format!(
                "seed centroids must have dimension {d}"
            )));
        }
        Self::lloyd(data, seeds.to_vec(), config)
    }

    /// The shared Lloyd iteration: assignment + per-cluster diagonal
    /// statistics in one scan per iteration, starting from `centroids`.
    fn lloyd(data: &[Vec<f64>], mut centroids: Vec<Vector>, config: &KMeansConfig) -> Result<Self> {
        let k = centroids.len();
        let d = data[0].len();
        let mut iterations = 0;
        let mut converged = false;
        let mut per_cluster: Vec<Nlq> = Vec::new();

        for iter in 0..config.max_iters.max(1) {
            iterations = iter + 1;
            // Assignment + per-cluster diagonal statistics in one scan.
            per_cluster = (0..k).map(|_| Nlq::new(d, MatrixShape::Diagonal)).collect();
            for x in data {
                let dists: Vec<f64> = centroids
                    .iter()
                    .map(|c| squared_distance(x, c.as_slice()))
                    .collect();
                per_cluster[nearest_centroid(&dists)].update(x);
            }
            // Update step; empty clusters keep their old centroid.
            let mut movement = 0.0;
            for (j, stats) in per_cluster.iter().enumerate() {
                if stats.n() > 0.0 {
                    let new_c = stats.l().scale(1.0 / stats.n());
                    movement += squared_distance(new_c.as_slice(), centroids[j].as_slice());
                    centroids[j] = new_c;
                }
            }
            if movement.sqrt() < config.tol {
                converged = true;
                break;
            }
        }

        let total_n = data.len() as f64;
        let mut radii = Vec::with_capacity(k);
        let mut weights = Vec::with_capacity(k);
        let mut counts = Vec::with_capacity(k);
        for (j, stats) in per_cluster.iter().enumerate() {
            let (c, r, w) = cluster_outputs(stats, total_n);
            if stats.n() > 0.0 {
                centroids[j] = c;
            }
            radii.push(r);
            weights.push(w);
            counts.push(stats.n());
        }

        let sse = data
            .iter()
            .map(|x| {
                centroids
                    .iter()
                    .map(|c| squared_distance(x, c.as_slice()))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();

        Ok(KMeans {
            centroids,
            radii,
            weights,
            counts,
            iterations,
            converged,
            sse,
        })
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Dimensionality.
    pub fn d(&self) -> usize {
        self.centroids.first().map_or(0, Vector::len)
    }

    /// Cluster centroids `C_j` (the DBMS table `C(j, X1..Xd)`).
    pub fn centroids(&self) -> &[Vector] {
        &self.centroids
    }

    /// Per-dimension cluster variances `R_j` (table `R(j, X1..Xd)`).
    pub fn radii(&self) -> &[Vector] {
        &self.radii
    }

    /// Cluster weights `W_j = N_j / n` (table `W(W1..Wk)`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Final per-cluster point counts `N_j`.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Iterations executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether centroids stopped moving before the iteration budget.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Total within-cluster sum of squared distances.
    pub fn sse(&self) -> f64 {
        self.sse
    }

    /// Scores a point: index of the nearest centroid (the paper's
    /// `distance` × k + `clusterscore` pipeline).
    pub fn assign(&self, x: &[f64]) -> usize {
        let dists: Vec<f64> = self
            .centroids
            .iter()
            .map(|c| squared_distance(x, c.as_slice()))
            .collect();
        nearest_centroid(&dists)
    }
}

/// Incremental one-pass K-means (§3.1: "there exist incremental
/// versions that can get a good, but probably suboptimal, solution in
/// a few or even one iteration").
///
/// Centroids are seeded from the first `k` distinct points and updated
/// online: each point is assigned to the nearest current centroid,
/// whose running mean is updated immediately.
#[derive(Debug, Clone)]
pub struct IncrementalKMeans {
    stats: Vec<Nlq>,
    centroids: Vec<Vector>,
    d: usize,
    seen: f64,
}

impl IncrementalKMeans {
    /// Creates an empty model for `k` clusters of dimensionality `d`.
    pub fn new(d: usize, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(ModelError::InvalidConfig("k must be positive".into()));
        }
        Ok(IncrementalKMeans {
            stats: (0..k).map(|_| Nlq::new(d, MatrixShape::Diagonal)).collect(),
            centroids: Vec::with_capacity(k),
            d,
            seen: 0.0,
        })
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.stats.len()
    }

    /// Processes one point: the first `k` points become the initial
    /// centroids; every later point updates its nearest cluster's
    /// running statistics and centroid. Returns the assigned cluster.
    pub fn update(&mut self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.d, "point dimensionality mismatch");
        self.seen += 1.0;
        if self.centroids.len() < self.k() {
            let j = self.centroids.len();
            self.centroids.push(Vector::from_slice(x));
            self.stats[j].update(x);
            return j;
        }
        let dists: Vec<f64> = self
            .centroids
            .iter()
            .map(|c| squared_distance(x, c.as_slice()))
            .collect();
        let j = nearest_centroid(&dists);
        self.stats[j].update(x);
        self.centroids[j] = self.stats[j].l().scale(1.0 / self.stats[j].n());
        j
    }

    /// Finalizes the model into the same output form as [`KMeans`].
    pub fn finish(self) -> Result<KMeans> {
        if self.seen <= 0.0 {
            return Err(ModelError::NotEnoughData {
                needed: self.k(),
                got: 0,
            });
        }
        let total = self.seen;
        let mut centroids = Vec::with_capacity(self.k());
        let mut radii = Vec::with_capacity(self.k());
        let mut weights = Vec::with_capacity(self.k());
        let mut counts = Vec::with_capacity(self.k());
        for (j, stats) in self.stats.iter().enumerate() {
            let (c, r, w) = cluster_outputs(stats, total);
            let c = if stats.n() > 0.0 {
                c
            } else {
                self.centroids
                    .get(j)
                    .cloned()
                    .unwrap_or_else(|| Vector::zeros(self.d))
            };
            centroids.push(c);
            radii.push(r);
            weights.push(w);
            counts.push(stats.n());
        }
        Ok(KMeans {
            centroids,
            radii,
            weights,
            counts,
            iterations: 1,
            converged: false,
            sse: f64::NAN, // not tracked online; callers can recompute
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three tight, well separated blobs in 2-D.
    fn blobs() -> Vec<Vec<f64>> {
        let centers = [[0.0, 0.0], [50.0, 0.0], [0.0, 50.0]];
        let mut rows = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for i in 0..40 {
                let dx = ((i * 13 + ci * 7) % 9) as f64 * 0.2 - 0.8;
                let dy = ((i * 29 + ci * 3) % 9) as f64 * 0.2 - 0.8;
                rows.push(vec![c[0] + dx, c[1] + dy]);
            }
        }
        rows
    }

    #[test]
    fn finds_separated_blobs() {
        let data = blobs();
        let km = KMeans::fit(&data, &KMeansConfig::new(3)).unwrap();
        assert!(km.converged());
        // Each true center has a centroid within distance 2.
        for target in [[0.0, 0.0], [50.0, 0.0], [0.0, 50.0]] {
            let found = km
                .centroids()
                .iter()
                .any(|c| squared_distance(c.as_slice(), &target) < 4.0);
            assert!(found, "no centroid near {target:?}: {:?}", km.centroids());
        }
    }

    #[test]
    fn weights_sum_to_one_and_counts_to_n() {
        let data = blobs();
        let km = KMeans::fit(&data, &KMeansConfig::new(3)).unwrap();
        let w: f64 = km.weights().iter().sum();
        assert!((w - 1.0).abs() < 1e-12);
        let n: f64 = km.counts().iter().sum();
        assert_eq!(n, data.len() as f64);
        // Balanced blobs: each cluster ~1/3.
        for &wj in km.weights() {
            assert!((wj - 1.0 / 3.0).abs() < 0.05, "weights {:?}", km.weights());
        }
    }

    #[test]
    fn radii_reflect_in_cluster_variance() {
        let data = blobs();
        let km = KMeans::fit(&data, &KMeansConfig::new(3)).unwrap();
        // Blob jitter is within ±0.8 per axis: variances far below 1.
        for r in km.radii() {
            for a in 0..2 {
                assert!(r[a] < 1.0, "radius {r}");
            }
        }
    }

    #[test]
    fn assign_maps_points_to_nearby_centroid() {
        let data = blobs();
        let km = KMeans::fit(&data, &KMeansConfig::new(3)).unwrap();
        let j = km.assign(&[49.0, 1.0]);
        let c = &km.centroids()[j];
        assert!(squared_distance(c.as_slice(), &[50.0, 0.0]) < 4.0);
    }

    #[test]
    fn sse_decreases_with_more_clusters() {
        let data = blobs();
        let k1 = KMeans::fit(&data, &KMeansConfig::new(1)).unwrap();
        let k3 = KMeans::fit(&data, &KMeansConfig::new(3)).unwrap();
        assert!(
            k3.sse() < k1.sse() * 0.1,
            "sse1={} sse3={}",
            k1.sse(),
            k3.sse()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs();
        let a = KMeans::fit(&data, &KMeansConfig::new(3)).unwrap();
        let b = KMeans::fit(&data, &KMeansConfig::new(3)).unwrap();
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn incremental_one_pass_is_reasonable() {
        let data = blobs();
        let mut inc = IncrementalKMeans::new(2, 3).unwrap();
        for x in &data {
            inc.update(x);
        }
        let km = inc.finish().unwrap();
        let w: f64 = km.weights().iter().sum();
        assert!((w - 1.0).abs() < 1e-12);
        // One-pass result is suboptimal but must still place centroids
        // inside the data's bounding box.
        for c in km.centroids() {
            assert!(c[0] >= -2.0 && c[0] <= 52.0);
            assert!(c[1] >= -2.0 && c[1] <= 52.0);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let data = blobs();
        assert!(matches!(
            KMeans::fit(&data, &KMeansConfig::new(0)),
            Err(ModelError::InvalidConfig(_))
        ));
        assert!(matches!(
            KMeans::fit(&data[..2], &KMeansConfig::new(3)),
            Err(ModelError::NotEnoughData { .. })
        ));
        assert!(IncrementalKMeans::new(2, 0).is_err());
        assert!(IncrementalKMeans::new(2, 3).unwrap().finish().is_err());
    }

    #[test]
    fn identical_points_do_not_crash_init() {
        let data = vec![vec![1.0, 1.0]; 10];
        let km = KMeans::fit(&data, &KMeansConfig::new(3)).unwrap();
        assert_eq!(km.k(), 3);
        // One cluster holds everything.
        assert!((km.weights().iter().cloned().fold(0.0, f64::max) - 1.0).abs() < 1e-12);
    }
}
