use nlq_linalg::{invert, Lu, Matrix};

use crate::{ModelError, Nlq, Pca, PcaInput, Result};

/// Configuration for maximum-likelihood factor analysis.
#[derive(Debug, Clone)]
pub struct FactorAnalysisConfig {
    /// Number of factors `k < d`.
    pub k: usize,
    /// EM iteration budget.
    pub max_iters: usize,
    /// Convergence threshold on the log-likelihood improvement per
    /// iteration.
    pub tol: f64,
    /// Lower bound on the uniquenesses (diagonal noise variances), for
    /// numerical stability.
    pub min_psi: f64,
}

impl FactorAnalysisConfig {
    /// Reasonable defaults for `k` factors.
    pub fn new(k: usize) -> Self {
        FactorAnalysisConfig {
            k,
            max_iters: 500,
            tol: 1e-5,
            min_psi: 1e-6,
        }
    }
}

/// Maximum-likelihood factor analysis fitted with EM (§3.1: "Maximum
/// likelihood (ML) factor analysis uses an Expectation-Maximization
/// (EM) algorithm to get factors").
///
/// The model is `x = μ + Λ z + ε` with `z ~ N(0, I_k)` and
/// `ε ~ N(0, Ψ)`, `Ψ` diagonal. Like PCA, the EM iterations consume
/// only the covariance matrix `S` derived from `n, L, Q` — the data
/// set `X` is never revisited.
#[derive(Debug, Clone)]
pub struct FactorAnalysis {
    lambda: Matrix,
    psi: Vec<f64>,
    mu: Vec<f64>,
    log_likelihood: f64,
    iterations: usize,
    converged: bool,
}

impl FactorAnalysis {
    /// Fits the model from triangular or full statistics.
    pub fn fit(nlq: &Nlq, config: &FactorAnalysisConfig) -> Result<Self> {
        let d = nlq.d();
        let k = config.k;
        if k == 0 || k >= d {
            return Err(ModelError::InvalidConfig(format!(
                "factor count k={k} must be in 1..{d}"
            )));
        }
        let n = nlq.n();
        if n < 2.0 {
            return Err(ModelError::NotEnoughData {
                needed: 2,
                got: n as usize,
            });
        }
        let s = nlq.covariance()?;
        let mu = nlq.mean()?.into_vec();

        // Initialize Λ from PCA loadings scaled by the square root of
        // the eigenvalues, Ψ from the residual diagonal.
        let pca = Pca::fit(nlq, k, PcaInput::Covariance)?;
        let mut lambda = Matrix::from_fn(d, k, |r, c| {
            pca.lambda()[(r, c)] * pca.eigenvalues()[c].max(config.min_psi).sqrt()
        });
        let mut psi: Vec<f64> = (0..d)
            .map(|r| {
                let mut communality = 0.0;
                for c in 0..k {
                    communality += lambda[(r, c)] * lambda[(r, c)];
                }
                (s[(r, r)] - communality).max(config.min_psi)
            })
            .collect();

        let mut prev_ll = f64::NEG_INFINITY;
        let mut log_likelihood = prev_ll;
        let mut converged = false;
        let mut iterations = 0;

        for iter in 0..config.max_iters {
            iterations = iter + 1;

            // Model covariance Σ = Λ Λᵀ + Ψ and its inverse.
            let mut sigma = lambda.matmul(&lambda.transpose())?;
            for r in 0..d {
                sigma[(r, r)] += psi[r];
            }
            let lu = Lu::new(&sigma)?;
            let sigma_inv = lu.inverse()?;
            let log_det = {
                let det = lu.determinant();
                if det <= 0.0 {
                    return Err(ModelError::Linalg(
                        nlq_linalg::LinalgError::NotPositiveDefinite,
                    ));
                }
                det.ln()
            };

            // Log-likelihood (up to the model-independent constant):
            // -n/2 (d ln 2π + ln|Σ| + tr(Σ⁻¹ S)).
            let trace = sigma_inv.matmul(&s)?.trace();
            log_likelihood =
                -0.5 * n * (d as f64 * (2.0 * std::f64::consts::PI).ln() + log_det + trace);

            if (log_likelihood - prev_ll).abs() < config.tol * (1.0 + log_likelihood.abs()) {
                converged = true;
                break;
            }
            prev_ll = log_likelihood;

            // E-step summaries: B = Λᵀ Σ⁻¹ (k×d),
            // E[zzᵀ] = I − BΛ + B S Bᵀ.
            let b = lambda.transpose().matmul(&sigma_inv)?;
            let bs = b.matmul(&s)?; // k×d
            let ezz = {
                let bl = b.matmul(&lambda)?;
                let bsb = bs.matmul(&b.transpose())?;
                let mut m = Matrix::identity(k);
                m = m.try_sub(&bl)?;
                m.try_add(&bsb)?
            };

            // M-step: Λ ← S Bᵀ (E[zzᵀ])⁻¹, Ψ ← diag(S − Λ B S).
            let ezz_inv = invert(&ezz)?;
            let new_lambda = s.matmul(&b.transpose())?.matmul(&ezz_inv)?;
            let lbs = new_lambda.matmul(&bs)?;
            for (r, p) in psi.iter_mut().enumerate() {
                *p = (s[(r, r)] - lbs[(r, r)]).max(config.min_psi);
            }
            lambda = new_lambda;
        }

        Ok(FactorAnalysis {
            lambda,
            psi,
            mu,
            log_likelihood,
            iterations,
            converged,
        })
    }

    /// The d × k factor loading matrix `Λ`.
    pub fn lambda(&self) -> &Matrix {
        &self.lambda
    }

    /// The diagonal noise variances `Ψ` (uniquenesses).
    pub fn psi(&self) -> &[f64] {
        &self.psi
    }

    /// The mean vector `μ`.
    pub fn mu(&self) -> &[f64] {
        &self.mu
    }

    /// Final (unnormalized) log-likelihood of the fitted model.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// Number of EM iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the log-likelihood converged within the budget.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The model-implied covariance `Λ Λᵀ + Ψ`.
    pub fn implied_covariance(&self) -> Matrix {
        let mut sigma = self
            .lambda
            .matmul(&self.lambda.transpose())
            .expect("lambda shapes are consistent");
        for r in 0..self.psi.len() {
            sigma[(r, r)] += self.psi[r];
        }
        sigma
    }

    /// Scores a point: posterior factor mean
    /// `E[z | x] = Λᵀ (Λ Λᵀ + Ψ)⁻¹ (x − μ)`.
    ///
    /// Note this differs from the paper's `fascore` (which uses the
    /// plain projection `Λᵀ (x − μ)` shared with PCA); the posterior
    /// mean is the statistically correct FA score and is provided as
    /// the richer alternative.
    pub fn score(&self, x: &[f64]) -> Result<Vec<f64>> {
        let d = self.mu.len();
        if x.len() != d {
            return Err(ModelError::DimensionMismatch {
                expected: d,
                got: x.len(),
            });
        }
        let sigma_inv = invert(&self.implied_covariance())?;
        let b = self.lambda.transpose().matmul(&sigma_inv)?; // k×d
        let centered: Vec<f64> = x.iter().zip(&self.mu).map(|(a, m)| a - m).collect();
        Ok((0..b.rows())
            .map(|j| crate::scoring::dot(b.row(j), &centered))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatrixShape;

    /// Synthetic one-factor data: x = μ + λ z + ε with known loading
    /// direction, built deterministically.
    fn one_factor_rows() -> Vec<Vec<f64>> {
        let loading = [2.0, 1.0, -1.0, 0.5];
        let mu = [10.0, -5.0, 0.0, 3.0];
        (0..400)
            .map(|i| {
                // Deterministic pseudo-noise with decent coverage.
                let z = ((i as f64 * 0.61803).fract() - 0.5) * 6.0;
                (0..4)
                    .map(|a| {
                        let eps = (((i * 131 + a * 17) % 101) as f64 / 101.0 - 0.5) * 0.4;
                        mu[a] + loading[a] * z + eps
                    })
                    .collect()
            })
            .collect()
    }

    fn stats(rows: &[Vec<f64>]) -> Nlq {
        Nlq::from_rows(rows[0].len(), MatrixShape::Triangular, rows)
    }

    #[test]
    fn recovers_one_factor_structure() {
        let fa =
            FactorAnalysis::fit(&stats(&one_factor_rows()), &FactorAnalysisConfig::new(1)).unwrap();
        // Loadings proportional to (2, 1, -1, 0.5) up to sign.
        let l: Vec<f64> = (0..4).map(|r| fa.lambda()[(r, 0)]).collect();
        let scale = l[0] / 2.0;
        assert!(scale.abs() > 0.1, "degenerate loadings {l:?}");
        assert!((l[1] / scale - 1.0).abs() < 0.1, "{l:?}");
        assert!((l[2] / scale + 1.0).abs() < 0.1, "{l:?}");
        assert!((l[3] / scale - 0.5).abs() < 0.1, "{l:?}");
        // Noise was tiny, so uniquenesses are small relative to signal.
        assert!(fa.psi().iter().all(|&p| p < 0.5), "psi = {:?}", fa.psi());
    }

    #[test]
    fn implied_covariance_approximates_sample_covariance() {
        let rows = one_factor_rows();
        let s = stats(&rows);
        let fa = FactorAnalysis::fit(&s, &FactorAnalysisConfig::new(1)).unwrap();
        let sample = s.covariance().unwrap();
        let implied = fa.implied_covariance();
        let rel = (&sample - &implied).frobenius_norm() / sample.frobenius_norm();
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn log_likelihood_is_monotone_and_converges() {
        let s = stats(&one_factor_rows());
        // EM guarantees monotone log-likelihood: more iterations never hurt.
        let mut prev = f64::NEG_INFINITY;
        for iters in [1, 5, 25, 125] {
            let fa = FactorAnalysis::fit(
                &s,
                &FactorAnalysisConfig {
                    max_iters: iters,
                    ..FactorAnalysisConfig::new(1)
                },
            )
            .unwrap();
            assert!(
                fa.log_likelihood() >= prev - 1e-9,
                "log-likelihood decreased: {prev} -> {}",
                fa.log_likelihood()
            );
            prev = fa.log_likelihood();
        }
        // With a practical tolerance the fit converges well within budget.
        let fa = FactorAnalysis::fit(
            &s,
            &FactorAnalysisConfig {
                tol: 1e-4,
                ..FactorAnalysisConfig::new(1)
            },
        )
        .unwrap();
        assert!(
            fa.converged(),
            "did not converge in {} iters",
            fa.iterations()
        );
        assert!(fa.log_likelihood().is_finite());
    }

    #[test]
    fn score_is_near_zero_at_the_mean() {
        let rows = one_factor_rows();
        let s = stats(&rows);
        let fa = FactorAnalysis::fit(&s, &FactorAnalysisConfig::new(1)).unwrap();
        let mu = fa.mu().to_vec();
        let score = fa.score(&mu).unwrap();
        assert!(score[0].abs() < 1e-9);
    }

    #[test]
    fn invalid_k_rejected() {
        let s = stats(&one_factor_rows());
        assert!(matches!(
            FactorAnalysis::fit(&s, &FactorAnalysisConfig::new(0)),
            Err(ModelError::InvalidConfig(_))
        ));
        assert!(matches!(
            FactorAnalysis::fit(&s, &FactorAnalysisConfig::new(4)),
            Err(ModelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn score_dimension_mismatch_rejected() {
        let s = stats(&one_factor_rows());
        let fa = FactorAnalysis::fit(&s, &FactorAnalysisConfig::new(1)).unwrap();
        assert!(matches!(
            fa.score(&[1.0, 2.0]),
            Err(ModelError::DimensionMismatch {
                expected: 4,
                got: 2
            })
        ));
    }
}
