use nlq_linalg::Vector;

use crate::{
    CorrelationModel, GaussianMixture, GaussianMixtureConfig, KMeans, KMeansConfig,
    LinearRegression, MatrixShape, ModelError, Nlq, Pca, PcaInput, Result,
};

/// Which closed-form models a [`GammaModelSet`] maintains from one Γ
/// summary.
///
/// Every enabled model is rebuilt by each [`GammaModelSet::refresh`],
/// so the set stays consistent with a single Γ version.
#[derive(Debug, Clone, Copy)]
pub struct RefreshSpec {
    /// Maintain the d × d Pearson correlation matrix.
    pub correlation: bool,
    /// Maintain OLS regression, treating the **last** Γ dimension as
    /// the dependent variable `Y` (the paper's `Z = (X, Y)` layout).
    pub regression: bool,
    /// Maintain PCA with this many components (`None` disables PCA).
    pub pca_components: Option<usize>,
    /// Which derived matrix PCA diagonalizes.
    pub pca_input: PcaInput,
}

impl Default for RefreshSpec {
    /// All closed-form models on, PCA keeping every component of the
    /// correlation matrix (resolved against Γ's `d` at build time).
    fn default() -> Self {
        RefreshSpec {
            correlation: true,
            regression: true,
            pca_components: None,
            pca_input: PcaInput::Correlation,
        }
    }
}

impl RefreshSpec {
    /// Everything enabled: correlation, regression, and `k`-component
    /// PCA of the correlation matrix.
    pub fn all(pca_components: usize) -> Self {
        RefreshSpec {
            correlation: true,
            regression: true,
            pca_components: Some(pca_components),
            pca_input: PcaInput::Correlation,
        }
    }
}

/// Closed-form models derived from one Γ summary, rebuilt in place
/// whenever the summary is refreshed.
///
/// This is the model-side half of the summary-store tentpole: the
/// engine keeps `(n, L, Q)` current (folding insert deltas, rebuilding
/// after deletes), and this set re-derives correlation / regression /
/// PCA from the new statistics **without touching the data** — the
/// models are closed forms over `n, L, Q` (§3.2), so a refresh costs
/// `O(d³)` regardless of `n`. Iterative models warm-start instead: see
/// [`refresh_kmeans`] and [`refresh_mixture`].
#[derive(Debug, Clone)]
pub struct GammaModelSet {
    spec: RefreshSpec,
    d: usize,
    shape: MatrixShape,
    correlation: Option<CorrelationModel>,
    regression: Option<LinearRegression>,
    pca: Option<Pca>,
    refreshes: usize,
}

impl GammaModelSet {
    /// Builds every model enabled in `spec` from the initial Γ.
    ///
    /// Requires triangular or full statistics (all three models need
    /// cross-products). The Γ's dimensionality and shape are recorded;
    /// later refreshes must match them.
    pub fn build(gamma: &Nlq, spec: RefreshSpec) -> Result<Self> {
        if gamma.shape() == MatrixShape::Diagonal {
            return Err(ModelError::InvalidConfig(
                "Γ model refresh needs cross-products; use triangular or full statistics".into(),
            ));
        }
        let mut set = GammaModelSet {
            spec,
            d: gamma.d(),
            shape: gamma.shape(),
            correlation: None,
            regression: None,
            pca: None,
            refreshes: 0,
        };
        set.rebuild(gamma)?;
        Ok(set)
    }

    /// Rebuilds every enabled model from a refreshed Γ of the same
    /// dimensionality and shape, and bumps [`GammaModelSet::refreshes`].
    ///
    /// All-or-nothing: if any model fails to rebuild (e.g. the new Γ
    /// covers too few points), the set keeps its previous models and
    /// the error is returned.
    pub fn refresh(&mut self, gamma: &Nlq) -> Result<()> {
        if gamma.d() != self.d {
            return Err(ModelError::DimensionMismatch {
                expected: self.d,
                got: gamma.d(),
            });
        }
        if gamma.shape() != self.shape {
            return Err(ModelError::InvalidConfig(format!(
                "refreshed Γ has shape {:?}, set was built from {:?}",
                gamma.shape(),
                self.shape
            )));
        }
        self.rebuild(gamma)
    }

    fn rebuild(&mut self, gamma: &Nlq) -> Result<()> {
        let correlation = if self.spec.correlation {
            Some(CorrelationModel::fit(gamma)?)
        } else {
            None
        };
        let regression = if self.spec.regression {
            Some(LinearRegression::fit(gamma)?)
        } else {
            None
        };
        let pca = match self.spec.pca_components {
            Some(k) => Some(Pca::fit(
                gamma,
                k.min(gamma.d()).max(1),
                self.spec.pca_input,
            )?),
            None => None,
        };
        self.correlation = correlation;
        self.regression = regression;
        self.pca = pca;
        self.refreshes += 1;
        Ok(())
    }

    /// Dimensionality of the underlying Γ.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The current correlation model, if enabled.
    pub fn correlation(&self) -> Option<&CorrelationModel> {
        self.correlation.as_ref()
    }

    /// The current regression model (last Γ dimension = Y), if enabled.
    pub fn regression(&self) -> Option<&LinearRegression> {
        self.regression.as_ref()
    }

    /// The current PCA model, if enabled.
    pub fn pca(&self) -> Option<&Pca> {
        self.pca.as_ref()
    }

    /// How many times the set has been (re)built, including the
    /// initial build.
    pub fn refreshes(&self) -> usize {
        self.refreshes
    }
}

/// Refreshes a K-means model after the data changed, seeding Lloyd
/// iterations from the previous fit's centroids instead of running
/// the seeded initialization again.
///
/// When the data shifted only modestly (the typical refresh after
/// incremental maintenance), the previous centroids are already near
/// the optimum and the warm start converges in a few scans.
pub fn refresh_kmeans(prev: &KMeans, data: &[Vec<f64>], config: &KMeansConfig) -> Result<KMeans> {
    KMeans::fit_seeded(data, prev.centroids(), config)
}

/// Refreshes a Gaussian-mixture model after the data changed, seeding
/// EM from the previous fit's component means (skipping the K-means
/// initialization).
pub fn refresh_mixture(
    prev: &GaussianMixture,
    data: &[Vec<f64>],
    config: &GaussianMixtureConfig,
) -> Result<GaussianMixture> {
    GaussianMixture::fit_seeded(data, prev.means(), config)
}

/// Seeds for warm-starting clustering models, extracted from a prior
/// fit so they can be stored (e.g. next to a summary-store entry) and
/// reused after the model object itself is gone.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSeeds {
    centers: Vec<Vector>,
}

impl ClusterSeeds {
    /// Captures a K-means model's centroids.
    pub fn from_kmeans(model: &KMeans) -> Self {
        ClusterSeeds {
            centers: model.centroids().to_vec(),
        }
    }

    /// Captures a mixture model's component means.
    pub fn from_mixture(model: &GaussianMixture) -> Self {
        ClusterSeeds {
            centers: model.means().to_vec(),
        }
    }

    /// The stored centers.
    pub fn centers(&self) -> &[Vector] {
        &self.centers
    }

    /// Warm-starts K-means from the stored centers.
    pub fn fit_kmeans(&self, data: &[Vec<f64>], config: &KMeansConfig) -> Result<KMeans> {
        KMeans::fit_seeded(data, &self.centers, config)
    }

    /// Warm-starts EM from the stored centers.
    pub fn fit_mixture(
        &self,
        data: &[Vec<f64>],
        config: &GaussianMixtureConfig,
    ) -> Result<GaussianMixture> {
        GaussianMixture::fit_seeded(data, &self.centers, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 2*x0 - x1 + 3 with deterministic pseudo-noise in x.
    fn rows(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let x0 = ((i * 37) % 101) as f64 / 10.0;
                let x1 = ((i * 53) % 97) as f64 / 10.0;
                vec![x0, x1, 2.0 * x0 - x1 + 3.0]
            })
            .collect()
    }

    fn gamma(rows: &[Vec<f64>]) -> Nlq {
        Nlq::from_rows(3, MatrixShape::Triangular, rows)
    }

    #[test]
    fn build_populates_all_enabled_models() {
        let set = GammaModelSet::build(&gamma(&rows(200)), RefreshSpec::all(2)).unwrap();
        assert!(set.correlation().is_some());
        assert!(set.regression().is_some());
        assert!(set.pca().is_some());
        assert_eq!(set.refreshes(), 1);
        let reg = set.regression().unwrap();
        assert!((reg.coefficients()[0] - 2.0).abs() < 1e-9);
        assert!((reg.coefficients()[1] + 1.0).abs() < 1e-9);
        assert!((reg.intercept() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn refresh_matches_cold_rebuild_on_grown_gamma() {
        let all = rows(300);
        let mut set = GammaModelSet::build(&gamma(&all[..200]), RefreshSpec::all(3)).unwrap();
        let grown = gamma(&all);
        set.refresh(&grown).unwrap();
        assert_eq!(set.refreshes(), 2);

        let cold = GammaModelSet::build(&grown, RefreshSpec::all(3)).unwrap();
        let (a, b) = (set.regression().unwrap(), cold.regression().unwrap());
        assert!((a.intercept() - b.intercept()).abs() < 1e-12);
        for i in 0..2 {
            assert!((a.coefficients()[i] - b.coefficients()[i]).abs() < 1e-12);
        }
        let (ca, cb) = (set.correlation().unwrap(), cold.correlation().unwrap());
        for r in 0..3 {
            for c in 0..3 {
                assert!((ca.matrix()[(r, c)] - cb.matrix()[(r, c)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn refresh_rejects_mismatched_gamma() {
        let mut set = GammaModelSet::build(&gamma(&rows(50)), RefreshSpec::default()).unwrap();
        let wrong_d = Nlq::from_rows(
            2,
            MatrixShape::Triangular,
            &rows(50).iter().map(|r| r[..2].to_vec()).collect::<Vec<_>>(),
        );
        assert!(matches!(
            set.refresh(&wrong_d),
            Err(ModelError::DimensionMismatch { .. })
        ));
        let wrong_shape = Nlq::from_rows(3, MatrixShape::Full, &rows(50));
        assert!(set.refresh(&wrong_shape).is_err());
    }

    #[test]
    fn diagonal_gamma_rejected_at_build() {
        let diag = Nlq::from_rows(3, MatrixShape::Diagonal, &rows(50));
        assert!(GammaModelSet::build(&diag, RefreshSpec::default()).is_err());
    }

    /// Two separated blobs; shifted variant moves both slightly.
    fn blobs(shift: f64) -> Vec<Vec<f64>> {
        let mut data = Vec::new();
        for i in 0..80 {
            let t = ((i * 31) % 100) as f64 / 100.0 - 0.5;
            data.push(vec![shift + t, shift + 0.5 * t]);
            data.push(vec![20.0 + shift + 0.5 * t, 20.0 + shift + t]);
        }
        data
    }

    #[test]
    fn warm_kmeans_matches_cold_fit_and_converges_faster() {
        let config = KMeansConfig::new(2);
        let cold = KMeans::fit(&blobs(0.0), &config).unwrap();

        let shifted = blobs(0.4);
        let warm = refresh_kmeans(&cold, &shifted, &config).unwrap();
        let recold = KMeans::fit(&shifted, &config).unwrap();
        assert!(warm.converged());
        // Same clustering quality as a cold fit on the new data.
        assert!((warm.sse() - recold.sse()).abs() <= 1e-6 * (1.0 + recold.sse()));
        assert!(warm.iterations() <= recold.iterations());
    }

    #[test]
    fn warm_mixture_tracks_shifted_blobs() {
        let config = GaussianMixtureConfig::new(2);
        let cold = GaussianMixture::fit(&blobs(0.0), &config).unwrap();
        let warm = refresh_mixture(&cold, &blobs(0.5), &config).unwrap();
        assert!(warm.log_likelihood().is_finite());
        let near_low = warm.means().iter().any(|m| m[0] < 10.0);
        let near_high = warm.means().iter().any(|m| m[0] > 10.0);
        assert!(near_low && near_high, "means {:?}", warm.means());
    }

    #[test]
    fn cluster_seeds_round_trip() {
        let config = KMeansConfig::new(2);
        let model = KMeans::fit(&blobs(0.0), &config).unwrap();
        let seeds = ClusterSeeds::from_kmeans(&model);
        assert_eq!(seeds.centers().len(), 2);
        let refit = seeds.fit_kmeans(&blobs(0.1), &config).unwrap();
        assert_eq!(refit.k(), 2);
        let gm = GaussianMixture::fit(&blobs(0.0), &GaussianMixtureConfig::new(2)).unwrap();
        let gm_seeds = ClusterSeeds::from_mixture(&gm);
        let gm_refit = gm_seeds
            .fit_mixture(&blobs(0.1), &GaussianMixtureConfig::new(2))
            .unwrap();
        assert_eq!(gm_refit.k(), 2);
    }

    #[test]
    fn seeded_fit_validates_seeds() {
        let data = blobs(0.0);
        assert!(KMeans::fit_seeded(&data, &[], &KMeansConfig::new(2)).is_err());
        let bad_dim = vec![Vector::from_vec(vec![1.0])];
        assert!(KMeans::fit_seeded(&data, &bad_dim, &KMeansConfig::new(1)).is_err());
        assert!(GaussianMixture::fit_seeded(&data, &[], &GaussianMixtureConfig::new(2)).is_err());
        assert!(
            GaussianMixture::fit_seeded(&data, &bad_dim, &GaussianMixtureConfig::new(1)).is_err()
        );
    }
}
