//! Outlier detection from sufficient statistics.
//!
//! §3.4: the aggregate UDF "also computes the minimum and maximum for
//! each dimension, which can be used to detect outliers or build
//! histograms". This module turns that remark into an API: the
//! [`OutlierDetector`] derives per-dimension mean/σ bounds from one
//! [`Nlq`] (no second pass over the data to *build* the detector), and
//! flags points by z-score or by range during scoring.

use crate::{ModelError, Nlq, Result};

/// Why a point was flagged.
#[derive(Debug, Clone, PartialEq)]
pub enum OutlierReason {
    /// `|x_a − μ_a| / σ_a` exceeded the z-score threshold.
    ZScore {
        /// The offending 0-based dimension.
        dimension: usize,
        /// The observed z-score.
        z: f64,
    },
    /// The value fell outside the observed `[min, max]` range of the
    /// statistics (possible only for points not in the original scan).
    OutOfRange {
        /// The offending 0-based dimension.
        dimension: usize,
        /// The out-of-range value.
        value: f64,
    },
}

/// Per-dimension z-score / range outlier detector.
#[derive(Debug, Clone)]
pub struct OutlierDetector {
    mean: Vec<f64>,
    std_dev: Vec<f64>,
    min: Vec<f64>,
    max: Vec<f64>,
    threshold: f64,
}

impl OutlierDetector {
    /// Builds a detector from statistics, flagging values more than
    /// `z_threshold` standard deviations from the mean.
    pub fn from_stats(nlq: &Nlq, z_threshold: f64) -> Result<Self> {
        if z_threshold <= 0.0 {
            return Err(ModelError::InvalidConfig(
                "z-score threshold must be positive".into(),
            ));
        }
        if nlq.n() < 2.0 {
            return Err(ModelError::NotEnoughData {
                needed: 2,
                got: nlq.n() as usize,
            });
        }
        let mean = nlq.mean()?.into_vec();
        let std_dev = nlq.variances()?.iter().map(|v| v.max(0.0).sqrt()).collect();
        Ok(OutlierDetector {
            mean,
            std_dev,
            min: nlq.min().to_vec(),
            max: nlq.max().to_vec(),
            threshold: z_threshold,
        })
    }

    /// Dimensionality.
    pub fn d(&self) -> usize {
        self.mean.len()
    }

    /// The z-score of one coordinate (0 for constant dimensions).
    pub fn z_score(&self, dimension: usize, value: f64) -> f64 {
        let sd = self.std_dev[dimension];
        if sd <= 0.0 {
            0.0
        } else {
            (value - self.mean[dimension]) / sd
        }
    }

    /// All reasons a point is considered an outlier (empty = inlier).
    ///
    /// # Panics
    /// Panics if `x.len() != d`.
    pub fn explain(&self, x: &[f64]) -> Vec<OutlierReason> {
        assert_eq!(x.len(), self.d(), "point dimensionality mismatch");
        let mut reasons = Vec::new();
        for (a, &v) in x.iter().enumerate() {
            let z = self.z_score(a, v);
            if z.abs() > self.threshold {
                reasons.push(OutlierReason::ZScore { dimension: a, z });
            } else if v < self.min[a] || v > self.max[a] {
                reasons.push(OutlierReason::OutOfRange {
                    dimension: a,
                    value: v,
                });
            }
        }
        reasons
    }

    /// Whether the point is an outlier under the configured threshold.
    pub fn is_outlier(&self, x: &[f64]) -> bool {
        assert_eq!(x.len(), self.d(), "point dimensionality mismatch");
        x.iter().enumerate().any(|(a, &v)| {
            self.z_score(a, v).abs() > self.threshold || v < self.min[a] || v > self.max[a]
        })
    }

    /// Scores a batch, returning the indices of flagged points.
    pub fn flag<'a>(&self, rows: impl IntoIterator<Item = &'a [f64]>) -> Vec<usize> {
        rows.into_iter()
            .enumerate()
            .filter(|(_, x)| self.is_outlier(x))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatrixShape;

    fn tight_cluster_with_outlier() -> Vec<Vec<f64>> {
        let mut rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![10.0 + (i % 7) as f64 * 0.1, -5.0 + (i % 5) as f64 * 0.1])
            .collect();
        rows.push(vec![50.0, -5.2]); // wild in dimension 0
        rows
    }

    #[test]
    fn flags_the_planted_outlier() {
        let rows = tight_cluster_with_outlier();
        let nlq = Nlq::from_rows(2, MatrixShape::Diagonal, &rows);
        let det = OutlierDetector::from_stats(&nlq, 3.0).unwrap();
        let flagged = det.flag(rows.iter().map(Vec::as_slice));
        assert_eq!(flagged, vec![100]);
        let reasons = det.explain(&rows[100]);
        assert!(matches!(
            reasons[0],
            OutlierReason::ZScore { dimension: 0, z } if z > 3.0
        ));
    }

    #[test]
    fn inliers_pass() {
        let rows = tight_cluster_with_outlier();
        let nlq = Nlq::from_rows(2, MatrixShape::Diagonal, &rows[..100]);
        let det = OutlierDetector::from_stats(&nlq, 3.0).unwrap();
        assert!(!det.is_outlier(&rows[3]));
        assert!(det.explain(&rows[3]).is_empty());
    }

    #[test]
    fn out_of_range_detection_for_new_points() {
        // Build stats WITHOUT the extreme point; a new value slightly
        // outside [min, max] but within 3σ is flagged as OutOfRange.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![(i % 10) as f64]).collect();
        let nlq = Nlq::from_rows(1, MatrixShape::Diagonal, &rows);
        let det = OutlierDetector::from_stats(&nlq, 5.0).unwrap();
        // max = 9; 9.5 is < 5 sigma away but out of observed range.
        let reasons = det.explain(&[9.5]);
        assert!(matches!(
            reasons[0],
            OutlierReason::OutOfRange { dimension: 0, .. }
        ));
    }

    #[test]
    fn constant_dimension_never_z_flags() {
        let rows: Vec<Vec<f64>> = (0..20).map(|_| vec![7.0]).collect();
        let nlq = Nlq::from_rows(1, MatrixShape::Diagonal, &rows);
        let det = OutlierDetector::from_stats(&nlq, 3.0).unwrap();
        assert_eq!(det.z_score(0, 7.0), 0.0);
        assert!(!det.is_outlier(&[7.0]));
        // A different value is caught by the range check instead.
        assert!(det.is_outlier(&[8.0]));
    }

    #[test]
    fn invalid_config_rejected() {
        let rows = vec![vec![1.0], vec![2.0]];
        let nlq = Nlq::from_rows(1, MatrixShape::Diagonal, &rows);
        assert!(OutlierDetector::from_stats(&nlq, 0.0).is_err());
        let empty = Nlq::new(1, MatrixShape::Diagonal);
        assert!(OutlierDetector::from_stats(&empty, 3.0).is_err());
    }
}
