#![warn(missing_docs)]

//! Statistical models built from sufficient statistics (the paper's
//! primary contribution).
//!
//! Everything in this crate operates on the two summary matrices the
//! paper identifies as *common and essential for all linear models*
//! (§3.2):
//!
//! * `L = Σ xᵢ` — the linear sum of points (d × 1), and
//! * `Q = X Xᵀ = Σ xᵢ xᵢᵀ` — the quadratic sum of cross-products (d × d),
//!
//! together with the row count `n`. The [`Nlq`] type holds all three
//! (plus per-dimension min/max, which the paper's aggregate UDF also
//! tracks), supports single-point accumulation and partial merging
//! (the aggregate-UDF phases), and derives the mean, covariance and
//! correlation matrices.
//!
//! Model builders consume an [`Nlq`] and never look at the data again:
//!
//! * [`CorrelationModel`] — the d × d Pearson correlation matrix;
//! * [`LinearRegression`] — OLS `β = Q⁻¹ (X Yᵀ)` on the augmented
//!   matrix `Z = (X, Y)`, with `var(β)`, R² and scoring;
//! * [`Pca`] — principal component analysis from the correlation or
//!   covariance matrix, with dimensionality-reduction scoring;
//! * [`FactorAnalysis`] — maximum-likelihood factor analysis via EM;
//! * [`KMeans`] — K-means clustering maintaining one diagonal
//!   [`Nlq`] per cluster (plus an incremental one-pass variant);
//! * [`GaussianMixture`] — EM clustering with diagonal covariances;
//! * [`GaussianNb`] — Gaussian Naive Bayes from per-class statistics
//!   (the paper's §6 future-work direction: classification from the
//!   same sufficient statistics, one `GROUP BY` away).
//!
//! Scoring (model application, §3.5) lives in [`scoring`] as plain
//! functions; the `nlq-udf` crate wraps them as scalar UDFs.

mod correlation;
mod em;
mod factor;
mod histogram;
pub mod inference;
mod kmeans;
mod linreg;
mod naive_bayes;
mod nlq;
mod outliers;
mod pca;
mod refresh;
pub mod scoring;

pub use correlation::CorrelationModel;
pub use em::{GaussianMixture, GaussianMixtureConfig};
pub use factor::{FactorAnalysis, FactorAnalysisConfig};
pub use histogram::Histogram;
pub use kmeans::{IncrementalKMeans, KMeans, KMeansConfig};
pub use linreg::LinearRegression;
pub use naive_bayes::GaussianNb;
pub use nlq::{MatrixShape, Nlq};
pub use outliers::{OutlierDetector, OutlierReason};
pub use pca::{Pca, PcaInput};
pub use refresh::{refresh_kmeans, refresh_mixture, ClusterSeeds, GammaModelSet, RefreshSpec};

use std::fmt;

/// Errors produced while building or applying models.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The statistics cover too few points for the requested model
    /// (e.g. regression needs `n > d + 1` for variance estimates).
    NotEnoughData {
        /// Minimum points required.
        needed: usize,
        /// Points available.
        got: usize,
    },
    /// A dimension has zero variance, making correlation undefined.
    ZeroVariance {
        /// The offending 0-based dimension.
        dimension: usize,
    },
    /// Underlying linear algebra failed (singular matrix, no
    /// convergence, ...).
    Linalg(nlq_linalg::LinalgError),
    /// The model and the input point disagree on dimensionality.
    DimensionMismatch {
        /// Model dimensionality.
        expected: usize,
        /// Input dimensionality.
        got: usize,
    },
    /// Invalid configuration (e.g. `k = 0` clusters).
    InvalidConfig(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NotEnoughData { needed, got } => {
                write!(
                    f,
                    "not enough data: need at least {needed} points, got {got}"
                )
            }
            ModelError::ZeroVariance { dimension } => {
                write!(f, "dimension {dimension} has zero variance")
            }
            ModelError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            ModelError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: model has d={expected}, input has d={got}"
                )
            }
            ModelError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nlq_linalg::LinalgError> for ModelError {
    fn from(e: nlq_linalg::LinalgError) -> Self {
        ModelError::Linalg(e)
    }
}

/// Convenience result alias for model operations.
pub type Result<T> = std::result::Result<T, ModelError>;
