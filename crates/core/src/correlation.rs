use nlq_linalg::Matrix;

use crate::{Nlq, Result};

/// Correlation analysis (§3.1, §3.2).
///
/// As the paper notes, "the correlation matrix is not a model, but it
/// can be used to understand and build linear models" — it is the
/// standard input to PCA on standardized data and a first diagnostic
/// for regression. This type wraps the d × d Pearson matrix derived
/// entirely from `n, L, Q`, and offers simple exploration helpers.
#[derive(Debug, Clone)]
pub struct CorrelationModel {
    rho: Matrix,
}

impl CorrelationModel {
    /// Builds the correlation matrix from sufficient statistics.
    ///
    /// Requires triangular or full statistics (the diagonal shape
    /// lacks cross-products) and at least two points; errors if any
    /// dimension has zero variance.
    pub fn fit(nlq: &Nlq) -> Result<Self> {
        Ok(CorrelationModel {
            rho: nlq.correlation()?,
        })
    }

    /// The d × d correlation matrix; symmetric with unit diagonal.
    pub fn matrix(&self) -> &Matrix {
        &self.rho
    }

    /// Dimensionality.
    pub fn d(&self) -> usize {
        self.rho.rows()
    }

    /// The correlation coefficient between dimensions `a` and `b`
    /// (0-based).
    pub fn coefficient(&self, a: usize, b: usize) -> f64 {
        self.rho[(a, b)]
    }

    /// All dimension pairs `(a, b, rho)` with `|rho| >= threshold`,
    /// strongest first. A typical exploratory query ("which variables
    /// move together?").
    pub fn strong_pairs(&self, threshold: f64) -> Vec<(usize, usize, f64)> {
        let d = self.d();
        let mut pairs = Vec::new();
        for a in 0..d {
            for b in (a + 1)..d {
                let r = self.rho[(a, b)];
                if r.abs() >= threshold {
                    pairs.push((a, b, r));
                }
            }
        }
        pairs.sort_by(|x, y| y.2.abs().partial_cmp(&x.2.abs()).expect("rho is finite"));
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatrixShape;

    fn fit(rows: &[Vec<f64>]) -> CorrelationModel {
        let d = rows[0].len();
        CorrelationModel::fit(&Nlq::from_rows(d, MatrixShape::Triangular, rows)).unwrap()
    }

    #[test]
    fn diagonal_is_one() {
        let m = fit(&[
            vec![1.0, 9.0, 2.0],
            vec![2.0, 7.0, 1.0],
            vec![3.0, 8.0, 5.0],
            vec![4.0, 1.0, 2.5],
        ]);
        for a in 0..3 {
            assert!((m.coefficient(a, a) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric() {
        let m = fit(&[
            vec![1.0, 9.0],
            vec![2.0, 7.0],
            vec![3.0, 8.0],
            vec![4.0, 1.0],
        ]);
        assert!((m.coefficient(0, 1) - m.coefficient(1, 0)).abs() < 1e-12);
    }

    #[test]
    fn matches_hand_computed_pearson() {
        // x = [1,2,3], y = [2,2,5]: r = cov/sd_x/sd_y
        // mean_x=2, mean_y=3; cov = ((-1)(-1) + 0*(-1) + 1*2)/3 = 1
        // var_x = 2/3, var_y = (1+1+4)/3 = 2 -> r = 1/sqrt(2/3 * 2) ≈ 0.866
        let m = fit(&[vec![1.0, 2.0], vec![2.0, 2.0], vec![3.0, 5.0]]);
        assert!((m.coefficient(0, 1) - 0.8660254).abs() < 1e-6);
    }

    #[test]
    fn strong_pairs_sorted_by_magnitude() {
        let rows = vec![
            vec![1.0, 2.0, -1.1, 0.3],
            vec![2.0, 4.0, -1.9, 0.9],
            vec![3.0, 6.1, -3.2, 0.1],
            vec![4.0, 7.9, -3.8, 0.7],
        ];
        let m = fit(&rows);
        let pairs = m.strong_pairs(0.9);
        assert!(!pairs.is_empty());
        // (0,1) is near-perfect positive, (0,2) near-perfect negative.
        assert!(pairs.iter().any(|&(a, b, r)| a == 0 && b == 1 && r > 0.99));
        assert!(pairs.iter().any(|&(a, b, r)| a == 0 && b == 2 && r < -0.99));
        for w in pairs.windows(2) {
            assert!(w[0].2.abs() >= w[1].2.abs());
        }
    }

    #[test]
    fn independent_dimensions_have_low_correlation() {
        // Deterministic pseudo-random-ish pattern with low cross correlation.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let x = (i as f64 * 0.7).sin() * 10.0;
                let y = (i as f64 * 1.3 + 2.0).cos() * 10.0;
                vec![x, y]
            })
            .collect();
        let m = fit(&rows);
        assert!(m.coefficient(0, 1).abs() < 0.3);
    }
}
